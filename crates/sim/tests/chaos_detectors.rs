//! The chaos substrate's detectors and schedule policies, exercised on
//! hand-built scenarios: AB/BA deadlock reported as a lock cycle,
//! livelock bounded by the step budget with named spinners, and
//! ready-queue tie-breaking that is pluggable, divergent, and
//! seed-reproducible.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use whodunit_core::ids::LockMode;
use whodunit_sim::{
    Msg, Op, RunOutcome, SchedulePolicy, Sim, SimConfig, ThreadBody, ThreadCx, Wake,
};

struct Script {
    ops: VecDeque<Op>,
    log: Rc<RefCell<Vec<String>>>,
}

impl Script {
    fn new(ops: Vec<Op>, log: &Rc<RefCell<Vec<String>>>) -> Box<Self> {
        Box::new(Script {
            ops: ops.into(),
            log: log.clone(),
        })
    }
}

impl ThreadBody for Script {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        if let Wake::Received(m) = &wake {
            self.log
                .borrow_mut()
                .push(format!("{}:recv({})", cx.me(), m.peek::<u32>().copied().unwrap_or(0)));
        }
        self.ops.pop_front().unwrap_or(Op::Exit)
    }
}

fn log() -> Rc<RefCell<Vec<String>>> {
    Rc::new(RefCell::new(Vec::new()))
}

#[test]
fn ab_ba_deadlock_is_reported_as_a_cycle() {
    // The classic inversion: t0 takes A then wants B; t1 takes B then
    // wants A. Both compute between the acquires (on separate cores) so
    // both inner requests find the other lock held.
    let mut sim = Sim::new(SimConfig { quantum: 1000 });
    sim.set_schedule_policy(SchedulePolicy::Random { seed: 0xABBA });
    let m = sim.add_machine(2);
    let p = sim.add_unprofiled_process("p");
    let a = sim.add_lock();
    let b = sim.add_lock();
    let l = log();
    sim.spawn(
        p,
        m,
        "fwd",
        Script::new(
            vec![
                Op::Lock(a, LockMode::Exclusive),
                Op::Compute(500),
                Op::Lock(b, LockMode::Exclusive),
                Op::Unlock(b),
                Op::Unlock(a),
            ],
            &l,
        ),
    );
    sim.spawn(
        p,
        m,
        "rev",
        Script::new(
            vec![
                Op::Lock(b, LockMode::Exclusive),
                Op::Compute(500),
                Op::Lock(a, LockMode::Exclusive),
                Op::Unlock(a),
                Op::Unlock(b),
            ],
            &l,
        ),
    );
    let outcome = sim.run_to_idle_outcome();
    let RunOutcome::Deadlock(report) = outcome else {
        panic!("expected deadlock, got {outcome}");
    };
    // The report walks the full waiter → lock → holder cycle.
    assert_eq!(report.cycle.len(), 2, "two-thread cycle: {report}");
    let names: Vec<&str> = report.cycle.iter().map(|e| e.waiter_name.as_str()).collect();
    assert!(names.contains(&"fwd") && names.contains(&"rev"), "{names:?}");
    let locks: Vec<_> = report.cycle.iter().map(|e| e.lock).collect();
    assert!(locks.contains(&a) && locks.contains(&b), "{locks:?}");
    // Every link's holder is the next link's waiter (it is a cycle).
    for (i, link) in report.cycle.iter().enumerate() {
        let next = &report.cycle[(i + 1) % report.cycle.len()];
        assert_eq!(link.holder, next.waiter, "broken chain in {report}");
    }
    let shown = report.to_string();
    assert!(shown.contains("fwd") && shown.contains("rev"), "{shown}");
}

#[test]
fn deadlock_free_contention_still_drains_to_idle() {
    // Same locks, same order on both threads: contention but no cycle.
    let mut sim = Sim::new(SimConfig { quantum: 1000 });
    sim.set_schedule_policy(SchedulePolicy::Random { seed: 0xABBA });
    let m = sim.add_machine(2);
    let p = sim.add_unprofiled_process("p");
    let a = sim.add_lock();
    let b = sim.add_lock();
    let l = log();
    for name in ["one", "two"] {
        sim.spawn(
            p,
            m,
            name,
            Script::new(
                vec![
                    Op::Lock(a, LockMode::Exclusive),
                    Op::Compute(500),
                    Op::Lock(b, LockMode::Exclusive),
                    Op::Unlock(b),
                    Op::Unlock(a),
                ],
                &l,
            ),
        );
    }
    assert!(matches!(sim.run_to_idle_outcome(), RunOutcome::Idle));
}

/// Two threads ping-ponging over zero-latency, zero-cost channels:
/// unbounded steps at one virtual instant.
struct PingPong {
    rx: whodunit_core::ids::ChanId,
    tx: whodunit_core::ids::ChanId,
    serves: bool,
}

impl ThreadBody for PingPong {
    fn resume(&mut self, _cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match wake {
            Wake::Start if self.serves => Op::Recv(self.rx),
            Wake::Start | Wake::Received(_) => Op::Send(self.tx, Msg::new(0u32, 0)),
            Wake::Done => Op::Recv(self.rx),
            _ => unreachable!("ping-pong only sends and receives"),
        }
    }
}

#[test]
fn livelock_budget_names_the_spinners() {
    let mut sim = Sim::default();
    sim.set_step_budget(Some(500));
    let m = sim.add_machine(2);
    let p = sim.add_unprofiled_process("p");
    let a = sim.add_channel(0, 0);
    let b = sim.add_channel(0, 0);
    sim.spawn(p, m, "ping", Box::new(PingPong { rx: b, tx: a, serves: false }));
    sim.spawn(p, m, "pong", Box::new(PingPong { rx: a, tx: b, serves: true }));
    let outcome = sim.run_to_idle_outcome();
    let RunOutcome::Livelock(report) = outcome else {
        panic!("expected livelock, got {outcome}");
    };
    assert!(report.steps > 500);
    let names: Vec<&str> = report.spinners.iter().map(|s| s.name.as_str()).collect();
    assert!(
        names.contains(&"ping") && names.contains(&"pong"),
        "spinners: {names:?}"
    );
    // The two spinners dominate the step count.
    let spun: u64 = report.spinners.iter().map(|s| s.resumes).sum();
    assert!(spun > 400, "spinner resumes {spun} of {} steps", report.steps);
    let shown = report.to_string();
    assert!(shown.contains("ping") && shown.contains("pong"), "{shown}");
}

#[test]
fn step_budget_resets_when_time_advances() {
    // 50 compute bursts at distinct instants under a budget of 10:
    // progress resets the counter, so the run completes normally.
    let mut sim = Sim::default();
    sim.set_step_budget(Some(10));
    let m = sim.add_machine(1);
    let p = sim.add_unprofiled_process("p");
    let l = log();
    sim.spawn(
        p,
        m,
        "worker",
        Script::new((0..50).map(|_| Op::Compute(100)).collect(), &l),
    );
    assert!(matches!(sim.run_to_idle_outcome(), RunOutcome::Idle));
}

/// MPMC handoff scenario: the spawn-time ready order decides which
/// receiver registers first, so tie-breaking is directly observable.
fn mpmc_recv_order(policy: SchedulePolicy) -> Vec<String> {
    let mut sim = Sim::default();
    sim.set_schedule_policy(policy);
    let m = sim.add_machine(4);
    let p = sim.add_unprofiled_process("p");
    let ch = sim.add_channel(0, 0);
    let l = log();
    for i in 0..4 {
        sim.spawn(p, m, &format!("rx{i}"), Script::new(vec![Op::Recv(ch)], &l));
    }
    sim.spawn(
        p,
        m,
        "tx",
        Script::new(
            (0..4u32).map(|i| Op::Send(ch, Msg::new(10 + i, 1))).collect(),
            &l,
        ),
    );
    let outcome = sim.run_to_idle_outcome();
    assert!(outcome.is_ok(), "{outcome}");
    let v = l.borrow().clone();
    v
}

#[test]
fn schedule_policies_produce_divergent_legal_interleavings() {
    let fifo = mpmc_recv_order(SchedulePolicy::Fifo);
    let lifo = mpmc_recv_order(SchedulePolicy::Lifo);
    // FIFO preserves the historical behavior: receivers register in
    // spawn order and messages arrive in send order.
    assert_eq!(
        fifo,
        vec!["t0:recv(10)", "t1:recv(11)", "t2:recv(12)", "t3:recv(13)"]
    );
    // LIFO resumes the most recently readied thread first, reversing
    // the registration order — same messages, different threads.
    assert_ne!(lifo, fifo, "LIFO must change the handoff");
    let mut sorted = lifo.clone();
    sorted.sort();
    assert_eq!(
        sorted,
        vec!["t0:recv(13)", "t1:recv(12)", "t2:recv(11)", "t3:recv(10)"],
        "all four messages still delivered exactly once: {lifo:?}"
    );
}

#[test]
fn random_policy_is_reproducible_per_seed() {
    let a = mpmc_recv_order(SchedulePolicy::Random { seed: 1 });
    let b = mpmc_recv_order(SchedulePolicy::Random { seed: 1 });
    assert_eq!(a, b, "same seed, same interleaving");
    // Some nearby seed diverges (each run is one of 120+ permutations;
    // sampling a few seeds makes a collision across all of them
    // astronomically unlikely).
    let diverged = (2..10).any(|s| mpmc_recv_order(SchedulePolicy::Random { seed: s }) != a);
    assert!(diverged, "random tie-breaking never changed the handoff");
}

#[test]
fn perturb_extremes_bracket_fifo() {
    let fifo = mpmc_recv_order(SchedulePolicy::Fifo);
    let never = mpmc_recv_order(SchedulePolicy::Perturb { seed: 3, swap_ppm: 0 });
    assert_eq!(never, fifo, "0 ppm perturbation is exactly FIFO");
    let always = mpmc_recv_order(SchedulePolicy::Perturb {
        seed: 3,
        swap_ppm: 1_000_000,
    });
    assert_ne!(always, fifo, "saturated perturbation must deviate");
}
