//! Engine-level fault injection and timeout behaviour.
//!
//! These tests drive the public API only: a [`FaultPlan`] installed on
//! a [`Sim`], scripted thread bodies, and the new timed-wait
//! primitives. Everything must be deterministic — several tests run
//! the same configuration twice and require identical traces.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use whodunit_sim::{ChannelFaults, FaultPlan, Msg, Op, Sim, ThreadBody, ThreadCx, Wake};

/// Scripted body: plays a fixed op list, logging each wake.
struct Script {
    ops: VecDeque<Op>,
    log: Rc<RefCell<Vec<String>>>,
}

impl Script {
    fn new(ops: Vec<Op>, log: Rc<RefCell<Vec<String>>>) -> Box<Self> {
        Box::new(Script {
            ops: ops.into(),
            log,
        })
    }
}

impl ThreadBody for Script {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        let entry = match &wake {
            Wake::Start => "start".to_owned(),
            Wake::Done => "done".to_owned(),
            Wake::ComputeDone => format!("computed@{}", cx.now()),
            Wake::LockAcquired { waited } => format!("locked(w={waited})"),
            Wake::CondWoken { waited } => format!("woken(w={waited})"),
            Wake::Received(m) => format!(
                "recv({})@{}",
                m.peek::<u32>().copied().unwrap_or(0),
                cx.now()
            ),
            Wake::Slept => format!("slept@{}", cx.now()),
            Wake::RecvTimedOut => format!("timeout@{}", cx.now()),
            Wake::CondTimedOut { waited } => format!("condtimeout(w={waited})@{}", cx.now()),
        };
        self.log
            .borrow_mut()
            .push(format!("{}:{entry}", cx.thread_name_of_me()));
        self.ops.pop_front().unwrap_or(Op::Exit)
    }
}

trait NameOfMe {
    fn thread_name_of_me(&self) -> String;
}

impl NameOfMe for ThreadCx<'_> {
    fn thread_name_of_me(&self) -> String {
        format!("t{}", self.me().0)
    }
}

fn log() -> Rc<RefCell<Vec<String>>> {
    Rc::new(RefCell::new(Vec::new()))
}

#[test]
fn recv_timeout_expires_when_nothing_arrives() {
    let mut sim = Sim::default();
    let m = sim.add_machine(1);
    let p = sim.add_unprofiled_process("p");
    let ch = sim.add_channel(0, 0);
    let l = log();
    sim.spawn(p, m, "rx", Script::new(vec![Op::RecvTimeout(ch, 5000)], l.clone()));
    sim.run_to_idle();
    assert_eq!(sim.now(), 5000);
    assert!(l.borrow().iter().any(|e| e == "t0:timeout@5000"), "{l:?}");
}

#[test]
fn recv_timeout_delivery_wins_and_deadline_is_inert() {
    let mut sim = Sim::default();
    let m = sim.add_machine(2);
    let p = sim.add_unprofiled_process("p");
    let ch = sim.add_channel(100, 0);
    let l = log();
    // rx: timed recv (deadline 50_000), then a *second* timed recv on
    // the same channel. The first deadline must not leak into the
    // second wait (epoch guard).
    sim.spawn(
        p,
        m,
        "rx",
        Script::new(
            vec![Op::RecvTimeout(ch, 50_000), Op::RecvTimeout(ch, 200_000)],
            l.clone(),
        ),
    );
    sim.spawn(
        p,
        m,
        "tx",
        Script::new(vec![Op::Send(ch, Msg::new(1u32, 0))], l.clone()),
    );
    sim.run_to_idle();
    let entries = l.borrow();
    assert!(entries.iter().any(|e| e == "t0:recv(1)@100"), "{entries:?}");
    // The second wait must expire at 100 + 200_000, NOT at 50_000.
    assert!(
        entries.iter().any(|e| e == "t0:timeout@200100"),
        "stale deadline fired early: {entries:?}"
    );
    assert!(!entries.iter().any(|e| e == "t0:timeout@50000"), "{entries:?}");
}

#[test]
fn timed_out_receiver_leaves_queue_late_message_buffers() {
    let mut sim = Sim::default();
    let m = sim.add_machine(2);
    let p = sim.add_unprofiled_process("p");
    let ch = sim.add_channel(10_000, 0);
    let l = log();
    // rx gives up after 1000 cycles; the message lands at 10_000 and
    // must buffer, not resurrect the abandoned wait.
    sim.spawn(p, m, "rx", Script::new(vec![Op::RecvTimeout(ch, 1000)], l.clone()));
    sim.spawn(
        p,
        m,
        "tx",
        Script::new(vec![Op::Send(ch, Msg::new(9u32, 0))], l.clone()),
    );
    sim.run_to_idle();
    let entries = l.borrow();
    assert!(entries.iter().any(|e| e == "t0:timeout@1000"), "{entries:?}");
    assert!(
        !entries.iter().any(|e| e.starts_with("t0:recv")),
        "{entries:?}"
    );
    assert_eq!(sim.chans.buffered(ch), 1, "late message sits in the buffer");
}

#[test]
fn cond_wait_timeout_reacquires_lock() {
    let mut sim = Sim::default();
    let m = sim.add_machine(1);
    let p = sim.add_unprofiled_process("p");
    let lk = sim.add_lock();
    let cv = sim.add_cond();
    let l = log();
    sim.spawn(
        p,
        m,
        "waiter",
        Script::new(
            vec![
                Op::Lock(lk, whodunit_core::ids::LockMode::Exclusive),
                Op::CondWaitTimeout(cv, lk, 7000),
                Op::Unlock(lk),
            ],
            l.clone(),
        ),
    );
    sim.run_to_idle();
    let entries = l.borrow();
    assert!(
        entries.iter().any(|e| e == "t0:condtimeout(w=0)@7000"),
        "{entries:?}"
    );
    // The final Unlock succeeded, so the lock was genuinely re-held.
    assert!(entries.iter().any(|e| e == "t0:done"), "{entries:?}");
    assert!(!sim.locks.holds(whodunit_core::ids::ThreadId(0), lk));
}

#[test]
fn cond_notify_beats_timeout() {
    let mut sim = Sim::default();
    let m = sim.add_machine(2);
    let p = sim.add_unprofiled_process("p");
    let lk = sim.add_lock();
    let cv = sim.add_cond();
    let l = log();
    sim.spawn(
        p,
        m,
        "waiter",
        Script::new(
            vec![
                Op::Lock(lk, whodunit_core::ids::LockMode::Exclusive),
                Op::CondWaitTimeout(cv, lk, 1_000_000),
                Op::Unlock(lk),
            ],
            l.clone(),
        ),
    );
    sim.spawn(
        p,
        m,
        "notifier",
        Script::new(
            vec![
                Op::Compute(10_000),
                Op::Lock(lk, whodunit_core::ids::LockMode::Exclusive),
                Op::Notify(cv, false),
                Op::Unlock(lk),
            ],
            l.clone(),
        ),
    );
    sim.run_to_idle();
    let entries = l.borrow();
    assert!(
        entries.iter().any(|e| e.starts_with("t0:woken")),
        "{entries:?}"
    );
    assert!(
        !entries.iter().any(|e| e.contains("condtimeout")),
        "stale cond deadline fired after notify: {entries:?}"
    );
}

#[test]
fn dropped_message_never_delivers_and_is_counted() {
    let mut sim = Sim::default();
    let m = sim.add_machine(2);
    let p = sim.add_unprofiled_process("p");
    let ch = sim.add_channel(100, 0);
    sim.set_fault_plan(FaultPlan::new(1).channel_faults(
        ch,
        ChannelFaults {
            drop_p: 1.0,
            ..ChannelFaults::default()
        },
    ));
    let l = log();
    sim.spawn(p, m, "rx", Script::new(vec![Op::RecvTimeout(ch, 9000)], l.clone()));
    sim.spawn(
        p,
        m,
        "tx",
        Script::new(vec![Op::Send(ch, Msg::new(1u32, 8))], l.clone()),
    );
    sim.run_to_idle();
    let entries = l.borrow();
    assert!(entries.iter().any(|e| e == "t0:timeout@9000"), "{entries:?}");
    assert_eq!(sim.chans.dropped(ch), 1);
    assert_eq!(sim.chans.msgs_sent(ch), 1, "send-side accounting still runs");
    assert_eq!(sim.chans.buffered(ch), 0);
}

#[test]
fn duplicated_replayable_message_delivers_twice() {
    let mut sim = Sim::default();
    let m = sim.add_machine(2);
    let p = sim.add_unprofiled_process("p");
    let ch = sim.add_channel(100, 0);
    sim.set_fault_plan(FaultPlan::new(3).channel_faults(
        ch,
        ChannelFaults {
            dup_p: 1.0,
            ..ChannelFaults::default()
        },
    ));
    let l = log();
    sim.spawn(
        p,
        m,
        "rx",
        Script::new(vec![Op::Recv(ch), Op::Recv(ch)], l.clone()),
    );
    sim.spawn(
        p,
        m,
        "tx",
        Script::new(vec![Op::Send(ch, Msg::replayable(4u32, 8))], l.clone()),
    );
    sim.run_to_idle();
    let entries = l.borrow();
    let recvs = entries.iter().filter(|e| e.starts_with("t0:recv(4)")).count();
    assert_eq!(recvs, 2, "{entries:?}");
    assert_eq!(sim.chans.duplicated(ch), 1);
}

#[test]
fn non_replayable_message_is_not_duplicated() {
    let mut sim = Sim::default();
    let m = sim.add_machine(2);
    let p = sim.add_unprofiled_process("p");
    let ch = sim.add_channel(100, 0);
    sim.set_fault_plan(FaultPlan::new(3).channel_faults(
        ch,
        ChannelFaults {
            dup_p: 1.0,
            ..ChannelFaults::default()
        },
    ));
    let l = log();
    sim.spawn(p, m, "rx", Script::new(vec![Op::Recv(ch)], l.clone()));
    sim.spawn(
        p,
        m,
        "tx",
        Script::new(vec![Op::Send(ch, Msg::new(4u32, 8))], l.clone()),
    );
    sim.run_to_idle();
    assert_eq!(sim.chans.duplicated(ch), 0);
    assert_eq!(sim.chans.buffered(ch), 0, "exactly one delivery, consumed");
}

#[test]
fn delay_fault_postpones_delivery() {
    let mut sim = Sim::default();
    let m = sim.add_machine(2);
    let p = sim.add_unprofiled_process("p");
    let ch = sim.add_channel(100, 0);
    sim.set_fault_plan(FaultPlan::new(5).channel_faults(
        ch,
        ChannelFaults {
            delay_p: 1.0,
            delay_cycles: 40_000,
            ..ChannelFaults::default()
        },
    ));
    let l = log();
    sim.spawn(p, m, "rx", Script::new(vec![Op::Recv(ch)], l.clone()));
    sim.spawn(
        p,
        m,
        "tx",
        Script::new(vec![Op::Send(ch, Msg::new(2u32, 0))], l.clone()),
    );
    sim.run_to_idle();
    let entries = l.borrow();
    assert!(
        entries.iter().any(|e| e == "t0:recv(2)@40100"),
        "{entries:?}"
    );
    assert_eq!(sim.chans.delayed(ch), 1);
}

#[test]
fn slowdown_window_stretches_wall_clock_not_truth() {
    fn run(with_slowdown: bool) -> (u64, u64) {
        let mut sim = Sim::default();
        let m = sim.add_machine(1);
        let p = sim.add_unprofiled_process("p");
        if with_slowdown {
            sim.set_fault_plan(FaultPlan::new(0).slowdown(m, 0, u64::MAX, 4));
        }
        let l = log();
        sim.spawn(p, m, "t", Script::new(vec![Op::Compute(100_000)], l));
        sim.run_to_idle();
        (sim.now(), sim.proc_compute_cycles(p))
    }
    let (fast, truth_fast) = run(false);
    let (slow, truth_slow) = run(true);
    assert_eq!(fast, 100_000);
    assert_eq!(slow, 400_000, "4x slowdown quadruples wall time");
    assert_eq!(truth_fast, 100_000);
    assert_eq!(truth_slow, 100_000, "ground truth unchanged by slowdown");
}

#[test]
fn crash_halts_threads_and_releases_locks() {
    let mut sim = Sim::default();
    let m = sim.add_machine(2);
    let victim = sim.add_unprofiled_process("victim");
    let survivor = sim.add_unprofiled_process("survivor");
    let lk = sim.add_lock();
    let l = log();
    // Victim grabs the lock and computes forever.
    sim.spawn(
        victim,
        m,
        "v",
        Script::new(
            vec![
                Op::Lock(lk, whodunit_core::ids::LockMode::Exclusive),
                Op::Compute(100_000_000),
                Op::Unlock(lk),
            ],
            l.clone(),
        ),
    );
    // Survivor wants the same lock.
    sim.spawn(
        survivor,
        m,
        "s",
        Script::new(
            vec![
                Op::Compute(1000),
                Op::Lock(lk, whodunit_core::ids::LockMode::Exclusive),
                Op::Unlock(lk),
            ],
            l.clone(),
        ),
    );
    sim.set_fault_plan(FaultPlan::new(0).crash(victim, 50_000));
    sim.run_to_idle();
    assert!(sim.proc_crashed(victim));
    assert!(!sim.proc_crashed(survivor));
    let entries = l.borrow();
    assert!(
        entries.iter().any(|e| e.starts_with("t1:locked")),
        "survivor got the crashed holder's lock: {entries:?}"
    );
    assert!(
        !entries.iter().any(|e| e.starts_with("t0:computed")),
        "victim's burst never completes: {entries:?}"
    );
    assert!(
        sim.now() < 100_000_000,
        "crashed compute is abandoned, not simulated to completion"
    );
}

#[test]
fn message_to_crashed_process_buffers_harmlessly() {
    let mut sim = Sim::default();
    let m = sim.add_machine(2);
    let origin = sim.add_unprofiled_process("origin");
    let client = sim.add_unprofiled_process("client");
    let ch = sim.add_channel(100, 0);
    let l = log();
    // Origin would answer requests, but crashes at t=10.
    sim.spawn(origin, m, "o", Script::new(vec![Op::Recv(ch)], l.clone()));
    sim.spawn(
        client,
        m,
        "c",
        Script::new(
            vec![Op::Compute(1000), Op::Send(ch, Msg::new(1u32, 0))],
            l.clone(),
        ),
    );
    sim.set_fault_plan(FaultPlan::new(0).crash(origin, 10));
    sim.run_to_idle();
    let entries = l.borrow();
    assert!(
        !entries.iter().any(|e| e.starts_with("t0:recv")),
        "dead receiver must not consume: {entries:?}"
    );
    assert_eq!(sim.chans.buffered(ch), 1);
}

#[test]
fn faulted_run_is_bit_deterministic() {
    fn run() -> Vec<String> {
        let mut sim = Sim::default();
        let m = sim.add_machine(2);
        let p = sim.add_unprofiled_process("p");
        let ch = sim.add_channel(100, 1);
        sim.set_fault_plan(FaultPlan::new(0xBEEF).channel_faults(
            ch,
            ChannelFaults {
                drop_p: 0.4,
                dup_p: 0.3,
                delay_p: 0.3,
                delay_cycles: 5_000,
            },
        ));
        let l = log();
        let mut rx_ops = Vec::new();
        let mut tx_ops = Vec::new();
        for i in 0..20u32 {
            rx_ops.push(Op::RecvTimeout(ch, 3_000));
            tx_ops.push(Op::Send(ch, Msg::replayable(i, 16)));
            tx_ops.push(Op::Compute(500));
        }
        sim.spawn(p, m, "rx", Script::new(rx_ops, l.clone()));
        sim.spawn(p, m, "tx", Script::new(tx_ops, l.clone()));
        sim.run_to_idle();
        let mut v = l.borrow().clone();
        v.push(format!(
            "drops={} dups={} delays={} now={}",
            sim.chans.dropped(ch),
            sim.chans.duplicated(ch),
            sim.chans.delayed(ch),
            sim.now()
        ));
        v
    }
    assert_eq!(run(), run());
}
