//! Property tests of the simulation engine: determinism and time
//! monotonicity under randomized thread scripts.


use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use whodunit_core::ids::LockMode;
use whodunit_sim::{ChannelFaults, FaultPlan, Msg, Op, SendVerdict, Sim, SimConfig, ThreadBody, ThreadCx, Wake};

/// A compact scripted op for generation.
#[derive(Clone, Copy, Debug)]
enum GOp {
    Compute(u32),
    LockUnlock(u8),
    Sleep(u32),
    SendRecvSelf,
}

fn gop() -> impl Strategy<Value = GOp> {
    prop_oneof![
        (1u32..2_000_000).prop_map(GOp::Compute),
        (0u8..3).prop_map(GOp::LockUnlock),
        (1u32..1_000_000).prop_map(GOp::Sleep),
        Just(GOp::SendRecvSelf),
    ]
}

struct Scripted {
    ops: VecDeque<GOp>,
    mid: Option<Op>,
    chan: whodunit_core::ids::ChanId,
    locks: Vec<whodunit_core::ids::LockId>,
    trace: Rc<RefCell<Vec<String>>>,
}

impl ThreadBody for Scripted {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        self.trace.borrow_mut().push(format!(
            "{}@{}:{}",
            cx.me(),
            cx.now(),
            match wake {
                Wake::Start => "s",
                Wake::Done => "d",
                Wake::ComputeDone => "c",
                Wake::LockAcquired { .. } => "l",
                Wake::CondWoken { .. } => "w",
                Wake::Received(_) => "r",
                Wake::Slept => "z",
                Wake::RecvTimedOut => "t",
                Wake::CondTimedOut { .. } => "x",
            }
        ));
        if let Some(op) = self.mid.take() {
            return op;
        }
        match self.ops.pop_front() {
            None => Op::Exit,
            Some(GOp::Compute(c)) => Op::Compute(c as u64),
            Some(GOp::LockUnlock(l)) => {
                let lock = self.locks[l as usize];
                self.mid = Some(Op::Unlock(lock));
                Op::Lock(lock, LockMode::Exclusive)
            }
            Some(GOp::Sleep(c)) => Op::Sleep(c as u64),
            Some(GOp::SendRecvSelf) => {
                self.mid = Some(Op::Recv(self.chan));
                Op::Send(self.chan, Msg::new(1u32, 50))
            }
        }
    }
}

fn run_once(scripts: &[Vec<GOp>]) -> (u64, Vec<String>) {
    let mut sim = Sim::new(SimConfig { quantum: 500_000 });
    let m = sim.add_machine(2);
    let p = sim.add_unprofiled_process("p");
    let locks = vec![sim.add_lock(), sim.add_lock(), sim.add_lock()];
    let trace = Rc::new(RefCell::new(Vec::new()));
    for (i, ops) in scripts.iter().enumerate() {
        let chan = sim.add_channel(1000, 2);
        sim.spawn(
            p,
            m,
            &format!("t{i}"),
            Box::new(Scripted {
                ops: ops.clone().into(),
                mid: None,
                chan,
                locks: locks.clone(),
                trace: trace.clone(),
            }),
        );
    }
    sim.run_to_idle();
    let t = trace.borrow().clone();
    (sim.now(), t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical inputs give bit-identical traces, whatever the script.
    #[test]
    fn engine_is_deterministic(
        scripts in proptest::collection::vec(
            proptest::collection::vec(gop(), 0..12),
            1..5
        )
    ) {
        let a = run_once(&scripts);
        let b = run_once(&scripts);
        prop_assert_eq!(a, b);
    }

    /// Wake timestamps never go backwards, and every spawned thread
    /// wakes at least once.
    #[test]
    fn time_is_monotonic_and_everyone_runs(
        scripts in proptest::collection::vec(
            proptest::collection::vec(gop(), 0..10),
            1..5
        )
    ) {
        let (_, trace) = run_once(&scripts);
        let mut last = 0u64;
        for e in &trace {
            let at: u64 = e.split('@').nth(1).unwrap().split(':').next().unwrap().parse().unwrap();
            prop_assert!(at >= last, "time went backwards in {trace:?}");
            last = at;
        }
        for i in 0..scripts.len() {
            prop_assert!(
                trace.iter().any(|e| e.starts_with(&format!("t{i}@"))),
                "thread {i} never ran"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fault-plan draw stability.
//
// `FaultPlan::send_verdict` consumes exactly three PRNG draws per send,
// whatever the channel's configuration. That fixed stride is what makes
// the chaos explorer's scenarios composable: adding or tuning faults on
// one channel must never re-align the random stream under another
// channel's verdicts. These properties pin that contract.

fn chan_faults() -> impl Strategy<Value = ChannelFaults> {
    (0u32..1_000_000, 0u32..1_000_000, 0u32..1_000_000, 1u64..100_000).prop_map(
        |(d, u, l, cycles)| ChannelFaults {
            drop_p: d as f64 / 1e6,
            dup_p: u as f64 / 1e6,
            delay_p: l as f64 / 1e6,
            delay_cycles: cycles,
        },
    )
}

/// Runs one plan over a fixed send sequence, returning the verdict each
/// send received, keyed by the channel it went to.
fn verdict_stream(
    seed: u64,
    per_chan: &[(u32, ChannelFaults)],
    sends: &[u32],
) -> Vec<(u32, SendVerdict)> {
    let mut plan = FaultPlan::new(seed);
    for &(c, f) in per_chan {
        plan = plan.channel_faults(whodunit_core::ids::ChanId(c), f);
    }
    sends
        .iter()
        .map(|&c| (c, plan.send_verdict(whodunit_core::ids::ChanId(c))))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Changing one channel's fault config never changes any *other*
    /// channel's verdict stream (same seed, same send sequence).
    #[test]
    fn tuning_one_channel_leaves_the_others_verdicts_alone(
        args in (
            (0u64..1_000_000, 0u32..4),
            proptest::collection::vec(0u32..4, 1..60),
            proptest::collection::vec(chan_faults(), 4..5),
            chan_faults(),
        )
    ) {
        let ((seed, perturbed), sends, base, replacement) = args;
        let cfg: Vec<(u32, ChannelFaults)> =
            base.iter().enumerate().map(|(i, f)| (i as u32, *f)).collect();
        let mut cfg2 = cfg.clone();
        cfg2[perturbed as usize].1 = replacement;
        let a = verdict_stream(seed, &cfg, &sends);
        let b = verdict_stream(seed, &cfg2, &sends);
        for ((ca, va), (cb, vb)) in a.iter().zip(b.iter()) {
            prop_assert_eq!(ca, cb);
            if *ca != perturbed {
                prop_assert_eq!(va, vb, "channel {} verdict moved when channel {} changed", ca, perturbed);
            }
        }
    }

    /// The verdict stream is a pure function of (seed, config, send
    /// sequence): replaying the same plan gives identical verdicts.
    #[test]
    fn verdict_stream_is_replayable(
        args in (
            0u64..1_000_000,
            proptest::collection::vec(0u32..4, 1..60),
            proptest::collection::vec(chan_faults(), 4..5),
        )
    ) {
        let (seed, sends, base) = args;
        let cfg: Vec<(u32, ChannelFaults)> =
            base.iter().enumerate().map(|(i, f)| (i as u32, *f)).collect();
        prop_assert_eq!(
            verdict_stream(seed, &cfg, &sends),
            verdict_stream(seed, &cfg, &sends)
        );
    }
}
