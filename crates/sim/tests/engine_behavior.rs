//! Behavioural tests of the simulation engine: ordering, fairness,
//! hook charging, and failure cases.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::{LockMode, ProcId, ThreadId};
use whodunit_core::rt::Runtime;
use whodunit_sim::{Msg, Op, Sim, SimConfig, ThreadBody, ThreadCx, Wake};

struct Script {
    ops: VecDeque<Op>,
    log: Rc<RefCell<Vec<String>>>,
}

impl Script {
    fn new(ops: Vec<Op>, log: &Rc<RefCell<Vec<String>>>) -> Box<Self> {
        Box::new(Script {
            ops: ops.into(),
            log: log.clone(),
        })
    }
}

impl ThreadBody for Script {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        let entry = match &wake {
            Wake::Start => "start".into(),
            Wake::Done => "done".into(),
            Wake::ComputeDone => format!("computed@{}", cx.now()),
            Wake::LockAcquired { waited } => format!("locked(w={waited})"),
            Wake::CondWoken { waited } => format!("woken(w={waited})"),
            Wake::Received(m) => format!("recv({})", m.peek::<u32>().copied().unwrap_or(0)),
            Wake::Slept => format!("slept@{}", cx.now()),
            Wake::RecvTimedOut => format!("recvtimeout@{}", cx.now()),
            Wake::CondTimedOut { waited } => format!("condtimeout(w={waited})"),
        };
        self.log.borrow_mut().push(format!("{}:{entry}", cx.me()));
        self.ops.pop_front().unwrap_or(Op::Exit)
    }
}

fn log() -> Rc<RefCell<Vec<String>>> {
    Rc::new(RefCell::new(Vec::new()))
}

#[test]
fn messages_on_one_channel_preserve_order() {
    let mut sim = Sim::default();
    let m = sim.add_machine(2);
    let p = sim.add_unprofiled_process("p");
    let ch = sim.add_channel(1000, 1);
    let l = log();
    sim.spawn(
        p,
        m,
        "tx",
        Script::new(
            vec![
                Op::Send(ch, Msg::new(1u32, 10)),
                Op::Send(ch, Msg::new(2u32, 10)),
                Op::Send(ch, Msg::new(3u32, 10)),
            ],
            &l,
        ),
    );
    sim.spawn(
        p,
        m,
        "rx",
        Script::new(vec![Op::Recv(ch), Op::Recv(ch), Op::Recv(ch)], &l),
    );
    sim.run_to_idle();
    let got: Vec<String> = l
        .borrow()
        .iter()
        .filter(|e| e.contains("recv"))
        .cloned()
        .collect();
    assert_eq!(got, vec!["t1:recv(1)", "t1:recv(2)", "t1:recv(3)"]);
}

#[test]
fn multiple_receivers_share_a_channel_fifo() {
    // MPMC work queue: waiting receivers are served in wait order.
    let mut sim = Sim::default();
    let m = sim.add_machine(4);
    let p = sim.add_unprofiled_process("p");
    let ch = sim.add_channel(0, 0);
    let l = log();
    for i in 0..3 {
        sim.spawn(p, m, &format!("rx{i}"), Script::new(vec![Op::Recv(ch)], &l));
    }
    sim.spawn(
        p,
        m,
        "tx",
        Script::new(
            vec![
                Op::Send(ch, Msg::new(10u32, 1)),
                Op::Send(ch, Msg::new(20u32, 1)),
                Op::Send(ch, Msg::new(30u32, 1)),
            ],
            &l,
        ),
    );
    sim.run_to_idle();
    let recvs: Vec<String> = l
        .borrow()
        .iter()
        .filter(|e| e.contains("recv"))
        .cloned()
        .collect();
    assert_eq!(recvs.len(), 3);
    // Receivers registered in spawn order get messages in send order.
    assert_eq!(recvs[0], "t0:recv(10)");
    assert_eq!(recvs[1], "t1:recv(20)");
    assert_eq!(recvs[2], "t2:recv(30)");
}

#[test]
fn round_robin_shares_a_core_fairly() {
    // Two equal computes on one core finish at (roughly) the same time,
    // not one after the other — the quantum interleaves them.
    let mut sim = Sim::new(SimConfig { quantum: 1000 });
    let m = sim.add_machine(1);
    let p = sim.add_unprofiled_process("p");
    let l = log();
    sim.spawn(p, m, "a", Script::new(vec![Op::Compute(10_000)], &l));
    sim.spawn(p, m, "b", Script::new(vec![Op::Compute(10_000)], &l));
    sim.run_to_idle();
    let done: Vec<u64> = l
        .borrow()
        .iter()
        .filter_map(|e| e.split('@').nth(1).map(|t| t.parse().unwrap()))
        .collect();
    assert_eq!(done.len(), 2);
    let gap = done[1] - done[0];
    assert!(gap <= 1000, "interleaved completion, gap {gap}");
    assert_eq!(done[1], 20_000);
}

#[test]
fn pending_overhead_is_charged_on_next_compute() {
    struct Charger {
        phase: u8,
    }
    impl ThreadBody for Charger {
        fn resume(&mut self, cx: &mut ThreadCx<'_>, _wake: Wake) -> Op {
            match self.phase {
                0 => {
                    self.phase = 1;
                    cx.charge(5_000);
                    Op::Compute(1_000)
                }
                _ => Op::Exit,
            }
        }
    }
    let mut sim = Sim::default();
    let m = sim.add_machine(1);
    let p = sim.add_unprofiled_process("p");
    sim.spawn(p, m, "t", Box::new(Charger { phase: 0 }));
    sim.run_to_idle();
    assert_eq!(sim.now(), 6_000, "compute extended by the charged overhead");
}

#[test]
fn gprof_counts_calls_through_the_engine() {
    use whodunit_baselines::GprofRuntime;
    let mut sim = Sim::default();
    let m = sim.add_machine(1);
    let rt = Rc::new(RefCell::new(GprofRuntime::default()));
    let p = sim.add_process("svc", rt.clone());

    struct Body {
        f: FrameId,
        inner: FrameId,
        phase: u8,
    }
    impl ThreadBody for Body {
        fn resume(&mut self, cx: &mut ThreadCx<'_>, _wake: Wake) -> Op {
            match self.phase {
                0 => {
                    self.phase = 1;
                    cx.push_frame(self.f);
                    cx.count_calls(self.inner, 500);
                    Op::Compute(1_000_000)
                }
                _ => {
                    cx.pop_frame();
                    Op::Exit
                }
            }
        }
    }
    let f = sim.frame("handler");
    let inner = sim.frame("inner");
    sim.spawn(p, m, "t", Box::new(Body { f, inner, phase: 0 }));
    sim.run_to_idle();
    let g = rt.borrow();
    assert_eq!(g.call_count(), 501, "handler + 500 batched internal calls");
    assert_eq!(g.arc(Some(f), inner), 500);
    assert!(g.overhead_cycles() > 0);
    // The mcount overhead extended virtual time beyond the raw compute.
    assert!(sim.now() > 1_000_000);
}

#[test]
fn exited_threads_stay_dead() {
    let mut sim = Sim::default();
    let m = sim.add_machine(1);
    let p = sim.add_unprofiled_process("p");
    let l = log();
    sim.spawn(p, m, "t", Script::new(vec![], &l));
    sim.run_to_idle();
    assert_eq!(l.borrow().len(), 1, "resumed exactly once, then exited");
}

#[test]
fn notify_without_waiters_is_a_noop() {
    let mut sim = Sim::default();
    let m = sim.add_machine(1);
    let p = sim.add_unprofiled_process("p");
    let cv = sim.add_cond();
    let l = log();
    sim.spawn(
        p,
        m,
        "t",
        Script::new(vec![Op::Notify(cv, true), Op::Compute(10)], &l),
    );
    sim.run_to_idle();
    assert!(l.borrow().iter().any(|e| e.contains("computed")));
}

#[test]
fn shared_then_exclusive_wait_ordering() {
    let mut sim = Sim::default();
    let m = sim.add_machine(4);
    let p = sim.add_unprofiled_process("p");
    let lk = sim.add_lock();
    let l = log();
    // Two readers hold; a writer waits; a later reader queues behind
    // the writer (FIFO).
    for i in 0..2 {
        sim.spawn(
            p,
            m,
            &format!("r{i}"),
            Script::new(
                vec![
                    Op::Lock(lk, LockMode::Shared),
                    Op::Compute(10_000),
                    Op::Unlock(lk),
                ],
                &l,
            ),
        );
    }
    sim.spawn(
        p,
        m,
        "w",
        Script::new(
            vec![
                Op::Lock(lk, LockMode::Exclusive),
                Op::Compute(1_000),
                Op::Unlock(lk),
            ],
            &l,
        ),
    );
    sim.spawn(
        p,
        m,
        "late",
        Script::new(vec![Op::Lock(lk, LockMode::Shared), Op::Unlock(lk)], &l),
    );
    sim.run_to_idle();
    let order: Vec<String> = l
        .borrow()
        .iter()
        .filter(|e| e.contains("locked"))
        .cloned()
        .collect();
    // Writer (t2) acquires before the late reader (t3).
    let wi = order.iter().position(|e| e.starts_with("t2:")).unwrap();
    let li = order.iter().position(|e| e.starts_with("t3:")).unwrap();
    assert!(wi < li, "order: {order:?}");
}

#[test]
fn whodunit_send_adds_piggyback_bytes_to_transfer() {
    use whodunit_core::profiler::{Whodunit, WhodunitConfig};
    let mut sim = Sim::default();
    let m = sim.add_machine(1);
    let frames = sim.frames().clone();
    let w = Rc::new(RefCell::new(Whodunit::new(
        WhodunitConfig::new(ProcId(0), "s"),
        frames,
    )));
    let p = sim.add_process("s", w.clone());
    let pu = sim.add_unprofiled_process("u");
    // 1 cycle per byte, zero latency: delivery time == bytes.
    let ch = sim.add_channel(0, 1);
    let l = log();
    sim.spawn(
        p,
        m,
        "tx",
        Script::new(vec![Op::Send(ch, Msg::new(9u32, 100))], &l),
    );
    sim.spawn(pu, m, "rx", Script::new(vec![Op::Recv(ch)], &l));
    sim.run_to_idle();
    // 100 payload bytes + 4 synopsis bytes.
    assert_eq!(sim.now(), 104, "piggyback bytes delay the message");
    assert_eq!(w.borrow().ipc().piggyback_bytes, 4);
    let _ = ThreadId(0);
}
