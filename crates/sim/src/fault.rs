//! Deterministic fault injection (drops, duplicates, delays, machine
//! slowdowns, process crashes).
//!
//! A [`FaultPlan`] is built before the run from a seed plus declarative
//! fault specs. During the run the engine consults it at exactly two
//! points — once per [`crate::Op::Send`] (the message verdict) and once
//! per [`crate::Op::Compute`] (the machine slowdown factor) — and draws
//! from an internal splitmix64 stream, so two runs with the same plan
//! and workload take bit-identical schedules. Process crashes are not
//! random at all: they are scheduled up front as ordinary events at a
//! fixed virtual time.
//!
//! The plan never touches profiling state. Profilers keep recording the
//! application-requested compute cycles even inside a slowdown window,
//! which is what makes profile-mass conservation checkable under
//! faults: the per-context cycle totals still sum to the per-process
//! ground truth ([`crate::Sim::proc_compute_cycles`]).

use crate::time::{Cycles, MachineId};
use std::collections::HashMap;
use whodunit_core::ids::{ChanId, ProcId};

/// Per-channel fault probabilities.
///
/// All probabilities are in `[0, 1]`; the default is fault-free.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChannelFaults {
    /// Probability a sent message is silently dropped.
    pub drop_p: f64,
    /// Probability a sent message is delivered twice (requires a
    /// [`crate::Msg::replayable`] payload; otherwise delivered once).
    pub dup_p: f64,
    /// Probability a sent message is delayed by [`Self::delay_cycles`]
    /// extra cycles.
    pub delay_p: f64,
    /// Extra delivery delay applied on a delay fault.
    pub delay_cycles: Cycles,
}

/// A network partition window on one channel: every message sent on
/// the channel inside `[from, until)` is lost, deterministically and
/// regardless of the channel's probabilistic fault rates. Collector
/// federation links use these to model a leaf or region dropping off
/// the aggregation tree for a while.
#[derive(Clone, Copy, Debug)]
pub struct Partition {
    /// Affected channel.
    pub chan: u32,
    /// Window start (inclusive, virtual time).
    pub from: Cycles,
    /// Window end (exclusive).
    pub until: Cycles,
}

/// A temporary compute slowdown on one machine.
#[derive(Clone, Copy, Debug)]
pub struct Slowdown {
    /// Affected machine.
    pub machine: MachineId,
    /// Window start (inclusive, virtual time).
    pub from: Cycles,
    /// Window end (exclusive).
    pub until: Cycles,
    /// Compute multiplier (≥ 1) for bursts started inside the window.
    pub factor: u64,
}

/// Outcome of consulting the plan for one send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendVerdict {
    /// Delivery copies: 0 = dropped, 1 = normal, 2 = duplicated.
    pub copies: u32,
    /// Extra delivery delay on top of the channel's own.
    pub extra_delay: Cycles,
}

impl Default for SendVerdict {
    fn default() -> Self {
        SendVerdict {
            copies: 1,
            extra_delay: 0,
        }
    }
}

/// A seeded, deterministic fault plan.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    state: u64,
    default_faults: ChannelFaults,
    per_chan: HashMap<u32, ChannelFaults>,
    slowdowns: Vec<Slowdown>,
    partitions: Vec<Partition>,
    crashes: Vec<(ProcId, Cycles)>,
}

impl FaultPlan {
    /// Creates a fault-free plan with the given random seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            state: seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the fault probabilities for channels without an override.
    pub fn default_channel_faults(mut self, f: ChannelFaults) -> Self {
        self.default_faults = f;
        self
    }

    /// Sets the fault probabilities for one channel.
    pub fn channel_faults(mut self, chan: ChanId, f: ChannelFaults) -> Self {
        self.per_chan.insert(chan.0, f);
        self
    }

    /// Adds a machine slowdown window.
    pub fn slowdown(mut self, machine: MachineId, from: Cycles, until: Cycles, factor: u64) -> Self {
        self.slowdowns.push(Slowdown {
            machine,
            from,
            until,
            factor,
        });
        self
    }

    /// Partitions `chan` for virtual times in `[from, until)`: every
    /// send in the window is lost (no draw consumed beyond the usual
    /// three — see [`FaultPlan::send_verdict_at`]).
    pub fn partition(mut self, chan: ChanId, from: Cycles, until: Cycles) -> Self {
        self.partitions.push(Partition {
            chan: chan.0,
            from,
            until,
        });
        self
    }

    /// Whether `chan` is inside a partition window at `now`.
    pub fn is_partitioned(&self, chan: ChanId, now: Cycles) -> bool {
        self.partitions
            .iter()
            .any(|p| p.chan == chan.0 && p.from <= now && now < p.until)
    }

    /// Crashes every thread of `proc` at virtual time `at`.
    pub fn crash(mut self, proc: ProcId, at: Cycles) -> Self {
        self.crashes.push((proc, at));
        self
    }

    /// The scheduled crashes, in insertion order.
    pub fn crashes(&self) -> &[(ProcId, Cycles)] {
        &self.crashes
    }

    /// Compute multiplier for a burst starting on `machine` at `now`.
    ///
    /// Overlapping windows take the largest factor; outside every
    /// window the factor is 1.
    pub fn slowdown_factor(&self, machine: MachineId, now: Cycles) -> u64 {
        self.slowdowns
            .iter()
            .filter(|s| s.machine == machine && s.from <= now && now < s.until)
            .map(|s| s.factor.max(1))
            .max()
            .unwrap_or(1)
    }

    /// Draws the fate of one message sent on `chan`.
    ///
    /// Always consumes exactly three draws from the stream, so the
    /// stream position is a pure function of the send sequence.
    pub fn send_verdict(&mut self, chan: ChanId) -> SendVerdict {
        let f = *self.per_chan.get(&chan.0).unwrap_or(&self.default_faults);
        let (drop_roll, dup_roll, delay_roll) = (self.next_f64(), self.next_f64(), self.next_f64());
        if drop_roll < f.drop_p {
            return SendVerdict {
                copies: 0,
                extra_delay: 0,
            };
        }
        SendVerdict {
            copies: if dup_roll < f.dup_p { 2 } else { 1 },
            extra_delay: if delay_roll < f.delay_p {
                f.delay_cycles
            } else {
                0
            },
        }
    }

    /// [`FaultPlan::send_verdict`] plus partition windows: the fate of
    /// one message sent on `chan` at virtual time `now`.
    ///
    /// Consumes exactly the same three draws as `send_verdict` whether
    /// or not a partition applies, so adding or removing partition
    /// windows never shifts the random stream consumed by the
    /// probabilistic faults — a plan's drop/dup/delay schedule is
    /// bit-stable under partition edits.
    pub fn send_verdict_at(&mut self, chan: ChanId, now: Cycles) -> SendVerdict {
        let v = self.send_verdict(chan);
        if self.is_partitioned(chan, now) {
            return SendVerdict {
                copies: 0,
                extra_delay: 0,
            };
        }
        v
    }

    /// splitmix64 — small, seedable, and good enough for fault rolls.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_never_faults() {
        let mut p = FaultPlan::new(42);
        for _ in 0..100 {
            assert_eq!(p.send_verdict(ChanId(0)), SendVerdict::default());
        }
    }

    #[test]
    fn same_seed_same_verdicts() {
        let faults = ChannelFaults {
            drop_p: 0.3,
            dup_p: 0.3,
            delay_p: 0.3,
            delay_cycles: 1000,
        };
        let mut a = FaultPlan::new(7).default_channel_faults(faults);
        let mut b = FaultPlan::new(7).default_channel_faults(faults);
        for _ in 0..200 {
            assert_eq!(a.send_verdict(ChanId(3)), b.send_verdict(ChanId(3)));
        }
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let mut p = FaultPlan::new(1).channel_faults(
            ChanId(5),
            ChannelFaults {
                drop_p: 1.0,
                ..ChannelFaults::default()
            },
        );
        for _ in 0..50 {
            assert_eq!(p.send_verdict(ChanId(5)).copies, 0);
            // Other channels use the (fault-free) default.
            assert_eq!(p.send_verdict(ChanId(6)), SendVerdict::default());
        }
    }

    #[test]
    fn partition_window_drops_without_shifting_the_stream() {
        let faults = ChannelFaults {
            drop_p: 0.25,
            dup_p: 0.25,
            delay_p: 0.25,
            delay_cycles: 500,
        };
        let mut plain = FaultPlan::new(11).default_channel_faults(faults);
        let mut parted = FaultPlan::new(11)
            .default_channel_faults(faults)
            .partition(ChanId(2), 1_000, 2_000);
        for i in 0..200u64 {
            let now = i * 25;
            let a = plain.send_verdict_at(ChanId(2), now);
            let b = parted.send_verdict_at(ChanId(2), now);
            if (1_000..2_000).contains(&now) {
                assert_eq!(b.copies, 0, "sends inside the window are lost");
            } else {
                // Outside the window the verdicts are bit-identical:
                // partition edits never shift the draw stream.
                assert_eq!(a, b, "draw stream shifted at t={now}");
            }
        }
        assert!(parted.is_partitioned(ChanId(2), 1_000));
        assert!(!parted.is_partitioned(ChanId(2), 2_000));
        assert!(!parted.is_partitioned(ChanId(3), 1_500));
    }

    #[test]
    fn slowdown_window_bounds() {
        let p = FaultPlan::new(0).slowdown(MachineId(1), 100, 200, 4);
        assert_eq!(p.slowdown_factor(MachineId(1), 99), 1);
        assert_eq!(p.slowdown_factor(MachineId(1), 100), 4);
        assert_eq!(p.slowdown_factor(MachineId(1), 199), 4);
        assert_eq!(p.slowdown_factor(MachineId(1), 200), 1);
        assert_eq!(p.slowdown_factor(MachineId(0), 150), 1);
    }

    #[test]
    fn overlapping_slowdowns_take_max() {
        let p = FaultPlan::new(0)
            .slowdown(MachineId(0), 0, 1000, 2)
            .slowdown(MachineId(0), 500, 600, 8);
        assert_eq!(p.slowdown_factor(MachineId(0), 550), 8);
        assert_eq!(p.slowdown_factor(MachineId(0), 700), 2);
    }
}
