//! Machines and CPU scheduling (pure logic).
//!
//! Each machine has `cores` CPUs and a round-robin run queue of threads
//! with outstanding compute work. The engine asks for dispatch
//! decisions; a dispatched thread runs one quantum (or its remaining
//! work, whichever is smaller) and either re-queues or completes. Under
//! saturation, throughput flattens at the machine's aggregate core
//! capacity — this queueing behaviour is what produces the knees in
//! Figure 12.

use crate::time::{Cycles, MachineId};
use std::collections::VecDeque;
use whodunit_core::ids::ThreadId;

#[derive(Debug)]
struct MachineState {
    cores: u32,
    busy: u32,
    runq: VecDeque<(ThreadId, Cycles)>,
    busy_cycles: u64,
}

/// All machines of a simulation.
#[derive(Debug, Default)]
pub struct MachineTable {
    machines: Vec<MachineState>,
}

/// A dispatch decision: run `thread` for `slice` cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dispatch {
    /// The thread to run.
    pub thread: ThreadId,
    /// Slice length.
    pub slice: Cycles,
    /// Work remaining after the slice.
    pub remaining: Cycles,
}

impl MachineTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a machine with `cores` CPUs.
    pub fn add(&mut self, cores: u32) -> MachineId {
        assert!(cores > 0, "a machine needs at least one core");
        self.machines.push(MachineState {
            cores,
            busy: 0,
            runq: VecDeque::new(),
            busy_cycles: 0,
        });
        MachineId((self.machines.len() - 1) as u32)
    }

    /// Queues `work` cycles of compute for `thread`.
    pub fn enqueue(&mut self, m: MachineId, thread: ThreadId, work: Cycles) {
        self.machines[m.0 as usize].runq.push_back((thread, work));
    }

    /// Dispatches as many threads as there are free cores; each entry
    /// must be followed by [`MachineTable::complete_slice`] when its
    /// slice ends.
    pub fn dispatch(&mut self, m: MachineId, quantum: Cycles) -> Vec<Dispatch> {
        let st = &mut self.machines[m.0 as usize];
        let mut out = Vec::new();
        while st.busy < st.cores {
            let Some((t, work)) = st.runq.pop_front() else {
                break;
            };
            let slice = work.min(quantum).max(1);
            st.busy += 1;
            st.busy_cycles += slice;
            out.push(Dispatch {
                thread: t,
                slice,
                remaining: work.saturating_sub(slice),
            });
        }
        out
    }

    /// A slice ended for a thread that no longer exists (crashed
    /// mid-burst): frees the core without re-queueing the remainder.
    pub fn abandon_slice(&mut self, m: MachineId, _d: Dispatch) {
        self.machines[m.0 as usize].busy -= 1;
    }

    /// A slice ended; re-queues the thread if work remains. Returns
    /// `true` if the thread's compute is complete.
    pub fn complete_slice(&mut self, m: MachineId, d: Dispatch) -> bool {
        let st = &mut self.machines[m.0 as usize];
        st.busy -= 1;
        if d.remaining > 0 {
            st.runq.push_back((d.thread, d.remaining));
            false
        } else {
            true
        }
    }

    /// Drops `t`'s queued — not yet dispatched — work from every run
    /// queue (process crash). An in-flight slice is unaffected: its
    /// `QuantumEnd` still fires and frees the core, but a crashed
    /// thread is never resumed or re-queued afterwards.
    pub fn purge_thread(&mut self, t: ThreadId) {
        for st in &mut self.machines {
            st.runq.retain(|&(q, _)| q != t);
        }
    }

    /// Total cycles this machine's cores have been busy.
    pub fn busy_cycles(&self, m: MachineId) -> u64 {
        self.machines[m.0 as usize].busy_cycles
    }

    /// Core count.
    pub fn cores(&self, m: MachineId) -> u32 {
        self.machines[m.0 as usize].cores
    }

    /// Current run-queue length (excluding running threads).
    pub fn queue_len(&self, m: MachineId) -> usize {
        self.machines[m.0 as usize].runq.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_round_robin() {
        let mut mt = MachineTable::new();
        let m = mt.add(1);
        mt.enqueue(m, ThreadId(1), 250);
        mt.enqueue(m, ThreadId(2), 90);
        let d = mt.dispatch(m, 100);
        assert_eq!(d.len(), 1, "one core, one dispatch");
        assert_eq!(
            d[0],
            Dispatch {
                thread: ThreadId(1),
                slice: 100,
                remaining: 150
            }
        );
        // No further dispatch while the core is busy.
        assert!(mt.dispatch(m, 100).is_empty());
        assert!(!mt.complete_slice(m, d[0]));
        // Round robin: thread 2 goes next.
        let d = mt.dispatch(m, 100);
        assert_eq!(d[0].thread, ThreadId(2));
        assert_eq!(d[0].slice, 90);
        assert!(mt.complete_slice(m, d[0]));
    }

    #[test]
    fn multicore_dispatches_in_parallel() {
        let mut mt = MachineTable::new();
        let m = mt.add(2);
        mt.enqueue(m, ThreadId(1), 50);
        mt.enqueue(m, ThreadId(2), 50);
        mt.enqueue(m, ThreadId(3), 50);
        let d = mt.dispatch(m, 100);
        assert_eq!(d.len(), 2);
        assert_eq!(mt.queue_len(m), 1);
    }

    #[test]
    fn zero_work_still_runs_one_cycle() {
        // Degenerate compute bursts keep the event loop moving.
        let mut mt = MachineTable::new();
        let m = mt.add(1);
        mt.enqueue(m, ThreadId(1), 0);
        let d = mt.dispatch(m, 100);
        assert_eq!(d[0].slice, 1);
    }

    #[test]
    fn busy_cycles_accumulate() {
        let mut mt = MachineTable::new();
        let m = mt.add(1);
        mt.enqueue(m, ThreadId(1), 300);
        let d = mt.dispatch(m, 100);
        mt.complete_slice(m, d[0]);
        let d = mt.dispatch(m, 100);
        mt.complete_slice(m, d[0]);
        assert_eq!(mt.busy_cycles(m), 200);
    }
}
