//! Chaos scenario sampling and shrinking.
//!
//! The chaos explorer drives the system through many *distinct legal
//! executions* of the same workload: each seed deterministically
//! samples one scenario — a [`crate::SchedulePolicy`] for ready-queue
//! tie-breaking plus a fault plan (drops, duplicates, delays, a crash,
//! a slowdown window) — as a pure-data
//! [`whodunit_core::repro::ChaosRepro`]. The harness that owns the
//! concrete stack (e.g. the TPC-W assembly in `whodunit-apps`)
//! materializes the repro into a real `Sim` + `FaultPlan`, runs it, and
//! checks the [`whodunit_core::oracle`]s.
//!
//! When a scenario fails, [`shrink`] greedily minimizes it: drop fault
//! entries one at a time, halve the shrinkable workload knobs, and keep
//! any change under which the caller-supplied `still_fails` predicate
//! holds — looping to a fixpoint. Because a repro is pure data, every
//! candidate is a complete scenario and the minimized repro replays
//! bit-identically.

use crate::time::Cycles;
use whodunit_core::repro::{ChaosRepro, FaultEntry};

/// The sampling space: what a scenario is allowed to touch.
#[derive(Clone, Debug, Default)]
pub struct ChaosSpace {
    /// Channel role names eligible for drop/dup/delay entries.
    pub channels: Vec<String>,
    /// Process role names eligible for a crash entry.
    pub crashable: Vec<String>,
    /// Machine role names eligible for a slowdown window.
    pub slowable: Vec<String>,
    /// The run horizon in cycles; crash times and slowdown windows are
    /// sampled inside it.
    pub horizon: Cycles,
    /// Upper bound on sampled fault probabilities (parts per million).
    pub max_fault_ppm: u64,
    /// Upper bound on sampled per-message delays (cycles).
    pub max_delay: Cycles,
}

/// splitmix64, matching the fault plan's stream generator.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[1, max]` (never zero — a zero-probability or
/// zero-length fault entry would be dead weight the shrinker has to
/// discover and remove).
fn draw(state: &mut u64, max: u64) -> u64 {
    if max == 0 {
        return 0;
    }
    1 + next_u64(state) % max
}

/// Samples the scenario for `seed`: a schedule policy plus fault-plan
/// entries over `space`, carrying `workload` along verbatim. The same
/// `(seed, space, workload)` always yields the same repro.
pub fn sample_scenario(seed: u64, space: &ChaosSpace, workload: &[(String, u64)]) -> ChaosRepro {
    let mut st = seed ^ 0xC4A0_5C4A_05C4_A05C;

    // Schedule policy: keep FIFO in the mix so the historical schedule
    // stays covered, but bias toward the adversarial ones.
    let policy = match next_u64(&mut st) % 8 {
        0 => "fifo".to_owned(),
        1 | 2 => "lifo".to_owned(),
        3..=5 => format!("random:{}", next_u64(&mut st)),
        // Perturbation probability up to 50%: mostly-FIFO with seeded
        // inversions, the schedule most likely to hide ordering bugs.
        _ => format!(
            "perturb:{}:{}",
            next_u64(&mut st),
            draw(&mut st, 500_000)
        ),
    };

    let mut faults = Vec::new();
    for chan in &space.channels {
        // Each fault class independently present with probability 1/2.
        if next_u64(&mut st).is_multiple_of(2) {
            faults.push(FaultEntry::Drop {
                chan: chan.clone(),
                ppm: draw(&mut st, space.max_fault_ppm),
            });
        }
        if next_u64(&mut st).is_multiple_of(2) {
            faults.push(FaultEntry::Dup {
                chan: chan.clone(),
                ppm: draw(&mut st, space.max_fault_ppm),
            });
        }
        if next_u64(&mut st).is_multiple_of(2) {
            faults.push(FaultEntry::Delay {
                chan: chan.clone(),
                ppm: draw(&mut st, space.max_fault_ppm),
                cycles: draw(&mut st, space.max_delay),
            });
        }
    }
    for proc in &space.crashable {
        if next_u64(&mut st).is_multiple_of(3) {
            // Crash in [30%, 90%] of the horizon: late enough to have
            // profiled something, early enough to matter.
            let lo = space.horizon / 10 * 3;
            let hi = space.horizon / 10 * 9;
            faults.push(FaultEntry::Crash {
                proc: proc.clone(),
                at: lo + draw(&mut st, hi.saturating_sub(lo).max(1)),
            });
        }
    }
    for machine in &space.slowable {
        if next_u64(&mut st).is_multiple_of(3) {
            let from = draw(&mut st, space.horizon / 2);
            let len = draw(&mut st, space.horizon / 4);
            faults.push(FaultEntry::Slowdown {
                machine: machine.clone(),
                from,
                until: from + len,
                factor: 1 + draw(&mut st, 7),
            });
        }
    }

    ChaosRepro {
        seed,
        policy,
        workload: workload.to_vec(),
        faults,
        violation: None,
        window: None,
    }
}

/// Greedily shrinks a failing repro while `still_fails` holds.
///
/// Two moves, applied to a fixpoint:
/// 1. remove each fault entry (smallest plan that still fails);
/// 2. halve each workload knob named in `shrinkable` (floor 1).
///
/// `still_fails` receives complete candidate scenarios and must return
/// whether the run still violates an oracle; the last candidate for
/// which it returned `true` is the result. The input repro itself is
/// assumed failing and is returned unchanged if nothing smaller fails.
pub fn shrink(
    repro: &ChaosRepro,
    shrinkable: &[&str],
    mut still_fails: impl FnMut(&ChaosRepro) -> bool,
) -> ChaosRepro {
    let mut best = repro.clone();
    loop {
        let mut progressed = false;

        // Move 1: drop fault entries, one at a time, re-scanning from
        // the front after each success (indices shift).
        let mut i = 0;
        while i < best.faults.len() {
            let mut candidate = best.clone();
            candidate.faults.remove(i);
            if still_fails(&candidate) {
                best = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Move 2: halve shrinkable knobs.
        for &name in shrinkable {
            while let Some(v) = best.knob(name) {
                if v <= 1 {
                    break;
                }
                let mut candidate = best.clone();
                candidate.set_knob(name, v / 2);
                if still_fails(&candidate) {
                    best = candidate;
                    progressed = true;
                } else {
                    break;
                }
            }
        }

        if !progressed {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ChaosSpace {
        ChaosSpace {
            channels: vec!["db".into(), "front".into()],
            crashable: vec!["mysql".into()],
            slowable: vec!["mysql".into()],
            horizon: 1_000_000,
            max_fault_ppm: 200_000,
            max_delay: 10_000,
        }
    }

    fn knobs() -> Vec<(String, u64)> {
        vec![("clients".into(), 16), ("livelock_pair".into(), 0)]
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = sample_scenario(42, &space(), &knobs());
        let b = sample_scenario(42, &space(), &knobs());
        assert_eq!(a, b);
        assert_eq!(a.seed, 42);
        assert_eq!(a.workload, knobs());
    }

    #[test]
    fn distinct_seeds_cover_the_space() {
        let mut policies = std::collections::HashSet::new();
        let mut saw_drop = false;
        let mut saw_crash = false;
        let mut saw_slow = false;
        for seed in 0..64 {
            let r = sample_scenario(seed, &space(), &knobs());
            policies.insert(r.policy.split(':').next().unwrap().to_owned());
            for f in &r.faults {
                match f {
                    FaultEntry::Drop { ppm, .. } => {
                        saw_drop = true;
                        assert!(*ppm >= 1 && *ppm <= 200_000);
                    }
                    FaultEntry::Crash { at, .. } => {
                        saw_crash = true;
                        assert!(*at >= 300_000 && *at <= 900_000, "crash at {at}");
                    }
                    FaultEntry::Slowdown {
                        from,
                        until,
                        factor,
                        ..
                    } => {
                        saw_slow = true;
                        assert!(until > from && *factor >= 2);
                    }
                    _ => {}
                }
            }
        }
        assert!(policies.len() >= 3, "policy kinds seen: {policies:?}");
        assert!(saw_drop && saw_crash && saw_slow);
    }

    #[test]
    fn every_policy_string_parses() {
        use crate::sched::SchedulePolicy;
        for seed in 0..256 {
            let r = sample_scenario(seed, &space(), &knobs());
            r.policy
                .parse::<SchedulePolicy>()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn shrink_removes_irrelevant_faults_and_halves_knobs() {
        let full = sample_scenario(7, &space(), &knobs());
        assert!(!full.faults.is_empty(), "seed 7 sampled no faults");
        // "Failure" depends only on having ≥ 4 clients; faults are noise.
        let fails = |r: &ChaosRepro| r.knob("clients").unwrap_or(0) >= 4;
        assert!(fails(&full));
        let small = shrink(&full, &["clients"], fails);
        assert!(small.faults.is_empty(), "all fault entries were noise");
        assert_eq!(small.knob("clients"), Some(4));
        assert!(fails(&small), "shrunk repro must still fail");
    }

    #[test]
    fn shrink_keeps_the_load_bearing_fault() {
        let mut repro = sample_scenario(9, &space(), &knobs());
        repro.faults = vec![
            FaultEntry::Drop {
                chan: "db".into(),
                ppm: 50_000,
            },
            FaultEntry::Crash {
                proc: "mysql".into(),
                at: 500_000,
            },
            FaultEntry::Dup {
                chan: "front".into(),
                ppm: 9,
            },
        ];
        // Only the crash matters.
        let fails =
            |r: &ChaosRepro| r.faults.iter().any(|f| matches!(f, FaultEntry::Crash { .. }));
        let small = shrink(&repro, &["clients"], fails);
        assert_eq!(small.faults.len(), 1);
        assert!(matches!(small.faults[0], FaultEntry::Crash { .. }));
        assert_eq!(small.knob("clients"), Some(1), "knob shrunk to floor");
    }

    #[test]
    fn shrink_of_unshrinkable_repro_is_identity() {
        let repro = sample_scenario(11, &space(), &knobs());
        // Any change at all "fixes" it: nothing shrinks.
        let orig = repro.clone();
        let small = shrink(&repro, &["clients"], |r| *r == orig);
        assert_eq!(small, orig);
    }
}
