//! Deterministic discrete-event simulation substrate for multi-tier
//! applications.
//!
//! The paper instruments real processes on a cluster; this crate is the
//! equivalent substrate in virtual time. It models:
//!
//! - **Machines** with a fixed number of cores and round-robin
//!   scheduling of compute bursts ([`machine`]).
//! - **Threads** written as resumable state machines ([`ThreadBody`]):
//!   each resume yields one operation — compute, lock/unlock, condition
//!   wait/notify, channel send/receive, sleep ([`Op`]).
//! - **Locks** with shared/exclusive modes, FIFO granting, and
//!   wait-time measurement ([`lock`]) — the crosstalk hook points.
//! - **Channels** (sockets/pipes) with latency + bandwidth delay and
//!   synopsis piggybacking ([`chan`]) — the §5 hook points.
//! - **Processes**: groups of threads sharing one profiling
//!   [`whodunit_core::rt::Runtime`]; every substrate action calls the
//!   corresponding hook and charges the returned overhead cycles to the
//!   executing thread, which is how profiling overhead becomes
//!   measurable (Table 2, §9).
//! - **SEDA stages** ([`seda`]): reusable stage-queue worker bodies
//!   implementing Figure 5's instrumented stage loop.
//! - **Fault injection** ([`fault`]): seeded, deterministic message
//!   drop/duplication/delay, machine slowdown windows, and process
//!   crashes at a virtual time — the substrate for studying what a
//!   transactional profile looks like when the system degrades.
//! - **Schedule policies** ([`sched`]): pluggable, seeded ready-queue
//!   tie-breaking (FIFO/LIFO/random/perturbation), so every seed is a
//!   distinct legal interleaving of the same workload.
//! - **Chaos exploration** ([`explore`]): sampling random
//!   (schedule, fault-plan) scenarios and greedily shrinking failing
//!   ones to minimal repro files.
//!
//! Everything is single-threaded and seeded: a simulation is a pure
//! function of its inputs.

#![warn(missing_docs)]

pub mod chan;
pub mod engine;
pub mod explore;
pub mod fault;
pub mod lock;
pub mod machine;
pub mod sched;
pub mod seda;
pub mod time;

pub use chan::Msg;
pub use engine::{
    DeadlockLink, DeadlockReport, LivelockReport, Op, RunOutcome, Sim, SimConfig, ThreadBody,
    ThreadCx, Wake,
};
pub use explore::{sample_scenario, shrink, ChaosSpace};
pub use fault::{ChannelFaults, FaultPlan, SendVerdict, Slowdown};
pub use sched::{SchedulePolicy, Scheduler};
pub use time::{Cycles, MachineId};
