//! Lock and condition-variable state (pure logic, no scheduling).
//!
//! Locks support shared/exclusive modes with strict FIFO granting:
//! a request is granted immediately only if it is compatible with the
//! current holders *and* no one is queued ahead of it; releases grant
//! the longest-waiting compatible batch (one exclusive waiter, or every
//! leading shared waiter). FIFO prevents writer starvation, which
//! matters for the TPC-W AdminConfirm experiments (§8.4): the writer
//! must eventually get the MyISAM-style table lock through the reader
//! stream.

use crate::time::{CondId, Cycles};
use std::collections::VecDeque;
use whodunit_core::context::CtxId;
use whodunit_core::ids::{LockId, LockMode, ThreadId};

/// A queued lock waiter.
#[derive(Clone, Copy, Debug)]
pub struct Waiter {
    /// The waiting thread.
    pub thread: ThreadId,
    /// Requested mode.
    pub mode: LockMode,
    /// When the wait began (or when the condition was notified, for
    /// condition re-acquisition).
    pub since: Cycles,
    /// Crosstalk holder hint captured when the wait began (§7.5).
    pub hint: Option<CtxId>,
    /// Whether this acquisition re-takes the lock after a condition
    /// wait (its grant resumes the thread with [`crate::Wake::CondWoken`]).
    pub from_cond: bool,
    /// Whether the condition wait ended by timeout rather than notify
    /// (its grant resumes the thread with [`crate::Wake::CondTimedOut`]).
    pub timed_out: bool,
}

#[derive(Debug, Default)]
struct LockState {
    exclusive: Option<ThreadId>,
    shared: Vec<ThreadId>,
    waiters: VecDeque<Waiter>,
}

impl LockState {
    fn is_free(&self) -> bool {
        self.exclusive.is_none() && self.shared.is_empty()
    }

    fn compatible(&self, mode: LockMode) -> bool {
        match mode {
            LockMode::Exclusive => self.is_free(),
            LockMode::Shared => self.exclusive.is_none(),
        }
    }

    fn hold(&mut self, t: ThreadId, mode: LockMode) {
        match mode {
            LockMode::Exclusive => self.exclusive = Some(t),
            LockMode::Shared => self.shared.push(t),
        }
    }
}

#[derive(Debug, Default)]
struct CondState {
    waiters: VecDeque<(ThreadId, LockId)>,
}

/// The result of a lock request.
#[derive(Debug, PartialEq, Eq)]
pub enum Acquire {
    /// Granted immediately (no wait).
    Granted,
    /// Queued behind current holders/waiters.
    Queued,
}

/// All locks and condition variables of a simulation.
#[derive(Debug, Default)]
pub struct LockTable {
    locks: Vec<LockState>,
    conds: Vec<CondState>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new lock.
    pub fn add_lock(&mut self) -> LockId {
        self.locks.push(LockState::default());
        LockId((self.locks.len() - 1) as u32)
    }

    /// Registers a new condition variable.
    pub fn add_cond(&mut self) -> CondId {
        self.conds.push(CondState::default());
        CondId((self.conds.len() - 1) as u32)
    }

    /// Requests `lock` in `mode` for `t`.
    ///
    /// On [`Acquire::Queued`] the caller records the waiter via
    /// [`LockTable::enqueue`].
    pub fn try_acquire(&mut self, t: ThreadId, lock: LockId, mode: LockMode) -> Acquire {
        let st = &mut self.locks[lock.0 as usize];
        if st.waiters.is_empty() && st.compatible(mode) {
            st.hold(t, mode);
            Acquire::Granted
        } else {
            Acquire::Queued
        }
    }

    /// Enqueues a waiter (after [`Acquire::Queued`]).
    pub fn enqueue(&mut self, lock: LockId, w: Waiter) {
        self.locks[lock.0 as usize].waiters.push_back(w);
    }

    /// Releases `lock` held by `t` and grants the next compatible
    /// batch; returns the granted waiters in grant order.
    pub fn release(&mut self, t: ThreadId, lock: LockId) -> Vec<Waiter> {
        let st = &mut self.locks[lock.0 as usize];
        if st.exclusive == Some(t) {
            st.exclusive = None;
        }
        st.shared.retain(|&h| h != t);
        self.grant_batch(lock)
    }

    fn grant_batch(&mut self, lock: LockId) -> Vec<Waiter> {
        let st = &mut self.locks[lock.0 as usize];
        let mut granted = Vec::new();
        while let Some(w) = st.waiters.front().copied() {
            if !st.compatible(w.mode) {
                break;
            }
            st.waiters.pop_front();
            st.hold(w.thread, w.mode);
            granted.push(w);
            // An exclusive grant is alone; shared grants batch.
            if w.mode == LockMode::Exclusive {
                break;
            }
        }
        granted
    }

    /// Whether `t` currently holds `lock` (in either mode).
    pub fn holds(&self, t: ThreadId, lock: LockId) -> bool {
        let st = &self.locks[lock.0 as usize];
        st.exclusive == Some(t) || st.shared.contains(&t)
    }

    /// Number of queued waiters on `lock`.
    pub fn queue_len(&self, lock: LockId) -> usize {
        self.locks[lock.0 as usize].waiters.len()
    }

    /// Adds `t` (which holds and is about to release `lock`) to the
    /// condition's wait set.
    pub fn cond_wait(&mut self, t: ThreadId, cond: CondId, lock: LockId) {
        self.conds[cond.0 as usize].waiters.push_back((t, lock));
    }

    /// Pops up to `n` condition waiters (all if `None`), returning
    /// `(thread, lock to re-acquire)` pairs in wait order.
    pub fn notify(&mut self, cond: CondId, n: Option<usize>) -> Vec<(ThreadId, LockId)> {
        let ws = &mut self.conds[cond.0 as usize].waiters;
        let k = n.unwrap_or(ws.len()).min(ws.len());
        ws.drain(..k).collect()
    }

    /// Removes `t` from the condition's wait set (its timed wait
    /// expired); returns the lock it must re-acquire, or `None` if a
    /// notify already claimed it (the notify wins the race).
    pub fn cond_cancel(&mut self, cond: CondId, t: ThreadId) -> Option<LockId> {
        let ws = &mut self.conds[cond.0 as usize].waiters;
        let pos = ws.iter().position(|&(wt, _)| wt == t)?;
        ws.remove(pos).map(|(_, l)| l)
    }

    /// Number of threads waiting on `cond`.
    pub fn cond_len(&self, cond: CondId) -> usize {
        self.conds[cond.0 as usize].waiters.len()
    }

    /// The lock-wait graph: one `(waiter, lock, holder)` edge for every
    /// queued waiter and every current holder of the lock it waits on.
    /// A cycle in this graph is a deadlock; the engine's
    /// [`crate::Sim::run_until_outcome`] searches it at idle instead of
    /// returning silently with wedged threads.
    pub fn wait_edges(&self) -> Vec<(ThreadId, LockId, ThreadId)> {
        let mut edges = Vec::new();
        for (i, st) in self.locks.iter().enumerate() {
            if st.waiters.is_empty() {
                continue;
            }
            let lock = LockId(i as u32);
            for w in &st.waiters {
                if let Some(h) = st.exclusive {
                    edges.push((w.thread, lock, h));
                }
                for &h in &st.shared {
                    edges.push((w.thread, lock, h));
                }
            }
        }
        edges
    }

    /// Erases crashed threads from every queue: they are dropped from
    /// all lock wait queues and condition wait sets, and every lock
    /// they hold is released. Returns, per lock that changed, the
    /// batch of surviving waiters granted as a result.
    pub fn purge_threads(&mut self, victims: &[ThreadId]) -> Vec<(LockId, Vec<Waiter>)> {
        let gone = |t: &ThreadId| victims.contains(t);
        let mut touched = Vec::new();
        for (i, st) in self.locks.iter_mut().enumerate() {
            let n_waiters = st.waiters.len();
            st.waiters.retain(|w| !gone(&w.thread));
            let mut changed = st.waiters.len() != n_waiters;
            if st.exclusive.is_some_and(|e| gone(&e)) {
                st.exclusive = None;
                changed = true;
            }
            let n_shared = st.shared.len();
            st.shared.retain(|h| !gone(h));
            changed |= st.shared.len() != n_shared;
            if changed {
                touched.push(LockId(i as u32));
            }
        }
        for cs in &mut self.conds {
            cs.waiters.retain(|(t, _)| !gone(t));
        }
        touched
            .into_iter()
            .map(|l| (l, self.grant_batch(l)))
            .filter(|(_, granted)| !granted.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const T3: ThreadId = ThreadId(3);

    fn w(t: ThreadId, mode: LockMode) -> Waiter {
        Waiter {
            thread: t,
            mode,
            since: 0,
            hint: None,
            from_cond: false,
            timed_out: false,
        }
    }

    #[test]
    fn exclusive_excludes() {
        let mut lt = LockTable::new();
        let l = lt.add_lock();
        assert_eq!(lt.try_acquire(T1, l, LockMode::Exclusive), Acquire::Granted);
        assert_eq!(lt.try_acquire(T2, l, LockMode::Exclusive), Acquire::Queued);
        lt.enqueue(l, w(T2, LockMode::Exclusive));
        let granted = lt.release(T1, l);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].thread, T2);
        assert!(lt.holds(T2, l));
    }

    #[test]
    fn shared_holders_coexist() {
        let mut lt = LockTable::new();
        let l = lt.add_lock();
        assert_eq!(lt.try_acquire(T1, l, LockMode::Shared), Acquire::Granted);
        assert_eq!(lt.try_acquire(T2, l, LockMode::Shared), Acquire::Granted);
        assert!(lt.holds(T1, l) && lt.holds(T2, l));
    }

    #[test]
    fn writer_waits_for_all_readers() {
        let mut lt = LockTable::new();
        let l = lt.add_lock();
        lt.try_acquire(T1, l, LockMode::Shared);
        lt.try_acquire(T2, l, LockMode::Shared);
        assert_eq!(lt.try_acquire(T3, l, LockMode::Exclusive), Acquire::Queued);
        lt.enqueue(l, w(T3, LockMode::Exclusive));
        assert!(lt.release(T1, l).is_empty(), "one reader still holds");
        let granted = lt.release(T2, l);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].thread, T3);
    }

    #[test]
    fn fifo_prevents_reader_overtake() {
        // Reader arriving after a queued writer must queue behind it.
        let mut lt = LockTable::new();
        let l = lt.add_lock();
        lt.try_acquire(T1, l, LockMode::Shared);
        lt.enqueue(l, w(T2, LockMode::Exclusive));
        assert_eq!(lt.try_acquire(T3, l, LockMode::Shared), Acquire::Queued);
        lt.enqueue(l, w(T3, LockMode::Shared));
        let granted = lt.release(T1, l);
        assert_eq!(granted.len(), 1, "only the writer is granted");
        assert_eq!(granted[0].thread, T2);
        let granted = lt.release(T2, l);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].thread, T3);
    }

    #[test]
    fn shared_grants_batch() {
        let mut lt = LockTable::new();
        let l = lt.add_lock();
        lt.try_acquire(T1, l, LockMode::Exclusive);
        lt.enqueue(l, w(T2, LockMode::Shared));
        lt.enqueue(l, w(T3, LockMode::Shared));
        let granted = lt.release(T1, l);
        assert_eq!(granted.len(), 2, "leading shared waiters batch");
    }

    #[test]
    fn cond_cancel_races_notify() {
        let mut lt = LockTable::new();
        let l = lt.add_lock();
        let c = lt.add_cond();
        lt.cond_wait(T1, c, l);
        lt.cond_wait(T2, c, l);
        assert_eq!(lt.cond_cancel(c, T2), Some(l), "timeout removes T2");
        assert_eq!(lt.notify(c, None), vec![(T1, l)], "T2 no longer notifiable");
        assert_eq!(lt.cond_cancel(c, T1), None, "notify already claimed T1");
    }

    #[test]
    fn purge_releases_holdings_and_grants_survivors() {
        let mut lt = LockTable::new();
        let l = lt.add_lock();
        lt.try_acquire(T1, l, LockMode::Exclusive);
        lt.enqueue(l, w(T2, LockMode::Exclusive));
        lt.enqueue(l, w(T3, LockMode::Exclusive));
        // T1 (holder) and T2 (front waiter) crash; T3 must be granted.
        let granted = lt.purge_threads(&[T1, T2]);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].0, l);
        assert_eq!(granted[0].1.len(), 1);
        assert_eq!(granted[0].1[0].thread, T3);
        assert!(lt.holds(T3, l));
    }

    #[test]
    fn purge_removes_mid_queue_waiter_without_granting() {
        let mut lt = LockTable::new();
        let l = lt.add_lock();
        lt.try_acquire(T1, l, LockMode::Exclusive);
        lt.enqueue(l, w(T2, LockMode::Exclusive));
        let granted = lt.purge_threads(&[T2]);
        assert!(granted.is_empty(), "T1 still holds; nothing to grant");
        assert_eq!(lt.queue_len(l), 0);
        assert!(lt.holds(T1, l));
    }

    #[test]
    fn purge_clears_cond_waiters() {
        let mut lt = LockTable::new();
        let l = lt.add_lock();
        let c = lt.add_cond();
        lt.cond_wait(T1, c, l);
        lt.cond_wait(T2, c, l);
        lt.purge_threads(&[T1]);
        assert_eq!(lt.notify(c, None), vec![(T2, l)]);
    }

    #[test]
    fn cond_wait_and_notify() {
        let mut lt = LockTable::new();
        let l = lt.add_lock();
        let c = lt.add_cond();
        lt.cond_wait(T1, c, l);
        lt.cond_wait(T2, c, l);
        assert_eq!(lt.cond_len(c), 2);
        let woken = lt.notify(c, Some(1));
        assert_eq!(woken, vec![(T1, l)]);
        let woken = lt.notify(c, None);
        assert_eq!(woken, vec![(T2, l)]);
        assert_eq!(lt.cond_len(c), 0);
    }
}
