//! Virtual time and machine identifiers.

/// Virtual time and durations, measured in CPU cycles of the simulated
/// 2.4 GHz machines (see [`whodunit_core::cost::CPU_HZ`]).
pub type Cycles = u64;

/// A simulated machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MachineId(pub u32);

/// A condition variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CondId(pub u32);

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl std::fmt::Display for CondId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cond{}", self.0)
    }
}
