//! The discrete-event simulation engine.
//!
//! Threads are resumable state machines ([`ThreadBody`]); each resume
//! receives a [`Wake`] describing why the thread continues and yields
//! one [`Op`]. The engine performs the operation, calls the owning
//! process's profiling [`Runtime`] hooks at exactly the points the
//! paper's wrappers intercept (compute/sampling, send/receive,
//! lock/unlock), charges returned overhead cycles to the thread, and
//! schedules the follow-up wake.
//!
//! The engine is strictly deterministic: the event heap is ordered by
//! `(time, sequence)`, ready wakes drain under a seeded
//! [`SchedulePolicy`] (FIFO by default), and nothing consults
//! wall-clock time or unseeded randomness. A run can additionally be
//! asked to *account for its own progress*: [`Sim::run_until_outcome`]
//! reports lock-wait deadlock cycles and zero-progress livelock storms
//! as structured [`RunOutcome`]s instead of hanging or exiting
//! silently.

use crate::chan::{ChanTable, Msg};
use crate::fault::FaultPlan;
use crate::lock::{Acquire, LockTable, Waiter};
use crate::machine::{Dispatch, MachineTable};
use crate::sched::{SchedulePolicy, Scheduler};
use crate::time::{CondId, Cycles, MachineId};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use whodunit_core::blackbox::{CommLog, CommRecorder};
use whodunit_core::delta::{diff_dump, DeltaSink, EpochBatch, StreamHeader, StreamStage};
use whodunit_core::frame::{shared_frame_table, FrameId, SharedFrameTable};
use whodunit_core::ids::{ChanId, LockId, LockMode, ProcId, ThreadId};
use whodunit_core::rt::{NullRuntime, Runtime};

/// Why a thread is being resumed.
#[derive(Debug)]
pub enum Wake {
    /// First resume after spawn.
    Start,
    /// An instant operation (unlock, notify, send) completed.
    Done,
    /// The requested compute burst finished.
    ComputeDone,
    /// The requested lock was acquired after `waited` cycles.
    LockAcquired {
        /// Cycles spent waiting.
        waited: Cycles,
    },
    /// A condition wait returned (lock re-acquired).
    CondWoken {
        /// Cycles between notify and lock re-acquisition.
        waited: Cycles,
    },
    /// A message arrived on the channel being received from.
    Received(Msg),
    /// The requested sleep elapsed.
    Slept,
    /// The deadline of a timed receive passed with no message. The
    /// thread is no longer queued on the channel; a message arriving
    /// later buffers for the next receiver.
    RecvTimedOut,
    /// A timed condition wait expired before any notify; the thread
    /// resumes holding the lock again, `waited` cycles after the
    /// deadline (the lock re-acquisition wait, as in
    /// [`Wake::CondWoken`]).
    CondTimedOut {
        /// Cycles between deadline expiry and lock re-acquisition.
        waited: Cycles,
    },
}

/// One operation a thread performs per resume.
#[derive(Debug)]
pub enum Op {
    /// Burn CPU on the thread's machine; attributed to the current
    /// call stack and transaction context.
    Compute(Cycles),
    /// Acquire a lock (waits if necessary).
    Lock(LockId, LockMode),
    /// Release a lock (instant).
    Unlock(LockId),
    /// Wait on a condition variable, releasing `lock`; resumes with the
    /// lock re-acquired.
    CondWait(CondId, LockId),
    /// Wake one (`false`) or all (`true`) condition waiters (instant).
    Notify(CondId, bool),
    /// Send a message on a channel (instant, buffered).
    Send(ChanId, Msg),
    /// Receive a message from a channel (waits if empty).
    Recv(ChanId),
    /// Receive with a deadline: resumes with [`Wake::Received`] if a
    /// message arrives within the given cycles, otherwise with
    /// [`Wake::RecvTimedOut`].
    RecvTimeout(ChanId, Cycles),
    /// Condition wait with a deadline, releasing `lock`: resumes with
    /// [`Wake::CondWoken`] on notify or [`Wake::CondTimedOut`] on
    /// expiry — in both cases with the lock re-acquired.
    CondWaitTimeout(CondId, LockId, Cycles),
    /// Sleep for the given duration.
    Sleep(Cycles),
    /// Terminate the thread.
    Exit,
}

/// A thread's behaviour, written as a resumable state machine.
pub trait ThreadBody {
    /// Continues the thread; called once per completed operation.
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op;
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Round-robin scheduling quantum in cycles.
    ///
    /// The default is 1 ms of the 2.4 GHz CPU — coarse enough to keep
    /// event counts manageable, fine enough that a long query does not
    /// monopolize a core.
    pub quantum: Cycles,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { quantum: 2_400_000 }
    }
}

/// One hop of a deadlock cycle: `waiter` is queued on `lock`, which
/// `holder` currently holds. The links chain: each link's holder is the
/// next link's waiter, and the last holder is the first waiter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockLink {
    /// The blocked thread.
    pub waiter: ThreadId,
    /// Its name (for diagnostics).
    pub waiter_name: String,
    /// The lock it is queued on.
    pub lock: LockId,
    /// A current holder of that lock.
    pub holder: ThreadId,
    /// The holder's name.
    pub holder_name: String,
}

/// A lock-wait cycle found at idle: the run can never make progress
/// because each thread in the cycle waits on a lock another holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Virtual time the simulation wedged at.
    pub at: Cycles,
    /// The cycle, as thread → lock → holder hops.
    pub cycle: Vec<DeadlockLink>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadlock at t={}: ", self.at)?;
        for (i, l) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(
                f,
                "{}({}) waits {} held by {}({})",
                l.waiter_name, l.waiter, l.lock, l.holder_name, l.holder
            )?;
        }
        Ok(())
    }
}

/// A thread observed resuming repeatedly without virtual time moving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spinner {
    /// The spinning thread.
    pub thread: ThreadId,
    /// Its name.
    pub name: String,
    /// Resumes since virtual time last advanced.
    pub resumes: u64,
}

/// A zero-progress wake storm: more thread resumes happened at one
/// virtual instant than the configured step budget allows, so the run
/// was aborted instead of spinning forever (e.g. a retry loop that
/// never advances virtual time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LivelockReport {
    /// The virtual instant the storm happened at.
    pub at: Cycles,
    /// Resumes consumed at that instant (the exhausted budget).
    pub steps: u64,
    /// The threads doing the spinning, busiest first (top 8).
    pub spinners: Vec<Spinner>,
}

impl fmt::Display for LivelockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "livelock at t={}: {} zero-progress resumes; spinning: ",
            self.at, self.steps
        )?;
        for (i, s) in self.spinners.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}({}) x{}", s.name, s.thread, s.resumes)?;
        }
        Ok(())
    }
}

/// How a bounded run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The virtual-time limit was reached with work still pending.
    ReachedLimit,
    /// Nothing remained to do, and no thread is wedged in a lock cycle.
    /// (Threads parked on a receive or condition with no peer are
    /// normal at the end of a run — servers waiting for requests.)
    Idle,
    /// The run wedged on a lock-wait cycle.
    Deadlock(DeadlockReport),
    /// The run was aborted after a zero-progress wake storm.
    Livelock(LivelockReport),
}

impl RunOutcome {
    /// Whether the run ended without a detected progress failure.
    pub fn is_ok(&self) -> bool {
        matches!(self, RunOutcome::ReachedLimit | RunOutcome::Idle)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::ReachedLimit => write!(f, "reached limit"),
            RunOutcome::Idle => write!(f, "idle"),
            RunOutcome::Deadlock(d) => d.fmt(f),
            RunOutcome::Livelock(l) => l.fmt(f),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Ready,
    Computing,
    WaitingLock,
    WaitingCond,
    WaitingRecv,
    Sleeping,
    Exited,
}

struct Thread {
    name: String,
    proc: ProcId,
    machine: MachineId,
    body: Option<Box<dyn ThreadBody>>,
    stack: Vec<FrameId>,
    state: TState,
    pending_overhead: Cycles,
    /// Bumped on every resume; deadline events armed for an earlier
    /// epoch are stale and ignored (the wait they guarded already
    /// ended some other way).
    epoch: u64,
}

struct Proc {
    name: String,
    rt: Rc<RefCell<dyn Runtime>>,
    /// Ground-truth application compute cycles requested by this
    /// process's threads (excludes profiling overhead and fault
    /// slowdown inflation).
    compute_cycles: u64,
    /// Set when a fault-plan crash took the process down.
    crashed: bool,
}

enum EvKind {
    QuantumEnd {
        machine: MachineId,
        d: Dispatch,
    },
    Deliver {
        chan: ChanId,
        msg: Msg,
    },
    Timer {
        thread: ThreadId,
    },
    RecvDeadline {
        thread: ThreadId,
        chan: ChanId,
        epoch: u64,
    },
    CondDeadline {
        thread: ThreadId,
        cond: CondId,
        lock: LockId,
        epoch: u64,
    },
    Crash {
        proc: ProcId,
    },
}

struct Ev {
    at: Cycles,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Ev {}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulation.
pub struct Sim {
    cfg: SimConfig,
    now: Cycles,
    seq: u64,
    heap: BinaryHeap<Reverse<Ev>>,
    ready: VecDeque<(ThreadId, Wake)>,
    threads: Vec<Thread>,
    procs: Vec<Proc>,
    /// Locks and condition variables.
    pub locks: LockTable,
    /// Channels.
    pub chans: ChanTable,
    /// Machines.
    pub machines: MachineTable,
    frames: SharedFrameTable,
    faults: Option<FaultPlan>,
    sched: Scheduler,
    /// Maximum thread resumes at a single virtual instant before the
    /// run is declared livelocked (`None` = unbounded, the default).
    step_budget: Option<u64>,
    /// Resumes since virtual time last advanced.
    spin_total: u64,
    /// Per-thread resume counts since virtual time last advanced.
    spin: HashMap<ThreadId, u64>,
    /// Passive communication-log recorder ([`Sim::enable_comm_log`]).
    /// `None` (the default) records nothing; when present it only
    /// observes sends/recvs — it draws no randomness and schedules no
    /// events, so enabling it never changes a run's behaviour.
    comm: Option<CommRecorder>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new(SimConfig::default())
    }
}

impl Sim {
    /// Creates an empty simulation.
    pub fn new(cfg: SimConfig) -> Self {
        Sim {
            cfg,
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            ready: VecDeque::new(),
            threads: Vec::new(),
            procs: Vec::new(),
            locks: LockTable::new(),
            chans: ChanTable::new(),
            machines: MachineTable::new(),
            frames: shared_frame_table(),
            faults: None,
            sched: Scheduler::default(),
            step_budget: None,
            spin_total: 0,
            spin: HashMap::new(),
            comm: None,
        }
    }

    /// Enables passive communication logging: from now on every send
    /// and every application-level recv is recorded into a
    /// [`CommLog`], together with the simulator-known ground truth
    /// (which send produced each recv, and which transaction root each
    /// message serves). Idempotent.
    pub fn enable_comm_log(&mut self) {
        if self.comm.is_none() {
            self.comm = Some(CommRecorder::new());
        }
    }

    /// Marks `p` as an external origin process for the comm log's
    /// ground truth: every send from its threads mints a fresh
    /// transaction root (e.g. each client request). Implies
    /// [`Sim::enable_comm_log`].
    pub fn mark_comm_origin(&mut self, p: ProcId) {
        self.enable_comm_log();
        self.comm
            .as_mut()
            .expect("just enabled")
            .mark_origin_proc(p.0);
    }

    /// Takes the recorded communication log, ending recording.
    /// `None` if [`Sim::enable_comm_log`] was never called.
    pub fn take_comm_log(&mut self) -> Option<CommLog> {
        self.comm.take().map(|r| r.finish())
    }

    /// Records an application-level recv when comm logging is enabled.
    /// Untagged messages (sent before logging was enabled) are skipped.
    fn record_recv(&mut self, chan: ChanId, t: ThreadId, msg: &Msg) {
        if let Some(rec) = self.comm.as_mut() {
            if let Some(tag) = msg.tag {
                let proc = self.threads[t.0 as usize].proc;
                rec.on_recv(self.now, chan.0, proc.0, t.0, msg.bytes, tag);
            }
        }
    }

    /// Installs a ready-queue tie-breaking policy. The default is
    /// [`SchedulePolicy::Fifo`], the engine's historical behaviour;
    /// any other policy changes only the order of same-instant resumes,
    /// so every run is still a legal interleaving.
    pub fn set_schedule_policy(&mut self, policy: SchedulePolicy) {
        self.sched = Scheduler::new(policy);
    }

    /// The installed tie-breaking policy.
    pub fn schedule_policy(&self) -> SchedulePolicy {
        self.sched.policy()
    }

    /// Bounds zero-progress wake storms: if more than `budget` thread
    /// resumes happen without virtual time advancing, the run stops
    /// with [`RunOutcome::Livelock`] naming the spinning threads.
    /// `None` (the default) disables the check.
    pub fn set_step_budget(&mut self, budget: Option<u64>) {
        self.step_budget = budget;
    }

    /// Installs a fault plan. Crash entries are scheduled immediately
    /// as events; drop/duplicate/delay verdicts and slowdown factors
    /// are consulted as the run proceeds.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for &(proc, at) in plan.crashes() {
            self.push_ev(at.max(self.now), EvKind::Crash { proc });
        }
        self.faults = Some(plan);
    }

    /// Current virtual time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// The shared frame intern table.
    ///
    /// Borrowed; callers that need to hold on to the table clone the
    /// returned handle explicitly (a cheap `Rc` bump).
    pub fn frames(&self) -> &SharedFrameTable {
        &self.frames
    }

    /// Interns a frame name.
    pub fn frame(&self, name: &str) -> FrameId {
        self.frames.borrow_mut().intern(name)
    }

    /// Registers a process with a profiling runtime.
    pub fn add_process(&mut self, name: &str, rt: Rc<RefCell<dyn Runtime>>) -> ProcId {
        self.procs.push(Proc {
            name: name.to_owned(),
            rt,
            compute_cycles: 0,
            crashed: false,
        });
        ProcId((self.procs.len() - 1) as u32)
    }

    /// Ground-truth application compute cycles requested by `p`'s
    /// threads so far — the reference mass that `p`'s profile must
    /// conserve. Profiling overhead and fault-slowdown inflation are
    /// excluded on purpose: neither is application work.
    pub fn proc_compute_cycles(&self, p: ProcId) -> u64 {
        self.procs[p.0 as usize].compute_cycles
    }

    /// Whether a fault-plan crash took `p` down.
    pub fn proc_crashed(&self, p: ProcId) -> bool {
        self.procs[p.0 as usize].crashed
    }

    /// Registers an unprofiled process.
    pub fn add_unprofiled_process(&mut self, name: &str) -> ProcId {
        self.add_process(name, Rc::new(RefCell::new(NullRuntime)))
    }

    /// A process's runtime.
    pub fn runtime(&self, p: ProcId) -> Rc<RefCell<dyn Runtime>> {
        self.procs[p.0 as usize].rt.clone()
    }

    /// A process's name.
    pub fn proc_name(&self, p: ProcId) -> &str {
        &self.procs[p.0 as usize].name
    }

    /// Collects the stage dumps of every profiled process, in process-id
    /// order. Processes whose runtime has nothing to dump (e.g.
    /// unprofiled [`NullRuntime`] clients) are skipped, so the result is
    /// the deterministic stage order the analysis pipeline expects.
    pub fn collect_dumps(&self) -> Vec<whodunit_core::stitch::StageDump> {
        self.procs
            .iter()
            .filter_map(|p| p.rt.borrow().dump())
            .collect()
    }

    /// Registers a machine with `cores` CPUs.
    pub fn add_machine(&mut self, cores: u32) -> MachineId {
        self.machines.add(cores)
    }

    /// Registers a lock.
    pub fn add_lock(&mut self) -> LockId {
        self.locks.add_lock()
    }

    /// Registers a condition variable.
    pub fn add_cond(&mut self) -> CondId {
        self.locks.add_cond()
    }

    /// Registers a channel.
    pub fn add_channel(&mut self, latency: Cycles, cycles_per_byte: u64) -> ChanId {
        self.chans.add(latency, cycles_per_byte)
    }

    /// Spawns a thread in `proc` on `machine`; it resumes with
    /// [`Wake::Start`] when the simulation runs.
    pub fn spawn(
        &mut self,
        proc: ProcId,
        machine: MachineId,
        name: &str,
        body: Box<dyn ThreadBody>,
    ) -> ThreadId {
        let t = ThreadId(self.threads.len() as u32);
        self.threads.push(Thread {
            name: name.to_owned(),
            proc,
            machine,
            body: Some(body),
            stack: Vec::new(),
            state: TState::Ready,
            pending_overhead: 0,
            epoch: 0,
        });
        self.procs[proc.0 as usize].rt.borrow_mut().on_spawn(t);
        self.ready.push_back((t, Wake::Start));
        t
    }

    /// A thread's name (for reports and tests).
    pub fn thread_name(&self, t: ThreadId) -> &str {
        &self.threads[t.0 as usize].name
    }

    /// A thread's owning process.
    pub fn thread_proc(&self, t: ThreadId) -> ProcId {
        self.threads[t.0 as usize].proc
    }

    fn rt_of(&self, t: ThreadId) -> Rc<RefCell<dyn Runtime>> {
        self.procs[self.threads[t.0 as usize].proc.0 as usize]
            .rt
            .clone()
    }

    fn push_ev(&mut self, at: Cycles, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Ev { at, seq, kind }));
    }

    /// Runs until virtual time `limit` (inclusive of events at
    /// `limit`) or until nothing remains to do.
    ///
    /// The historical entry point: progress failures (deadlock under a
    /// step budget) are silently ignored. Use
    /// [`Sim::run_until_outcome`] when the caller needs to know how
    /// the run ended.
    pub fn run_until(&mut self, limit: Cycles) {
        let _ = self.run_until_outcome(limit);
    }

    /// Runs until `limit` and reports how the run ended: the limit was
    /// reached, the simulation went idle, a lock-wait deadlock cycle
    /// wedged it, or a zero-progress wake storm exhausted the step
    /// budget ([`Sim::set_step_budget`]).
    pub fn run_until_outcome(&mut self, limit: Cycles) -> RunOutcome {
        loop {
            // Drain instantly runnable threads first, under the
            // installed tie-breaking policy.
            while !self.ready.is_empty() {
                let k = self.sched.pick(self.ready.len());
                let (t, wake) = self.ready.remove(k).expect("picked index in range");
                if let Some(report) = self.note_resume(t) {
                    return RunOutcome::Livelock(report);
                }
                self.resume_thread(t, wake);
            }
            let Some(Reverse(ev)) = self.heap.pop() else {
                return match self.detect_lock_cycle() {
                    Some(report) => RunOutcome::Deadlock(report),
                    None => RunOutcome::Idle,
                };
            };
            if ev.at > limit {
                self.heap.push(Reverse(ev));
                self.now = limit;
                return RunOutcome::ReachedLimit;
            }
            if ev.at > self.now {
                // Virtual time advances: the run is making progress.
                self.spin_total = 0;
                self.spin.clear();
            }
            self.now = ev.at;
            match ev.kind {
                EvKind::QuantumEnd { machine, d } => self.on_quantum_end(machine, d),
                EvKind::Deliver { chan, msg } => self.on_deliver(chan, msg),
                EvKind::Timer { thread } => {
                    if self.threads[thread.0 as usize].state == TState::Sleeping {
                        self.threads[thread.0 as usize].state = TState::Ready;
                        self.ready.push_back((thread, Wake::Slept));
                    }
                }
                EvKind::RecvDeadline {
                    thread,
                    chan,
                    epoch,
                } => {
                    let th = &self.threads[thread.0 as usize];
                    if th.epoch == epoch && th.state == TState::WaitingRecv {
                        self.chans.cancel_wait(chan, thread);
                        self.threads[thread.0 as usize].state = TState::Ready;
                        self.ready.push_back((thread, Wake::RecvTimedOut));
                    }
                }
                EvKind::CondDeadline {
                    thread,
                    cond,
                    lock,
                    epoch,
                } => {
                    let th = &self.threads[thread.0 as usize];
                    if th.epoch == epoch && th.state == TState::WaitingCond {
                        self.on_cond_timeout(thread, cond, lock);
                    }
                }
                EvKind::Crash { proc } => self.on_crash(proc),
            }
        }
    }

    /// Runs until no events or runnable threads remain.
    pub fn run_to_idle(&mut self) {
        self.run_until(Cycles::MAX);
    }

    /// Like [`Sim::run_to_idle`], but reports how the run ended
    /// ([`RunOutcome::Idle`] on a clean drain).
    pub fn run_to_idle_outcome(&mut self) -> RunOutcome {
        self.run_until_outcome(Cycles::MAX)
    }

    /// Runs to `limit` like [`Sim::run_until_outcome`], but in epochs
    /// of `epoch_len` virtual cycles, streaming each epoch's per-stage
    /// profile increment to `sink`.
    ///
    /// `sink.on_start` fires once with the fixed stage set (profiled
    /// processes in process-id order — the same order
    /// [`Sim::collect_dumps`] uses), then `sink.on_batch` fires once
    /// per epoch with sequence-numbered [`whodunit_core::delta`]
    /// batches, including a final partial epoch when the run ends
    /// early (idle, deadlock, livelock) or `limit` is not a multiple
    /// of `epoch_len`.
    ///
    /// Chunked execution is exact: the event heap is ordered by
    /// `(time, seq)`, the ready queue is always drained before the
    /// heap is popped (so it is empty at every epoch boundary), and
    /// hitting an epoch boundary only pushes the peeked event back —
    /// so the schedule, and therefore every profile, is bit-identical
    /// to a single `run_until_outcome(limit)` call. Streaming changes
    /// *when* profile state is observed, never what it is.
    pub fn run_streaming(
        &mut self,
        limit: Cycles,
        epoch_len: Cycles,
        sink: &mut dyn DeltaSink,
    ) -> RunOutcome {
        assert!(epoch_len > 0, "epoch_len must be positive");
        let header = StreamHeader {
            stages: self
                .procs
                .iter()
                .filter_map(|p| {
                    p.rt.borrow().dump().map(|d| StreamStage {
                        proc: d.proc,
                        stage_name: d.stage_name,
                    })
                })
                .collect(),
        };
        sink.on_start(&header);
        let mut prev: Vec<Option<whodunit_core::stitch::StageDump>> =
            vec![None; header.stages.len()];
        let mut seqs: Vec<u64> = vec![0; header.stages.len()];
        let mut epoch: u64 = 0;
        loop {
            let end = self.now.saturating_add(epoch_len).min(limit);
            let outcome = self.run_until_outcome(end);
            let dumps = self.collect_dumps();
            assert_eq!(
                dumps.len(),
                header.stages.len(),
                "profiled stage set changed mid-run"
            );
            let mut deltas = Vec::new();
            for (i, cur) in dumps.iter().enumerate() {
                if let Some(d) = diff_dump(i, seqs[i], prev[i].as_ref(), cur) {
                    seqs[i] += 1;
                    deltas.push(d);
                }
            }
            prev = dumps.into_iter().map(Some).collect();
            sink.on_batch(EpochBatch {
                epoch,
                seq: epoch,
                end: self.now,
                deltas,
            });
            epoch += 1;
            match outcome {
                RunOutcome::ReachedLimit if self.now < limit => continue,
                other => return other,
            }
        }
    }

    /// Step accounting for the livelock bound: counts a resume against
    /// the current virtual instant and returns a report if the budget
    /// is exhausted.
    fn note_resume(&mut self, t: ThreadId) -> Option<LivelockReport> {
        let budget = self.step_budget?;
        self.spin_total += 1;
        *self.spin.entry(t).or_insert(0) += 1;
        if self.spin_total <= budget {
            return None;
        }
        let mut spinners: Vec<Spinner> = self
            .spin
            .iter()
            .map(|(&t, &resumes)| Spinner {
                thread: t,
                name: self.thread_name(t).to_owned(),
                resumes,
            })
            .collect();
        spinners.sort_by(|a, b| (b.resumes, a.thread.0).cmp(&(a.resumes, b.thread.0)));
        spinners.truncate(8);
        Some(LivelockReport {
            at: self.now,
            steps: self.spin_total,
            spinners,
        })
    }

    /// Searches the lock-wait graph for a cycle: an edge runs from each
    /// queued waiter to each current holder of the lock it waits on.
    /// Returns the cycle as thread → lock → holder hops, or `None` if
    /// the graph is acyclic (blocked threads that merely wait on a
    /// channel or condition are not part of this graph).
    fn detect_lock_cycle(&self) -> Option<DeadlockReport> {
        let edges = self.locks.wait_edges();
        if edges.is_empty() {
            return None;
        }
        let mut adj: HashMap<ThreadId, Vec<(LockId, ThreadId)>> = HashMap::new();
        for &(waiter, lock, holder) in &edges {
            adj.entry(waiter).or_default().push((lock, holder));
        }
        // Iterative DFS with an explicit path so the cycle can be
        // reported, not just detected.
        let mut color: HashMap<ThreadId, u8> = HashMap::new(); // 1 = on path, 2 = done
        let mut starts: Vec<ThreadId> = adj.keys().copied().collect();
        starts.sort_by_key(|t| t.0);
        for start in starts {
            if color.get(&start).copied().unwrap_or(0) != 0 {
                continue;
            }
            // Each stack entry: (thread, next edge index to try).
            let mut stack: Vec<(ThreadId, usize)> = vec![(start, 0)];
            let mut path: Vec<(ThreadId, LockId, ThreadId)> = Vec::new();
            color.insert(start, 1);
            while let Some(&mut (t, ref mut i)) = stack.last_mut() {
                let out = adj.get(&t).map(Vec::as_slice).unwrap_or(&[]);
                if *i >= out.len() {
                    color.insert(t, 2);
                    stack.pop();
                    path.pop();
                    continue;
                }
                let (lock, holder) = out[*i];
                *i += 1;
                match color.get(&holder).copied().unwrap_or(0) {
                    1 => {
                        // Found a cycle: the path from `holder` back to
                        // this edge closes it.
                        path.push((t, lock, holder));
                        let from = path
                            .iter()
                            .position(|&(w, _, _)| w == holder)
                            .unwrap_or(0);
                        let cycle = path[from..]
                            .iter()
                            .map(|&(w, l, h)| DeadlockLink {
                                waiter: w,
                                waiter_name: self.thread_name(w).to_owned(),
                                lock: l,
                                holder: h,
                                holder_name: self.thread_name(h).to_owned(),
                            })
                            .collect();
                        return Some(DeadlockReport {
                            at: self.now,
                            cycle,
                        });
                    }
                    2 => {}
                    _ => {
                        color.insert(holder, 1);
                        path.push((t, lock, holder));
                        stack.push((holder, 0));
                    }
                }
            }
        }
        None
    }

    fn on_quantum_end(&mut self, machine: MachineId, d: Dispatch) {
        if self.threads[d.thread.0 as usize].state == TState::Exited {
            // Crashed mid-burst: free the core, abandon the remainder.
            self.machines.abandon_slice(machine, d);
        } else {
            let done = self.machines.complete_slice(machine, d);
            if done {
                self.threads[d.thread.0 as usize].state = TState::Ready;
                self.ready.push_back((d.thread, Wake::ComputeDone));
            }
        }
        self.dispatch_machine(machine);
    }

    /// A timed condition wait expired: leave the wait set and
    /// re-acquire the lock, resuming with [`Wake::CondTimedOut`] once
    /// it is held again. If a notify claimed the thread first, the
    /// deadline loses the race and does nothing.
    fn on_cond_timeout(&mut self, t: ThreadId, cond: CondId, lock: LockId) {
        if self.locks.cond_cancel(cond, t).is_none() {
            return;
        }
        match self.locks.try_acquire(t, lock, LockMode::Exclusive) {
            Acquire::Granted => {
                let rt = self.rt_of(t);
                let oh = rt
                    .borrow_mut()
                    .on_lock_acquired(t, lock, LockMode::Exclusive, 0, None);
                self.threads[t.0 as usize].pending_overhead += oh;
                self.threads[t.0 as usize].state = TState::Ready;
                self.ready.push_back((t, Wake::CondTimedOut { waited: 0 }));
            }
            Acquire::Queued => {
                let hint = self.rt_of(t).borrow().holder_hint(lock);
                self.locks.enqueue(
                    lock,
                    Waiter {
                        thread: t,
                        mode: LockMode::Exclusive,
                        since: self.now,
                        hint,
                        from_cond: true,
                        timed_out: true,
                    },
                );
                self.threads[t.0 as usize].state = TState::WaitingLock;
            }
        }
    }

    /// A fault-plan crash: every thread of `proc` dies instantly. The
    /// threads are erased from channel receiver queues, machine run
    /// queues, lock wait queues, and condition wait sets; locks they
    /// held are released and surviving waiters granted. Messages
    /// already in flight toward the process still deliver into channel
    /// buffers, where they sit unread — exactly the view a live peer
    /// has of a dead one.
    fn on_crash(&mut self, proc: ProcId) {
        if self.procs[proc.0 as usize].crashed {
            return;
        }
        self.procs[proc.0 as usize].crashed = true;
        let victims: Vec<ThreadId> = (0..self.threads.len() as u32)
            .map(ThreadId)
            .filter(|&t| {
                let th = &self.threads[t.0 as usize];
                th.proc == proc && th.state != TState::Exited
            })
            .collect();
        for &t in &victims {
            let th = &mut self.threads[t.0 as usize];
            th.state = TState::Exited;
            th.body = None;
            th.pending_overhead = 0;
            self.chans.purge_thread(t);
            self.machines.purge_thread(t);
        }
        for (lock, granted) in self.locks.purge_threads(&victims) {
            self.wake_granted(lock, granted);
        }
    }

    fn on_deliver(&mut self, chan: ChanId, msg: Msg) {
        if let Some((t, msg)) = self.chans.deliver(chan, msg) {
            self.record_recv(chan, t, &msg);
            let overhead = self.rt_of(t).borrow_mut().on_recv(t, msg.chain.as_ref());
            self.threads[t.0 as usize].pending_overhead += overhead;
            self.threads[t.0 as usize].state = TState::Ready;
            self.ready.push_back((t, Wake::Received(msg)));
        }
    }

    fn dispatch_machine(&mut self, machine: MachineId) {
        for d in self.machines.dispatch(machine, self.cfg.quantum) {
            self.push_ev(self.now + d.slice, EvKind::QuantumEnd { machine, d });
        }
    }

    fn resume_thread(&mut self, t: ThreadId, wake: Wake) {
        if self.threads[t.0 as usize].state == TState::Exited {
            return;
        }
        self.threads[t.0 as usize].epoch += 1;
        let Some(mut body) = self.threads[t.0 as usize].body.take() else {
            return;
        };
        let op = {
            let mut cx = ThreadCx { sim: self, t };
            body.resume(&mut cx, wake)
        };
        self.threads[t.0 as usize].body = Some(body);
        self.process_op(t, op);
    }

    fn process_op(&mut self, t: ThreadId, op: Op) {
        let machine = self.threads[t.0 as usize].machine;
        match op {
            Op::Compute(cycles) => {
                let rt = self.rt_of(t);
                let overhead = {
                    let th = &self.threads[t.0 as usize];
                    rt.borrow_mut().on_compute(t, &th.stack, cycles)
                };
                let proc = self.threads[t.0 as usize].proc;
                self.procs[proc.0 as usize].compute_cycles += cycles;
                let pend = std::mem::take(&mut self.threads[t.0 as usize].pending_overhead);
                // A slowdown window stretches the wall-clock cost of
                // the burst; the profiler was already told the
                // application-requested cycles, so profile mass stays
                // conserved against `proc_compute_cycles`.
                let factor = self
                    .faults
                    .as_ref()
                    .map_or(1, |f| f.slowdown_factor(machine, self.now));
                let total = (cycles + overhead + pend).saturating_mul(factor.max(1));
                self.threads[t.0 as usize].state = TState::Computing;
                self.machines.enqueue(machine, t, total);
                self.dispatch_machine(machine);
            }
            Op::Lock(lock, mode) => match self.locks.try_acquire(t, lock, mode) {
                Acquire::Granted => {
                    let rt = self.rt_of(t);
                    let oh = rt.borrow_mut().on_lock_acquired(t, lock, mode, 0, None);
                    self.threads[t.0 as usize].pending_overhead += oh;
                    self.ready.push_back((t, Wake::LockAcquired { waited: 0 }));
                }
                Acquire::Queued => {
                    let hint = self.rt_of(t).borrow().holder_hint(lock);
                    self.locks.enqueue(
                        lock,
                        Waiter {
                            thread: t,
                            mode,
                            since: self.now,
                            hint,
                            from_cond: false,
                            timed_out: false,
                        },
                    );
                    self.threads[t.0 as usize].state = TState::WaitingLock;
                }
            },
            Op::Unlock(lock) => {
                self.do_release(t, lock);
                self.ready.push_back((t, Wake::Done));
            }
            Op::CondWait(cond, lock) => {
                self.locks.cond_wait(t, cond, lock);
                self.do_release(t, lock);
                self.threads[t.0 as usize].state = TState::WaitingCond;
            }
            Op::Notify(cond, all) => {
                let woken = self.locks.notify(cond, if all { None } else { Some(1) });
                for (wt, lock) in woken {
                    // The woken thread re-acquires its lock; the wait
                    // measured for crosstalk is only the re-acquire.
                    match self.locks.try_acquire(wt, lock, LockMode::Exclusive) {
                        Acquire::Granted => {
                            let rt = self.rt_of(wt);
                            let oh = rt.borrow_mut().on_lock_acquired(
                                wt,
                                lock,
                                LockMode::Exclusive,
                                0,
                                None,
                            );
                            self.threads[wt.0 as usize].pending_overhead += oh;
                            self.threads[wt.0 as usize].state = TState::Ready;
                            self.ready.push_back((wt, Wake::CondWoken { waited: 0 }));
                        }
                        Acquire::Queued => {
                            let hint = self.rt_of(wt).borrow().holder_hint(lock);
                            self.locks.enqueue(
                                lock,
                                Waiter {
                                    thread: wt,
                                    mode: LockMode::Exclusive,
                                    since: self.now,
                                    hint,
                                    from_cond: true,
                                    timed_out: false,
                                },
                            );
                            self.threads[wt.0 as usize].state = TState::WaitingLock;
                        }
                    }
                }
                self.ready.push_back((t, Wake::Done));
            }
            Op::Send(chan, mut msg) => {
                let rt = self.rt_of(t);
                let info = {
                    let th = &self.threads[t.0 as usize];
                    rt.borrow_mut().on_send(t, &th.stack)
                };
                msg.chain = info.chain;
                if let Some(rec) = self.comm.as_mut() {
                    // A sender-side tap sees every send, including ones
                    // the wire later drops.
                    let proc = self.threads[t.0 as usize].proc;
                    msg.tag = Some(rec.on_send(self.now, chan.0, proc.0, t.0, msg.bytes));
                }
                self.threads[t.0 as usize].pending_overhead += info.cycles;
                let delay = self.chans.send_delay(chan, msg.bytes + info.extra_bytes);
                let now = self.now;
                let verdict = match self.faults.as_mut() {
                    Some(f) => f.send_verdict_at(chan, now),
                    None => crate::fault::SendVerdict::default(),
                };
                if verdict.copies == 0 {
                    // The sender already paid for the send (hooks,
                    // accounting); the wire just loses the message.
                    self.chans.note_dropped(chan);
                } else {
                    if verdict.extra_delay > 0 {
                        self.chans.note_delayed(chan);
                    }
                    let at = self.now + delay + verdict.extra_delay;
                    let dup = if verdict.copies > 1 {
                        msg.try_clone()
                    } else {
                        None
                    };
                    self.push_ev(at, EvKind::Deliver { chan, msg });
                    if let Some(copy) = dup {
                        self.chans.note_duplicated(chan);
                        self.push_ev(at, EvKind::Deliver { chan, msg: copy });
                    }
                }
                self.ready.push_back((t, Wake::Done));
            }
            Op::Recv(chan) => match self.chans.recv(chan, t) {
                Some(msg) => {
                    self.record_recv(chan, t, &msg);
                    let rt = self.rt_of(t);
                    let oh = rt.borrow_mut().on_recv(t, msg.chain.as_ref());
                    self.threads[t.0 as usize].pending_overhead += oh;
                    self.ready.push_back((t, Wake::Received(msg)));
                }
                None => {
                    self.threads[t.0 as usize].state = TState::WaitingRecv;
                }
            },
            Op::RecvTimeout(chan, timeout) => match self.chans.recv(chan, t) {
                Some(msg) => {
                    self.record_recv(chan, t, &msg);
                    let rt = self.rt_of(t);
                    let oh = rt.borrow_mut().on_recv(t, msg.chain.as_ref());
                    self.threads[t.0 as usize].pending_overhead += oh;
                    self.ready.push_back((t, Wake::Received(msg)));
                }
                None => {
                    self.threads[t.0 as usize].state = TState::WaitingRecv;
                    let epoch = self.threads[t.0 as usize].epoch;
                    self.push_ev(
                        self.now + timeout,
                        EvKind::RecvDeadline {
                            thread: t,
                            chan,
                            epoch,
                        },
                    );
                }
            },
            Op::CondWaitTimeout(cond, lock, timeout) => {
                self.locks.cond_wait(t, cond, lock);
                self.do_release(t, lock);
                self.threads[t.0 as usize].state = TState::WaitingCond;
                let epoch = self.threads[t.0 as usize].epoch;
                self.push_ev(
                    self.now + timeout,
                    EvKind::CondDeadline {
                        thread: t,
                        cond,
                        lock,
                        epoch,
                    },
                );
            }
            Op::Sleep(cycles) => {
                self.threads[t.0 as usize].state = TState::Sleeping;
                self.push_ev(self.now + cycles, EvKind::Timer { thread: t });
            }
            Op::Exit => {
                self.threads[t.0 as usize].state = TState::Exited;
                self.threads[t.0 as usize].body = None;
                self.rt_of(t).borrow_mut().on_exit(t);
            }
        }
    }

    fn do_release(&mut self, t: ThreadId, lock: LockId) {
        let rt = self.rt_of(t);
        let oh = rt.borrow_mut().on_lock_released(t, lock);
        self.threads[t.0 as usize].pending_overhead += oh;
        let granted = self.locks.release(t, lock);
        self.wake_granted(lock, granted);
    }

    fn wake_granted(&mut self, lock: LockId, granted: Vec<Waiter>) {
        for w in granted {
            let waited = self.now - w.since;
            let rt = self.rt_of(w.thread);
            let oh = rt
                .borrow_mut()
                .on_lock_acquired(w.thread, lock, w.mode, waited, w.hint);
            self.threads[w.thread.0 as usize].pending_overhead += oh;
            self.threads[w.thread.0 as usize].state = TState::Ready;
            let wake = match (w.from_cond, w.timed_out) {
                (true, true) => Wake::CondTimedOut { waited },
                (true, false) => Wake::CondWoken { waited },
                _ => Wake::LockAcquired { waited },
            };
            self.ready.push_back((w.thread, wake));
        }
    }
}

/// A thread's view of the simulation during `resume`.
pub struct ThreadCx<'a> {
    sim: &'a mut Sim,
    t: ThreadId,
}

impl ThreadCx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> Cycles {
        self.sim.now
    }

    /// The resuming thread's id.
    pub fn me(&self) -> ThreadId {
        self.t
    }

    /// The shared frame table (borrowed; clone the handle to keep it).
    pub fn frames(&self) -> &SharedFrameTable {
        &self.sim.frames
    }

    /// Interns a frame name.
    pub fn frame(&self, name: &str) -> FrameId {
        self.sim.frames.borrow_mut().intern(name)
    }

    /// The owning process's profiling runtime.
    pub fn runtime(&self) -> Rc<RefCell<dyn Runtime>> {
        self.sim.rt_of(self.t)
    }

    /// The thread's current call stack.
    pub fn stack(&self) -> &[FrameId] {
        &self.sim.threads[self.t.0 as usize].stack
    }

    /// Enters a procedure frame (calls the gprof-style hook).
    pub fn push_frame(&mut self, f: FrameId) {
        let oh = self.sim.rt_of(self.t).borrow_mut().on_call(self.t, f);
        let th = &mut self.sim.threads[self.t.0 as usize];
        th.stack.push(f);
        th.pending_overhead += oh;
    }

    /// Leaves the current procedure frame.
    pub fn pop_frame(&mut self) {
        let oh = self.sim.rt_of(self.t).borrow_mut().on_return(self.t);
        let th = &mut self.sim.threads[self.t.0 as usize];
        th.stack.pop();
        th.pending_overhead += oh;
    }

    /// Replaces the whole call stack (convenience for flat bodies).
    pub fn set_stack(&mut self, frames: &[FrameId]) {
        let th = &mut self.sim.threads[self.t.0 as usize];
        th.stack.clear();
        th.stack.extend_from_slice(frames);
    }

    /// Charges extra overhead cycles to this thread (consumed by its
    /// next compute burst).
    pub fn charge(&mut self, cycles: Cycles) {
        self.sim.threads[self.t.0 as usize].pending_overhead += cycles;
    }

    /// Models `n` internal call/return pairs of `f` within the current
    /// work (drives the gprof baseline's per-call overhead; free for
    /// sampling profilers).
    pub fn count_calls(&mut self, f: FrameId, n: u64) {
        let oh = self.sim.rt_of(self.t).borrow_mut().on_calls(self.t, f, n);
        self.sim.threads[self.t.0 as usize].pending_overhead += oh;
    }

    /// Creates a new channel mid-run (e.g. a per-request reply pipe).
    pub fn add_channel(&mut self, latency: Cycles, cycles_per_byte: u64) -> ChanId {
        self.sim.chans.add(latency, cycles_per_byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whodunit_core::profiler::{Whodunit, WhodunitConfig};

    /// A body driven by a scripted list of ops (for engine tests).
    struct Script {
        ops: VecDeque<Op>,
        log: Rc<RefCell<Vec<String>>>,
    }

    impl Script {
        fn new(ops: Vec<Op>, log: Rc<RefCell<Vec<String>>>) -> Box<Self> {
            Box::new(Script {
                ops: ops.into(),
                log,
            })
        }
    }

    impl ThreadBody for Script {
        fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
            let entry = match &wake {
                Wake::Start => "start".to_owned(),
                Wake::Done => "done".to_owned(),
                Wake::ComputeDone => format!("computed@{}", cx.now()),
                Wake::LockAcquired { waited } => format!("locked(waited={waited})"),
                Wake::CondWoken { waited } => format!("condwoken(waited={waited})"),
                Wake::Received(m) => format!("recv({})", m.peek::<u32>().copied().unwrap_or(0)),
                Wake::Slept => format!("slept@{}", cx.now()),
                Wake::RecvTimedOut => format!("recvtimeout@{}", cx.now()),
                Wake::CondTimedOut { waited } => format!("condtimeout(waited={waited})"),
            };
            self.log.borrow_mut().push(format!("{}: {entry}", cx.me()));
            self.ops.pop_front().unwrap_or(Op::Exit)
        }
    }

    fn log() -> Rc<RefCell<Vec<String>>> {
        Rc::new(RefCell::new(Vec::new()))
    }

    #[test]
    fn compute_advances_time() {
        let mut sim = Sim::default();
        let m = sim.add_machine(1);
        let p = sim.add_unprofiled_process("p");
        let l = log();
        sim.spawn(p, m, "t", Script::new(vec![Op::Compute(5000)], l.clone()));
        sim.run_to_idle();
        assert_eq!(sim.now(), 5000);
        let entries = l.borrow();
        assert_eq!(entries.as_slice(), &["t0: start", "t0: computed@5000"]);
    }

    #[test]
    fn single_core_serializes_two_threads() {
        let mut sim = Sim::default();
        let m = sim.add_machine(1);
        let p = sim.add_unprofiled_process("p");
        let l = log();
        sim.spawn(
            p,
            m,
            "a",
            Script::new(vec![Op::Compute(1_000_000)], l.clone()),
        );
        sim.spawn(
            p,
            m,
            "b",
            Script::new(vec![Op::Compute(1_000_000)], l.clone()),
        );
        sim.run_to_idle();
        assert_eq!(
            sim.now(),
            2_000_000,
            "one core runs 2M cycles of work in 2M cycles"
        );
        assert_eq!(sim.machines.busy_cycles(MachineId(0)), 2_000_000);
    }

    #[test]
    fn two_cores_run_in_parallel() {
        let mut sim = Sim::default();
        let m = sim.add_machine(2);
        let p = sim.add_unprofiled_process("p");
        let l = log();
        sim.spawn(
            p,
            m,
            "a",
            Script::new(vec![Op::Compute(1_000_000)], l.clone()),
        );
        sim.spawn(
            p,
            m,
            "b",
            Script::new(vec![Op::Compute(1_000_000)], l.clone()),
        );
        sim.run_to_idle();
        assert_eq!(sim.now(), 1_000_000);
    }

    #[test]
    fn lock_contention_measures_wait() {
        let mut sim = Sim::default();
        let m = sim.add_machine(2);
        let p = sim.add_unprofiled_process("p");
        let lk = sim.add_lock();
        let l = log();
        // Thread a: lock, compute 1000, unlock.
        sim.spawn(
            p,
            m,
            "a",
            Script::new(
                vec![
                    Op::Lock(lk, LockMode::Exclusive),
                    Op::Compute(1000),
                    Op::Unlock(lk),
                ],
                l.clone(),
            ),
        );
        // Thread b tries the same lock.
        sim.spawn(
            p,
            m,
            "b",
            Script::new(
                vec![Op::Lock(lk, LockMode::Exclusive), Op::Unlock(lk)],
                l.clone(),
            ),
        );
        sim.run_to_idle();
        let entries = l.borrow();
        assert!(
            entries.iter().any(|e| e == "t1: locked(waited=1000)"),
            "{entries:?}"
        );
    }

    #[test]
    fn send_recv_delivers_with_delay() {
        let mut sim = Sim::default();
        let m = sim.add_machine(1);
        let p = sim.add_unprofiled_process("p");
        let ch = sim.add_channel(500, 2);
        let l = log();
        sim.spawn(p, m, "rx", Script::new(vec![Op::Recv(ch)], l.clone()));
        sim.spawn(
            p,
            m,
            "tx",
            Script::new(vec![Op::Send(ch, Msg::new(7u32, 100))], l.clone()),
        );
        sim.run_to_idle();
        // Delay = 500 + 100*2 = 700.
        assert_eq!(sim.now(), 700);
        assert!(l.borrow().iter().any(|e| e == "t0: recv(7)"));
    }

    #[test]
    fn condvar_roundtrip() {
        let mut sim = Sim::default();
        let m = sim.add_machine(2);
        let p = sim.add_unprofiled_process("p");
        let lk = sim.add_lock();
        let cv = sim.add_cond();
        let l = log();
        // Waiter: lock, cond-wait, unlock.
        sim.spawn(
            p,
            m,
            "waiter",
            Script::new(
                vec![
                    Op::Lock(lk, LockMode::Exclusive),
                    Op::CondWait(cv, lk),
                    Op::Unlock(lk),
                ],
                l.clone(),
            ),
        );
        // Notifier: compute (so the waiter is parked), lock, notify, unlock.
        sim.spawn(
            p,
            m,
            "notifier",
            Script::new(
                vec![
                    Op::Compute(10_000),
                    Op::Lock(lk, LockMode::Exclusive),
                    Op::Notify(cv, false),
                    Op::Unlock(lk),
                ],
                l.clone(),
            ),
        );
        sim.run_to_idle();
        let entries = l.borrow();
        assert!(
            entries.iter().any(|e| e.starts_with("t0: condwoken")),
            "{entries:?}"
        );
    }

    #[test]
    fn whodunit_runtime_collects_profile_through_engine() {
        let mut sim = Sim::default();
        let m = sim.add_machine(1);
        let frames = sim.frames().clone();
        let w = Rc::new(RefCell::new(Whodunit::new(
            WhodunitConfig::new(ProcId(0), "svc"),
            frames,
        )));
        let p = sim.add_process("svc", w.clone());
        let l = log();

        struct Worker {
            inner: Script,
            f: FrameId,
            first: bool,
        }
        impl ThreadBody for Worker {
            fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
                if self.first {
                    cx.push_frame(self.f);
                    self.first = false;
                }
                self.inner.resume(cx, wake)
            }
        }
        let f = sim.frame("work");
        sim.spawn(
            p,
            m,
            "w",
            Box::new(Worker {
                inner: *Script::new(vec![Op::Compute(1_000_000)], l.clone()),
                f,
                first: true,
            }),
        );
        sim.run_to_idle();
        let w = w.borrow();
        let cct = w
            .cct(whodunit_core::context::CtxId::ROOT)
            .expect("profiled");
        assert_eq!(cct.total().cycles, 1_000_000);
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run() -> (Cycles, Vec<String>) {
            let mut sim = Sim::default();
            let m = sim.add_machine(1);
            let p = sim.add_unprofiled_process("p");
            let lk = sim.add_lock();
            let ch = sim.add_channel(100, 1);
            let l = log();
            sim.spawn(
                p,
                m,
                "a",
                Script::new(
                    vec![
                        Op::Lock(lk, LockMode::Exclusive),
                        Op::Compute(777),
                        Op::Unlock(lk),
                        Op::Send(ch, Msg::new(1u32, 10)),
                    ],
                    l.clone(),
                ),
            );
            sim.spawn(
                p,
                m,
                "b",
                Script::new(
                    vec![
                        Op::Lock(lk, LockMode::Exclusive),
                        Op::Unlock(lk),
                        Op::Recv(ch),
                    ],
                    l.clone(),
                ),
            );
            sim.run_to_idle();
            let v = l.borrow().clone();
            (sim.now(), v)
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_stops_at_limit() {
        let mut sim = Sim::default();
        let m = sim.add_machine(1);
        let p = sim.add_unprofiled_process("p");
        let l = log();
        sim.spawn(
            p,
            m,
            "t",
            Script::new(vec![Op::Compute(10_000_000)], l.clone()),
        );
        sim.run_until(1_000_000);
        assert_eq!(sim.now(), 1_000_000);
        sim.run_to_idle();
        assert_eq!(sim.now(), 10_000_000);
    }

    #[test]
    fn comm_log_records_pairs_without_perturbing_the_run() {
        use whodunit_core::blackbox::CommKind;
        fn run(record: bool) -> (Cycles, Vec<String>, Option<CommLog>) {
            let mut sim = Sim::default();
            let m = sim.add_machine(1);
            let client = sim.add_unprofiled_process("client");
            let server = sim.add_unprofiled_process("server");
            let req = sim.add_channel(500, 2);
            let rsp = sim.add_channel(500, 2);
            if record {
                sim.mark_comm_origin(client);
            }
            let l = log();
            sim.spawn(
                server,
                m,
                "srv",
                Script::new(
                    vec![
                        Op::Recv(req),
                        Op::Compute(1000),
                        Op::Send(rsp, Msg::new(8u32, 50)),
                    ],
                    l.clone(),
                ),
            );
            sim.spawn(
                client,
                m,
                "cli",
                Script::new(
                    vec![Op::Send(req, Msg::new(7u32, 100)), Op::Recv(rsp)],
                    l.clone(),
                ),
            );
            sim.run_to_idle();
            let v = l.borrow().clone();
            let comm = sim.take_comm_log();
            (sim.now(), v, comm)
        }
        let (t_off, log_off, comm_off) = run(false);
        let (t_on, log_on, comm_on) = run(true);
        // Observation only: the run is bit-identical either way.
        assert_eq!(t_off, t_on);
        assert_eq!(log_off, log_on);
        assert!(comm_off.is_none());
        let comm = comm_on.expect("recording was enabled");
        assert_eq!(comm.send_count(), 2);
        assert_eq!(comm.recv_count(), 2);
        // The client's request is the sole root; the reply inherits it.
        assert_eq!(comm.truth.roots.len(), 1);
        let origins = comm.truth_origins();
        assert!(origins.values().all(|&o| o == comm.truth.roots[0]));
        // Each recv pairs the send on its own channel.
        let pairs = comm.truth_pairs();
        for (&recv, &send) in &pairs {
            let r = comm.events[recv as usize];
            let s = comm.events[send as usize];
            assert_eq!(r.kind, CommKind::Recv);
            assert_eq!(s.kind, CommKind::Send);
            assert_eq!(r.chan, s.chan);
            assert!(r.at >= s.at + 500, "delivery respects channel latency");
        }
    }

    #[test]
    fn sleep_wakes_at_deadline() {
        let mut sim = Sim::default();
        let m = sim.add_machine(1);
        let p = sim.add_unprofiled_process("p");
        let l = log();
        sim.spawn(p, m, "t", Script::new(vec![Op::Sleep(123_456)], l.clone()));
        sim.run_to_idle();
        assert_eq!(sim.now(), 123_456);
        assert!(l.borrow().iter().any(|e| e == "t0: slept@123456"));
    }
}
