//! Channels: sockets and pipes between stages (pure logic).
//!
//! A channel has a propagation latency and a per-byte cost (bandwidth);
//! delivery is scheduled by the engine after
//! `latency + bytes × cycles_per_byte` cycles. Messages carry an opaque
//! payload, a wire size, and the Whodunit synopsis piggyback (§5); the
//! piggyback's extra bytes add to the transfer time, which is how the
//! paper's ≈1% communication overhead shows up.

use crate::time::Cycles;
use std::any::Any;
use std::collections::VecDeque;
use whodunit_core::blackbox::CommTag;
use whodunit_core::ids::{ChanId, ThreadId};
use whodunit_core::synopsis::SynChain;

/// Payload cloner registered by [`Msg::replayable`]; the fault layer
/// uses it to duplicate deliveries.
type CloneFn = fn(&dyn Any) -> Box<dyn Any>;

/// A message in flight or queued at a receiver.
#[derive(Debug)]
pub struct Msg {
    /// Application payload.
    pub data: Box<dyn Any>,
    /// Application wire bytes (excluding the piggyback).
    pub bytes: u64,
    /// Whodunit synopsis chain piggybacked by the send wrapper.
    pub chain: Option<SynChain>,
    /// Payload cloner, present only for [`Msg::replayable`] messages;
    /// the fault layer needs it to duplicate deliveries.
    clone_fn: Option<CloneFn>,
    /// Ground-truth tag stamped by the engine when passive comm
    /// logging is enabled. Pure observation bookkeeping: applications
    /// and runtimes never see it, so it cannot perturb a run. A
    /// duplicated delivery keeps the tag — one send, two true recvs.
    pub(crate) tag: Option<CommTag>,
}

impl Msg {
    /// Creates a message with a typed payload.
    pub fn new<T: Any>(data: T, bytes: u64) -> Self {
        Msg {
            data: Box::new(data),
            bytes,
            chain: None,
            clone_fn: None,
            tag: None,
        }
    }

    /// Creates a message whose payload the fault layer may duplicate
    /// on the wire (`T: Clone`). Use this on channels that carry
    /// duplication faults; a plain [`Msg::new`] message is delivered
    /// at most once even when a duplication fault fires.
    pub fn replayable<T: Any + Clone>(data: T, bytes: u64) -> Self {
        fn clone_box<T: Any + Clone>(b: &dyn Any) -> Box<dyn Any> {
            Box::new(
                b.downcast_ref::<T>()
                    .expect("cloner registered for the payload type")
                    .clone(),
            )
        }
        Msg {
            data: Box::new(data),
            bytes,
            chain: None,
            clone_fn: Some(clone_box::<T>),
            tag: None,
        }
    }

    /// Clones the message if its payload supports it
    /// (see [`Msg::replayable`]).
    pub fn try_clone(&self) -> Option<Msg> {
        let f = self.clone_fn?;
        Some(Msg {
            data: f(self.data.as_ref()),
            bytes: self.bytes,
            chain: self.chain.clone(),
            clone_fn: self.clone_fn,
            tag: self.tag,
        })
    }

    /// Downcasts the payload, consuming the message.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not a `T` — an application bug.
    pub fn take<T: Any>(self) -> T {
        *self
            .data
            .downcast::<T>()
            .expect("message payload has unexpected type")
    }

    /// Borrows the payload as `T`, if it is one.
    pub fn peek<T: Any>(&self) -> Option<&T> {
        self.data.downcast_ref::<T>()
    }

    /// Downcasts the payload, returning the message back on a type
    /// mismatch (for channels carrying several request kinds).
    pub fn try_take<T: Any>(self) -> Result<T, Msg> {
        let Msg {
            data,
            bytes,
            chain,
            clone_fn,
            tag,
        } = self;
        match data.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(data) => Err(Msg {
                data,
                bytes,
                chain,
                clone_fn,
                tag,
            }),
        }
    }
}

#[derive(Debug, Default)]
struct ChanState {
    latency: Cycles,
    cycles_per_byte: u64,
    buffered: VecDeque<Msg>,
    waiting: VecDeque<ThreadId>,
    /// Total bytes ever sent (payload + piggyback), for reports.
    bytes_sent: u64,
    msgs_sent: u64,
    /// Fault accounting: messages dropped / duplicated / delayed by the
    /// fault layer. `bytes_sent`/`msgs_sent` count the send side, so a
    /// dropped message is still "sent"; these counters record what
    /// happened to it on the wire.
    dropped: u64,
    duplicated: u64,
    delayed: u64,
}

/// All channels of a simulation.
#[derive(Debug, Default)]
pub struct ChanTable {
    chans: Vec<ChanState>,
}

impl ChanTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a channel with the given delay parameters.
    pub fn add(&mut self, latency: Cycles, cycles_per_byte: u64) -> ChanId {
        self.chans.push(ChanState {
            latency,
            cycles_per_byte,
            ..ChanState::default()
        });
        ChanId((self.chans.len() - 1) as u32)
    }

    /// Transfer delay for `bytes` on `chan`, and accounting.
    pub fn send_delay(&mut self, chan: ChanId, bytes: u64) -> Cycles {
        let c = &mut self.chans[chan.0 as usize];
        c.bytes_sent += bytes;
        c.msgs_sent += 1;
        c.latency + bytes * c.cycles_per_byte
    }

    /// Delivers `msg` at the receiver side: hands it to a waiting
    /// receiver (returned) or buffers it.
    pub fn deliver(&mut self, chan: ChanId, msg: Msg) -> Option<(ThreadId, Msg)> {
        let c = &mut self.chans[chan.0 as usize];
        if let Some(t) = c.waiting.pop_front() {
            Some((t, msg))
        } else {
            c.buffered.push_back(msg);
            None
        }
    }

    /// A receiver asks for a message: returns one if buffered,
    /// otherwise registers the receiver as waiting.
    pub fn recv(&mut self, chan: ChanId, t: ThreadId) -> Option<Msg> {
        let c = &mut self.chans[chan.0 as usize];
        if let Some(m) = c.buffered.pop_front() {
            Some(m)
        } else {
            c.waiting.push_back(t);
            None
        }
    }

    /// Removes `t` from the channel's receiver queue (receive timeout
    /// expired, or the thread crashed). A no-op if `t` is not waiting.
    pub fn cancel_wait(&mut self, chan: ChanId, t: ThreadId) {
        self.chans[chan.0 as usize].waiting.retain(|&w| w != t);
    }

    /// Removes `t` from every channel's receiver queue (process crash).
    pub fn purge_thread(&mut self, t: ThreadId) {
        for c in &mut self.chans {
            c.waiting.retain(|&w| w != t);
        }
    }

    /// Records a message dropped by the fault layer.
    pub fn note_dropped(&mut self, chan: ChanId) {
        self.chans[chan.0 as usize].dropped += 1;
    }

    /// Records a message duplicated by the fault layer.
    pub fn note_duplicated(&mut self, chan: ChanId) {
        self.chans[chan.0 as usize].duplicated += 1;
    }

    /// Records a message delayed by the fault layer.
    pub fn note_delayed(&mut self, chan: ChanId) {
        self.chans[chan.0 as usize].delayed += 1;
    }

    /// Messages dropped on `chan` by the fault layer.
    pub fn dropped(&self, chan: ChanId) -> u64 {
        self.chans[chan.0 as usize].dropped
    }

    /// Messages duplicated on `chan` by the fault layer.
    pub fn duplicated(&self, chan: ChanId) -> u64 {
        self.chans[chan.0 as usize].duplicated
    }

    /// Messages delayed on `chan` by the fault layer.
    pub fn delayed(&self, chan: ChanId) -> u64 {
        self.chans[chan.0 as usize].delayed
    }

    /// Messages dropped over all channels.
    pub fn total_dropped(&self) -> u64 {
        self.chans.iter().map(|c| c.dropped).sum()
    }

    /// Messages duplicated over all channels.
    pub fn total_duplicated(&self) -> u64 {
        self.chans.iter().map(|c| c.duplicated).sum()
    }

    /// Messages delayed over all channels.
    pub fn total_delayed(&self) -> u64 {
        self.chans.iter().map(|c| c.delayed).sum()
    }

    /// Buffered message count (for tests).
    pub fn buffered(&self, chan: ChanId) -> usize {
        self.chans[chan.0 as usize].buffered.len()
    }

    /// Total bytes sent over `chan`.
    pub fn bytes_sent(&self, chan: ChanId) -> u64 {
        self.chans[chan.0 as usize].bytes_sent
    }

    /// Total messages sent over `chan`.
    pub fn msgs_sent(&self, chan: ChanId) -> u64 {
        self.chans[chan.0 as usize].msgs_sent
    }

    /// Total bytes sent over all channels (payload + piggyback).
    pub fn total_bytes(&self) -> u64 {
        self.chans.iter().map(|c| c.bytes_sent).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_includes_latency_and_bandwidth() {
        let mut ct = ChanTable::new();
        let ch = ct.add(1000, 20);
        assert_eq!(ct.send_delay(ch, 50), 1000 + 50 * 20);
        assert_eq!(ct.bytes_sent(ch), 50);
        assert_eq!(ct.msgs_sent(ch), 1);
    }

    #[test]
    fn deliver_to_waiting_receiver() {
        let mut ct = ChanTable::new();
        let ch = ct.add(0, 0);
        let t = ThreadId(7);
        assert!(ct.recv(ch, t).is_none());
        let out = ct.deliver(ch, Msg::new(41u32, 4));
        let (woken, msg) = out.expect("handed to waiter");
        assert_eq!(woken, t);
        assert_eq!(msg.take::<u32>(), 41);
    }

    #[test]
    fn buffering_preserves_fifo_order() {
        let mut ct = ChanTable::new();
        let ch = ct.add(0, 0);
        assert!(ct.deliver(ch, Msg::new(1u32, 0)).is_none());
        assert!(ct.deliver(ch, Msg::new(2u32, 0)).is_none());
        assert_eq!(ct.buffered(ch), 2);
        let t = ThreadId(1);
        assert_eq!(ct.recv(ch, t).unwrap().take::<u32>(), 1);
        assert_eq!(ct.recv(ch, t).unwrap().take::<u32>(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let m = Msg::new("hello", 5);
        assert_eq!(m.peek::<&str>(), Some(&"hello"));
        assert_eq!(m.peek::<u32>(), None);
        assert_eq!(m.take::<&str>(), "hello");
    }

    #[test]
    fn try_take_returns_message_on_mismatch() {
        let m = Msg::new(7u32, 5);
        let m = m.try_take::<String>().unwrap_err();
        assert_eq!(m.bytes, 5);
        assert_eq!(m.try_take::<u32>().unwrap(), 7);
    }

    #[test]
    fn replayable_clones_payload_plain_does_not() {
        let m = Msg::replayable(9u32, 4);
        let c = m.try_clone().expect("replayable clones");
        assert_eq!(c.bytes, 4);
        assert_eq!(c.take::<u32>(), 9);
        assert_eq!(m.take::<u32>(), 9, "original unaffected");
        assert!(Msg::new(9u32, 4).try_clone().is_none());
    }

    #[test]
    fn clone_of_clone_still_clones() {
        let m = Msg::replayable(String::from("x"), 1);
        let c = m.try_clone().unwrap();
        assert!(c.try_clone().is_some(), "cloner survives cloning");
    }

    #[test]
    fn drop_dup_delay_accounting_is_per_channel() {
        let mut ct = ChanTable::new();
        let a = ct.add(0, 0);
        let b = ct.add(0, 0);
        // The send side always accounts the send, whatever the wire
        // later does to the message.
        ct.send_delay(a, 10);
        ct.send_delay(a, 10);
        ct.send_delay(b, 10);
        ct.note_dropped(a);
        ct.note_duplicated(a);
        ct.note_duplicated(a);
        ct.note_delayed(b);
        assert_eq!((ct.dropped(a), ct.duplicated(a), ct.delayed(a)), (1, 2, 0));
        assert_eq!((ct.dropped(b), ct.duplicated(b), ct.delayed(b)), (0, 0, 1));
        assert_eq!(ct.total_dropped(), 1);
        assert_eq!(ct.total_duplicated(), 2);
        assert_eq!(ct.total_delayed(), 1);
        assert_eq!(ct.msgs_sent(a), 2, "drop/dup do not change msgs_sent");
        assert_eq!(ct.bytes_sent(a), 20);
    }

    #[test]
    fn duplicated_delivery_buffers_both_copies() {
        let mut ct = ChanTable::new();
        let ch = ct.add(0, 0);
        let m = Msg::replayable(5u32, 8);
        let dup = m.try_clone().unwrap();
        ct.send_delay(ch, 8);
        assert!(ct.deliver(ch, m).is_none());
        assert!(ct.deliver(ch, dup).is_none());
        ct.note_duplicated(ch);
        assert_eq!(ct.buffered(ch), 2, "one send, two buffered deliveries");
        assert_eq!(ct.msgs_sent(ch), 1);
        assert_eq!(ct.bytes_sent(ch), 8, "the duplicate is not re-billed");
        let t = ThreadId(0);
        assert_eq!(ct.recv(ch, t).unwrap().take::<u32>(), 5);
        assert_eq!(ct.recv(ch, t).unwrap().take::<u32>(), 5);
    }

    #[test]
    fn blocked_receivers_are_served_fifo() {
        let mut ct = ChanTable::new();
        let ch = ct.add(0, 0);
        let (t1, t2, t3) = (ThreadId(1), ThreadId(2), ThreadId(3));
        assert!(ct.recv(ch, t1).is_none());
        assert!(ct.recv(ch, t2).is_none());
        assert!(ct.recv(ch, t3).is_none());
        let (w, m) = ct.deliver(ch, Msg::new(1u32, 0)).unwrap();
        assert_eq!((w, m.take::<u32>()), (t1, 1));
        let (w, m) = ct.deliver(ch, Msg::new(2u32, 0)).unwrap();
        assert_eq!((w, m.take::<u32>()), (t2, 2));
        let (w, m) = ct.deliver(ch, Msg::new(3u32, 0)).unwrap();
        assert_eq!((w, m.take::<u32>()), (t3, 3));
    }

    #[test]
    fn cancel_wait_skips_timed_out_receiver() {
        let mut ct = ChanTable::new();
        let ch = ct.add(0, 0);
        let (t1, t2) = (ThreadId(1), ThreadId(2));
        assert!(ct.recv(ch, t1).is_none());
        assert!(ct.recv(ch, t2).is_none());
        ct.cancel_wait(ch, t1);
        let (w, _) = ct.deliver(ch, Msg::new(0u32, 0)).unwrap();
        assert_eq!(w, t2, "cancelled receiver is not handed the message");
    }

    #[test]
    fn purge_thread_clears_every_queue() {
        let mut ct = ChanTable::new();
        let a = ct.add(0, 0);
        let b = ct.add(0, 0);
        let t = ThreadId(7);
        assert!(ct.recv(a, t).is_none());
        assert!(ct.recv(b, t).is_none());
        ct.purge_thread(t);
        assert!(
            ct.deliver(a, Msg::new(0u32, 0)).is_none(),
            "message buffers instead of waking the purged thread"
        );
        assert!(ct.deliver(b, Msg::new(0u32, 0)).is_none());
    }
}
