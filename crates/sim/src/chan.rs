//! Channels: sockets and pipes between stages (pure logic).
//!
//! A channel has a propagation latency and a per-byte cost (bandwidth);
//! delivery is scheduled by the engine after
//! `latency + bytes × cycles_per_byte` cycles. Messages carry an opaque
//! payload, a wire size, and the Whodunit synopsis piggyback (§5); the
//! piggyback's extra bytes add to the transfer time, which is how the
//! paper's ≈1% communication overhead shows up.

use crate::time::Cycles;
use std::any::Any;
use std::collections::VecDeque;
use whodunit_core::ids::{ChanId, ThreadId};
use whodunit_core::synopsis::SynChain;

/// A message in flight or queued at a receiver.
#[derive(Debug)]
pub struct Msg {
    /// Application payload.
    pub data: Box<dyn Any>,
    /// Application wire bytes (excluding the piggyback).
    pub bytes: u64,
    /// Whodunit synopsis chain piggybacked by the send wrapper.
    pub chain: Option<SynChain>,
}

impl Msg {
    /// Creates a message with a typed payload.
    pub fn new<T: Any>(data: T, bytes: u64) -> Self {
        Msg {
            data: Box::new(data),
            bytes,
            chain: None,
        }
    }

    /// Downcasts the payload, consuming the message.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not a `T` — an application bug.
    pub fn take<T: Any>(self) -> T {
        *self
            .data
            .downcast::<T>()
            .expect("message payload has unexpected type")
    }

    /// Borrows the payload as `T`, if it is one.
    pub fn peek<T: Any>(&self) -> Option<&T> {
        self.data.downcast_ref::<T>()
    }

    /// Downcasts the payload, returning the message back on a type
    /// mismatch (for channels carrying several request kinds).
    pub fn try_take<T: Any>(self) -> Result<T, Msg> {
        let Msg { data, bytes, chain } = self;
        match data.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(data) => Err(Msg { data, bytes, chain }),
        }
    }
}

#[derive(Debug, Default)]
struct ChanState {
    latency: Cycles,
    cycles_per_byte: u64,
    buffered: VecDeque<Msg>,
    waiting: VecDeque<ThreadId>,
    /// Total bytes ever sent (payload + piggyback), for reports.
    bytes_sent: u64,
    msgs_sent: u64,
}

/// All channels of a simulation.
#[derive(Debug, Default)]
pub struct ChanTable {
    chans: Vec<ChanState>,
}

impl ChanTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a channel with the given delay parameters.
    pub fn add(&mut self, latency: Cycles, cycles_per_byte: u64) -> ChanId {
        self.chans.push(ChanState {
            latency,
            cycles_per_byte,
            ..ChanState::default()
        });
        ChanId((self.chans.len() - 1) as u32)
    }

    /// Transfer delay for `bytes` on `chan`, and accounting.
    pub fn send_delay(&mut self, chan: ChanId, bytes: u64) -> Cycles {
        let c = &mut self.chans[chan.0 as usize];
        c.bytes_sent += bytes;
        c.msgs_sent += 1;
        c.latency + bytes * c.cycles_per_byte
    }

    /// Delivers `msg` at the receiver side: hands it to a waiting
    /// receiver (returned) or buffers it.
    pub fn deliver(&mut self, chan: ChanId, msg: Msg) -> Option<(ThreadId, Msg)> {
        let c = &mut self.chans[chan.0 as usize];
        if let Some(t) = c.waiting.pop_front() {
            Some((t, msg))
        } else {
            c.buffered.push_back(msg);
            None
        }
    }

    /// A receiver asks for a message: returns one if buffered,
    /// otherwise registers the receiver as waiting.
    pub fn recv(&mut self, chan: ChanId, t: ThreadId) -> Option<Msg> {
        let c = &mut self.chans[chan.0 as usize];
        if let Some(m) = c.buffered.pop_front() {
            Some(m)
        } else {
            c.waiting.push_back(t);
            None
        }
    }

    /// Buffered message count (for tests).
    pub fn buffered(&self, chan: ChanId) -> usize {
        self.chans[chan.0 as usize].buffered.len()
    }

    /// Total bytes sent over `chan`.
    pub fn bytes_sent(&self, chan: ChanId) -> u64 {
        self.chans[chan.0 as usize].bytes_sent
    }

    /// Total messages sent over `chan`.
    pub fn msgs_sent(&self, chan: ChanId) -> u64 {
        self.chans[chan.0 as usize].msgs_sent
    }

    /// Total bytes sent over all channels (payload + piggyback).
    pub fn total_bytes(&self) -> u64 {
        self.chans.iter().map(|c| c.bytes_sent).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_includes_latency_and_bandwidth() {
        let mut ct = ChanTable::new();
        let ch = ct.add(1000, 20);
        assert_eq!(ct.send_delay(ch, 50), 1000 + 50 * 20);
        assert_eq!(ct.bytes_sent(ch), 50);
        assert_eq!(ct.msgs_sent(ch), 1);
    }

    #[test]
    fn deliver_to_waiting_receiver() {
        let mut ct = ChanTable::new();
        let ch = ct.add(0, 0);
        let t = ThreadId(7);
        assert!(ct.recv(ch, t).is_none());
        let out = ct.deliver(ch, Msg::new(41u32, 4));
        let (woken, msg) = out.expect("handed to waiter");
        assert_eq!(woken, t);
        assert_eq!(msg.take::<u32>(), 41);
    }

    #[test]
    fn buffering_preserves_fifo_order() {
        let mut ct = ChanTable::new();
        let ch = ct.add(0, 0);
        assert!(ct.deliver(ch, Msg::new(1u32, 0)).is_none());
        assert!(ct.deliver(ch, Msg::new(2u32, 0)).is_none());
        assert_eq!(ct.buffered(ch), 2);
        let t = ThreadId(1);
        assert_eq!(ct.recv(ch, t).unwrap().take::<u32>(), 1);
        assert_eq!(ct.recv(ch, t).unwrap().take::<u32>(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let m = Msg::new("hello", 5);
        assert_eq!(m.peek::<&str>(), Some(&"hello"));
        assert_eq!(m.peek::<u32>(), None);
        assert_eq!(m.take::<&str>(), "hello");
    }

    #[test]
    fn try_take_returns_message_on_mismatch() {
        let m = Msg::new(7u32, 5);
        let m = m.try_take::<String>().unwrap_err();
        assert_eq!(m.bytes, 5);
        assert_eq!(m.try_take::<u32>().unwrap(), 7);
    }
}
