//! Pluggable ready-queue scheduling policies.
//!
//! The engine keeps a queue of threads that became runnable at the
//! current virtual instant. Which of them resumes first is a scheduling
//! *tie-break*: every choice is a legal interleaving, but stitching,
//! epoch pruning, and crosstalk attribution may behave differently
//! under different orders. A [`SchedulePolicy`] makes the tie-break
//! explicit and seedable, so the chaos explorer can treat each seed as
//! a distinct legal schedule while keeping every run bit-reproducible.
//!
//! The default is [`SchedulePolicy::Fifo`], which reproduces the
//! engine's historical behaviour exactly.

use std::fmt;
use std::str::FromStr;

/// How the engine breaks ties among simultaneously-ready threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Resume in the order threads became ready (the historical
    /// behaviour; deterministic without a seed).
    #[default]
    Fifo,
    /// Resume the most recently readied thread first (stack order;
    /// maximizes "unfair" starvation-like interleavings).
    Lifo,
    /// Pick a uniformly random ready thread, from a seeded stream.
    Random {
        /// Seed of the policy's private random stream.
        seed: u64,
    },
    /// Mostly FIFO, but each pick swaps in a random queue entry with
    /// probability `swap_ppm` / 1e6 — small perturbations of the
    /// realistic order, exploring schedules "near" production.
    Perturb {
        /// Seed of the policy's private random stream.
        seed: u64,
        /// Perturbation probability in parts per million.
        swap_ppm: u32,
    },
}

impl fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulePolicy::Fifo => write!(f, "fifo"),
            SchedulePolicy::Lifo => write!(f, "lifo"),
            SchedulePolicy::Random { seed } => write!(f, "random:{seed}"),
            SchedulePolicy::Perturb { seed, swap_ppm } => {
                write!(f, "perturb:{seed}:{swap_ppm}")
            }
        }
    }
}

impl FromStr for SchedulePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        let num = |p: Option<&str>, what: &str| -> Result<u64, String> {
            p.ok_or_else(|| format!("policy '{s}': missing {what}"))?
                .parse::<u64>()
                .map_err(|_| format!("policy '{s}': bad {what}"))
        };
        let policy = match head {
            "fifo" => SchedulePolicy::Fifo,
            "lifo" => SchedulePolicy::Lifo,
            "random" => SchedulePolicy::Random {
                seed: num(parts.next(), "seed")?,
            },
            "perturb" => SchedulePolicy::Perturb {
                seed: num(parts.next(), "seed")?,
                swap_ppm: num(parts.next(), "swap_ppm")? as u32,
            },
            other => return Err(format!("unknown schedule policy '{other}'")),
        };
        if parts.next().is_some() {
            return Err(format!("policy '{s}': trailing fields"));
        }
        Ok(policy)
    }
}

/// The live tie-break state: a policy plus its private random stream.
#[derive(Clone, Debug, Default)]
pub struct Scheduler {
    policy: SchedulePolicy,
    state: u64,
}

impl Scheduler {
    /// Builds the scheduler for `policy`.
    pub fn new(policy: SchedulePolicy) -> Self {
        let state = match policy {
            SchedulePolicy::Fifo | SchedulePolicy::Lifo => 0,
            SchedulePolicy::Random { seed } => seed,
            SchedulePolicy::Perturb { seed, .. } => seed,
        };
        Scheduler { policy, state }
    }

    /// The installed policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Picks the index of the next ready-queue entry to resume, given
    /// the queue length. Indices count from the front (oldest entry).
    ///
    /// The pick is a pure function of the policy seed and the sequence
    /// of calls so far — never of wall-clock time or queue contents —
    /// which is what keeps seeded runs bit-reproducible.
    pub fn pick(&mut self, len: usize) -> usize {
        debug_assert!(len > 0, "pick() on an empty ready queue");
        match self.policy {
            SchedulePolicy::Fifo => 0,
            SchedulePolicy::Lifo => len - 1,
            SchedulePolicy::Random { .. } => (self.next_u64() % len as u64) as usize,
            SchedulePolicy::Perturb { swap_ppm, .. } => {
                // Two draws per pick, unconditionally, so the stream
                // position is a pure function of the pick count.
                let roll = self.next_u64() % 1_000_000;
                let alt = (self.next_u64() % len as u64) as usize;
                if roll < swap_ppm as u64 {
                    alt
                } else {
                    0
                }
            }
        }
    }

    /// splitmix64, the same generator the fault plan uses.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_lifo_are_degenerate() {
        let mut s = Scheduler::new(SchedulePolicy::Fifo);
        assert_eq!(s.pick(5), 0);
        assert_eq!(s.pick(1), 0);
        let mut s = Scheduler::new(SchedulePolicy::Lifo);
        assert_eq!(s.pick(5), 4);
        assert_eq!(s.pick(1), 0);
    }

    #[test]
    fn random_is_seed_deterministic_and_in_range() {
        let mut a = Scheduler::new(SchedulePolicy::Random { seed: 42 });
        let mut b = Scheduler::new(SchedulePolicy::Random { seed: 42 });
        let picks_a: Vec<_> = (0..100).map(|_| a.pick(7)).collect();
        let picks_b: Vec<_> = (0..100).map(|_| b.pick(7)).collect();
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().all(|&i| i < 7));
        // Different seeds diverge.
        let mut c = Scheduler::new(SchedulePolicy::Random { seed: 43 });
        let picks_c: Vec<_> = (0..100).map(|_| c.pick(7)).collect();
        assert_ne!(picks_a, picks_c);
    }

    #[test]
    fn perturb_zero_ppm_is_fifo_and_full_ppm_is_random() {
        let mut s = Scheduler::new(SchedulePolicy::Perturb {
            seed: 1,
            swap_ppm: 0,
        });
        assert!((0..50).all(|_| s.pick(9) == 0));
        let mut s = Scheduler::new(SchedulePolicy::Perturb {
            seed: 1,
            swap_ppm: 1_000_000,
        });
        assert!((0..200).any(|_| s.pick(9) != 0));
    }

    #[test]
    fn policy_roundtrips_through_strings() {
        for p in [
            SchedulePolicy::Fifo,
            SchedulePolicy::Lifo,
            SchedulePolicy::Random { seed: 987 },
            SchedulePolicy::Perturb {
                seed: 3,
                swap_ppm: 250_000,
            },
        ] {
            assert_eq!(p.to_string().parse::<SchedulePolicy>(), Ok(p));
        }
        assert!("nope".parse::<SchedulePolicy>().is_err());
        assert!("random".parse::<SchedulePolicy>().is_err());
        assert!("random:1:2".parse::<SchedulePolicy>().is_err());
        assert!("perturb:1:x".parse::<SchedulePolicy>().is_err());
    }
}
