//! SEDA stage queues and workers (§4.2, Figure 5).
//!
//! A SEDA application is a graph of *stages*, each with an input queue
//! and a pool of worker threads. [`StageWorker`] is the instrumented
//! stage loop of Figure 5 as a reusable [`ThreadBody`]: it dequeues an
//! element (calling the runtime's `on_stage_dequeue` hook, which
//! concatenates the element's transaction context with the stage), runs
//! the application handler, computes, and emits new elements to
//! downstream queues (stamping them via `on_stage_make_elem`).
//!
//! Queues are protected by a simulation lock + condition variable, so
//! stage hand-offs also exercise the lock hook path.

use crate::chan::Msg;
use crate::engine::{Op, ThreadBody, ThreadCx, Wake};
use crate::time::{CondId, Cycles};
use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::{ChanId, LockId, LockMode};
use whodunit_core::seda::StageElemCtx;

/// A stage input queue (share via `Rc<RefCell<_>>`).
#[derive(Debug)]
pub struct StageQueue {
    /// Lock protecting the queue.
    pub lock: LockId,
    /// Condition signalled on enqueue.
    pub cond: CondId,
    elems: VecDeque<(StageElemCtx, Box<dyn Any>)>,
    enqueued: u64,
}

impl StageQueue {
    /// Creates a queue guarded by `lock`/`cond`.
    pub fn new(lock: LockId, cond: CondId) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(StageQueue {
            lock,
            cond,
            elems: VecDeque::new(),
            enqueued: 0,
        }))
    }

    /// Pushes an element with its transaction context.
    pub fn push(&mut self, ctx: StageElemCtx, data: Box<dyn Any>) {
        self.elems.push_back((ctx, data));
        self.enqueued += 1;
    }

    /// Pops the oldest element.
    pub fn pop(&mut self) -> Option<(StageElemCtx, Box<dyn Any>)> {
        self.elems.pop_front()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Total elements ever enqueued.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }
}

/// A pending downstream emit: target queue and element payload.
pub type Emit = (Rc<RefCell<StageQueue>>, Box<dyn Any>);

/// What a stage handler wants done after it ran.
pub struct StageOutcome {
    /// CPU cycles the handler consumes (attributed to the stage's
    /// transaction context).
    pub compute: Cycles,
    /// Elements to enqueue downstream.
    pub emits: Vec<Emit>,
    /// Messages to send over channels (e.g. the response socket).
    pub sends: Vec<(ChanId, Msg)>,
}

impl StageOutcome {
    /// An outcome that only computes.
    pub fn compute(cycles: Cycles) -> Self {
        StageOutcome {
            compute: cycles,
            emits: Vec::new(),
            sends: Vec::new(),
        }
    }

    /// Adds a downstream emit.
    pub fn emit(mut self, q: &Rc<RefCell<StageQueue>>, data: impl Any) -> Self {
        self.emits.push((q.clone(), Box::new(data)));
        self
    }

    /// Adds a channel send.
    pub fn send(mut self, chan: ChanId, msg: Msg) -> Self {
        self.sends.push((chan, msg));
        self
    }
}

/// The application logic of one stage.
pub type StageHandler = Box<dyn FnMut(&mut ThreadCx<'_>, Box<dyn Any>) -> StageOutcome>;

enum WState {
    /// Initial state: about to lock the input queue.
    Idle,
    /// Requested the input-queue lock; next wake means we hold it.
    CheckQueue,
    /// Unlocking the input queue after a dequeue; element in hand.
    Dequeued(Option<Box<dyn Any>>),
    /// Computing the handler's cycles.
    Computing,
    /// Requested the lock of the next emit's target queue.
    EmitLocked,
    /// Pushed the element; unlocking the target queue, then notify.
    EmitNotify(CondId),
    /// Notify issued; continue with the remaining effects.
    EffectsNext,
    /// A channel send was issued; continue with remaining effects.
    EffectsNext2,
}

/// The Figure 5 instrumented stage worker loop.
pub struct StageWorker {
    stage: FrameId,
    queue: Rc<RefCell<StageQueue>>,
    handler: StageHandler,
    state: WState,
    emits: VecDeque<Emit>,
    sends: VecDeque<(ChanId, Msg)>,
}

impl StageWorker {
    /// Creates a worker for `stage` consuming from `queue`.
    pub fn new(stage: FrameId, queue: Rc<RefCell<StageQueue>>, handler: StageHandler) -> Box<Self> {
        Box::new(StageWorker {
            stage,
            queue,
            handler,
            state: WState::Idle,
            emits: VecDeque::new(),
            sends: VecDeque::new(),
        })
    }

    /// Issues the next pending effect, or finishes the element.
    fn next_effect(&mut self, cx: &mut ThreadCx<'_>) -> Op {
        if let Some((q, _)) = self.emits.front() {
            let lock = q.borrow().lock;
            self.state = WState::EmitLocked;
            return Op::Lock(lock, LockMode::Exclusive);
        }
        if let Some((chan, msg)) = self.sends.pop_front() {
            self.state = WState::EffectsNext2;
            return Op::Send(chan, msg);
        }
        // Element fully processed.
        cx.runtime().borrow_mut().on_stage_elem_done(cx.me());
        cx.pop_frame();
        self.state = WState::CheckQueue;
        Op::Lock(self.queue.borrow().lock, LockMode::Exclusive)
    }
}

impl ThreadBody for StageWorker {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match std::mem::replace(&mut self.state, WState::Idle) {
            WState::Idle => {
                self.state = WState::CheckQueue;
                Op::Lock(self.queue.borrow().lock, LockMode::Exclusive)
            }
            WState::CheckQueue => {
                // We hold the input-queue lock (LockAcquired or
                // CondWoken after an empty check).
                debug_assert!(matches!(
                    wake,
                    Wake::LockAcquired { .. } | Wake::CondWoken { .. }
                ));
                let popped = self.queue.borrow_mut().pop();
                match popped {
                    None => {
                        let (lock, cond) = {
                            let q = self.queue.borrow();
                            (q.lock, q.cond)
                        };
                        self.state = WState::CheckQueue;
                        Op::CondWait(cond, lock)
                    }
                    Some((ctx, data)) => {
                        // Figure 5 lines 5–6: current context becomes
                        // elem->tran_ctxt + CURRENT_STAGE.
                        cx.runtime()
                            .borrow_mut()
                            .on_stage_dequeue(cx.me(), ctx, self.stage);
                        cx.push_frame(self.stage);
                        self.state = WState::Dequeued(Some(data));
                        Op::Unlock(self.queue.borrow().lock)
                    }
                }
            }
            WState::Dequeued(data) => {
                let data = data.expect("element data present");
                let outcome = (self.handler)(cx, data);
                self.emits = outcome.emits.into();
                self.sends = outcome.sends.into();
                self.state = WState::Computing;
                Op::Compute(outcome.compute)
            }
            WState::Computing => self.next_effect(cx),
            WState::EmitLocked => {
                // Holding the target queue's lock: push the element
                // stamped with the current transaction context
                // (Figure 5 line 12).
                let (q, data) = self.emits.pop_front().expect("emit pending");
                let ctx = cx.runtime().borrow_mut().on_stage_make_elem(cx.me());
                let (lock, cond) = {
                    let mut qb = q.borrow_mut();
                    qb.push(ctx, data);
                    (qb.lock, qb.cond)
                };
                self.state = WState::EmitNotify(cond);
                Op::Unlock(lock)
            }
            WState::EmitNotify(cond) => {
                self.state = WState::EffectsNext;
                Op::Notify(cond, false)
            }
            WState::EffectsNext | WState::EffectsNext2 => self.next_effect(cx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Sim, SimConfig};
    use whodunit_core::context::CtxId;
    use whodunit_core::ids::ProcId;
    use whodunit_core::profiler::{Whodunit, WhodunitConfig};
    use whodunit_core::rt::Runtime;

    /// Builds a 2-stage pipeline: an injector pushes N elements into
    /// stage A; stage A computes and forwards to stage B; stage B
    /// computes and counts completions.
    #[test]
    fn two_stage_pipeline_flows_and_profiles() {
        let mut sim = Sim::new(SimConfig::default());
        let m = sim.add_machine(2);
        let frames = sim.frames().clone();
        let w = Rc::new(RefCell::new(Whodunit::new(
            WhodunitConfig::new(ProcId(0), "seda"),
            frames,
        )));
        let p = sim.add_process("seda", w.clone());

        let la = sim.add_lock();
        let ca = sim.add_cond();
        let lb = sim.add_lock();
        let cb = sim.add_cond();
        let qa = StageQueue::new(la, ca);
        let qb = StageQueue::new(lb, cb);

        let stage_a = sim.frame("StageA");
        let stage_b = sim.frame("StageB");

        let done = Rc::new(RefCell::new(0u32));

        let qb2 = qb.clone();
        sim.spawn(
            p,
            m,
            "workerA",
            StageWorker::new(
                stage_a,
                qa.clone(),
                Box::new(move |_cx, data| {
                    StageOutcome::compute(10_000).emit(&qb2, data.downcast::<u32>().unwrap())
                }),
            ),
        );
        let done2 = done.clone();
        sim.spawn(
            p,
            m,
            "workerB",
            StageWorker::new(
                stage_b,
                qb.clone(),
                Box::new(move |_cx, _data| {
                    *done2.borrow_mut() += 1;
                    StageOutcome::compute(20_000)
                }),
            ),
        );

        // Injector: pushes all elements under one lock, then notifies.
        struct BatchInjector {
            q: Rc<RefCell<StageQueue>>,
            n: u32,
            phase: u8,
        }
        impl ThreadBody for BatchInjector {
            fn resume(&mut self, cx: &mut ThreadCx<'_>, _wake: Wake) -> Op {
                let (lock, cond) = {
                    let q = self.q.borrow();
                    (q.lock, q.cond)
                };
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Op::Lock(lock, LockMode::Exclusive)
                    }
                    1 => {
                        for i in 0..self.n {
                            let ctx = cx.runtime().borrow_mut().on_stage_make_elem(cx.me());
                            self.q.borrow_mut().push(ctx, Box::new(i));
                        }
                        self.phase = 2;
                        Op::Unlock(lock)
                    }
                    2 => {
                        self.phase = 3;
                        Op::Notify(cond, true)
                    }
                    _ => Op::Exit,
                }
            }
        }
        sim.spawn(
            p,
            m,
            "inject",
            Box::new(BatchInjector {
                q: qa.clone(),
                n: 3,
                phase: 0,
            }),
        );

        sim.run_until(3_000_000_000);
        assert_eq!(*done.borrow(), 3, "all elements traverse both stages");

        // The profiler must show a StageA → StageB context with B's
        // compute cycles.
        let w = w.borrow();
        let ctxs = w.profiled_contexts();
        let ab: Vec<CtxId> = ctxs
            .iter()
            .copied()
            .filter(|&c| w.ctx_string(c) == "StageA -> StageB")
            .collect();
        assert_eq!(
            ab.len(),
            1,
            "contexts: {:?}",
            ctxs.iter().map(|&c| w.ctx_string(c)).collect::<Vec<_>>()
        );
        let cct = w.cct(ab[0]).unwrap();
        assert_eq!(cct.total().cycles, 3 * 20_000);
        assert!(w.dump().is_some());
    }

    #[test]
    fn idle_workers_block_until_notified() {
        let mut sim = Sim::new(SimConfig::default());
        let m = sim.add_machine(1);
        let p = sim.add_unprofiled_process("seda");
        let l = sim.add_lock();
        let c = sim.add_cond();
        let q = StageQueue::new(l, c);
        let stage = sim.frame("S");
        sim.spawn(
            p,
            m,
            "w",
            StageWorker::new(
                stage,
                q.clone(),
                Box::new(|_cx, _d| StageOutcome::compute(1)),
            ),
        );
        sim.run_to_idle();
        // Worker parked on the condvar; queue untouched.
        assert_eq!(q.borrow().len(), 0);
        assert_eq!(sim.locks.cond_len(c), 1);
    }
}
