//! Federation-vs-flat differential suite: the fingerprint lineage.
//!
//! Each scenario records one clean 3-tier TPC-W delta stream, splits
//! it into a staggered replica fleet across a leaf/regional/global
//! federation, and byte-compares the root's finalized report against
//! batch `pipeline::analyze` over `replicate_fleet` of the same run's
//! dumps — the same end-state lock the flat streaming suite
//! (`streaming_diff.rs`) holds, one aggregation tier higher.
//!
//! Coverage mirrors that suite's 36-scenario shape: 6 seeds × 3
//! fan-in shapes × 2 flush/checkpoint cadences, all clean-run
//! byte-identical with full coverage and bounded per-level residency.
//! Fault scenarios then hold the robustness half of the contract:
//! lossy uplinks heal through retransmission, partitions heal after
//! the window, a planted leaf crash recovers from its checkpoint with
//! zero mass loss, and an unrecoverable leaf finalizes degraded with
//! honest partial coverage instead of aborting.

use whodunit_apps::federation::{run_federation, FaultLinkPolicy, FedCrash};
use whodunit_apps::tpcw::run_tpcw_streaming;
use whodunit_bench::matrix::{federation_cfg, SEEDS};
use whodunit_collector::federation::{CleanLinks, FedNodeId, FederationConfig, FederationOutput};
use whodunit_collector::CollectorConfig;
use whodunit_core::cost::CPU_HZ;
use whodunit_core::delta::{EpochBatch, RecordingSink, StreamHeader};
use whodunit_core::oracle::check_federation;
use whodunit_core::pipeline::{analyze, replicate_fleet, PipelineConfig, PipelineReport};
use whodunit_sim::fault::ChannelFaults;
use whodunit_sim::FaultPlan;
use whodunit_core::ids::ChanId;

const EPOCH_LEN: u64 = CPU_HZ;
const STAGGER: u64 = 2;

/// Fan-in shapes: replica count and per-region leaf counts.
const SHAPES: [(&str, usize, &[usize]); 3] = [
    ("1rx2l", 4, &[2]),
    ("2rx2l", 6, &[2, 2]),
    ("3r-mixed", 8, &[3, 2, 1]),
];

/// Flush/checkpoint cadences (ticks).
const CADENCES: [(u64, u64); 2] = [(1, 4), (4, 8)];

/// Records one clean scenario's delta stream and end-of-run dumps.
fn recorded(seed: u64) -> (StreamHeader, Vec<EpochBatch>, Vec<whodunit_core::stitch::StageDump>) {
    let mut sink = RecordingSink::default();
    let report = run_tpcw_streaming(federation_cfg(seed), EPOCH_LEN, &mut sink);
    (sink.header, sink.batches, report.dumps)
}

/// The flat batch reference: analyze over the replicated fleet dumps.
fn flat_reference(dumps: &[whodunit_core::stitch::StageDump], replicas: usize) -> PipelineReport {
    let shards = CollectorConfig::default().shards;
    analyze(
        replicate_fleet(dumps, replicas),
        PipelineConfig { workers: 1, shards },
    )
}

fn fed_cfg(flush: u64, ckpt: u64) -> FederationConfig {
    FederationConfig {
        flush_every: flush,
        checkpoint_every: ckpt,
        ..FederationConfig::default()
    }
}

fn assert_byte_identical(batch: &PipelineReport, fed: &PipelineReport, what: &str) {
    assert_eq!(
        batch.stitched_text(),
        fed.stitched_text(),
        "stitched text diverged: {what}"
    );
    assert_eq!(
        batch.crosstalk_text(),
        fed.crosstalk_text(),
        "crosstalk matrix diverged: {what}"
    );
    assert_eq!(batch.dumps_json, fed.dumps_json, "dump JSON diverged: {what}");
    assert_eq!(batch.dict, fed.dict, "context dictionary diverged: {what}");
    assert_eq!(
        batch.fingerprint(),
        fed.fingerprint(),
        "fingerprint diverged: {what}"
    );
}

fn assert_clean_and_identical(out: &FederationOutput, reference: &PipelineReport, what: &str) {
    assert_eq!(out.coverage_ppm, 1_000_000, "mass lost: {what}");
    assert!(out.degraded.is_empty(), "degraded clean run: {what}");
    assert!(
        !out.output.stats.used_fallback,
        "root bailed to batch fallback: {what}"
    );
    assert_eq!(
        check_federation(&out.evidence),
        vec![],
        "ledger violation: {what}"
    );
    assert_byte_identical(reference, &out.output.report, what);
}

fn run_clean(
    hdr: &StreamHeader,
    batches: &[EpochBatch],
    replicas: usize,
    regions: &[usize],
    cfg: FederationConfig,
) -> FederationOutput {
    run_federation(
        hdr,
        batches,
        replicas,
        STAGGER,
        EPOCH_LEN,
        regions,
        cfg,
        Box::new(CleanLinks),
        &[],
    )
}

#[test]
fn clean_matrix_is_byte_identical_at_every_fan_in() {
    let mut scenarios = 0;
    for &seed in &SEEDS {
        let (hdr, batches, dumps) = recorded(seed);
        for &(shape, replicas, regions) in &SHAPES {
            let reference = flat_reference(&dumps, replicas);
            assert!(
                !reference.profiles.is_empty(),
                "vacuous scenario: seed={seed}"
            );
            for &(flush, ckpt) in &CADENCES {
                scenarios += 1;
                let what = format!("seed={seed} shape={shape} flush={flush} ckpt={ckpt}");
                let out = run_clean(&hdr, &batches, replicas, regions, fed_cfg(flush, ckpt));
                assert_clean_and_identical(&out, &reference, &what);
                // Bounded memory at every level: no node ever held the
                // whole stream, and the summary path compacted it.
                let s = &out.stats;
                assert!(s.frames_sent > 1, "stream collapsed: {what}");
                assert!(
                    s.peak_resident_leaf < s.leaf_events_in,
                    "a leaf held the whole stream: {what}"
                );
                assert!(
                    s.peak_resident_regional < s.leaf_events_in,
                    "a regional held the whole stream: {what}"
                );
                assert!(
                    s.root_events_applied <= s.leaf_events_in,
                    "summary merge inflated the stream: {what}"
                );
                assert_eq!(s.spool_stalls, 0, "clean run backpressured: {what}");
            }
        }
    }
    assert_eq!(scenarios, 36);
}

#[test]
fn lossy_uplinks_heal_through_retransmission() {
    let (hdr, batches, dumps) = recorded(5);
    let (_, replicas, regions) = SHAPES[1];
    let reference = flat_reference(&dumps, replicas);
    let plan = FaultPlan::new(0xfed5).default_channel_faults(ChannelFaults {
        drop_p: 0.10,
        dup_p: 0.05,
        delay_p: 0.10,
        delay_cycles: 3,
        ..Default::default()
    });
    let out = run_federation(
        &hdr,
        &batches,
        replicas,
        STAGGER,
        EPOCH_LEN,
        regions,
        fed_cfg(2, 4),
        Box::new(FaultLinkPolicy::new(plan)),
        &[],
    );
    let s = &out.stats;
    assert!(s.frames_lost + s.acks_lost > 0, "plan never fired");
    assert!(s.retransmits > 0, "losses never forced a retry");
    assert!(s.dup_frames > 0, "duplicates never reached a receiver");
    assert_clean_and_identical(&out, &reference, "lossy links");
}

#[test]
fn partition_heals_after_the_window() {
    let (hdr, batches, dumps) = recorded(2);
    let (_, replicas, regions) = SHAPES[0];
    let reference = flat_reference(&dumps, replicas);
    // Leaf 0's uplink is ChanId(0); cut it for a window of ticks.
    let plan = FaultPlan::new(1).partition(ChanId(0), 6, 22);
    let out = run_federation(
        &hdr,
        &batches,
        replicas,
        STAGGER,
        EPOCH_LEN,
        regions,
        fed_cfg(2, 4),
        Box::new(FaultLinkPolicy::new(plan)),
        &[],
    );
    assert!(
        out.stats.frames_lost + out.stats.acks_lost > 0,
        "partition never cut a message"
    );
    assert_clean_and_identical(&out, &reference, "partitioned uplink");
}

#[test]
fn planted_leaf_crash_recovers_with_zero_mass_loss() {
    let (hdr, batches, dumps) = recorded(3);
    let (_, replicas, regions) = SHAPES[1];
    let reference = flat_reference(&dumps, replicas);
    let out = run_federation(
        &hdr,
        &batches,
        replicas,
        STAGGER,
        EPOCH_LEN,
        regions,
        fed_cfg(2, 4),
        Box::new(CleanLinks),
        &[FedCrash {
            node: FedNodeId::Leaf(1),
            at: 9,
            recover_at: Some(15),
        }],
    );
    assert_eq!(out.stats.crashes, 1);
    assert_eq!(out.stats.recoveries, 1);
    assert!(out.stats.missed_batches > 0, "crash window saw no input");
    assert_clean_and_identical(&out, &reference, "leaf crash + recovery");
    let rec = &out.recovery[0];
    assert_eq!(rec.leaf, 1);
    let recovered = rec.recovered_epoch.expect("root never saw the recovery");
    assert!(
        recovered >= rec.crash_epoch,
        "recovery latency must be measurable: {rec:?}"
    );
}

#[test]
fn regional_crash_recovers_with_zero_mass_loss() {
    let (hdr, batches, dumps) = recorded(8);
    let (_, replicas, regions) = SHAPES[1];
    let reference = flat_reference(&dumps, replicas);
    let out = run_federation(
        &hdr,
        &batches,
        replicas,
        STAGGER,
        EPOCH_LEN,
        regions,
        fed_cfg(2, 4),
        Box::new(CleanLinks),
        &[FedCrash {
            node: FedNodeId::Regional(0),
            at: 11,
            recover_at: Some(19),
        }],
    );
    assert_eq!(out.stats.recoveries, 1);
    assert_clean_and_identical(&out, &reference, "regional crash + recovery");
}

#[test]
fn unrecoverable_leaf_finalizes_degraded_not_aborted() {
    let (hdr, batches, _) = recorded(1);
    let (_, replicas, regions) = SHAPES[0];
    let mut cfg = fed_cfg(2, 4);
    cfg.deadline_ticks = 128;
    let out = run_federation(
        &hdr,
        &batches,
        replicas,
        STAGGER,
        EPOCH_LEN,
        regions,
        cfg,
        Box::new(CleanLinks),
        &[FedCrash {
            node: FedNodeId::Leaf(0),
            at: 7,
            recover_at: None,
        }],
    );
    assert!(out.coverage_ppm < 1_000_000, "lost subtree cannot be full");
    assert!(out.coverage_ppm > 0, "surviving subtree must still report");
    assert_eq!(out.degraded, vec!["leaf0".to_string()]);
    assert!(out.evidence.subtrees[0].degraded);
    assert!(out.evidence.subtrees[0].delivered < out.evidence.subtrees[0].truth);
    // The ledger is honest, so the oracle passes despite the loss...
    assert_eq!(check_federation(&out.evidence), vec![]);
    // ...and the surviving subtree's profiles still finalized.
    assert!(!out.output.report.profiles.is_empty());
    assert!(out.topology.root.children[0].children[0].degraded);
}

/// Parallel per-leaf ingest (`Federation::feed_round` on the
/// work-stealing executor) is byte-identical to serial at every worker
/// count and under steal perturbation — the federation arm of the
/// thread-stress contract (DESIGN.md §14).
#[test]
fn parallel_leaf_ingest_is_byte_identical_at_every_worker_count() {
    use whodunit_bench::matrix::WORKER_SWEEP;
    use whodunit_core::exec::StealPlan;

    let (hdr, batches, dumps) = recorded(1);
    let (_, replicas, regions) = SHAPES[2]; // widest fan-in: 8 leaves
    let reference = flat_reference(&dumps, replicas);
    for workers in WORKER_SWEEP {
        for steal in [0u64, 0x5eed_0001 ^ workers as u64] {
            let what = format!("fed workers={workers} steal={steal:#x}");
            let mut cfg = fed_cfg(2, 4);
            cfg.workers = workers;
            cfg.steal = StealPlan::seeded(steal);
            let out = run_clean(&hdr, &batches, replicas, regions, cfg);
            assert_clean_and_identical(&out, &reference, &what);
            if workers > 1 {
                assert!(
                    out.stats.parallel_ingest_rounds > 0,
                    "parallel ingest never engaged: {what}"
                );
            }
            assert_eq!(out.stats.ingest_panics, 0, "{what}");
        }
    }
}

/// An injected ingest-worker panic heals through the mirror resync
/// path: the panic is counted, the round's leaves catch up next tick,
/// and the run still finalizes clean and byte-identical — lag, never
/// silent mass loss, never a deadlock.
#[test]
fn injected_ingest_panic_heals_through_resync() {
    use whodunit_core::exec::StealPlan;

    let (hdr, batches, dumps) = recorded(2);
    let (_, replicas, regions) = SHAPES[2];
    let reference = flat_reference(&dumps, replicas);
    let mut cfg = fed_cfg(2, 4);
    cfg.workers = 4;
    cfg.steal = StealPlan {
        seed: 9,
        panic_at: Some(("fed-ingest", 1)),
    };
    let out = run_federation(
        &hdr,
        &batches,
        replicas,
        STAGGER,
        EPOCH_LEN,
        regions,
        cfg,
        Box::new(CleanLinks),
        &[],
    );
    assert!(out.stats.ingest_panics > 0, "injection never fired");
    assert!(out.stats.input_resyncs > 0, "no resync healed the round");
    assert_clean_and_identical(&out, &reference, "ingest panic heal");
}

/// A misreporting root would be caught: fabricate the evidence a buggy
/// implementation could emit and watch the oracle object.
#[test]
fn oracle_rejects_silent_mass_drop() {
    let (hdr, batches, _) = recorded(1);
    let (_, replicas, regions) = SHAPES[0];
    let out = run_clean(&hdr, &batches, replicas, regions, fed_cfg(2, 4));
    let mut ev = out.evidence.clone();
    // Pretend a subtree delivered everything when mass is missing.
    ev.subtrees[0].delivered -= 1;
    assert!(
        !check_federation(&ev).is_empty(),
        "oracle must flag a non-degraded subtree that lost mass"
    );
}
