//! Randomized damage fuzzing of the binary wire ingest path — the
//! adversarial extension of the PR 6 damage matrix in
//! `streaming_diff.rs`, now at the *byte* level (DESIGN.md §16):
//!
//! - **Never panic**: arbitrary truncation, bit flips, duplicated and
//!   reordered frames, and outright garbage buffers must come back as
//!   `Err(WireError)` or heal — never unwind, never abort.
//! - **Never silently corrupt**: whenever the finalized report differs
//!   from the clean reference, the damage must be visible in the stats
//!   (`wire_errors`, quarantine counters, resyncs, degraded markers).
//!   A frame the codec rejects is a dropped batch; the §12 seq-gap
//!   machinery takes it from there.
//! - **Detection**: every byte-corrupted frame fed to
//!   [`Collector::enqueue_wire`] is individually rejected by the
//!   envelope (magic/version/length/FNV digest) or body validation —
//!   corruption cannot ride a valid-looking frame into the
//!   accumulators.
//! - **Reorder/duplicate transparency**: damage that only permutes or
//!   repeats intact frames heals to byte-identity through the park,
//!   dedup, and resync paths.
//!
//! One recorded TPC-W scenario is encoded once and shared across all
//! cases; each case derives a fresh damage plan from its proptest seed.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::OnceLock;
use whodunit_apps::tpcw::run_tpcw_streaming;
use whodunit_bench::matrix::scenario_cfg;
use whodunit_collector::{Collector, CollectorConfig, CollectorOutput, QuarantinePolicy};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::delta::{
    CctDelta, EpochBatch, RecordedResync, RecordingSink, ResyncSource, StageDelta, StreamHeader,
};
use whodunit_core::pipeline::{analyze, PipelineConfig};
use whodunit_core::stitch::{DumpNode, StageDump};
use whodunit_core::wire::{encode_batch, encode_header};
use whodunit_sim::sched::SchedulePolicy;

/// One recorded clean scenario, encoded, with its reference surfaces.
struct Scenario {
    header: StreamHeader,
    batches: Vec<EpochBatch>,
    frames: Vec<Vec<u8>>,
    stitched: String,
    dumps_json: String,
    fingerprint: u64,
}

static SCENARIO: OnceLock<Scenario> = OnceLock::new();

fn scenario() -> &'static Scenario {
    SCENARIO.get_or_init(|| {
        let cfg = scenario_cfg(2, SchedulePolicy::Fifo, false);
        let mut sink = RecordingSink::default();
        let report = run_tpcw_streaming(cfg, CPU_HZ, &mut sink);
        let reference = analyze(report.dumps, PipelineConfig { workers: 1, shards: 32 });
        let frames = sink.batches.iter().map(encode_batch).collect();
        Scenario {
            header: sink.header,
            batches: sink.batches,
            frames,
            stitched: reference.stitched_text(),
            dumps_json: reference.dumps_json.clone(),
            fingerprint: reference.fingerprint(),
        }
    })
}

#[derive(Clone)]
struct SharedResync(Rc<RefCell<RecordedResync>>);

impl ResyncSource for SharedResync {
    fn snapshot(&self, stage: usize) -> Option<(StageDump, u64)> {
        self.0.borrow().snapshot(stage)
    }
}

/// Deterministic xorshift64* stream for damage plans.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Feeds `frames` through the wire ingest with the resync reference
/// advanced in lockstep against the *clean* stream, and returns the
/// output plus the number of frames the codec rejected.
fn ingest(frames: &[Vec<u8>]) -> (CollectorOutput, u64) {
    let s = scenario();
    let mut c = Collector::new(CollectorConfig {
        quarantine: QuarantinePolicy {
            reorder_buffer: 2,
            ..QuarantinePolicy::default()
        },
        ..CollectorConfig::default()
    });
    c.start_wire(&encode_header(&s.header)).expect("header frame decodes");
    let shared = Rc::new(RefCell::new(RecordedResync::new(&s.header)));
    c.set_resync_source(Box::new(SharedResync(shared.clone())));
    // The emitter mirror is always at least as current as anything the
    // damaged stream could carry: advance it fully first.
    for b in &s.batches {
        shared.borrow_mut().advance(b);
    }
    let mut rejected = 0u64;
    for f in frames {
        match c.enqueue_wire(f) {
            Ok(accepted) => assert!(accepted, "unbounded queue refused a frame"),
            Err(_) => rejected += 1,
        }
        c.drain();
    }
    (c.finalize(), rejected)
}

/// Whether the finalized report matches the clean reference on every
/// locked surface.
fn identical(out: &CollectorOutput) -> bool {
    let s = scenario();
    out.report.fingerprint() == s.fingerprint
        && out.report.stitched_text() == s.stitched
        && out.report.dumps_json == s.dumps_json
}

/// Whether the stats make the damage visible — the "never silently
/// corrupt" half of the contract.
fn visible(out: &CollectorOutput) -> bool {
    let st = &out.stats;
    st.wire_errors > 0
        || st.quarantined > 0
        || st.resyncs > 0
        || st.healed_frames > 0
        || st.dup_frames > 0
        || st.dropped_frames > 0
        || st.seq_gaps > 0
        || st.delta_errors > 0
        || st.stalls > 0
        || st.used_fallback
        || !st.degraded.is_empty()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary mixed damage plans: corrupting ops (truncate, bit
    /// flip, garbage injection) must each be rejected at the envelope,
    /// and any divergence from the reference must be visible in the
    /// stats. Never a panic.
    #[test]
    fn damaged_wire_streams_never_panic_or_silently_corrupt(seed in any::<u64>()) {
        let s = scenario();
        let mut r = Rng::new(seed);
        let mut frames = s.frames.clone();
        let mut corrupted = 0u64;
        for _ in 0..1 + r.below(3) {
            match r.below(5) {
                0 => {
                    // Truncate: cut at least one byte, keep at least one.
                    let i = r.below(frames.len() as u64) as usize;
                    let len = frames[i].len();
                    frames[i].truncate(1 + r.below(len as u64 - 1) as usize);
                    corrupted += 1;
                }
                1 => {
                    // Flip one bit anywhere in the frame.
                    let i = r.below(frames.len() as u64) as usize;
                    let at = r.below(frames[i].len() as u64) as usize;
                    frames[i][at] ^= 1 << r.below(8);
                    corrupted += 1;
                }
                2 => {
                    // Swap two adjacent frames.
                    let i = r.below(frames.len() as u64 - 1) as usize;
                    frames.swap(i, i + 1);
                }
                3 => {
                    // Duplicate a frame in place.
                    let i = r.below(frames.len() as u64) as usize;
                    let f = frames[i].clone();
                    frames.insert(i + 1, f);
                }
                _ => {
                    // Inject garbage, sometimes wearing the real magic.
                    let mut g: Vec<u8> =
                        (0..1 + r.below(64)).map(|_| r.next() as u8).collect();
                    if r.below(2) == 0 && g.len() >= 4 {
                        g[0] = b'W';
                        g[1] = b'D';
                        g[2] = b'W';
                        g[3] = 1;
                    }
                    let i = r.below(frames.len() as u64) as usize;
                    frames.insert(i, g);
                    corrupted += 1;
                }
            }
        }

        let (out, rejected) = ingest(&frames);
        prop_assert_eq!(out.stats.wire_errors, rejected, "error count drifted");
        prop_assert!(
            rejected >= corrupted.min(1),
            "corrupting damage went undetected: {} ops, {} rejections",
            corrupted,
            rejected
        );
        if !identical(&out) {
            prop_assert!(
                visible(&out),
                "report diverged with clean stats: {:?}",
                out.stats
            );
        }
    }

    /// Damage that only permutes or repeats intact frames is fully
    /// transparent: the report heals to byte-identity through park,
    /// dedup, and resync — no wire errors at all.
    #[test]
    fn reordered_and_duplicated_wire_frames_heal_to_identity(seed in any::<u64>()) {
        let s = scenario();
        let mut r = Rng::new(seed);
        let mut frames = s.frames.clone();
        for _ in 0..1 + r.below(3) {
            if r.below(2) == 0 {
                let i = r.below(frames.len() as u64 - 1) as usize;
                frames.swap(i, i + 1);
            } else {
                let i = r.below(frames.len() as u64) as usize;
                let f = frames[i].clone();
                frames.insert(i + 1, f);
            }
        }

        let (out, rejected) = ingest(&frames);
        prop_assert_eq!(rejected, 0u64, "intact frames must decode");
        prop_assert_eq!(out.stats.wire_errors, 0u64);
        prop_assert!(!out.stats.used_fallback, "healed, not fallen back");
        prop_assert!(identical(&out), "reorder/dup damage leaked into the report");
    }

    /// A checksum-valid frame whose CCT section repeats a ctx id —
    /// with a *smaller* new-node count the second time, so a naive
    /// decoder would shrink a Vec below ranges it already planned to
    /// fill — is rejected as malformed body damage: counted, dropped,
    /// never a panic, never a silent corruption.
    #[test]
    fn duplicate_cct_ctx_frames_quarantine_without_panicking(extra in 0u32..4) {
        let node = |cycles: u64| DumpNode {
            frame: None,
            parent: None,
            samples: 1,
            cycles,
            calls: 1,
        };
        let mut d = StageDelta {
            stage: 0,
            seq: 0,
            new_frames: vec![],
            new_contexts: vec![],
            new_synopses: vec![],
            ccts: vec![
                CctDelta {
                    ctx: 1,
                    nodes_before: 0,
                    new_nodes: vec![node(100), node(200)],
                    grown: vec![],
                },
                CctDelta {
                    ctx: 1,
                    nodes_before: 0,
                    new_nodes: (0..1 + extra as u64).map(node).collect(),
                    grown: vec![],
                },
            ],
            pairs: vec![],
            waiters: vec![],
            piggyback_bytes: 0,
            messages: 0,
            checksum: 0,
        };
        d.checksum = d.compute_checksum();
        let frame = encode_batch(&EpochBatch {
            epoch: 0,
            seq: 0,
            end: 100,
            deltas: vec![d],
        });
        let mut c = Collector::new(CollectorConfig::default());
        c.start_wire(&encode_header(&scenario().header)).expect("header decodes");
        prop_assert!(c.enqueue_wire(&frame).is_err(), "duplicate-ctx frame decoded");
        c.drain();
        prop_assert_eq!(c.stats().wire_errors, 1u64);
        prop_assert_eq!(c.stats().wire_frames, 0u64);
    }

    /// Raw garbage buffers — any length, any contents, with or without
    /// a valid-looking envelope prefix — never panic the ingest and
    /// never count as accepted frames.
    #[test]
    fn garbage_buffers_are_rejected_without_panicking(seed in any::<u64>()) {
        let mut r = Rng::new(seed);
        let mut c = Collector::new(CollectorConfig::default());
        c.start_wire(&encode_header(&scenario().header)).expect("header decodes");
        for _ in 0..16 {
            let mut g: Vec<u8> = (0..r.below(128)).map(|_| r.next() as u8).collect();
            if r.below(3) == 0 && g.len() >= 9 {
                g[0] = b'W';
                g[1] = b'D';
                g[2] = b'W';
                g[3] = 1;
                g[4] = 2;
            }
            prop_assert!(c.enqueue_wire(&g).is_err(), "garbage decoded as a frame");
        }
        prop_assert_eq!(c.stats().wire_frames, 0u64);
        prop_assert_eq!(c.stats().wire_errors, 16u64);
    }
}
