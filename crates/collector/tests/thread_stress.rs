//! Schedule-stress harness for the collector's parallel fold phase —
//! the collector-side twin of `core/tests/thread_stress.rs`.
//!
//! Every matrix scenario from `whodunit_bench::matrix` is recorded
//! once, then the identical delta stream is replayed through the
//! online [`Collector`] at every worker count in
//! [`matrix::WORKER_SWEEP`] under seeded steal-order perturbation.
//! Every replay must finalize byte-identical to both the serial
//! (`workers == 1`) collector and batch `pipeline::analyze` over the
//! same run's dumps, on the incremental path (`used_fallback ==
//! false`) with the parallel fold phase actually engaged.
//!
//! The panic half locks the fold degradation policy: an injected
//! worker panic inside the `collector-fold` run must never deadlock or
//! dump a partial report — the stream is marked broken, the panic is
//! counted, and finalize degrades cleanly to the batch fallback whose
//! bytes still match the reference.

use whodunit_apps::tpcw::run_tpcw_streaming;
use whodunit_bench::matrix::{scenario_cfg, schedules, SEEDS, WORKER_SWEEP};
use whodunit_collector::{Collector, CollectorConfig, CollectorOutput};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::delta::{EpochBatch, RecordingSink, StreamHeader};
use whodunit_core::exec::StealPlan;
use whodunit_core::pipeline::{analyze, PipelineConfig, PipelineReport};
use whodunit_sim::sched::SchedulePolicy;

const EPOCH_LEN: u64 = CPU_HZ;

/// Byte-compares every deterministic output surface of two reports.
fn assert_byte_identical(reference: &PipelineReport, got: &PipelineReport, what: &str) {
    assert_eq!(
        reference.stitched_text(),
        got.stitched_text(),
        "stitched text diverged: {what}"
    );
    assert_eq!(
        reference.crosstalk_text(),
        got.crosstalk_text(),
        "crosstalk matrix diverged: {what}"
    );
    assert_eq!(
        reference.dumps_json, got.dumps_json,
        "dump JSON diverged: {what}"
    );
    assert_eq!(reference.dict, got.dict, "context dictionary diverged: {what}");
    assert_eq!(
        reference.fingerprint(),
        got.fingerprint(),
        "fingerprint diverged: {what}"
    );
}

/// Replays a recorded stream through a fresh collector.
fn replay(hdr: &StreamHeader, batches: &[EpochBatch], ccfg: CollectorConfig) -> CollectorOutput {
    let mut c = Collector::with_header(hdr, ccfg);
    for b in batches {
        assert!(c.enqueue(b.clone()), "unbounded queue refused a batch");
        c.drain();
    }
    c.finalize()
}

/// splitmix64, local copy for deterministic stress-seed derivation.
fn exec_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn stress_matrix(faulty: bool) {
    let mut scenarios = 0;
    for &seed in &SEEDS {
        for sched in schedules(seed) {
            scenarios += 1;
            let what = format!("seed={seed} sched={sched:?} faulty={faulty}");

            let mut sink = RecordingSink::default();
            let report =
                run_tpcw_streaming(scenario_cfg(seed, sched, faulty), EPOCH_LEN, &mut sink);
            let batch = analyze(report.dumps, PipelineConfig { workers: 1, shards: 32 });
            assert!(
                !batch.profiles.is_empty(),
                "scenario produced no profiles (vacuous): {what}"
            );

            // Serial collector reference.
            let serial = replay(&sink.header, &sink.batches, CollectorConfig::default());
            assert!(!serial.stats.used_fallback, "serial fallback: {what}");
            assert_byte_identical(&batch, &serial.report, &format!("{what} serial"));

            for workers in WORKER_SWEEP {
                if workers == 1 {
                    continue; // the serial reference above
                }
                let steal = exec_mix(seed ^ (workers as u64).wrapping_mul(0x5851_f42d)) | 1;
                let what = format!("{what} workers={workers} steal={steal:#018x}");
                let out = replay(
                    &sink.header,
                    &sink.batches,
                    CollectorConfig {
                        workers,
                        steal: StealPlan::seeded(steal),
                        ..CollectorConfig::default()
                    },
                );
                assert!(
                    !out.stats.used_fallback,
                    "incremental path bailed to batch fallback: {what}"
                );
                assert!(
                    out.stats.parallel_fold_batches > 0,
                    "parallel fold path never engaged: {what}"
                );
                assert_eq!(out.stats.fold_panics, 0, "fold panicked: {what}");
                assert_byte_identical(&batch, &out.report, &what);
                assert_byte_identical(&serial.report, &out.report, &format!("{what} vs serial"));
            }
        }
    }
    assert_eq!(scenarios, 18);
}

#[test]
fn clean_matrix_survives_steal_order_stress() {
    stress_matrix(false);
}

#[test]
fn faulty_matrix_survives_steal_order_stress() {
    stress_matrix(true);
}

// ---------------------------------------------------------------------
// Fold-panic degradation: broken stream, counted panic, byte-correct
// fallback report — never a deadlock, never a partial dump.
// ---------------------------------------------------------------------

fn recorded(seed: u64) -> (StreamHeader, Vec<EpochBatch>, PipelineReport) {
    let mut sink = RecordingSink::default();
    let report = run_tpcw_streaming(
        scenario_cfg(seed, SchedulePolicy::Fifo, false),
        EPOCH_LEN,
        &mut sink,
    );
    let batch = analyze(report.dumps, PipelineConfig { workers: 1, shards: 32 });
    (sink.header, sink.batches, batch)
}

#[test]
fn fold_panic_degrades_to_byte_correct_fallback() {
    let (hdr, batches, batch) = recorded(1);
    for workers in [2, 8] {
        let what = format!("fold panic workers={workers}");
        let out = replay(
            &hdr,
            &batches,
            CollectorConfig {
                workers,
                steal: StealPlan {
                    seed: 3,
                    panic_at: Some(("collector-fold", 0)),
                },
                ..CollectorConfig::default()
            },
        );
        assert!(out.stats.fold_panics >= 1, "injection never fired: {what}");
        assert!(
            out.stats.used_fallback,
            "broken stream must take the batch fallback: {what}"
        );
        // The accumulators saw every delta, so the fallback rebuild is
        // byte-identical to the batch reference — clean degradation.
        assert_byte_identical(&batch, &out.report, &what);
    }
}

#[test]
fn late_group_fold_panic_also_degrades_cleanly() {
    // Panic on a later group index: some groups complete first, their
    // consumed state is discarded, and the fallback still rebuilds the
    // exact reference bytes.
    let (hdr, batches, batch) = recorded(2);
    let out = replay(
        &hdr,
        &batches,
        CollectorConfig {
            workers: 4,
            steal: StealPlan {
                seed: 11,
                panic_at: Some(("collector-fold", 2)),
            },
            ..CollectorConfig::default()
        },
    );
    // Batches with fewer than 3 fold groups never hit item 2, so the
    // stream may stay clean for a while — but a 12-client scenario
    // folds many origins per epoch, so the injection must fire.
    assert!(out.stats.fold_panics >= 1, "injection never fired");
    assert!(out.stats.used_fallback);
    assert_byte_identical(&batch, &out.report, "late-group fold panic");
}

#[test]
fn serial_collector_ignores_steal_plan_panics() {
    // workers == 1 never enters the parallel fold phase: the injected
    // plan is inert and the stream stays on the incremental path.
    let (hdr, batches, batch) = recorded(3);
    let out = replay(
        &hdr,
        &batches,
        CollectorConfig {
            workers: 1,
            steal: StealPlan {
                seed: 3,
                panic_at: Some(("collector-fold", 0)),
            },
            ..CollectorConfig::default()
        },
    );
    assert_eq!(out.stats.fold_panics, 0);
    assert_eq!(out.stats.parallel_fold_batches, 0);
    assert!(!out.stats.used_fallback);
    assert_byte_identical(&batch, &out.report, "serial with inert plan");
}
