//! Property tests for the streaming collector's ordering and
//! bounded-memory invariants, over *synthetic* delta streams whose
//! shape (epoch count, context arrival, cross-stage references,
//! late/missing synopses) is driven by proptest:
//!
//! - **Eviction determinism**: the eviction log is a pure function of
//!   the stream content — two independently built collectors (fresh
//!   `HashMap` hasher states and all) produce identical logs and
//!   identical finalized bytes.
//! - **Interleaving invariance**: any epoch-respecting interleaving of
//!   the stage deltas (reordered within an epoch, regrouped into any
//!   number of sub-batches) finalizes to the same bytes as the batch
//!   pipeline on the final dumps.
//! - **No pending leaks**: after the final flush, every receiving
//!   context is accounted for — resolved edges plus unresolved edges
//!   equal the receivers, pending edges at flush equal exactly the
//!   references whose synopsis never arrived, and clean streams flush
//!   with zero pending.

use proptest::prelude::*;
use whodunit_collector::{Collector, CollectorConfig, CollectorOutput};
use whodunit_core::delta::{diff_dump, EpochBatch, StageDelta, StreamHeader, StreamStage};
use whodunit_core::pipeline::{analyze, PipelineConfig, PipelineReport};
use whodunit_core::stitch::{
    DumpAtom, DumpCct, DumpContext, DumpCrosstalkPair, DumpCrosstalkWaiter, DumpNode, StageDump,
};
use whodunit_core::synopsis::Synopsis;

/// Where a stage-1 receiving context points its remote chain.
#[derive(Clone, Copy, Debug)]
enum Target {
    /// A stage-0 origin context (index into stage 0's context order).
    Front(usize),
    /// An earlier stage-1 context (multi-hop chain through its mint).
    Chained(usize),
    /// A synopsis that is never minted anywhere.
    Missing,
}

/// The generated stream shape: per epoch, how many fresh origin
/// contexts stage 0 interns, and which target each epoch's stage-1
/// receiver chains to.
#[derive(Clone, Debug)]
struct Shape {
    epochs: usize,
    fronts_per_epoch: usize,
    targets: Vec<Target>,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    // The vendored proptest has no `prop_flat_map`, so draw a max-size
    // raw target pool up front and carve the shape out of it.
    (
        2usize..6,
        1usize..3,
        proptest::collection::vec((0u8..3, 0u32..64), 5..6),
    )
        .prop_map(|(epochs, fronts, raw)| {
            let targets = raw[..epochs]
                .iter()
                .map(|&(kind, v)| match kind {
                    0 => Target::Front(v as usize % (epochs * fronts)),
                    1 => Target::Chained(v as usize % epochs),
                    _ => Target::Missing,
                })
                .collect();
            Shape {
                epochs,
                fronts_per_epoch: fronts,
                targets,
            }
        })
}

fn front_syn(k: usize) -> u64 {
    Synopsis::new(1, k as u32).0
}

fn db_syn(k: usize) -> u64 {
    Synopsis::new(2, k as u32).0
}

fn never_syn(k: usize) -> u64 {
    Synopsis::new(3, k as u32).0
}

/// The cumulative pair of stage dumps as of the end of epoch `e`
/// (inclusive). Monotone in `e` by construction, which is what the
/// delta differ requires.
fn dumps_at(shape: &Shape, e: usize) -> Vec<StageDump> {
    let mut front = StageDump {
        proc: 1,
        stage_name: "front".into(),
        frames: vec!["main".into(), "handler".into()],
        ..StageDump::default()
    };
    let mut db = StageDump {
        proc: 2,
        stage_name: "db".into(),
        frames: vec!["db_main".into(), "query".into()],
        ..StageDump::default()
    };
    for epoch in 0..=e {
        // Stage 0: fresh origin contexts, each minting a synopsis and
        // starting a CCT that keeps growing in every later epoch.
        for j in 0..shape.fronts_per_epoch {
            let k = front.contexts.len();
            front.contexts.push(DumpContext {
                atoms: vec![DumpAtom::Frame((k % 2) as u32)],
            });
            front.synopses.push((front_syn(k), k as u32));
            front.ccts.push(DumpCct {
                ctx: k as u32,
                nodes: vec![
                    DumpNode {
                        frame: None,
                        parent: None,
                        samples: 0,
                        cycles: 0,
                        calls: 0,
                    },
                    DumpNode {
                        frame: Some(1),
                        parent: Some(0),
                        samples: 1,
                        cycles: 100 + j as u64,
                        calls: 1,
                    },
                ],
            });
        }
        // Every existing front CCT accrues one more sample per epoch.
        for c in &mut front.ccts {
            c.nodes[1].samples += 1;
            c.nodes[1].cycles += 10 + c.ctx as u64;
        }
        // Stage 1: one receiving context per epoch; its chain points at
        // the proptest-chosen target. `Chained` goes through another
        // stage-1 context's own mint (multi-hop walk).
        let i = epoch;
        let chain = match shape.targets[i] {
            Target::Front(k) => {
                let k = k % (front.contexts.len().max(1));
                vec![front_syn(k)]
            }
            Target::Chained(j) if j < i => vec![db_syn(j)],
            Target::Chained(_) => vec![front_syn(0)],
            Target::Missing => vec![never_syn(i)],
        };
        db.contexts.push(DumpContext {
            atoms: vec![DumpAtom::Remote(chain)],
        });
        db.synopses.push((db_syn(i), i as u32));
        db.ccts.push(DumpCct {
            ctx: i as u32,
            nodes: vec![
                DumpNode {
                    frame: None,
                    parent: None,
                    samples: 0,
                    cycles: 0,
                    calls: 0,
                },
                DumpNode {
                    frame: Some(1),
                    parent: Some(0),
                    samples: 2,
                    cycles: 500 + i as u64,
                    calls: 1,
                },
            ],
        });
        // Crosstalk accrues once two receivers exist; keys stay sorted.
        if i >= 1 {
            if db.crosstalk_pairs.is_empty() {
                db.crosstalk_pairs.push(DumpCrosstalkPair {
                    waiter: 0,
                    holder: 1,
                    count: 0,
                    total_wait: 0,
                });
                db.crosstalk_waiters.push(DumpCrosstalkWaiter {
                    waiter: 0,
                    count: 0,
                    total_wait: 0,
                });
            }
            db.crosstalk_pairs[0].count += 1;
            db.crosstalk_pairs[0].total_wait += 50;
            db.crosstalk_waiters[0].count += 1;
            db.crosstalk_waiters[0].total_wait += 50;
        }
        front.piggyback_bytes += 4;
        front.messages += 1;
        db.piggyback_bytes += 4;
        db.messages += 1;
    }
    vec![front, db]
}

fn header() -> StreamHeader {
    StreamHeader {
        stages: vec![
            StreamStage {
                proc: 1,
                stage_name: "front".into(),
            },
            StreamStage {
                proc: 2,
                stage_name: "db".into(),
            },
        ],
    }
}

/// Derives the canonical epoch-batch stream from the shape, exactly as
/// the engine hook does: snapshot per epoch, diff against the previous
/// snapshot.
fn stream_of(shape: &Shape) -> Vec<EpochBatch> {
    let mut prev: Vec<Option<StageDump>> = vec![None, None];
    let mut seqs = [0u64; 2];
    let mut out = Vec::new();
    for e in 0..shape.epochs {
        let dumps = dumps_at(shape, e);
        let mut deltas = Vec::new();
        for (i, cur) in dumps.iter().enumerate() {
            if let Some(d) = diff_dump(i, seqs[i], prev[i].as_ref(), cur) {
                seqs[i] += 1;
                deltas.push(d);
            }
        }
        prev = dumps.into_iter().map(Some).collect();
        out.push(EpochBatch {
            epoch: e as u64,
            seq: e as u64,
            end: (e as u64 + 1) * 1_000,
            deltas,
        });
    }
    out
}

fn collect(batches: &[EpochBatch], window: u64) -> CollectorOutput {
    let mut c = Collector::with_header(
        &header(),
        CollectorConfig {
            window_epochs: window,
            ..CollectorConfig::default()
        },
    );
    for b in batches {
        assert!(c.enqueue(b.clone()));
    }
    c.drain();
    c.finalize()
}

fn batch_reference(shape: &Shape) -> PipelineReport {
    analyze(
        dumps_at(shape, shape.epochs - 1),
        PipelineConfig { workers: 1, shards: 32 },
    )
}

fn assert_report_eq(a: &PipelineReport, b: &PipelineReport, what: &str) {
    assert_eq!(a.stitched_text(), b.stitched_text(), "stitched: {what}");
    assert_eq!(a.crosstalk_text(), b.crosstalk_text(), "crosstalk: {what}");
    assert_eq!(a.dumps_json, b.dumps_json, "dumps json: {what}");
    assert_eq!(a.dict, b.dict, "dict: {what}");
    assert_eq!(a.fingerprint(), b.fingerprint(), "fingerprint: {what}");
}

/// Regroups a stream into an epoch-respecting interleaving: within
/// each epoch, deltas are rotated by `rot` and split into sub-batches
/// of size `split`, preserving each stage's own delta order (there is
/// at most one delta per stage per epoch).
fn interleave(batches: &[EpochBatch], rot: usize, split: usize) -> Vec<EpochBatch> {
    let mut out = Vec::new();
    let mut seq = 0u64;
    for b in batches {
        let mut deltas: Vec<StageDelta> = b.deltas.clone();
        let n = deltas.len();
        if n > 0 {
            deltas.rotate_left(rot % n);
        }
        let chunk = split.clamp(1, deltas.len().max(1));
        let mut chunks: Vec<Vec<StageDelta>> =
            deltas.chunks(chunk).map(|c| c.to_vec()).collect();
        if chunks.is_empty() {
            chunks.push(Vec::new());
        }
        for dchunk in chunks {
            out.push(EpochBatch {
                epoch: b.epoch,
                seq,
                end: b.end,
                deltas: dchunk,
            });
            seq += 1;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (b) Any epoch-respecting interleaving of the delta stream
    /// finalizes byte-identical to the batch pipeline on the final
    /// dumps — sub-batch grouping and within-epoch order are
    /// presentation-free.
    #[test]
    fn interleavings_finalize_identically(
        input in (shape_strategy(), 0usize..4, 1usize..4, 1u64..5)
    ) {
        let (shape, rot, split, window) = input;
        let reference = batch_reference(&shape);
        let stream = stream_of(&shape);
        let canonical = collect(&stream, window);
        prop_assert!(!canonical.stats.used_fallback);
        assert_report_eq(&reference, &canonical.report, "canonical feed");
        let shuffled = interleave(&stream, rot, split);
        let out = collect(&shuffled, window);
        prop_assert!(!out.stats.used_fallback);
        assert_report_eq(&reference, &out.report, "interleaved feed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) The eviction log is deterministic: two independently
    /// constructed collectors (fresh hasher states) over the same
    /// stream produce identical logs, stats, and bytes.
    #[test]
    fn eviction_order_is_stream_determined(input in (shape_strategy(), 1u64..4)) {
        let (shape, window) = input;
        let stream = stream_of(&shape);
        let a = collect(&stream, window);
        let b = collect(&stream, window);
        prop_assert_eq!(&a.stats.eviction_log, &b.stats.eviction_log);
        prop_assert_eq!(a.stats.evictions, b.stats.evictions);
        prop_assert_eq!(a.stats.peak_resident, b.stats.peak_resident);
        prop_assert_eq!(a.report.fingerprint(), b.report.fingerprint());
        // A 1-epoch window over a multi-epoch stream must actually
        // evict (origins born in epoch 0 idle out) — keeps the
        // determinism check non-vacuous.
        if window == 1 && shape.epochs >= 3 {
            prop_assert!(a.stats.evictions > 0, "window=1 never evicted");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (c) Pending edges never leak: resolved plus unresolved edges
    /// account for every receiver, what is pending at flush is exactly
    /// the never-minted references, and clean streams flush pending-free.
    #[test]
    fn pending_edges_never_leak(shape in shape_strategy()) {
        let stream = stream_of(&shape);
        let out = collect(&stream, 2);
        prop_assert!(!out.stats.used_fallback);
        let receivers = shape.epochs as u64; // one stage-1 receiver per epoch
        prop_assert_eq!(
            out.report.edges.len() as u64 + out.report.unresolved.len() as u64,
            receivers,
            "edge conservation"
        );
        let missing = shape
            .targets
            .iter()
            .filter(|t| matches!(t, Target::Missing))
            .count() as u64;
        prop_assert_eq!(out.stats.pending_edges_at_flush, missing);
        prop_assert_eq!(out.report.unresolved.len() as u64, missing);
        if missing == 0 {
            prop_assert_eq!(out.stats.pending_edges_at_flush, 0);
            prop_assert_eq!(out.stats.pending_walks_at_flush, 0);
        }
    }
}
