//! Streaming-vs-batch differential suite: the end-state lock.
//!
//! Each scenario runs the 3-tier TPC-W stack with the streaming
//! emission hook, feeds every epoch batch through the online
//! [`Collector`], and byte-compares the finalized report against batch
//! `pipeline::analyze` on the same run's dumps:
//!
//! - the stitched per-transaction profile text,
//! - the rendered crosstalk matrix,
//! - the re-serialized dump JSON,
//! - the sharded context dictionary,
//! - the report fingerprint,
//!
//! all as exact equality, with the incremental path (`used_fallback ==
//! false`) — falling back to running the batch pipeline internally
//! would make the comparison vacuous.
//!
//! Coverage mirrors `core/tests/parallel_diff.rs` through the shared
//! corpus in `whodunit_bench::matrix`: 6 seeds × 3 schedule policies
//! (fifo, random, perturb) × 2 fault plans (clean, faulty) = 36
//! scenarios, each replayed through the collector at every worker
//! count in [`matrix::WORKER_SWEEP`] and cross-validated against the
//! batch pipeline swept over the same worker counts, all in one
//! fingerprint table per scenario. A subset additionally cross-checks
//! that the epoch-chunked simulation run is bit-identical to the
//! unchunked one, and one scenario sweeps epoch lengths and retention
//! windows.

use whodunit_apps::tpcw::{run_tpcw, run_tpcw_streaming, TpcwConfig};
use whodunit_bench::matrix::{scenario_cfg, schedules, SEEDS, WORKER_SWEEP};
use whodunit_collector::{Collector, CollectorConfig, CollectorOutput};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::delta::RecordingSink;
use whodunit_core::exec::StealPlan;
use whodunit_core::pipeline::{analyze, analyze_with, PipelineConfig, PipelineReport};
use whodunit_sim::sched::SchedulePolicy;

const EPOCH_LEN: u64 = CPU_HZ;

/// Runs one scenario through the streaming path and returns the
/// collector output plus the batch reference computed from the *same*
/// run's end-of-run dumps.
fn run_scenario(
    cfg: TpcwConfig,
    epoch_len: u64,
    ccfg: CollectorConfig,
) -> (CollectorOutput, PipelineReport) {
    let shards = ccfg.shards;
    let mut collector = Collector::new(ccfg);
    let report = run_tpcw_streaming(cfg, epoch_len, &mut collector);
    let out = collector.finalize();
    let batch = analyze(report.dumps, PipelineConfig { workers: 1, shards });
    (out, batch)
}

/// Byte-compares every deterministic output surface of two reports.
fn assert_byte_identical(batch: &PipelineReport, streamed: &PipelineReport, what: &str) {
    assert_eq!(
        batch.stitched_text(),
        streamed.stitched_text(),
        "stitched text diverged: {what}"
    );
    assert_eq!(
        batch.crosstalk_text(),
        streamed.crosstalk_text(),
        "crosstalk matrix diverged: {what}"
    );
    assert_eq!(
        batch.dumps_json, streamed.dumps_json,
        "dump JSON diverged: {what}"
    );
    assert_eq!(batch.dict, streamed.dict, "context dictionary diverged: {what}");
    assert_eq!(
        batch.fingerprint(),
        streamed.fingerprint(),
        "fingerprint diverged: {what}"
    );
}

/// One row of the cross-validation table: every (path, workers) cell's
/// report fingerprint for one scenario. The table is the lock — a row
/// whose cells disagree names exactly which path at which worker count
/// diverged.
fn cross_validate(what: &str, dumps: Vec<whodunit_core::stitch::StageDump>, outs: &[(usize, CollectorOutput)]) {
    let mut cells: Vec<(String, u64)> = Vec::new();
    for workers in WORKER_SWEEP {
        let report = analyze_with(
            dumps.clone(),
            PipelineConfig { workers, shards: 32 },
            StealPlan::CANONICAL,
        )
        .unwrap_or_else(|e| panic!("pipeline panicked: {what} workers={workers}: {e}"));
        cells.push((format!("pipeline/w{workers}"), report.fingerprint()));
    }
    for (workers, out) in outs {
        cells.push((format!("collector/w{workers}"), out.report.fingerprint()));
    }
    let reference = cells[0].1;
    let table = cells
        .iter()
        .map(|(name, fp)| format!("  {name:<14} {fp:016x}"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        cells.iter().all(|&(_, fp)| fp == reference),
        "fingerprint table diverged: {what}\n{table}"
    );
}

fn run_matrix(faulty: bool) {
    let mut scenarios = 0;
    for &seed in &SEEDS {
        for sched in schedules(seed) {
            scenarios += 1;
            let what = format!("seed={seed} sched={sched:?} faulty={faulty}");

            // One simulation run, recorded; every worker count replays
            // the identical stream.
            let mut sink = RecordingSink::default();
            let report = run_tpcw_streaming(scenario_cfg(seed, sched, faulty), EPOCH_LEN, &mut sink);
            let batch = analyze(report.dumps.clone(), PipelineConfig { workers: 1, shards: 32 });
            assert!(
                !batch.profiles.is_empty(),
                "scenario produced no profiles (vacuous): {what}"
            );

            let mut outs = Vec::new();
            for workers in WORKER_SWEEP {
                let what = format!("{what} workers={workers}");
                let mut c = Collector::with_header(
                    &sink.header,
                    CollectorConfig {
                        workers,
                        ..CollectorConfig::default()
                    },
                );
                for b in &sink.batches {
                    assert!(c.enqueue(b.clone()), "unbounded queue refused a batch");
                    c.drain();
                }
                let out = c.finalize();
                assert!(
                    !out.stats.used_fallback,
                    "incremental path bailed to batch fallback: {what}"
                );
                assert!(out.stats.batches > 1, "stream collapsed to one batch: {what}");
                if workers > 1 {
                    assert!(
                        out.stats.parallel_fold_batches > 0,
                        "parallel fold path never engaged: {what}"
                    );
                    assert_eq!(out.stats.fold_panics, 0, "fold panicked: {what}");
                }
                assert_byte_identical(&batch, &out.report, &what);
                if !faulty {
                    assert_eq!(
                        out.stats.pending_walks_at_flush, 0,
                        "pending walks leaked on a clean run: {what}"
                    );
                    assert_eq!(
                        out.stats.pending_edges_at_flush, 0,
                        "pending edges leaked on a clean run: {what}"
                    );
                }
                outs.push((workers, out));
            }
            cross_validate(&what, report.dumps, &outs);
        }
    }
    assert_eq!(scenarios, 18);
}

#[test]
fn clean_streams_match_batch_byte_for_byte() {
    run_matrix(false);
}

#[test]
fn faulty_streams_match_batch_byte_for_byte() {
    run_matrix(true);
}

/// The epoch-chunked engine run must be bit-identical to the unchunked
/// one — streaming emission must not perturb the simulation itself.
/// (Subset of the matrix: this needs a second full simulation run per
/// scenario.)
#[test]
fn chunked_run_is_bit_identical_to_unchunked() {
    for &seed in &[1u64, 13] {
        for faulty in [false, true] {
            let what = format!("seed={seed} faulty={faulty}");
            let cfg = scenario_cfg(seed, SchedulePolicy::Fifo, faulty);
            let mut sink = RecordingSink::default();
            let streamed = run_tpcw_streaming(cfg.clone(), EPOCH_LEN, &mut sink);
            let batch = run_tpcw(cfg);
            assert_eq!(batch.dumps, streamed.dumps, "dumps diverged: {what}");
            assert_eq!(
                batch.wire_bytes, streamed.wire_bytes,
                "wire traffic diverged: {what}"
            );
            assert_eq!(
                batch.compute_truth, streamed.compute_truth,
                "ground-truth compute diverged: {what}"
            );
            assert!(sink.batches.len() > 1, "stream collapsed to one batch: {what}");
        }
    }
}

/// Epoch length and retention window are performance knobs, not
/// semantics: every combination must finalize to the same bytes, and
/// a tight window must actually evict while staying lossless.
#[test]
fn window_and_epoch_sweep_preserves_end_state() {
    let cfg = scenario_cfg(2, SchedulePolicy::Fifo, false);
    let reference = analyze(
        run_tpcw(cfg.clone()).dumps,
        PipelineConfig { workers: 1, shards: 32 },
    );
    let mut evictions_seen = false;
    for epoch_len in [CPU_HZ / 4, CPU_HZ, 5 * CPU_HZ] {
        for window in [1u64, 4] {
            let what = format!("epoch_len={epoch_len} window={window}");
            let (out, _) = run_scenario(
                cfg.clone(),
                epoch_len,
                CollectorConfig {
                    window_epochs: window,
                    ..CollectorConfig::default()
                },
            );
            assert!(!out.stats.used_fallback, "fallback: {what}");
            assert_byte_identical(&reference, &out.report, &what);
            if window == 1 && epoch_len <= CPU_HZ {
                assert!(
                    out.stats.evictions > 0,
                    "tight window never evicted: {what}"
                );
                // This single-node workload keeps all of its (few)
                // origins concurrently live, so peak_resident equals
                // the total here; the fleet bench (`collectord`) is
                // where peak < total is asserted. Bound it anyway.
                assert!(
                    out.stats.peak_resident <= out.report.profiles.len() as u64,
                    "resident set exceeded total origins: {what}"
                );
                evictions_seen = true;
            }
        }
    }
    assert!(evictions_seen);
}

/// The bounded ingest queue refuses batches at capacity and counts
/// the refusals; draining between offers keeps the stream lossless.
#[test]
fn backpressure_counts_throttles_and_stays_lossless() {
    let cfg = scenario_cfg(3, SchedulePolicy::Fifo, false);
    let mut sink = RecordingSink::default();
    let report = run_tpcw_streaming(cfg, CPU_HZ, &mut sink);
    let batch_ref = analyze(report.dumps, PipelineConfig { workers: 1, shards: 32 });

    let mut c = Collector::with_header(
        &sink.header,
        CollectorConfig {
            max_queue: 2,
            ..CollectorConfig::default()
        },
    );
    let mut throttles = 0u64;
    for b in &sink.batches {
        // Offer without draining: every third batch overflows the
        // 2-deep queue and must be re-offered after a poll.
        if !c.enqueue(b.clone()) {
            throttles += 1;
            c.poll();
            assert!(c.enqueue(b.clone()), "re-offer after poll must succeed");
        }
    }
    let out = c.finalize();
    assert!(throttles > 0, "queue never filled; backpressure untested");
    assert_eq!(out.stats.throttled, throttles);
    assert!(out.stats.peak_queued <= 2);
    assert!(!out.stats.used_fallback);
    assert_byte_identical(&batch_ref, &out.report, "backpressure run");
}

// ---------------------------------------------------------------------
// Self-healing ingest: damaged streams with a ResyncSource attached
// must heal back to byte-identity — quarantine and resync instead of
// the batch fallback — with the damage visible only as explicit
// degraded markers in the stats, never in the report.
// ---------------------------------------------------------------------

use std::cell::RefCell;
use std::rc::Rc;
use whodunit_collector::QuarantinePolicy;
use whodunit_core::delta::{EpochBatch, RecordedResync, ResyncSource, StreamHeader};
use whodunit_core::stitch::StageDump;

/// Shares the emitter-side reference state between the test (which
/// advances it in lockstep with the clean stream) and the collector
/// (which snapshots it on resync).
#[derive(Clone)]
struct SharedResync(Rc<RefCell<RecordedResync>>);

impl ResyncSource for SharedResync {
    fn snapshot(&self, stage: usize) -> Option<(StageDump, u64)> {
        self.0.borrow().snapshot(stage)
    }
}

/// One recorded clean scenario: header, batches, and the batch-pipeline
/// reference report over the same run's dumps.
fn recorded_scenario() -> (StreamHeader, Vec<EpochBatch>, PipelineReport) {
    let cfg = scenario_cfg(2, SchedulePolicy::Fifo, false);
    let mut sink = RecordingSink::default();
    let report = run_tpcw_streaming(cfg, EPOCH_LEN, &mut sink);
    let reference = analyze(report.dumps, PipelineConfig { workers: 1, shards: 32 });
    (sink.header, sink.batches, reference)
}

/// Ingests `damaged` while advancing the resync reference with the
/// corresponding `clean` batch first (the emitter is always at least
/// as current as the stream it just sent).
fn ingest_damaged(
    header: &StreamHeader,
    clean: &[EpochBatch],
    damaged: &[EpochBatch],
    ccfg: CollectorConfig,
) -> CollectorOutput {
    let mut c = Collector::with_header(header, ccfg);
    let shared = Rc::new(RefCell::new(RecordedResync::new(header)));
    c.set_resync_source(Box::new(SharedResync(shared.clone())));
    for (orig, dam) in clean.iter().zip(damaged) {
        shared.borrow_mut().advance(orig);
        assert!(c.enqueue(dam.clone()), "unbounded queue refused a batch");
        c.drain();
    }
    c.finalize()
}

/// Picks a mid-stream batch index whose batch carries a delta for a
/// stage that also appears in the following `lookahead` batches.
fn pick_damage_site(batches: &[EpochBatch], lookahead: usize) -> (usize, usize, usize) {
    let mid = batches.len() / 2;
    for bi in mid..batches.len().saturating_sub(lookahead + 1) {
        for (di, d) in batches[bi].deltas.iter().enumerate() {
            let stage = d.stage;
            let following = batches[bi + 1..]
                .iter()
                .take(lookahead)
                .filter(|b| b.deltas.iter().any(|x| x.stage == stage))
                .count();
            if following == lookahead && !d.ccts.is_empty() {
                return (bi, di, stage);
            }
        }
    }
    panic!("no damage site with {lookahead} follow-up frames found");
}

#[test]
fn corrupt_checksum_frame_is_quarantined_and_resynced() {
    let (header, batches, reference) = recorded_scenario();
    let (bi, di, stage) = pick_damage_site(&batches, 1);
    let mut damaged = batches.clone();
    damaged[bi].deltas[di].checksum ^= 0xdead_beef;

    let out = ingest_damaged(&header, &batches, &damaged, CollectorConfig::default());
    assert!(!out.stats.used_fallback, "healed, not fallen back");
    assert_eq!(out.stats.quarantined, 1);
    assert_eq!(out.stats.resyncs, 1);
    assert_eq!(out.stats.delta_errors, 0, "quarantine is not an error");
    assert_byte_identical(&reference, &out.report, "corrupt checksum");
    let marker = out
        .stats
        .degraded
        .iter()
        .find(|m| m.contains(&format!("stage {stage} ")))
        .expect("degraded marker for the damaged stage");
    assert!(marker.contains("1 corrupt quarantined"), "{marker}");
    assert!(marker.contains("1 resync"), "{marker}");
}

#[test]
fn truncated_frame_is_quarantined_and_resynced() {
    let (header, batches, reference) = recorded_scenario();
    let (bi, di, _) = pick_damage_site(&batches, 1);
    let mut damaged = batches.clone();
    // Truncate the payload without fixing the checksum — the wire
    // signature of a cut-short frame.
    damaged[bi].deltas[di].ccts.pop();

    let out = ingest_damaged(&header, &batches, &damaged, CollectorConfig::default());
    assert!(!out.stats.used_fallback);
    assert_eq!(out.stats.quarantined, 1);
    assert_eq!(out.stats.resyncs, 1);
    assert_byte_identical(&reference, &out.report, "truncated frame");
}

#[test]
fn duplicated_frame_is_dropped_without_resync() {
    let (header, batches, reference) = recorded_scenario();
    let (bi, di, _) = pick_damage_site(&batches, 1);
    let mut damaged = batches.clone();
    let dup = damaged[bi].deltas[di].clone();
    damaged[bi + 1].deltas.push(dup);

    let out = ingest_damaged(&header, &batches, &damaged, CollectorConfig::default());
    assert!(!out.stats.used_fallback);
    assert_eq!(out.stats.dup_frames, 1);
    assert_eq!(out.stats.resyncs, 0, "a duplicate needs no resync");
    assert_eq!(out.stats.quarantined, 0);
    assert_byte_identical(&reference, &out.report, "duplicated frame");
    assert!(
        out.stats.degraded.iter().any(|m| m.contains("1 duplicates dropped")),
        "degraded: {:?}",
        out.stats.degraded
    );
}

#[test]
fn reordered_frame_parks_and_heals_without_resync() {
    let (header, batches, reference) = recorded_scenario();
    let (bi, di, _) = pick_damage_site(&batches, 1);
    let mut damaged = batches.clone();
    // Deliver the frame one batch late, after its successor: the
    // successor parks on the seq gap, the late frame fills the hole,
    // and the parked one heals in order.
    let late = damaged[bi].deltas.remove(di);
    damaged[bi + 1].deltas.push(late);

    let out = ingest_damaged(&header, &batches, &damaged, CollectorConfig::default());
    assert!(!out.stats.used_fallback);
    assert_eq!(out.stats.healed_frames, 1);
    assert_eq!(out.stats.resyncs, 0, "reorder heals without resync");
    assert_byte_identical(&reference, &out.report, "reordered frame");
    assert!(
        out.stats.degraded.iter().any(|m| m.contains("1 reordered healed")),
        "degraded: {:?}",
        out.stats.degraded
    );
}

#[test]
fn lost_frame_overflows_the_reorder_buffer_into_a_resync() {
    let (header, batches, reference) = recorded_scenario();
    let lookahead = 3;
    let (bi, di, _) = pick_damage_site(&batches, lookahead);
    let mut damaged = batches.clone();
    damaged[bi].deltas.remove(di);

    // A reorder buffer smaller than the follow-up traffic: the hole
    // never fills, the parked frames overflow, and the catch-up diff
    // resync recovers the lost increment from the emitter snapshot.
    let out = ingest_damaged(
        &header,
        &batches,
        &damaged,
        CollectorConfig {
            quarantine: QuarantinePolicy {
                reorder_buffer: lookahead - 1,
                ..QuarantinePolicy::default()
            },
            ..CollectorConfig::default()
        },
    );
    assert!(!out.stats.used_fallback, "no batch fallback on loss");
    assert_eq!(out.stats.resyncs, 1);
    assert_byte_identical(&reference, &out.report, "lost frame");
    assert!(
        out.stats.degraded.iter().any(|m| m.contains("resync")),
        "degraded: {:?}",
        out.stats.degraded
    );
}

#[test]
fn gap_without_resync_source_still_falls_back() {
    // The legacy contract is untouched: no source attached means any
    // damage breaks the stream and finalize runs the batch pipeline.
    let (header, batches, reference) = recorded_scenario();
    let (bi, di, _) = pick_damage_site(&batches, 1);
    let mut damaged = batches.clone();
    damaged[bi].deltas[di].checksum ^= 1;

    let mut c = Collector::with_header(&header, CollectorConfig::default());
    for b in &damaged {
        assert!(c.enqueue(b.clone()));
        c.drain();
    }
    let out = c.finalize();
    assert!(out.stats.used_fallback, "no source: legacy fallback");
    assert!(out.stats.delta_errors > 0);
    assert_eq!(out.stats.quarantined, 0);
    // The fallback path reconstructs from its own accumulated dumps,
    // which the damaged delta never reached — the report may lag the
    // reference, so only the stats contract is asserted here; the
    // byte-identity lock for the healed path is what the tests above
    // pin down.
    assert!(out.stats.degraded.is_empty(), "legacy path never degrades");
    let _ = reference;
}

#[test]
fn stalled_stage_is_flagged_by_the_watchdog_and_finalizes_degraded() {
    let (header, batches, _reference) = recorded_scenario();
    // Silence the busiest stage for the back half of the stream.
    let cut = batches.len() / 2;
    let stage = batches[cut]
        .deltas
        .first()
        .map(|d| d.stage)
        .expect("mid-stream batch has deltas");
    let mut damaged = batches.clone();
    for b in damaged.iter_mut().skip(cut) {
        b.deltas.retain(|d| d.stage != stage);
    }

    let out = ingest_damaged(
        &header,
        &batches,
        &damaged,
        CollectorConfig {
            quarantine: QuarantinePolicy {
                stall_epochs: 3,
                ..QuarantinePolicy::default()
            },
            ..CollectorConfig::default()
        },
    );
    assert!(!out.stats.used_fallback, "a stall is not a broken stream");
    assert!(out.stats.stalls >= 1, "watchdog never fired");
    assert!(
        out.stats
            .degraded
            .iter()
            .any(|m| m.contains(&format!("stage {stage} ")) && m.contains("stall")),
        "degraded: {:?}",
        out.stats.degraded
    );
}

// ---------------------------------------------------------------------
// Binary wire ingest (DESIGN.md §16): the same scenarios shipped as
// columnar wire frames must finalize to the same bytes, and damage at
// the *byte* level — truncation, bit flips, reordering of encoded
// frames — must be caught by the envelope checks and healed by the
// same quarantine/resync machinery the delta-level tests above lock.
// ---------------------------------------------------------------------

use whodunit_core::wire::{encode_batch, encode_header};

/// Ingests pre-encoded wire frames while advancing the resync
/// reference with the corresponding clean batch (the wire twin of
/// [`ingest_damaged`]). Returns the output plus the count of frames
/// the codec rejected.
fn ingest_wire(
    header: &StreamHeader,
    clean: &[EpochBatch],
    frames: &[Vec<u8>],
    ccfg: CollectorConfig,
) -> (CollectorOutput, u64) {
    let mut c = Collector::new(ccfg);
    c.start_wire(&encode_header(header)).expect("header frame decodes");
    let shared = Rc::new(RefCell::new(RecordedResync::new(header)));
    c.set_resync_source(Box::new(SharedResync(shared.clone())));
    let mut rejected = 0u64;
    for (i, f) in frames.iter().enumerate() {
        if let Some(orig) = clean.get(i) {
            shared.borrow_mut().advance(orig);
        }
        match c.enqueue_wire(f) {
            Ok(accepted) => assert!(accepted, "unbounded queue refused a frame"),
            Err(_) => rejected += 1,
        }
        c.drain();
    }
    (c.finalize(), rejected)
}

/// Picks a mid-stream batch index where *every* stage in the batch has
/// at least `lookahead` follow-up frames — so dropping the whole batch
/// (what an undecodable wire frame becomes) is guaranteed to overflow
/// a `lookahead - 1` reorder buffer into a resync on every stage.
fn pick_batch_site(batches: &[EpochBatch], lookahead: usize) -> usize {
    let mid = batches.len() / 2;
    for bi in mid..batches.len().saturating_sub(lookahead + 1) {
        if batches[bi].deltas.is_empty() {
            continue;
        }
        let ok = batches[bi].deltas.iter().all(|d| {
            batches[bi + 1..]
                .iter()
                .take(lookahead)
                .filter(|b| b.deltas.iter().any(|x| x.stage == d.stage))
                .count()
                == lookahead
        });
        if ok {
            return bi;
        }
    }
    panic!("no batch site with {lookahead} follow-up frames on every stage");
}

/// The full 36-scenario matrix shipped over the wire: encode every
/// recorded batch, ingest through [`Collector::enqueue_wire`], and
/// byte-compare against the batch pipeline — the wire transport must
/// be invisible in the final report.
fn run_wire_matrix(faulty: bool) {
    let mut scenarios = 0;
    for &seed in &SEEDS {
        for sched in schedules(seed) {
            scenarios += 1;
            let what = format!("seed={seed} sched={sched:?} faulty={faulty} wire");
            let mut sink = RecordingSink::default();
            let report =
                run_tpcw_streaming(scenario_cfg(seed, sched, faulty), EPOCH_LEN, &mut sink);
            let batch = analyze(report.dumps, PipelineConfig { workers: 1, shards: 32 });

            let mut c = Collector::new(CollectorConfig::default());
            c.start_wire(&encode_header(&sink.header)).expect("header frame decodes");
            let mut wire_bytes = 0u64;
            for b in &sink.batches {
                let f = encode_batch(b);
                wire_bytes += f.len() as u64;
                assert!(
                    c.enqueue_wire(&f).expect("clean wire frame decodes"),
                    "unbounded queue refused a frame: {what}"
                );
                c.drain();
            }
            let out = c.finalize();
            assert!(!out.stats.used_fallback, "wire ingest fell back: {what}");
            assert_eq!(out.stats.wire_frames, sink.batches.len() as u64, "{what}");
            assert_eq!(out.stats.wire_bytes, wire_bytes, "{what}");
            assert_eq!(out.stats.wire_errors, 0, "{what}");
            assert_byte_identical(&batch, &out.report, &what);
        }
    }
    assert_eq!(scenarios, 18);
}

#[test]
fn wire_clean_streams_match_batch_byte_for_byte() {
    run_wire_matrix(false);
}

#[test]
fn wire_faulty_streams_match_batch_byte_for_byte() {
    run_wire_matrix(true);
}

#[test]
fn wire_bitflipped_frame_is_rejected_and_healed() {
    let (header, batches, reference) = recorded_scenario();
    let lookahead = 3;
    let bi = pick_batch_site(&batches, lookahead);
    let mut frames: Vec<Vec<u8>> = batches.iter().map(encode_batch).collect();
    // Flip one payload bit mid-body: the envelope digest must catch it.
    let at = frames[bi].len() / 2;
    frames[bi][at] ^= 0x10;

    let (out, rejected) = ingest_wire(
        &header,
        &batches,
        &frames,
        CollectorConfig {
            quarantine: QuarantinePolicy {
                reorder_buffer: lookahead - 1,
                ..QuarantinePolicy::default()
            },
            ..CollectorConfig::default()
        },
    );
    assert_eq!(rejected, 1, "exactly the flipped frame is rejected");
    assert_eq!(out.stats.wire_errors, 1);
    assert!(!out.stats.used_fallback, "healed, not fallen back");
    assert!(out.stats.resyncs >= 1, "dropped frame must resync");
    assert_byte_identical(&reference, &out.report, "wire bit flip");
}

#[test]
fn wire_truncated_frame_is_rejected_and_healed() {
    let (header, batches, reference) = recorded_scenario();
    let lookahead = 3;
    let bi = pick_batch_site(&batches, lookahead);
    let mut frames: Vec<Vec<u8>> = batches.iter().map(encode_batch).collect();
    // Cut the frame short — the wire signature of a torn write.
    let keep = frames[bi].len() * 2 / 3;
    frames[bi].truncate(keep);

    let (out, rejected) = ingest_wire(
        &header,
        &batches,
        &frames,
        CollectorConfig {
            quarantine: QuarantinePolicy {
                reorder_buffer: lookahead - 1,
                ..QuarantinePolicy::default()
            },
            ..CollectorConfig::default()
        },
    );
    assert_eq!(rejected, 1);
    assert_eq!(out.stats.wire_errors, 1);
    assert!(!out.stats.used_fallback);
    assert!(out.stats.resyncs >= 1);
    assert_byte_identical(&reference, &out.report, "wire truncation");
}

#[test]
fn wire_reordered_frames_park_and_heal() {
    let (header, batches, reference) = recorded_scenario();
    let bi = pick_batch_site(&batches, 1);
    let mut frames: Vec<Vec<u8>> = batches.iter().map(encode_batch).collect();
    // Swap two adjacent encoded frames: both decode, the early one
    // parks on the seq gap, and the late one fills the hole.
    frames.swap(bi, bi + 1);

    let (out, rejected) = ingest_wire(&header, &batches, &frames, CollectorConfig::default());
    assert_eq!(rejected, 0, "reordered frames still decode");
    assert_eq!(out.stats.wire_errors, 0);
    assert!(!out.stats.used_fallback);
    assert!(out.stats.healed_frames >= 1, "park/heal path never engaged");
    assert_eq!(out.stats.resyncs, 0, "reorder heals without resync");
    assert_byte_identical(&reference, &out.report, "wire reorder");
}

#[test]
fn cycle_peak_queue_gauge_resets_between_drain_cycles() {
    let (header, batches, reference) = recorded_scenario();
    assert!(batches.len() >= 6, "need a few batches to form two cycles");

    let mut c = Collector::with_header(&header, CollectorConfig::default());
    // Cycle 1: pile up three batches, then drain.
    for b in &batches[..3] {
        assert!(c.enqueue(b.clone()));
    }
    assert_eq!(c.stats().peak_queued, 3);
    assert_eq!(c.stats().cycle_peak_queued, 3);
    c.drain();
    // Cycle 2: a single batch on the now-empty queue must reset the
    // cycle gauge while the all-time peak stays monotone.
    assert!(c.enqueue(batches[3].clone()));
    assert_eq!(c.stats().cycle_peak_queued, 1, "gauge reset on empty queue");
    assert_eq!(c.stats().peak_queued, 3, "all-time peak is monotone");
    let snap = c.snapshot();
    assert_eq!(snap.lag.cycle_peak_queued, 1);
    assert_eq!(snap.lag.peak_queued, 3);
    c.drain();
    for b in &batches[4..] {
        assert!(c.enqueue(b.clone()));
        c.drain();
    }
    let out = c.finalize();
    assert!(!out.stats.used_fallback);
    assert_byte_identical(&reference, &out.report, "lag gauge scenario");
}
