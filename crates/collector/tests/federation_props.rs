//! Property tests for the federation's summary-delta merge algebra —
//! the laws the aggregation tiers lean on for byte-identity:
//!
//! - **Grouping invariance**: splitting a stage's delta stream into
//!   any consecutive groups, merging each group into one summary
//!   delta, and applying the groups yields the same accumulated dump
//!   as applying every delta individually. This is exactly what a
//!   regional does when it compacts child frames between flushes.
//! - **Associativity**: `merge(merge(d1,d2),d3) == merge(d1,merge(d2,d3))`
//!   as values, so leaf-side and regional-side compaction commute.
//! - **Mass conservation**: `delta_mass` is additive under merge — the
//!   ledger unit the root's coverage accounting is built on.
//! - **Sketch algebra**: [`QuantileSketch::merge`] is permutation- and
//!   grouping-insensitive, and the sparse wire form round-trips
//!   bit-exactly — per-tier digests may take any path through the
//!   tree.
//!
//! The generated streams carry growing CCTs, late-arriving contexts,
//! crosstalk pair/waiter partials, and piggyback counters, so every
//! merged field is exercised.

use proptest::prelude::*;
use whodunit_core::delta::{diff_dump, StageAccumulator, StageDelta, StreamStage};
use whodunit_core::stitch::{
    DumpAtom, DumpCct, DumpContext, DumpCrosstalkPair, DumpCrosstalkWaiter, DumpNode, StageDump,
};
use whodunit_core::summary::{delta_mass, empty_delta, merge_stage_delta, seal_delta};
use whodunit_core::QuantileSketch;

/// Generated stream shape: epoch count, context arrivals, and a raw
/// growth pool the cycle increments are carved from.
#[derive(Clone, Debug)]
struct Shape {
    epochs: usize,
    ctxs: usize,
    growth: Vec<u64>,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        3usize..8,
        1usize..4,
        proptest::collection::vec(1u64..5_000, 8..9),
    )
        .prop_map(|(epochs, ctxs, growth)| Shape {
            epochs,
            ctxs,
            growth,
        })
}

/// Cumulative dump as of the end of epoch `e` (inclusive): contexts
/// arrive one per epoch until `ctxs` exist, every CCT leaf keeps
/// growing, and crosstalk partials accrue once two contexts exist.
fn dump_at(shape: &Shape, e: usize) -> StageDump {
    let mut d = StageDump {
        proc: 7,
        stage_name: "svc".into(),
        frames: vec!["main".into(), "work".into()],
        ..StageDump::default()
    };
    for epoch in 0..=e {
        if d.contexts.len() < shape.ctxs {
            let k = d.contexts.len();
            d.contexts.push(DumpContext {
                atoms: vec![DumpAtom::Frame((k % 2) as u32)],
            });
            d.ccts.push(DumpCct {
                ctx: k as u32,
                nodes: vec![
                    DumpNode {
                        frame: None,
                        parent: None,
                        samples: 0,
                        cycles: 0,
                        calls: 0,
                    },
                    DumpNode {
                        frame: Some(1),
                        parent: Some(0),
                        samples: 1,
                        cycles: shape.growth[k % shape.growth.len()],
                        calls: 1,
                    },
                ],
            });
        }
        for c in &mut d.ccts {
            c.nodes[1].samples += 1;
            c.nodes[1].cycles += shape.growth[(epoch + c.ctx as usize) % shape.growth.len()];
        }
        if d.contexts.len() >= 2 {
            if d.crosstalk_pairs.is_empty() {
                d.crosstalk_pairs.push(DumpCrosstalkPair {
                    waiter: 0,
                    holder: 1,
                    count: 0,
                    total_wait: 0,
                });
                d.crosstalk_waiters.push(DumpCrosstalkWaiter {
                    waiter: 0,
                    count: 0,
                    total_wait: 0,
                });
            }
            d.crosstalk_pairs[0].count += 1;
            d.crosstalk_pairs[0].total_wait += shape.growth[epoch % shape.growth.len()];
            d.crosstalk_waiters[0].count += 1;
            d.crosstalk_waiters[0].total_wait += shape.growth[epoch % shape.growth.len()];
        }
        d.piggyback_bytes += 4;
        d.messages += 1;
    }
    d
}

/// The canonical per-epoch delta stream of the shape.
fn deltas_of(shape: &Shape) -> Vec<StageDelta> {
    let mut prev: Option<StageDump> = None;
    let mut out = Vec::new();
    for e in 0..shape.epochs {
        let cur = dump_at(shape, e);
        if let Some(d) = diff_dump(0, out.len() as u64, prev.as_ref(), &cur) {
            out.push(d);
        }
        prev = Some(cur);
    }
    out
}

fn stage() -> StreamStage {
    StreamStage {
        proc: 7,
        stage_name: "svc".into(),
    }
}

/// Applies a delta sequence to a fresh accumulator and dumps it.
fn apply_all(deltas: &[StageDelta]) -> StageDump {
    let mut acc = StageAccumulator::new(&stage());
    for d in deltas {
        acc.apply(d).expect("canonical stream applies");
    }
    acc.to_dump()
}

/// Carves `n` items into consecutive non-empty groups at the positions
/// selected by `cuts`.
fn group_bounds(n: usize, cuts: &[bool]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut start = 0;
    for i in 1..n {
        if cuts[(i - 1) % cuts.len()] {
            bounds.push((start, i));
            start = i;
        }
    }
    bounds.push((start, n));
    bounds
}

/// Merges a consecutive delta run into one sealed summary delta.
fn merge_run(deltas: &[StageDelta], seq: u64) -> StageDelta {
    let mut acc = empty_delta(0);
    for d in deltas {
        merge_stage_delta(&mut acc, d).expect("consecutive deltas merge");
    }
    seal_delta(acc, seq)
}

proptest! {
    /// Any consecutive grouping of the stream, compacted group-by-group
    /// through the summary merge, accumulates to the same bytes as the
    /// raw stream — and conserves mass group-by-group.
    #[test]
    fn merged_groups_apply_identically(
        input in (shape_strategy(), proptest::collection::vec(any::<bool>(), 8..9))
    ) {
        let (shape, cuts) = input;
        let deltas = deltas_of(&shape);
        prop_assert!(!deltas.is_empty());
        let reference = apply_all(&deltas);

        let mut merged = Vec::new();
        for (gi, &(a, b)) in group_bounds(deltas.len(), &cuts).iter().enumerate() {
            let run = &deltas[a..b];
            let m = merge_run(run, gi as u64);
            let run_mass: u64 = run.iter().map(delta_mass).sum();
            prop_assert_eq!(delta_mass(&m), run_mass, "merge changed the mass ledger");
            let run_events: u64 = run.iter().map(|d| d.events()).sum();
            prop_assert!(m.events() <= run_events, "merge inflated the stream");
            merged.push(m);
        }
        prop_assert_eq!(apply_all(&merged), reference, "grouped apply diverged");
    }

    /// The merge is associative as a value: folding left and folding
    /// right produce the same summary delta (checksums sealed equally).
    #[test]
    fn merge_is_associative_over_the_stream(shape in shape_strategy()) {
        let deltas = deltas_of(&shape);
        prop_assert!(deltas.len() >= 3);
        for w in deltas.windows(3) {
            // left: (d0 · d1) · d2
            let mut left = empty_delta(0);
            merge_stage_delta(&mut left, &w[0]).unwrap();
            merge_stage_delta(&mut left, &w[1]).unwrap();
            merge_stage_delta(&mut left, &w[2]).unwrap();
            // right: d0 · (d1 · d2)
            let mut inner = empty_delta(0);
            merge_stage_delta(&mut inner, &w[1]).unwrap();
            merge_stage_delta(&mut inner, &w[2]).unwrap();
            let mut right = empty_delta(0);
            merge_stage_delta(&mut right, &w[0]).unwrap();
            merge_stage_delta(&mut right, &inner).unwrap();
            prop_assert_eq!(
                seal_delta(left, 0),
                seal_delta(right, 0),
                "associativity broke"
            );
        }
    }

    /// Sketch merging is permutation- and grouping-insensitive, and the
    /// sparse wire form round-trips exactly — whatever path a tier
    /// digest takes through the tree, the root reads the same answer.
    #[test]
    fn sketch_merge_is_order_free_and_wire_exact(
        input in (proptest::collection::vec(0u64..1_000_000, 1..40), 0usize..40, 1usize..8)
    ) {
        let (values, rot, split) = input;
        let mut sequential = QuantileSketch::new();
        for &v in &values {
            sequential.record(v);
        }

        let mut rotated = values.clone();
        let n = rotated.len();
        rotated.rotate_left(rot % n);
        let mut merged = QuantileSketch::new();
        for chunk in rotated.chunks(split) {
            let mut part = QuantileSketch::new();
            for &v in chunk {
                part.record(v);
            }
            // Ship every part through the wire form, as a frame would.
            let (max, buckets) = part.to_wire();
            merged.merge(&QuantileSketch::from_wire(max, &buckets));
        }

        prop_assert_eq!(sequential.count(), merged.count());
        prop_assert_eq!(sequential.max(), merged.max());
        for q in [0u64, 100_000, 500_000, 900_000, 990_000, 1_000_000] {
            prop_assert_eq!(
                sequential.quantile_ppm(q),
                merged.quantile_ppm(q),
                "quantile {} diverged", q
            );
        }
        let (m1, b1) = sequential.to_wire();
        let (m2, b2) = merged.to_wire();
        prop_assert_eq!((m1, b1), (m2, b2), "wire forms diverged");
    }
}
