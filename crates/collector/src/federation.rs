//! Fault-tolerant collector federation: leaf → regional → global
//! aggregation of streaming profile deltas.
//!
//! A flat [`Collector`] ingests every stage of a fleet directly; at
//! planet scale that is one process holding every accumulator and every
//! uplink. The federation splits the fleet across many *leaf* nodes
//! (one per rack/region slice of the stage space), folds their
//! compacted [`SummaryFrame`]s through *regional* aggregators, and
//! applies the result at a single *global root* — an ordinary
//! [`Collector`] over the full fleet header, so the clean-run final
//! report is **byte-identical** to the flat batch pipeline (the
//! differential suite holds the fingerprint lineage to it).
//!
//! The robustness contract, per level:
//!
//! - **Lossy uplinks.** Frames and acks travel through a [`LinkPolicy`]
//!   (drop / duplicate / delay / partition — the simulator's seeded
//!   `FaultPlan` adapts onto it). Receivers verify frame checksums,
//!   drop duplicates by per-link sequence number, park bounded
//!   reordered frames, and ack cumulatively; senders retransmit
//!   go-back-N from a bounded spool with exponential backoff.
//! - **Write-ahead rule.** A node only *transmits* frames its latest
//!   checkpoint covers, and an aggregator only *acks* receptions its
//!   own checkpoint covers (the root acks immediately — it is the
//!   durable terminus). Together these make crash recovery exactly-once:
//!   a recovered node can never re-emit a transmitted sequence number
//!   with different content, and an acked frame is never lost by a
//!   receiver crash.
//! - **Crash recovery.** Leaves and regionals crash at virtual time and
//!   recover from their periodic checkpoint (a clone of accumulators,
//!   pending increment, spool, and counters), replay the spool tail
//!   verbatim (receivers dedup), and — for leaves — catch their *input*
//!   up through the PR 6 [`ResyncSource`] shape: a snapshot diff folded
//!   through the normal merge path, so no profile mass is lost.
//! - **Honest degradation.** If a subtree stays unrecoverable past the
//!   finalize deadline, the root finalizes anyway: the missing mass is
//!   attributed to explicit per-subtree degraded markers and a coverage
//!   fraction, never silently dropped. The
//!   [`whodunit_core::oracle::check_federation`] oracle cross-checks
//!   the ledger against the root's actually-applied mass.

use std::collections::{BTreeMap, VecDeque};
use whodunit_core::delta::{
    EpochBatch, RecordedResync, ResyncSource, StageAccumulator, StageDelta, StreamHeader,
};
use whodunit_core::oracle::{FederationEvidence, SubtreeMass};
use whodunit_core::sketch::QuantileSketch;
use whodunit_core::summary::{
    delta_mass, empty_delta, merge_stage_delta, seal_delta, LeafGauges, SummaryFrame, TierSketch,
};
use whodunit_core::wire;
use whodunit_report::live::{FedNodeView, FedTopologyView};

use crate::{Collector, CollectorConfig, CollectorOutput};
use whodunit_core::exec::{self, StealPlan};

use std::sync::Mutex;

/// Fate of one message offered to an upstream link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkVerdict {
    /// Delivery copies: 0 = lost, 1 = normal, 2 = duplicated.
    pub copies: u32,
    /// Extra delivery delay in federation ticks.
    pub delay: u64,
}

impl Default for LinkVerdict {
    fn default() -> Self {
        LinkVerdict { copies: 1, delay: 0 }
    }
}

/// Decides the fate of every message on every federation link.
///
/// The collector crate knows nothing about the simulator; the apps
/// crate adapts the seeded `FaultPlan` (drop/dup/delay/partition) onto
/// this trait. Leaf uplinks use the leaf index as link id; regional
/// uplinks use `leaf_count + region index`. Both directions of a link
/// (frames up, acks down) share its id.
pub trait LinkPolicy {
    /// The fate of one message sent on `link` at federation tick `now`.
    fn verdict(&mut self, link: u32, now: u64) -> LinkVerdict;
}

/// The fault-free policy: every message delivered once, next tick.
#[derive(Clone, Copy, Debug, Default)]
pub struct CleanLinks;

impl LinkPolicy for CleanLinks {
    fn verdict(&mut self, _link: u32, _now: u64) -> LinkVerdict {
        LinkVerdict::default()
    }
}

/// Tuning knobs of the federation.
#[derive(Clone, Debug)]
pub struct FederationConfig {
    /// Ticks between frame flushes at every node (minimum 1).
    pub flush_every: u64,
    /// Ticks between checkpoints at every node (minimum 1). Frames
    /// spooled since the last checkpoint are not transmittable, and
    /// aggregators only ack up to their checkpoint horizon, so this is
    /// also the ack cadence.
    pub checkpoint_every: u64,
    /// Initial retransmission timeout in ticks. Should exceed
    /// `checkpoint_every` plus the link round trip, or clean links
    /// will retransmit spuriously while waiting for the ack cadence.
    pub rto_initial: u64,
    /// Retransmission timeout ceiling (exponential backoff).
    pub rto_max: u64,
    /// Reordered frames a receiver parks per link before dropping.
    pub park_max: usize,
    /// Unacked frames a sender spools before it stalls flushing (the
    /// pending increment keeps merging — lag, not loss).
    pub spool_max: usize,
    /// Drain ticks [`Federation::finalize`] grants before declaring
    /// still-missing subtrees degraded.
    pub deadline_ticks: u64,
    /// OS threads for the per-leaf ingest phase of
    /// [`Federation::feed_round`]. `1` keeps the serial reference path;
    /// leaves own disjoint state, so any worker count is byte-identical
    /// (DESIGN.md §14). The root collector's own fold parallelism is
    /// configured separately through `collector.workers`.
    pub workers: usize,
    /// Steal-schedule perturbation for the ingest executor — sweepable
    /// by the stress harness, inert for correctness.
    pub steal: StealPlan,
    /// Ship [`SummaryFrame`]s over the links as compact columnar wire
    /// frames ([`whodunit_core::wire::encode_summary`]) instead of
    /// in-memory structs. Byte-identical output either way; `false`
    /// keeps the legacy struct links for differential runs.
    pub wire_links: bool,
    /// Meter every link transmission in both encodings
    /// (`*_link_json_bytes` vs `*_link_wire_bytes`) for the
    /// before/after compression story. Rendering the legacy JSON on
    /// every send — retransmits included — costs far more than the
    /// wire encode itself, so the comparison is off by default and
    /// switched on by the `federation` bench that records it.
    pub meter_links: bool,
    /// Configuration of the root's flat [`Collector`].
    pub collector: CollectorConfig,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            flush_every: 4,
            checkpoint_every: 8,
            rto_initial: 24,
            rto_max: 192,
            park_max: 8,
            spool_max: 64,
            deadline_ticks: 4096,
            workers: 1,
            steal: StealPlan::CANONICAL,
            wire_links: true,
            meter_links: false,
            collector: CollectorConfig::default(),
        }
    }
}

/// A federation node a planned crash can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FedNodeId {
    /// Leaf by index.
    Leaf(usize),
    /// Regional aggregator by index.
    Regional(usize),
}

/// One planted crash (and optional recovery) at virtual time.
#[derive(Clone, Debug)]
struct PlannedCrash {
    node: FedNodeId,
    at: u64,
    recover_at: Option<u64>,
    fired: bool,
    recovered: bool,
}

/// The lifecycle of one planted leaf crash, as observed by the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Crashed leaf index.
    pub leaf: usize,
    /// Last input epoch the workload had fed the leaf when it crashed.
    pub crash_epoch: u64,
    /// Federation tick of the crash.
    pub crash_tick: u64,
    /// Input epoch at which the root first saw the leaf's post-recovery
    /// gauges cover the crash epoch — `None` if it never recovered.
    /// `recovered_epoch - crash_epoch` is the recovery latency in
    /// epochs.
    pub recovered_epoch: Option<u64>,
}

/// Operational counters across one federation run.
#[derive(Clone, Debug, Default)]
pub struct FederationStats {
    /// Federation ticks executed (including finalize drain).
    pub ticks: u64,
    /// Frames offered to links (first transmissions).
    pub frames_sent: u64,
    /// Frame retransmissions after an RTO expiry.
    pub retransmits: u64,
    /// Frames the link policy dropped.
    pub frames_lost: u64,
    /// Acks offered to links.
    pub acks_sent: u64,
    /// Acks the link policy dropped.
    pub acks_lost: u64,
    /// Frames accepted in order by a receiver.
    pub frames_delivered: u64,
    /// Duplicate frames dropped by receivers.
    pub dup_frames: u64,
    /// Parked frames that later became contiguous and applied.
    pub healed_frames: u64,
    /// Frames discarded for a checksum mismatch.
    pub corrupt_frames: u64,
    /// Reordered frames dropped because the park buffer was full.
    pub park_overflow: u64,
    /// In-order frames rejected for a per-stage sequence mismatch.
    pub rejected_frames: u64,
    /// Messages delivered to a crashed node and discarded.
    pub dropped_to_dead: u64,
    /// Checkpoints taken across all nodes.
    pub checkpoints: u64,
    /// Planned crashes fired.
    pub crashes: u64,
    /// Crash recoveries performed.
    pub recoveries: u64,
    /// Leaf input resyncs (recovery catch-up or damaged input).
    pub input_resyncs: u64,
    /// Input batches fed to a crashed leaf (recovered later via
    /// resync, or lost if the leaf never recovers).
    pub missed_batches: u64,
    /// Flushes skipped because the sender spool was full.
    pub spool_stalls: u64,
    /// Input deltas for stages the leaf does not own (dropped).
    pub foreign_deltas: u64,
    /// Input deltas that failed to apply at a leaf (triggers resync).
    pub input_errors: u64,
    /// Peak resident change events at any leaf (pending + spool).
    pub peak_resident_leaf: u64,
    /// Peak resident change events at any regional (pending + spool +
    /// parked).
    pub peak_resident_regional: u64,
    /// Peak resident change events parked at the root.
    pub peak_resident_root: u64,
    /// Change events fed into leaves (compaction denominator).
    pub leaf_events_in: u64,
    /// Change events the root applied (compaction numerator).
    pub root_events_applied: u64,
    /// Feed rounds whose leaf ingest ran on the parallel executor.
    pub parallel_ingest_rounds: u64,
    /// Work steals across parallel ingest rounds. Timing-dependent;
    /// diagnostic only, never part of a fingerprint surface.
    pub ingest_steals: u64,
    /// Ingest worker panics recovered through the resync path.
    pub ingest_panics: u64,
    /// Leaf-uplink frame payload bytes in the legacy JSON edge
    /// encoding (the "before" of the compression story; counted per
    /// transmission, including retransmits — only when
    /// [`FederationConfig::meter_links`] is on, zero otherwise).
    pub leaf_link_json_bytes: u64,
    /// Leaf-uplink frame payload bytes in the columnar wire encoding
    /// (metered under the same `meter_links` gate).
    pub leaf_link_wire_bytes: u64,
    /// Regional-uplink frame payload bytes in the legacy JSON edge
    /// encoding (gated by `meter_links`).
    pub regional_link_json_bytes: u64,
    /// Regional-uplink frame payload bytes in the columnar wire
    /// encoding (gated by `meter_links`).
    pub regional_link_wire_bytes: u64,
    /// Wire frames a receiver could not decode (envelope or body
    /// damage). The frame is dropped; the sender's RTO retransmit
    /// heals the link, exactly like a lost frame.
    pub wire_decode_errors: u64,
}

/// Everything a finished federation run hands back.
pub struct FederationOutput {
    /// The root collector's finalized, byte-locked report.
    pub output: CollectorOutput,
    /// Delivered/truth coverage in parts-per-million (1_000_000 on a
    /// clean run).
    pub coverage_ppm: u64,
    /// Labels of subtrees finalized degraded (missing mass, or dead).
    pub degraded: Vec<String>,
    /// The mass ledger for [`whodunit_core::oracle::check_federation`].
    pub evidence: FederationEvidence,
    /// Operational counters.
    pub stats: FederationStats,
    /// Final topology view (renderable via
    /// [`whodunit_report::live::render_fed_topology`]).
    pub topology: FedTopologyView,
    /// Planted-crash lifecycle records, in planting order.
    pub recovery: Vec<RecoveryRecord>,
}

/// Volatile sender-side transmission state (never checkpointed: a
/// recovered node simply replays its spool tail).
#[derive(Clone, Debug)]
struct Sender {
    next_send: u64,
    rto: u64,
    deadline: u64,
}

impl Sender {
    fn new(rto: u64, now: u64) -> Sender {
        Sender {
            next_send: 0,
            rto,
            deadline: now + rto,
        }
    }

    /// First-transmits newly checkpoint-covered frames and, on RTO
    /// expiry, retransmits the whole unacked window (go-back-N) with
    /// exponential backoff. `spool` holds sequences `[acked, ...)`.
    fn pump(
        &mut self,
        spool: &VecDeque<SummaryFrame>,
        acked: u64,
        gate: u64,
        now: u64,
        cfg: &FederationConfig,
        stats: &mut FederationStats,
    ) -> Vec<SummaryFrame> {
        let mut out = Vec::new();
        if self.next_send < acked {
            self.next_send = acked;
        }
        while self.next_send < gate {
            let Some(f) = spool.get((self.next_send - acked) as usize) else {
                break;
            };
            out.push(f.clone());
            stats.frames_sent += 1;
            self.next_send += 1;
            self.deadline = now + self.rto;
        }
        if acked < self.next_send && now >= self.deadline {
            for seq in acked..self.next_send {
                if let Some(f) = spool.get((seq - acked) as usize) {
                    out.push(f.clone());
                    stats.retransmits += 1;
                }
            }
            self.rto = self.rto.saturating_mul(2).clamp(cfg.rto_initial, cfg.rto_max);
            self.deadline = now + self.rto;
        }
        out
    }

    /// Folds a cumulative ack (everything `<= upto` received and
    /// checkpointed by the parent) into the spool.
    fn on_ack(
        &mut self,
        upto: u64,
        spool: &mut VecDeque<SummaryFrame>,
        spool_events: &mut u64,
        acked: &mut u64,
        now: u64,
        cfg: &FederationConfig,
    ) {
        if upto < *acked {
            return; // stale
        }
        while *acked <= upto {
            if let Some(f) = spool.pop_front() {
                *spool_events = spool_events.saturating_sub(f.events());
            }
            *acked += 1;
        }
        self.rto = cfg.rto_initial;
        self.deadline = now + self.rto;
        if self.next_send < *acked {
            self.next_send = *acked;
        }
    }
}

/// Receiver-side state of one incoming link.
#[derive(Clone, Debug, Default)]
struct RxState {
    /// Next in-order frame sequence number.
    expected: u64,
    /// Frames `< ack_gate` are covered by this node's checkpoint and
    /// may be (re-)acked.
    ack_gate: u64,
    /// Bounded reorder buffer, keyed by frame seq.
    parked: BTreeMap<u64, SummaryFrame>,
    parked_events: u64,
}

fn extend_interval(iv: &mut Option<(u64, u64)>, first: u64, last: u64) {
    *iv = Some(match *iv {
        None => (first, last),
        Some((a, b)) => (a.min(first), b.max(last)),
    });
}

fn merge_pending(slot: &mut Option<StageDelta>, d: &StageDelta, events: &mut u64) {
    *events += d.events();
    match slot {
        Some(acc) => merge_stage_delta(acc, d)
            .expect("contiguous same-stage increments always merge"),
        None => {
            let mut e = empty_delta(d.stage);
            merge_stage_delta(&mut e, d).expect("merge into identity");
            *slot = Some(e);
        }
    }
}

/// Durable (checkpointed) state of one leaf.
#[derive(Clone)]
struct LeafState {
    /// Input accumulators, parallel to the owned stage list. Needed to
    /// verify input deltas and to diff against resync snapshots.
    accs: Vec<StageAccumulator>,
    /// Merged not-yet-flushed increment per owned stage.
    pending: Vec<Option<StageDelta>>,
    pending_events: u64,
    /// Next outgoing per-stage delta seq, parallel to owned stages.
    out_seq: Vec<u64>,
    /// Next outgoing frame seq.
    frame_seq: u64,
    /// Sealed frames retained until the parent acks them. Front seq is
    /// `acked`.
    spool: VecDeque<SummaryFrame>,
    spool_events: u64,
    /// Frames `< acked` are acknowledged and discarded.
    acked: u64,
    /// Input epoch interval the pending increment covers.
    interval: Option<(u64, u64)>,
    /// Latest input virtual time seen.
    end: u64,
    /// Per-owned-stage interval cost digest (drained per flush).
    sketches: Vec<QuantileSketch>,
    /// Profile mass in the pending increment.
    interval_mass: u64,
    /// Cumulative health gauges, shipped on every frame.
    gauges: LeafGauges,
}

struct LeafNode {
    leaf_id: u32,
    region: usize,
    child_slot: usize,
    /// Owned global stage indices, ascending.
    stages: Vec<usize>,
    /// Tier (stage) names parallel to `stages`.
    names: Vec<String>,
    st: LeafState,
    ckpt: LeafState,
    /// Frames `< gate` are checkpoint-covered and transmittable.
    gate: u64,
    snd: Sender,
    alive: bool,
    need_resync: bool,
}

/// Stats increments one leaf ingest produced, carried back to the
/// shared [`FederationStats`] by the caller — in leaf order when the
/// ingest phase ran in parallel, so the merged counters are
/// schedule-independent.
#[derive(Clone, Copy, Debug, Default)]
struct IngestTally {
    foreign_deltas: u64,
    input_errors: u64,
}

impl IngestTally {
    fn apply(self, stats: &mut FederationStats) {
        stats.foreign_deltas += self.foreign_deltas;
        stats.input_errors += self.input_errors;
    }
}

impl LeafNode {
    fn ingest(&mut self, batch: &EpochBatch) -> IngestTally {
        let mut tally = IngestTally::default();
        for d in &batch.deltas {
            let Some(si) = self.stages.iter().position(|&g| g == d.stage) else {
                tally.foreign_deltas += 1;
                continue;
            };
            if self.st.accs[si].apply(d).is_err() {
                tally.input_errors += 1;
                self.need_resync = true;
                continue;
            }
            let m = delta_mass(d);
            self.st.interval_mass += m;
            self.st.gauges.mass += m;
            self.st.sketches[si].record(m);
            merge_pending(&mut self.st.pending[si], d, &mut self.st.pending_events);
        }
        self.st.gauges.events += batch.events();
        self.st.gauges.last_epoch = self.st.gauges.last_epoch.max(batch.epoch);
        extend_interval(&mut self.st.interval, batch.epoch, batch.epoch);
        self.st.end = self.st.end.max(batch.end);
        tally
    }

    /// Catches the input side up to the emitter mirror: per owned
    /// stage, diff the accumulator against the snapshot and fold the
    /// catch-up delta through the normal merge path.
    fn catchup(
        &mut self,
        mirror: &dyn ResyncSource,
        up_to_epoch: u64,
        up_to_end: u64,
        stats: &mut FederationStats,
    ) {
        let mut gained = false;
        for (si, &gs) in self.stages.iter().enumerate() {
            let Some((dump, upto)) = mirror.snapshot(gs) else {
                continue;
            };
            if let Some(cd) = self.st.accs[si].catchup_delta(gs, &dump) {
                let m = delta_mass(&cd);
                self.st.accs[si].apply(&cd).expect("catch-up delta applies");
                self.st.interval_mass += m;
                self.st.gauges.mass += m;
                self.st.gauges.events += cd.events();
                self.st.sketches[si].record(m);
                merge_pending(&mut self.st.pending[si], &cd, &mut self.st.pending_events);
                gained = true;
            }
            self.st.accs[si].set_next_seq(upto);
        }
        if gained {
            extend_interval(&mut self.st.interval, up_to_epoch, up_to_epoch);
            self.st.end = self.st.end.max(up_to_end);
        }
        self.st.gauges.last_epoch = self.st.gauges.last_epoch.max(up_to_epoch);
        self.need_resync = false;
        stats.input_resyncs += 1;
    }

    fn flush(&mut self, cfg: &FederationConfig, stats: &mut FederationStats) {
        if self.st.interval.is_none() {
            return;
        }
        if self.st.spool.len() >= cfg.spool_max {
            stats.spool_stalls += 1;
            self.st.gauges.lag_frames = self.st.spool.len() as u64;
            return;
        }
        let (first, last) = self.st.interval.take().expect("checked above");
        let mut deltas = Vec::new();
        for (si, slot) in self.st.pending.iter_mut().enumerate() {
            if let Some(d) = slot.take() {
                if d.is_empty() {
                    continue;
                }
                let seq = self.st.out_seq[si];
                self.st.out_seq[si] += 1;
                deltas.push(seal_delta(d, seq));
            }
        }
        self.st.pending_events = 0;
        if deltas.is_empty() && self.st.interval_mass == 0 {
            return; // content-free interval: nothing to ship
        }
        let mut by_tier: BTreeMap<&str, QuantileSketch> = BTreeMap::new();
        for (si, sk) in self.st.sketches.iter().enumerate() {
            if sk.count() > 0 {
                by_tier.entry(&self.names[si]).or_default().merge(sk);
            }
        }
        let sketches = by_tier
            .into_iter()
            .map(|(t, sk)| TierSketch::of(t, &sk))
            .collect();
        for sk in &mut self.st.sketches {
            *sk = QuantileSketch::new();
        }
        let gauges = {
            let mut g = self.st.gauges;
            g.lag_frames = self.st.spool.len() as u64;
            g
        };
        let f = SummaryFrame {
            src: self.leaf_id,
            seq: self.st.frame_seq,
            first_epoch: first,
            last_epoch: last,
            end: self.st.end,
            deltas,
            sketches,
            leaf_mass: vec![(self.leaf_id, self.st.interval_mass)],
            gauges: vec![(self.leaf_id, gauges)],
            checksum: 0,
        }
        .seal();
        self.st.frame_seq += 1;
        self.st.spool_events += f.events();
        self.st.spool.push_back(f);
        self.st.interval_mass = 0;
    }

    fn checkpoint(&mut self, stats: &mut FederationStats) {
        self.st.gauges.checkpoints += 1;
        self.ckpt = self.st.clone();
        self.gate = self.st.frame_seq;
        stats.checkpoints += 1;
    }

    fn recover(&mut self, now: u64, cfg: &FederationConfig) {
        self.st = self.ckpt.clone();
        self.st.gauges.recoveries += 1;
        self.snd = Sender::new(cfg.rto_initial, now);
        self.snd.next_send = self.st.acked;
        self.alive = true;
        self.need_resync = true;
    }

    fn resident_events(&self) -> u64 {
        self.st.pending_events + self.st.spool_events
    }
}

/// Durable (checkpointed) state of one regional aggregator.
#[derive(Clone)]
struct RegionalState {
    /// Merged not-yet-flushed increment per global stage.
    pending: BTreeMap<usize, StageDelta>,
    pending_events: u64,
    /// Next expected incoming per-stage delta seq.
    in_seq: BTreeMap<usize, u64>,
    /// Next outgoing per-stage delta seq.
    out_seq: BTreeMap<usize, u64>,
    frame_seq: u64,
    spool: VecDeque<SummaryFrame>,
    spool_events: u64,
    acked: u64,
    /// Per-child receive state.
    rx: Vec<RxState>,
    interval: Option<(u64, u64)>,
    end: u64,
    /// Per-tier interval digests (merged from child frames).
    sketches: BTreeMap<String, QuantileSketch>,
    /// Interval mass per originating leaf.
    leaf_mass: BTreeMap<u32, u64>,
    /// Latest gauges per originating leaf.
    gauges: BTreeMap<u32, LeafGauges>,
}

struct RegionalNode {
    region_id: usize,
    src: u32,
    /// Leaf ids of the children, by slot.
    children: Vec<u32>,
    st: RegionalState,
    ckpt: RegionalState,
    gate: u64,
    snd: Sender,
    alive: bool,
}

impl RegionalNode {
    /// Handles one incoming frame; returns a cumulative ack to send
    /// back, if any is due now (regular acks ride the checkpoint
    /// cadence; only duplicates of already-covered frames re-ack
    /// immediately, to heal lost acks cheaply).
    fn on_frame(
        &mut self,
        slot: usize,
        f: SummaryFrame,
        cfg: &FederationConfig,
        stats: &mut FederationStats,
    ) -> Option<u64> {
        if !f.verify() {
            stats.corrupt_frames += 1;
            return None;
        }
        let rx = &mut self.st.rx[slot];
        if f.seq < rx.expected {
            stats.dup_frames += 1;
            return rx.ack_gate.checked_sub(1).filter(|_| f.seq < rx.ack_gate);
        }
        if f.seq > rx.expected {
            if rx.parked.len() < cfg.park_max {
                rx.parked_events += f.events();
                rx.parked.entry(f.seq).or_insert(f);
            } else {
                stats.park_overflow += 1;
            }
            return None;
        }
        if self.accept(&f, stats) {
            self.st.rx[slot].expected += 1;
            loop {
                let next = self.st.rx[slot].expected;
                let Some(n) = self.st.rx[slot].parked.remove(&next) else {
                    break;
                };
                self.st.rx[slot].parked_events =
                    self.st.rx[slot].parked_events.saturating_sub(n.events());
                if !self.accept(&n, stats) {
                    break;
                }
                stats.healed_frames += 1;
                self.st.rx[slot].expected += 1;
            }
        }
        None
    }

    fn accept(&mut self, f: &SummaryFrame, stats: &mut FederationStats) -> bool {
        // Per-stage contiguity check first, so a bad frame is rejected
        // whole (and the per-link seq does not advance — the sender
        // will retry until the deadline marks the subtree degraded).
        for d in &f.deltas {
            if d.seq != self.st.in_seq.get(&d.stage).copied().unwrap_or(0) {
                stats.rejected_frames += 1;
                return false;
            }
        }
        for d in &f.deltas {
            *self.st.in_seq.entry(d.stage).or_insert(0) += 1;
            let slot = &mut self.st.pending;
            let events = &mut self.st.pending_events;
            *events += d.events();
            match slot.get_mut(&d.stage) {
                Some(acc) => merge_stage_delta(acc, d)
                    .expect("in-order child increments always merge"),
                None => {
                    let mut e = empty_delta(d.stage);
                    merge_stage_delta(&mut e, d).expect("merge into identity");
                    slot.insert(d.stage, e);
                }
            }
        }
        extend_interval(&mut self.st.interval, f.first_epoch, f.last_epoch);
        self.st.end = self.st.end.max(f.end);
        for ts in &f.sketches {
            self.st
                .sketches
                .entry(ts.tier.clone())
                .or_default()
                .merge(&QuantileSketch::from_wire(ts.max, &ts.buckets));
        }
        for &(l, m) in &f.leaf_mass {
            *self.st.leaf_mass.entry(l).or_insert(0) += m;
        }
        for &(l, g) in &f.gauges {
            let e = self.st.gauges.entry(l).or_insert(g);
            if g.last_epoch >= e.last_epoch {
                *e = g;
            }
        }
        stats.frames_delivered += 1;
        true
    }

    fn flush(&mut self, cfg: &FederationConfig, stats: &mut FederationStats) {
        if self.st.interval.is_none() {
            return;
        }
        if self.st.spool.len() >= cfg.spool_max {
            stats.spool_stalls += 1;
            return;
        }
        let (first, last) = self.st.interval.take().expect("checked above");
        let pending = std::mem::take(&mut self.st.pending);
        self.st.pending_events = 0;
        let mut deltas = Vec::new();
        for (gs, d) in pending {
            if d.is_empty() {
                continue;
            }
            let seq = self.st.out_seq.entry(gs).or_insert(0);
            let s = *seq;
            *seq += 1;
            deltas.push(seal_delta(d, s));
        }
        let mass_total: u64 = self.st.leaf_mass.values().sum();
        if deltas.is_empty() && mass_total == 0 {
            return;
        }
        let sketches = std::mem::take(&mut self.st.sketches)
            .into_iter()
            .map(|(t, sk)| TierSketch::of(&t, &sk))
            .collect();
        let leaf_mass = std::mem::take(&mut self.st.leaf_mass).into_iter().collect();
        let gauges = self.st.gauges.iter().map(|(&l, &g)| (l, g)).collect();
        let f = SummaryFrame {
            src: self.src,
            seq: self.st.frame_seq,
            first_epoch: first,
            last_epoch: last,
            end: self.st.end,
            deltas,
            sketches,
            leaf_mass,
            gauges,
            checksum: 0,
        }
        .seal();
        self.st.frame_seq += 1;
        self.st.spool_events += f.events();
        self.st.spool.push_back(f);
    }

    /// Takes a checkpoint and returns the cumulative acks now covered
    /// by it, per child slot (periodic re-acks heal lost acks).
    fn checkpoint(&mut self, stats: &mut FederationStats) -> Vec<(usize, u64)> {
        let mut acks = Vec::new();
        for (slot, rx) in self.st.rx.iter_mut().enumerate() {
            rx.ack_gate = rx.ack_gate.max(rx.expected);
            if let Some(upto) = rx.ack_gate.checked_sub(1) {
                acks.push((slot, upto));
            }
        }
        self.ckpt = self.st.clone();
        self.gate = self.st.frame_seq;
        stats.checkpoints += 1;
        acks
    }

    fn recover(&mut self, now: u64, cfg: &FederationConfig, stats: &mut FederationStats) {
        self.st = self.ckpt.clone();
        self.snd = Sender::new(cfg.rto_initial, now);
        self.snd.next_send = self.st.acked;
        self.alive = true;
        stats.recoveries += 1;
    }

    fn resident_events(&self) -> u64 {
        self.st.pending_events
            + self.st.spool_events
            + self.st.rx.iter().map(|x| x.parked_events).sum::<u64>()
    }
}

struct RootNode {
    collector: Collector,
    batch_seq: u64,
    /// Per-regional-link receive state.
    rx: Vec<RxState>,
    /// Mass the root applied, per originating leaf (the frames' own
    /// ledger).
    delivered: BTreeMap<u32, u64>,
    /// Mass the root actually applied, measured from delta content —
    /// independently of the frames' self-reported ledger.
    applied_mass: u64,
    gauges: BTreeMap<u32, LeafGauges>,
    max_epoch: u64,
    events_applied: u64,
}

impl RootNode {
    /// The root acks immediately on apply: it is the durable terminus
    /// of the tree (root crashes are out of scope).
    fn on_frame(
        &mut self,
        slot: usize,
        f: SummaryFrame,
        cfg: &FederationConfig,
        stats: &mut FederationStats,
    ) -> Option<u64> {
        if !f.verify() {
            stats.corrupt_frames += 1;
            return None;
        }
        let rx = &mut self.rx[slot];
        if f.seq < rx.expected {
            stats.dup_frames += 1;
            return rx.ack_gate.checked_sub(1);
        }
        if f.seq > rx.expected {
            if rx.parked.len() < cfg.park_max {
                rx.parked_events += f.events();
                rx.parked.entry(f.seq).or_insert(f);
            } else {
                stats.park_overflow += 1;
            }
            return None;
        }
        self.apply(f, stats);
        self.rx[slot].expected += 1;
        loop {
            let next = self.rx[slot].expected;
            let Some(n) = self.rx[slot].parked.remove(&next) else {
                break;
            };
            self.rx[slot].parked_events = self.rx[slot].parked_events.saturating_sub(n.events());
            stats.healed_frames += 1;
            self.apply(n, stats);
            self.rx[slot].expected += 1;
        }
        self.rx[slot].ack_gate = self.rx[slot].expected;
        self.rx[slot].ack_gate.checked_sub(1)
    }

    fn apply(&mut self, f: SummaryFrame, stats: &mut FederationStats) {
        self.applied_mass += f.deltas.iter().map(delta_mass).sum::<u64>();
        for &(l, m) in &f.leaf_mass {
            *self.delivered.entry(l).or_insert(0) += m;
        }
        for &(l, g) in &f.gauges {
            let e = self.gauges.entry(l).or_insert(g);
            if g.last_epoch >= e.last_epoch {
                *e = g;
            }
        }
        self.max_epoch = self.max_epoch.max(f.last_epoch);
        self.events_applied += f.events();
        stats.frames_delivered += 1;
        stats.root_events_applied += f.events();
        let batch = EpochBatch {
            epoch: f.last_epoch,
            seq: self.batch_seq,
            end: f.end,
            deltas: f.deltas,
        };
        self.batch_seq += 1;
        self.collector.enqueue(batch);
        self.collector.drain();
    }

    fn resident_events(&self) -> u64 {
        self.rx.iter().map(|x| x.parked_events).sum()
    }
}

/// What a queued message is addressed to.
#[derive(Clone, Debug)]
enum Dest {
    /// A frame arriving at a regional from child `slot`.
    Region { region: usize, slot: usize },
    /// A frame arriving at the root from regional `slot`.
    Root { slot: usize },
    /// An ack arriving back at a leaf.
    LeafAck { leaf: usize },
    /// An ack arriving back at a regional's sender side.
    RegionAck { region: usize },
}

#[derive(Clone, Debug)]
enum FedMsg {
    Frame(SummaryFrame),
    /// A frame serialized as a [`whodunit_core::wire`] summary frame —
    /// what actually travels when [`FederationConfig::wire_links`] is
    /// on. Decoded (and envelope-verified) at the receiving end.
    FrameBytes(Vec<u8>),
    Ack(u64),
}

/// The federation harness: owns the tree, the virtual link fabric, the
/// per-leaf emitter mirrors (truth for resync and coverage), and the
/// planned fault schedule. Drive it with [`Federation::feed`] and
/// [`Federation::tick`], then [`Federation::finalize`].
pub struct Federation {
    cfg: FederationConfig,
    leaves: Vec<LeafNode>,
    regions: Vec<RegionalNode>,
    root: RootNode,
    /// Per-leaf emitter mirror: the clean input stream replayed in
    /// lockstep, serving resync snapshots (PR 6's [`ResyncSource`]).
    mirrors: Vec<RecordedResync>,
    /// Ground-truth profile mass fed per leaf.
    truth: Vec<u64>,
    /// Last input epoch fed per leaf.
    truth_epoch: Vec<u64>,
    /// Last input virtual time fed per leaf.
    truth_end: Vec<u64>,
    policy: Box<dyn LinkPolicy>,
    queue: BTreeMap<(u64, u64), (Dest, FedMsg)>,
    msg_order: u64,
    now: u64,
    crashes: Vec<PlannedCrash>,
    recovery_log: Vec<RecoveryRecord>,
    stats: FederationStats,
}

impl Federation {
    /// Builds a federation over `header` (the full fleet stage set).
    ///
    /// `topology[r][l]` is the list of global stage indices leaf `l` of
    /// region `r` owns; leaves are numbered in iteration order. Every
    /// header stage must be owned by exactly one leaf (the clean-run
    /// byte-identity target is the flat pipeline over all stages).
    pub fn new(
        header: &StreamHeader,
        topology: &[Vec<Vec<usize>>],
        cfg: FederationConfig,
        policy: Box<dyn LinkPolicy>,
    ) -> Federation {
        assert!(cfg.flush_every >= 1 && cfg.checkpoint_every >= 1);
        let mut owned = vec![false; header.stages.len()];
        let mut leaves = Vec::new();
        let mut regions = Vec::new();
        for (r, leaf_specs) in topology.iter().enumerate() {
            let mut children = Vec::new();
            for spec in leaf_specs {
                let leaf_id = leaves.len() as u32;
                let mut stages = spec.clone();
                stages.sort_unstable();
                let mut names = Vec::with_capacity(stages.len());
                for &gs in &stages {
                    assert!(gs < header.stages.len(), "stage {gs} out of range");
                    assert!(!owned[gs], "stage {gs} owned by two leaves");
                    owned[gs] = true;
                    names.push(header.stages[gs].stage_name.clone());
                }
                let st = LeafState {
                    accs: stages
                        .iter()
                        .map(|&gs| StageAccumulator::new(&header.stages[gs]))
                        .collect(),
                    pending: vec![None; stages.len()],
                    pending_events: 0,
                    out_seq: vec![0; stages.len()],
                    frame_seq: 0,
                    spool: VecDeque::new(),
                    spool_events: 0,
                    acked: 0,
                    interval: None,
                    end: 0,
                    sketches: stages.iter().map(|_| QuantileSketch::new()).collect(),
                    interval_mass: 0,
                    gauges: LeafGauges::default(),
                };
                leaves.push(LeafNode {
                    leaf_id,
                    region: r,
                    child_slot: children.len(),
                    stages,
                    names,
                    ckpt: st.clone(),
                    st,
                    gate: 0,
                    snd: Sender::new(cfg.rto_initial, 0),
                    alive: true,
                    need_resync: false,
                });
                children.push(leaf_id);
            }
            let st = RegionalState {
                pending: BTreeMap::new(),
                pending_events: 0,
                in_seq: BTreeMap::new(),
                out_seq: BTreeMap::new(),
                frame_seq: 0,
                spool: VecDeque::new(),
                spool_events: 0,
                acked: 0,
                rx: children.iter().map(|_| RxState::default()).collect(),
                interval: None,
                end: 0,
                sketches: BTreeMap::new(),
                leaf_mass: BTreeMap::new(),
                gauges: BTreeMap::new(),
            };
            regions.push(RegionalNode {
                region_id: r,
                src: 0, // assigned below once the leaf count is known
                children,
                ckpt: st.clone(),
                st,
                gate: 0,
                snd: Sender::new(cfg.rto_initial, 0),
                alive: true,
            });
        }
        assert!(
            owned.iter().all(|&o| o),
            "every header stage must be owned by a leaf"
        );
        let n_leaves = leaves.len();
        for (r, reg) in regions.iter_mut().enumerate() {
            reg.src = (n_leaves + r) as u32;
        }
        let root = RootNode {
            collector: Collector::with_header(header, cfg.collector.clone()),
            batch_seq: 0,
            rx: regions.iter().map(|_| RxState::default()).collect(),
            delivered: BTreeMap::new(),
            applied_mass: 0,
            gauges: BTreeMap::new(),
            max_epoch: 0,
            events_applied: 0,
        };
        Federation {
            mirrors: leaves.iter().map(|_| RecordedResync::new(header)).collect(),
            truth: vec![0; n_leaves],
            truth_epoch: vec![0; n_leaves],
            truth_end: vec![0; n_leaves],
            cfg,
            leaves,
            regions,
            root,
            policy,
            queue: BTreeMap::new(),
            msg_order: 0,
            now: 0,
            crashes: Vec::new(),
            recovery_log: Vec::new(),
            stats: FederationStats::default(),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Current federation tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Operational counters so far.
    pub fn stats(&self) -> &FederationStats {
        &self.stats
    }

    /// Plants a crash of `node` at tick `at` (must be in the future),
    /// with an optional recovery tick. Leaf crashes are tracked in the
    /// recovery log for latency accounting.
    pub fn crash(&mut self, node: FedNodeId, at: u64, recover_at: Option<u64>) {
        assert!(at > self.now, "crash must be planted in the future");
        if let Some(r) = recover_at {
            assert!(r > at, "recovery must follow the crash");
        }
        self.crashes.push(PlannedCrash {
            node,
            at,
            recover_at,
            fired: false,
            recovered: false,
        });
    }

    /// Feeds one input epoch batch to `leaf`. Always advances the
    /// emitter mirror and the ground-truth ledger; the leaf itself
    /// only ingests while alive (missed input is recovered through the
    /// resync path, or honestly reported as missing coverage).
    pub fn feed(&mut self, leaf: usize, batch: &EpochBatch) {
        if self.feed_truth(leaf, batch) {
            self.leaves[leaf].ingest(batch).apply(&mut self.stats);
        }
    }

    /// The serial prefix of any feed: ground truth, emitter mirror, and
    /// liveness — shared state the parallel ingest phase must not
    /// touch. Returns whether the leaf should actually ingest.
    fn feed_truth(&mut self, leaf: usize, batch: &EpochBatch) -> bool {
        let mass: u64 = batch.deltas.iter().map(delta_mass).sum();
        self.truth[leaf] += mass;
        self.truth_epoch[leaf] = self.truth_epoch[leaf].max(batch.epoch);
        self.truth_end[leaf] = self.truth_end[leaf].max(batch.end);
        self.mirrors[leaf].advance(batch);
        self.stats.leaf_events_in += batch.events();
        if !self.leaves[leaf].alive {
            self.stats.missed_batches += 1;
            return false;
        }
        true
    }

    /// Feeds one round — at most one batch per distinct leaf — with the
    /// per-leaf ingest work executed on `cfg.workers` OS threads via
    /// the deterministic work-stealing executor. Leaves own disjoint
    /// state and tallies merge in leaf order, so any worker count and
    /// steal schedule is byte-identical to serial [`Federation::feed`]
    /// calls in leaf order (DESIGN.md §14).
    ///
    /// Panic policy: if an ingest worker panics, the round's leaves are
    /// all marked for input resync — the next tick heals each of them
    /// from its emitter mirror (the same catch-up diff path crash
    /// recovery uses), so a lost increment degrades to lag, never to
    /// silent mass loss.
    pub fn feed_round(&mut self, round: &[(usize, &EpochBatch)]) {
        let mut live: Vec<(usize, &EpochBatch)> = Vec::with_capacity(round.len());
        for &(leaf, batch) in round {
            if let Some(prev) = live.last() {
                assert!(prev.0 < leaf, "one batch per leaf, ascending");
            }
            if self.feed_truth(leaf, batch) {
                live.push((leaf, batch));
            }
        }
        let (workers, plan) = (self.cfg.workers, self.cfg.steal);
        if workers <= 1 || live.len() <= 1 {
            for &(leaf, batch) in &live {
                self.leaves[leaf].ingest(batch).apply(&mut self.stats);
            }
            return;
        }
        // Hand each worker exclusive access to its round entry's leaf.
        // `live` is ascending by leaf index, so the zip below pairs
        // each entry with exactly its own `&mut LeafNode`.
        let mut want = live.iter().peekable();
        let slots: Vec<Mutex<Option<(&mut LeafNode, &EpochBatch)>>> = self
            .leaves
            .iter_mut()
            .enumerate()
            .filter_map(|(i, l)| {
                if want.peek().is_some_and(|&&(leaf, _)| leaf == i) {
                    let &(_, batch) = want.next().expect("peeked");
                    Some(Mutex::new(Some((l, batch))))
                } else {
                    None
                }
            })
            .collect();
        debug_assert_eq!(slots.len(), live.len());
        let outcome = exec::run("fed-ingest", workers, plan, slots.len(), |i| {
            let (l, b) = slots[i]
                .lock()
                .expect("ingest slot poisoned")
                .take()
                .expect("each leaf ingests exactly once");
            l.ingest(b)
        });
        match outcome {
            Ok((tallies, stats)) => {
                self.stats.parallel_ingest_rounds += 1;
                self.stats.ingest_steals += stats.steals;
                for t in tallies {
                    t.apply(&mut self.stats);
                }
            }
            Err(_) => {
                // A worker panicked mid-apply: the panicking leaf's
                // accumulator may hold a partial batch, and other
                // leaves' completion is schedule-dependent. Resync the
                // whole round from the emitter mirrors — the catch-up
                // diff repairs exactly whatever is missing.
                self.stats.ingest_panics += 1;
                for &(leaf, _) in &live {
                    self.leaves[leaf].need_resync = true;
                }
            }
        }
    }

    fn enqueue_msg(&mut self, link: u32, to: Dest, msg: FedMsg) {
        // Serialize frames at the sender; the columnar bytes are what
        // actually travels when `wire_links` is on. With `meter_links`,
        // both encodings are additionally metered per transmission so
        // one run yields the before/after link-byte story — the JSON
        // render is costly, so it never happens unless asked for.
        let msg = if let FedMsg::Frame(f) = msg {
            let bytes = (self.cfg.wire_links || self.cfg.meter_links)
                .then(|| wire::encode_summary(&f));
            if self.cfg.meter_links {
                let wire_len = bytes.as_ref().expect("encoded for metering").len() as u64;
                let json_len = wire::summary_to_json(&f).len() as u64;
                if (link as usize) < self.leaves.len() {
                    self.stats.leaf_link_json_bytes += json_len;
                    self.stats.leaf_link_wire_bytes += wire_len;
                } else {
                    self.stats.regional_link_json_bytes += json_len;
                    self.stats.regional_link_wire_bytes += wire_len;
                }
            }
            if self.cfg.wire_links {
                FedMsg::FrameBytes(bytes.expect("encoded when wire_links is on"))
            } else {
                FedMsg::Frame(f)
            }
        } else {
            msg
        };
        let v = self.policy.verdict(link, self.now);
        let is_ack = matches!(msg, FedMsg::Ack(_));
        if v.copies == 0 {
            if is_ack {
                self.stats.acks_lost += 1;
            } else {
                self.stats.frames_lost += 1;
            }
            return;
        }
        if is_ack {
            self.stats.acks_sent += 1;
        }
        for _ in 0..v.copies {
            self.msg_order += 1;
            self.queue.insert(
                (self.now + 1 + v.delay, self.msg_order),
                (to.clone(), msg.clone()),
            );
        }
    }

    /// Advances the federation one tick: fires planned crashes and
    /// recoveries, flushes and checkpoints on cadence, pumps senders,
    /// and delivers due messages.
    pub fn tick(&mut self) {
        self.now += 1;
        let now = self.now;
        self.stats.ticks = now;

        // 1. Planned crashes and recoveries.
        for ci in 0..self.crashes.len() {
            let (node, at, recover_at, fired, recovered) = {
                let c = &self.crashes[ci];
                (c.node, c.at, c.recover_at, c.fired, c.recovered)
            };
            if !fired && at == now {
                self.crashes[ci].fired = true;
                self.stats.crashes += 1;
                match node {
                    FedNodeId::Leaf(i) => {
                        self.leaves[i].alive = false;
                        self.recovery_log.push(RecoveryRecord {
                            leaf: i,
                            crash_epoch: self.truth_epoch[i],
                            crash_tick: now,
                            recovered_epoch: None,
                        });
                    }
                    FedNodeId::Regional(i) => self.regions[i].alive = false,
                }
            }
            if fired && !recovered && recover_at == Some(now) {
                self.crashes[ci].recovered = true;
                match node {
                    FedNodeId::Leaf(i) => {
                        self.leaves[i].recover(now, &self.cfg);
                        self.stats.recoveries += 1;
                    }
                    FedNodeId::Regional(i) => {
                        let cfg = self.cfg.clone();
                        self.regions[i].recover(now, &cfg, &mut self.stats);
                    }
                }
            }
        }

        // 2. Input resync for leaves that need it (recovery or damage).
        {
            let Federation {
                leaves,
                mirrors,
                truth_epoch,
                truth_end,
                stats,
                ..
            } = self;
            for (i, l) in leaves.iter_mut().enumerate() {
                if l.alive && l.need_resync {
                    l.catchup(&mirrors[i], truth_epoch[i], truth_end[i], stats);
                }
            }
        }

        // 3. Flush on cadence (leaves first, then regionals).
        if now.is_multiple_of(self.cfg.flush_every) {
            let cfg = self.cfg.clone();
            for l in &mut self.leaves {
                if l.alive {
                    l.flush(&cfg, &mut self.stats);
                }
            }
            for r in &mut self.regions {
                if r.alive {
                    r.flush(&cfg, &mut self.stats);
                }
            }
        }

        // 4. Checkpoint on cadence; regional checkpoints release acks.
        let mut outbox: Vec<(u32, Dest, FedMsg)> = Vec::new();
        if now.is_multiple_of(self.cfg.checkpoint_every) {
            for l in &mut self.leaves {
                if l.alive {
                    l.checkpoint(&mut self.stats);
                }
            }
            for r in 0..self.regions.len() {
                if !self.regions[r].alive {
                    continue;
                }
                for (slot, upto) in self.regions[r].checkpoint(&mut self.stats) {
                    let leaf = self.regions[r].children[slot] as usize;
                    outbox.push((leaf as u32, Dest::LeafAck { leaf }, FedMsg::Ack(upto)));
                }
            }
        }

        // 5. Pump senders (first-sends of gated frames + RTO retries).
        let n_leaves = self.leaves.len();
        let cfg = self.cfg.clone();
        for (i, l) in self.leaves.iter_mut().enumerate() {
            if !l.alive {
                continue;
            }
            for f in l
                .snd
                .pump(&l.st.spool, l.st.acked, l.gate, now, &cfg, &mut self.stats)
            {
                outbox.push((
                    i as u32,
                    Dest::Region {
                        region: l.region,
                        slot: l.child_slot,
                    },
                    FedMsg::Frame(f),
                ));
            }
        }
        for (r, reg) in self.regions.iter_mut().enumerate() {
            if !reg.alive {
                continue;
            }
            for f in reg.snd.pump(
                &reg.st.spool,
                reg.st.acked,
                reg.gate,
                now,
                &cfg,
                &mut self.stats,
            ) {
                outbox.push((
                    (n_leaves + r) as u32,
                    Dest::Root { slot: r },
                    FedMsg::Frame(f),
                ));
            }
        }
        for (link, to, msg) in outbox {
            self.enqueue_msg(link, to, msg);
        }

        // 6. Deliver due messages (acks generated here land next tick).
        let mut acks_out: Vec<(u32, Dest, FedMsg)> = Vec::new();
        while let Some((&key, _)) = self.queue.first_key_value() {
            if key.0 > now {
                break;
            }
            let (to, msg) = self.queue.remove(&key).expect("key just observed");
            // Wire frames decode (with envelope verification) at the
            // receiving end; damage drops the frame and the sender's
            // RTO retransmit heals the link.
            let msg = match msg {
                FedMsg::FrameBytes(b) => match wire::decode_summary(&b) {
                    Ok((f, _)) => FedMsg::Frame(f),
                    Err(_) => {
                        self.stats.wire_decode_errors += 1;
                        continue;
                    }
                },
                other => other,
            };
            match (to, msg) {
                (Dest::Region { region, slot }, FedMsg::Frame(f)) => {
                    if !self.regions[region].alive {
                        self.stats.dropped_to_dead += 1;
                        continue;
                    }
                    if let Some(upto) =
                        self.regions[region].on_frame(slot, f, &cfg, &mut self.stats)
                    {
                        let leaf = self.regions[region].children[slot] as usize;
                        acks_out.push((leaf as u32, Dest::LeafAck { leaf }, FedMsg::Ack(upto)));
                    }
                }
                (Dest::Root { slot }, FedMsg::Frame(f)) => {
                    if let Some(upto) = self.root.on_frame(slot, f, &cfg, &mut self.stats) {
                        acks_out.push((
                            (n_leaves + slot) as u32,
                            Dest::RegionAck { region: slot },
                            FedMsg::Ack(upto),
                        ));
                    }
                }
                (Dest::LeafAck { leaf }, FedMsg::Ack(upto)) => {
                    let l = &mut self.leaves[leaf];
                    if !l.alive {
                        self.stats.dropped_to_dead += 1;
                        continue;
                    }
                    l.snd.on_ack(
                        upto,
                        &mut l.st.spool,
                        &mut l.st.spool_events,
                        &mut l.st.acked,
                        now,
                        &cfg,
                    );
                }
                (Dest::RegionAck { region }, FedMsg::Ack(upto)) => {
                    let r = &mut self.regions[region];
                    if !r.alive {
                        self.stats.dropped_to_dead += 1;
                        continue;
                    }
                    r.snd.on_ack(
                        upto,
                        &mut r.st.spool,
                        &mut r.st.spool_events,
                        &mut r.st.acked,
                        now,
                        &cfg,
                    );
                }
                _ => unreachable!("frame/ack destinations never cross"),
            }
        }
        for (link, to, msg) in acks_out {
            self.enqueue_msg(link, to, msg);
        }

        // 7. Residency sampling and recovery-latency detection.
        for l in &self.leaves {
            self.stats.peak_resident_leaf = self.stats.peak_resident_leaf.max(l.resident_events());
        }
        for r in &self.regions {
            self.stats.peak_resident_regional =
                self.stats.peak_resident_regional.max(r.resident_events());
        }
        self.stats.peak_resident_root = self
            .stats
            .peak_resident_root
            .max(self.root.resident_events());
        for rec in &mut self.recovery_log {
            if rec.recovered_epoch.is_none() {
                if let Some(g) = self.root.gauges.get(&(rec.leaf as u32)) {
                    if g.recoveries > 0 && g.last_epoch >= rec.crash_epoch {
                        rec.recovered_epoch = Some(g.last_epoch);
                    }
                }
            }
        }
    }

    /// Whether every live node has shipped and settled everything it
    /// holds (dead nodes excepted — their mass is the degraded story).
    fn quiesced(&self) -> bool {
        self.queue.is_empty()
            && self.leaves.iter().all(|l| {
                !l.alive || (l.st.interval.is_none() && l.st.spool.is_empty() && !l.need_resync)
            })
            && self.regions.iter().all(|r| {
                !r.alive
                    || (r.st.interval.is_none()
                        && r.st.spool.is_empty()
                        && r.st.rx.iter().all(|x| x.parked.is_empty()))
            })
    }

    /// Delivered/truth coverage in parts-per-million at this instant.
    pub fn coverage_ppm(&self) -> u64 {
        let delivered: u64 = self.root.delivered.values().sum();
        let truth: u64 = self.truth.iter().sum();
        delivered
            .saturating_mul(1_000_000)
            .checked_div(truth)
            .unwrap_or(1_000_000)
    }

    /// The operator's topology view at this instant: per-level fan-in,
    /// lag, liveness, and the root's per-subtree delivery ledger.
    pub fn topology_view(&self) -> FedTopologyView {
        let children = self
            .regions
            .iter()
            .map(|r| FedNodeView {
                label: format!("region{}", r.region_id),
                alive: r.alive,
                degraded: !r.alive,
                lag_frames: (r.st.spool.len()
                    + r.st.rx.iter().map(|x| x.parked.len()).sum::<usize>())
                    as u64,
                last_epoch: r.st.gauges.values().map(|g| g.last_epoch).max().unwrap_or(0),
                mass: r.children.iter().fold(0, |a, &l| {
                    a + self.root.delivered.get(&l).copied().unwrap_or(0)
                }),
                recoveries: 0,
                children: r
                    .children
                    .iter()
                    .map(|&lid| {
                        let l = &self.leaves[lid as usize];
                        let g = self.root.gauges.get(&lid).copied().unwrap_or_default();
                        let delivered = self.root.delivered.get(&lid).copied().unwrap_or(0);
                        FedNodeView {
                            label: format!("leaf{lid}"),
                            alive: l.alive,
                            degraded: !l.alive,
                            lag_frames: g.lag_frames,
                            last_epoch: g.last_epoch,
                            mass: delivered,
                            recoveries: g.recoveries,
                            children: Vec::new(),
                        }
                    })
                    .collect(),
            })
            .collect();
        FedTopologyView {
            root: FedNodeView {
                label: "root".into(),
                alive: true,
                degraded: false,
                lag_frames: self.root.rx.iter().map(|x| x.parked.len() as u64).sum(),
                last_epoch: self.root.max_epoch,
                mass: self.root.applied_mass,
                recoveries: 0,
                children,
            },
            coverage_ppm: self.coverage_ppm(),
            epoch: self.root.max_epoch,
        }
    }

    /// Drains the tree (up to the configured deadline), marks whatever
    /// is still missing as degraded, and finalizes the root collector.
    ///
    /// On a clean, fully-delivered run the finalized report is
    /// byte-identical to the flat batch pipeline over the whole fleet
    /// and coverage is exactly 1.0; with unrecoverable subtrees, the
    /// run still completes, with the missing mass attributed per
    /// subtree in the evidence ledger.
    pub fn finalize(mut self) -> FederationOutput {
        let deadline = self.now + self.cfg.deadline_ticks;
        while self.now < deadline && !self.quiesced() {
            self.tick();
        }

        let mut subtrees = Vec::new();
        let mut degraded = Vec::new();
        for i in 0..self.leaves.len() {
            let delivered = self.root.delivered.get(&(i as u32)).copied().unwrap_or(0);
            let truth = self.truth[i];
            let is_degraded = delivered < truth;
            if is_degraded {
                degraded.push(format!("leaf{i}"));
            }
            subtrees.push(SubtreeMass {
                label: format!("leaf{i}"),
                delivered,
                truth,
                degraded: is_degraded,
            });
        }
        for r in &self.regions {
            if !r.alive {
                degraded.push(format!("region{}", r.region_id));
            }
        }
        let coverage_ppm = self.coverage_ppm();
        // Mark the final view with the settled degraded verdicts.
        let mut topology = self.topology_view();
        for (rv, reg) in topology.root.children.iter_mut().zip(&self.regions) {
            rv.degraded = !reg.alive;
            for lv in &mut rv.children {
                let lid: usize = lv.label.trim_start_matches("leaf").parse().unwrap_or(0);
                lv.degraded = subtrees[lid].degraded;
            }
        }
        let evidence = FederationEvidence {
            subtrees,
            root_mass: self.root.applied_mass,
            reported_coverage_ppm: coverage_ppm,
        };
        FederationOutput {
            output: self.root.collector.finalize(),
            coverage_ppm,
            degraded,
            evidence,
            stats: self.stats,
            topology,
            recovery: self.recovery_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whodunit_core::delta::{diff_dump, StreamStage};
    use whodunit_core::stitch::{DumpCct, DumpContext, DumpNode, StageDump};

    fn node(cycles: u64) -> DumpNode {
        DumpNode {
            frame: None,
            parent: None,
            samples: 1,
            cycles,
            calls: 1,
        }
    }

    fn header2() -> StreamHeader {
        StreamHeader {
            stages: vec![
                StreamStage {
                    proc: 0,
                    stage_name: "front".into(),
                },
                StreamStage {
                    proc: 1,
                    stage_name: "db".into(),
                },
            ],
        }
    }

    /// `n` growing snapshots of one trivial stage: one context, one
    /// root node whose cycles grow by 100 per epoch.
    fn snapshots(proc: u32, name: &str, n: usize) -> Vec<StageDump> {
        (1..=n)
            .map(|e| StageDump {
                proc,
                stage_name: name.into(),
                frames: vec!["main".into()],
                contexts: vec![DumpContext::default()],
                ccts: vec![DumpCct {
                    ctx: 0,
                    nodes: vec![node(e as u64 * 100)],
                }],
                ..StageDump::default()
            })
            .collect()
    }

    fn batches_for(stage: usize, proc: u32, name: &str, n: usize) -> Vec<EpochBatch> {
        let snaps = snapshots(proc, name, n);
        (0..n)
            .map(|e| {
                let prev = if e == 0 { None } else { Some(&snaps[e - 1]) };
                let d = diff_dump(stage, e as u64, prev, &snaps[e]).expect("non-empty");
                EpochBatch {
                    epoch: e as u64,
                    seq: e as u64,
                    end: (e as u64 + 1) * 100,
                    deltas: vec![d],
                }
            })
            .collect()
    }

    fn flat_reference(n: usize) -> whodunit_core::pipeline::PipelineReport {
        let dumps = vec![
            snapshots(0, "front", n).pop().unwrap(),
            snapshots(1, "db", n).pop().unwrap(),
        ];
        whodunit_core::pipeline::analyze(dumps, Default::default())
    }

    fn run(
        fed: &mut Federation,
        epochs: usize,
        front: &[EpochBatch],
        db: &[EpochBatch],
        ticks_after: u64,
    ) {
        for e in 0..epochs {
            fed.feed(0, &front[e]);
            fed.feed(1, &db[e]);
            fed.tick();
        }
        for _ in 0..ticks_after {
            fed.tick();
        }
    }

    #[test]
    fn clean_two_leaf_run_matches_flat_pipeline() {
        let hdr = header2();
        let topo = vec![vec![vec![0], vec![1]]]; // one region, two leaves
        let mut fed = Federation::new(
            &hdr,
            &topo,
            FederationConfig::default(),
            Box::new(CleanLinks),
        );
        let n = 10;
        run(
            &mut fed,
            n,
            &batches_for(0, 0, "front", n),
            &batches_for(1, 1, "db", n),
            0,
        );
        let out = fed.finalize();
        assert_eq!(out.coverage_ppm, 1_000_000);
        assert!(out.degraded.is_empty());
        assert!(!out.output.stats.used_fallback);
        let flat = flat_reference(n);
        assert_eq!(out.output.report.fingerprint(), flat.fingerprint());
        assert_eq!(out.output.report.dumps_json, flat.dumps_json);
        assert_eq!(
            whodunit_core::oracle::check_federation(&out.evidence),
            vec![]
        );
        assert_eq!(out.evidence.root_mass, 2_000); // 2 stages × 10 epochs × 100
    }

    #[test]
    fn leaf_crash_recovers_from_checkpoint_with_zero_mass_loss() {
        let hdr = header2();
        let topo = vec![vec![vec![0]], vec![vec![1]]]; // two regions, one leaf each
        let mut fed = Federation::new(
            &hdr,
            &topo,
            FederationConfig::default(),
            Box::new(CleanLinks),
        );
        fed.crash(FedNodeId::Leaf(0), 9, Some(17));
        let n = 30;
        run(
            &mut fed,
            n,
            &batches_for(0, 0, "front", n),
            &batches_for(1, 1, "db", n),
            0,
        );
        let out = fed.finalize();
        assert_eq!(out.stats.crashes, 1);
        assert_eq!(out.stats.recoveries, 1);
        assert_eq!(out.coverage_ppm, 1_000_000, "recovery must lose no mass");
        assert!(out.degraded.is_empty());
        let rec = &out.recovery[0];
        assert!(rec.recovered_epoch.is_some(), "root must observe recovery");
        assert!(rec.recovered_epoch.unwrap() >= rec.crash_epoch);
        let flat = flat_reference(n);
        assert_eq!(out.output.report.fingerprint(), flat.fingerprint());
    }

    #[test]
    fn unrecoverable_leaf_finalizes_degraded_with_partial_coverage() {
        let hdr = header2();
        let topo = vec![vec![vec![0], vec![1]]];
        let mut cfg = FederationConfig::default();
        cfg.deadline_ticks = 64;
        let mut fed = Federation::new(&hdr, &topo, cfg, Box::new(CleanLinks));
        fed.crash(FedNodeId::Leaf(1), 13, None);
        let n = 30;
        run(
            &mut fed,
            n,
            &batches_for(0, 0, "front", n),
            &batches_for(1, 1, "db", n),
            0,
        );
        let out = fed.finalize();
        assert!(out.coverage_ppm < 1_000_000);
        assert_eq!(out.degraded, vec!["leaf1".to_string()]);
        assert!(out.evidence.subtrees[1].degraded);
        assert!(out.evidence.subtrees[1].delivered < out.evidence.subtrees[1].truth);
        // The honest ledger passes the oracle even though mass is gone.
        assert_eq!(
            whodunit_core::oracle::check_federation(&out.evidence),
            vec![]
        );
    }

    /// Drops the first burst on link 0 (forcing RTO retries), then
    /// duplicates every 5th message and delays every 3rd.
    struct Lossy {
        n: u64,
    }
    impl LinkPolicy for Lossy {
        fn verdict(&mut self, link: u32, _now: u64) -> LinkVerdict {
            if link != 0 {
                return LinkVerdict::default();
            }
            self.n += 1;
            match self.n {
                1..=4 => LinkVerdict { copies: 0, delay: 0 },
                n if n % 5 == 0 => LinkVerdict { copies: 2, delay: 0 },
                n if n % 3 == 0 => LinkVerdict { copies: 1, delay: 7 },
                _ => LinkVerdict::default(),
            }
        }
    }

    #[test]
    fn lossy_uplink_heals_through_retry_and_stays_byte_identical() {
        let hdr = header2();
        let topo = vec![vec![vec![0], vec![1]]];
        let mut fed = Federation::new(
            &hdr,
            &topo,
            FederationConfig::default(),
            Box::new(Lossy { n: 0 }),
        );
        let n = 20;
        run(
            &mut fed,
            n,
            &batches_for(0, 0, "front", n),
            &batches_for(1, 1, "db", n),
            0,
        );
        let out = fed.finalize();
        assert!(out.stats.frames_lost + out.stats.acks_lost > 0, "plan fired");
        assert!(out.stats.retransmits > 0, "losses forced retries");
        assert_eq!(out.coverage_ppm, 1_000_000);
        let flat = flat_reference(n);
        assert_eq!(out.output.report.fingerprint(), flat.fingerprint());
        assert_eq!(
            whodunit_core::oracle::check_federation(&out.evidence),
            vec![]
        );
    }

    #[test]
    fn regional_crash_recovers_without_loss() {
        let hdr = header2();
        let topo = vec![vec![vec![0], vec![1]]];
        let mut fed = Federation::new(
            &hdr,
            &topo,
            FederationConfig::default(),
            Box::new(CleanLinks),
        );
        fed.crash(FedNodeId::Regional(0), 11, Some(23));
        let n = 30;
        run(
            &mut fed,
            n,
            &batches_for(0, 0, "front", n),
            &batches_for(1, 1, "db", n),
            0,
        );
        let out = fed.finalize();
        assert_eq!(out.stats.recoveries, 1);
        assert_eq!(out.coverage_ppm, 1_000_000);
        let flat = flat_reference(n);
        assert_eq!(out.output.report.fingerprint(), flat.fingerprint());
    }

    #[test]
    fn topology_view_reports_fan_in_and_liveness() {
        let hdr = header2();
        let topo = vec![vec![vec![0]], vec![vec![1]]];
        let mut fed = Federation::new(
            &hdr,
            &topo,
            FederationConfig::default(),
            Box::new(CleanLinks),
        );
        let n = 8;
        run(
            &mut fed,
            n,
            &batches_for(0, 0, "front", n),
            &batches_for(1, 1, "db", n),
            40,
        );
        let v = fed.topology_view();
        assert_eq!(v.root.children.len(), 2);
        assert_eq!(v.root.children[0].children.len(), 1);
        assert_eq!(v.coverage_ppm, 1_000_000);
        assert_eq!(v.root.mass, 1_600);
        assert!(v.root.children.iter().all(|r| r.alive));
    }
}
