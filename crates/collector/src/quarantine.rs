//! Quarantine, reorder, and resync state for self-healing ingest.
//!
//! The collector's original integrity story was all-or-nothing: any
//! delta the accumulator rejected flipped the `broken` flag and
//! finalize fell back to the batch pipeline. That is the right shape
//! for a differential test harness, but an always-on sentinel has to
//! keep the *incremental* state alive through stream damage — a
//! profiler that silently restarts from scratch whenever a frame is
//! corrupted cannot watch SLOs over the very window the damage sits in.
//!
//! This module holds the per-stage machinery the collector uses
//! instead, when an emitter-side [`whodunit_core::delta::ResyncSource`]
//! is attached:
//!
//! - **Corrupt frames** (checksum or baseline-inconsistency failures)
//!   are *quarantined*: counted, dropped, and repaired by a bounded
//!   resync — a catch-up diff from the accumulator's state to the
//!   emitter's snapshot, applied through the normal ingest path so the
//!   incremental stitch state stays exactly consistent.
//! - **Out-of-order frames** (sequence number above the expected one)
//!   park in a bounded reorder buffer keyed by sequence number; frames
//!   heal in order as the hole fills. A hole that outlives the buffer
//!   is treated as loss and triggers a resync.
//! - **Duplicated frames** (sequence number below the expected one)
//!   are dropped and counted — the accumulator has already applied
//!   that increment.
//! - **Stalled streams**: a watchdog (disabled by default) marks a
//!   stage whose stream has gone silent for a configured number of
//!   epochs, so finalize can annotate the report instead of blocking.
//! - **Resync exhaustion** halts the stage — ingest keeps running for
//!   every other stage, the report carries an explicit `degraded`
//!   marker, and there is **no** batch fallback.
//!
//! Every recovery is deterministic: a pure function of the damaged
//! stream's content and the policy knobs, never of timing.

use std::collections::BTreeMap;
use whodunit_core::delta::StageDelta;

/// Tuning knobs for quarantine and resync.
#[derive(Clone, Debug)]
pub struct QuarantinePolicy {
    /// Maximum out-of-order frames parked per stage while waiting for
    /// a sequence hole to fill; one more parked frame treats the hole
    /// as loss and triggers a resync.
    pub reorder_buffer: usize,
    /// Maximum resyncs per stage; exhausting them halts the stage
    /// (explicitly degraded, never a batch fallback).
    pub max_resyncs: u64,
    /// Epochs of stage silence before the watchdog declares a stall.
    /// `0` disables the watchdog (a stage with nothing to report emits
    /// no delta at all, so silence is only suspicious when the
    /// deployment knows every stage stays busy).
    pub stall_epochs: u64,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            reorder_buffer: 4,
            max_resyncs: 8,
            stall_epochs: 0,
        }
    }
}

/// Per-stage quarantine accounting and reorder state.
#[derive(Clone, Debug, Default)]
pub struct StageQuarantine {
    /// Corrupt frames (checksum / inconsistency) quarantined.
    pub corrupt: u64,
    /// Duplicated frames dropped (sequence below expected).
    pub duplicates: u64,
    /// Out-of-order frames that healed from the reorder buffer without
    /// needing a resync.
    pub healed: u64,
    /// Resyncs performed.
    pub resyncs: u64,
    /// Frames discarded because the stage was halted or a resync
    /// subsumed them.
    pub dropped: u64,
    /// High-water mark of parked frames.
    pub parked_peak: u64,
    /// Stall events declared by the watchdog.
    pub stalls: u64,
    /// Whether the stage is currently considered stalled.
    pub stalled: bool,
    /// Whether the stage is halted (resync exhausted or unavailable);
    /// further frames for it are dropped.
    pub halted: bool,
    /// Epoch of the last applied frame for this stage.
    pub last_progress: u64,
    /// Parked out-of-order frames, keyed by sequence number.
    pub parked: BTreeMap<u64, StageDelta>,
}

impl StageQuarantine {
    /// Whether this stage's stream needed any self-healing: if true,
    /// the final report carries the [`StageQuarantine::marker`]
    /// annotation for it.
    pub fn degraded(&self) -> bool {
        self.corrupt > 0
            || self.duplicates > 0
            || self.healed > 0
            || self.resyncs > 0
            || self.dropped > 0
            || self.stalls > 0
            || self.halted
    }

    /// The explicit degradation annotation for this stage, e.g.
    /// `stage 2 (db): 1 corrupt quarantined, 1 resync`.
    pub fn marker(&self, stage: usize, name: &str) -> String {
        let mut parts = Vec::new();
        if self.corrupt > 0 {
            parts.push(format!("{} corrupt quarantined", self.corrupt));
        }
        if self.duplicates > 0 {
            parts.push(format!("{} duplicates dropped", self.duplicates));
        }
        if self.healed > 0 {
            parts.push(format!("{} reordered healed", self.healed));
        }
        if self.resyncs > 0 {
            parts.push(format!(
                "{} resync{}",
                self.resyncs,
                if self.resyncs == 1 { "" } else { "s" }
            ));
        }
        if self.dropped > 0 {
            parts.push(format!("{} frames dropped", self.dropped));
        }
        if self.stalls > 0 {
            parts.push(format!(
                "{} stall{}",
                self.stalls,
                if self.stalls == 1 { "" } else { "s" }
            ));
        }
        if self.halted {
            parts.push("halted".to_owned());
        }
        format!("stage {stage} ({name}): {}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stage_is_not_degraded() {
        assert!(!StageQuarantine::default().degraded());
    }

    #[test]
    fn every_counter_degrades_and_shows_in_the_marker() {
        for (field, expect) in [
            ("corrupt", "1 corrupt quarantined"),
            ("duplicates", "1 duplicates dropped"),
            ("healed", "1 reordered healed"),
            ("resyncs", "1 resync"),
            ("dropped", "1 frames dropped"),
            ("stalls", "1 stall"),
        ] {
            let mut q = StageQuarantine::default();
            match field {
                "corrupt" => q.corrupt = 1,
                "duplicates" => q.duplicates = 1,
                "healed" => q.healed = 1,
                "resyncs" => q.resyncs = 1,
                "dropped" => q.dropped = 1,
                _ => q.stalls = 1,
            }
            assert!(q.degraded(), "{field}");
            assert!(q.marker(2, "db").contains(expect), "{field}");
        }
        let q = StageQuarantine {
            halted: true,
            resyncs: 2,
            ..StageQuarantine::default()
        };
        assert!(q.degraded());
        let m = q.marker(0, "front");
        assert!(m.starts_with("stage 0 (front): "));
        assert!(m.contains("2 resyncs"));
        assert!(m.contains("halted"));
    }
}
