//! Always-on sentinel: SLO budgets evaluated over retained epochs.
//!
//! The collector's live tier answers "what is the profile right now";
//! the sentinel answers "is the service still inside its budget, and
//! if not, exactly when did it leave". It consumes the cheap per-epoch
//! [`EpochObs`] stream (no snapshots, no cloning) and evaluates a
//! [`SloBudget`] continuously:
//!
//! - **Tail latency per tier**: a deterministic streaming quantile
//!   sketch ([`QuantileSketch`]) over the per-epoch cycles each stage
//!   added, evaluated over the retained window of recent epochs; the
//!   configured quantile exceeding the stage's budget trips the
//!   sentinel.
//! - **Crosstalk mass**: the same sketch over per-epoch crosstalk wait
//!   cycles.
//! - **Collector lag**: the ingest queue depth after each batch.
//! - **Quarantine pressure**: cumulative frames the self-healing
//!   ingest had to quarantine.
//!
//! Everything is a pure function of the delta stream content: two runs
//! of the same scenario trip at the same epoch with the same observed
//! value, which is what makes an anomaly capture replayable at all.
//!
//! [`SentinelSink`] packages the watchdog as a [`DeltaSink`]: it owns
//! a [`Collector`] with observation tracking on, feeds it the stream,
//! drains the observations into a [`Sentinel`], and keeps a bounded
//! ring of periodic [`LiveSnapshot`]s for time travel — when the
//! sentinel trips, the ring holds the before-state and the trip
//! snapshot holds the after-state for a differential incident report.

use std::collections::VecDeque;
use whodunit_core::delta::{DeltaSink, EpochBatch, StreamHeader};
use whodunit_core::sketch::{quantile_ppm_over, rank_of, QuantileSketch};
use whodunit_report::live::LiveSnapshot;

use crate::{Collector, CollectorConfig, CollectorOutput, EpochObs};

/// The service-level budget the sentinel enforces. All thresholds are
/// optional; an empty budget never trips.
#[derive(Clone, Debug)]
pub struct SloBudget {
    /// Quantile (parts-per-million) the tail budgets are evaluated at,
    /// e.g. `990_000` for p99.
    pub quantile_ppm: u64,
    /// Per-stage budget on the chosen quantile of per-epoch added
    /// cycles: `(stage name, max cycles)`. Stage names not present in
    /// the stream are ignored.
    pub stage_cycles: Vec<(String, u64)>,
    /// Per-stage starvation floor: `(stage name, min cycles)`. Trips
    /// when even the *best* epoch in the retained window (the chosen
    /// quantile of the windowed sketch) falls below the floor — the
    /// signature of a slowed or wedged tier, whose profile cycles
    /// *drop* (the profiler records application-requested cycles, so a
    /// machine slowdown shows up as missing throughput, not extra
    /// cost).
    pub stage_floor: Vec<(String, u64)>,
    /// Budget on the chosen quantile of per-epoch crosstalk wait
    /// cycles (the hotspot-mass budget).
    pub xt_wait: Option<u64>,
    /// Budget on the ingest queue depth after a batch (collector lag /
    /// backpressure).
    pub max_lag: Option<u64>,
    /// Budget on cumulative quarantined frames.
    pub max_quarantined: Option<u64>,
    /// Epochs observed before any budget is evaluated (lets the
    /// workload's warmup transient pass).
    pub warmup_epochs: u64,
    /// Retained evaluation window, in epochs: tail budgets are
    /// evaluated over a sketch of the most recent `window_epochs`
    /// observations, and the same window is what an anomaly capture
    /// snapshots.
    pub window_epochs: u64,
}

impl Default for SloBudget {
    fn default() -> Self {
        SloBudget {
            quantile_ppm: 990_000,
            stage_cycles: Vec::new(),
            stage_floor: Vec::new(),
            xt_wait: None,
            max_lag: None,
            max_quarantined: None,
            warmup_epochs: 5,
            window_epochs: 8,
        }
    }
}

/// One budget violation: the dimension that tripped, when, and by how
/// much.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloViolation {
    /// Epoch at which the budget was exceeded.
    pub epoch: u64,
    /// Violated dimension: `tail:<stage>`, `starve:<stage>`,
    /// `xt-wait`, `lag`, or `quarantine`.
    pub dimension: String,
    /// Observed value (cycles, queue depth, or frame count).
    pub observed: u64,
    /// The budgeted maximum it exceeded.
    pub budget: u64,
}

impl std::fmt::Display for SloViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] observed {} > budget {} at epoch {}",
            self.dimension, self.observed, self.budget, self.epoch
        )
    }
}

/// The SLO watchdog proper: per-stage quantile sketches plus a bounded
/// ring of retained observations. Trip state is sticky — the first
/// violation is the incident; later epochs keep being observed (the
/// retained window keeps sliding) but do not re-trip.
#[derive(Debug, Default)]
pub struct Sentinel {
    budget: SloBudget,
    /// Stage names in stream order (from the header).
    stages: Vec<String>,
    /// Budget per stage index, resolved from `budget.stage_cycles`.
    stage_budget: Vec<Option<u64>>,
    /// Floor per stage index, resolved from `budget.stage_floor`.
    stage_floor: Vec<Option<u64>>,
    /// Stage index → lifetime-sketch index. Sketches are interned per
    /// stage *name*: budgets resolve by name, so same-named stages
    /// (fleet replicas of one tier) share a baseline distribution —
    /// and a fleet of hundreds of stages allocates one fixed-size
    /// histogram per tier, not per stage.
    lifetime_of: Vec<usize>,
    /// Lifetime per-tier sketches (baseline reporting, not tripping),
    /// indexed through `lifetime_of`.
    lifetime: Vec<QuantileSketch>,
    /// Lifetime sketch of per-epoch crosstalk wait (baseline).
    lifetime_xt: QuantileSketch,
    /// Retained recent observations, newest at the back.
    window: VecDeque<EpochObs>,
    /// Per-stage `(max value, stream position)` over the retained
    /// window, maintained incrementally in [`Sentinel::observe`]: a new
    /// observation replaces the running max on `>=` (keeping the latest
    /// position so it expires as late as possible), and only when the
    /// recorded position slides out of the window does that one stage
    /// rescan its column. High quantiles over the small retained window
    /// always select rank == window length — the column max — so this
    /// turns the per-epoch evaluation from a full window walk into one
    /// compare per stage.
    win_max: Vec<(u64, u64)>,
    /// Reused scratch for the per-epoch crosstalk quantile (avoids an
    /// allocation per evaluation).
    xt_scratch: Vec<u64>,
    quarantined_total: u64,
    epochs_seen: u64,
    tripped: Option<SloViolation>,
}

impl Sentinel {
    /// A sentinel enforcing `budget`; call [`Sentinel::start`] before
    /// the first observation.
    pub fn new(budget: SloBudget) -> Self {
        Sentinel {
            budget,
            ..Sentinel::default()
        }
    }

    /// Binds the sentinel to the stream's stage set.
    pub fn start(&mut self, header: &StreamHeader) {
        self.stages = header.stages.iter().map(|s| s.stage_name.clone()).collect();
        let resolve = |table: &[(String, u64)]| -> Vec<Option<u64>> {
            self.stages
                .iter()
                .map(|name| table.iter().find(|(n, _)| n == name).map(|&(_, b)| b))
                .collect()
        };
        self.stage_budget = resolve(&self.budget.stage_cycles);
        self.stage_floor = resolve(&self.budget.stage_floor);
        let mut names: Vec<&str> = Vec::new();
        self.lifetime_of = self
            .stages
            .iter()
            .map(|name| match names.iter().position(|n| n == name) {
                Some(i) => i,
                None => {
                    names.push(name);
                    names.len() - 1
                }
            })
            .collect();
        self.lifetime = vec![QuantileSketch::new(); names.len()];
        self.lifetime_xt = QuantileSketch::new();
        self.window.clear();
        self.win_max = vec![(0, 0); self.stages.len()];
        self.xt_scratch.clear();
        self.quarantined_total = 0;
        self.epochs_seen = 0;
        self.tripped = None;
    }

    /// Feeds one epoch observation; returns the violation if this very
    /// epoch tripped the sentinel (sticky: at most one per stream).
    pub fn observe(&mut self, obs: EpochObs) -> Option<SloViolation> {
        self.epochs_seen += 1;
        self.quarantined_total += obs.quarantined;
        for (si, &c) in obs.stage_cycles.iter().enumerate() {
            if let Some(sk) = self
                .lifetime_of
                .get(si)
                .and_then(|&li| self.lifetime.get_mut(li))
            {
                sk.record(c);
            }
        }
        self.lifetime_xt.record(obs.xt_wait);
        self.window.push_back(obs);
        while self.window.len() as u64 > self.budget.window_epochs.max(1) {
            self.window.pop_front();
        }
        // Maintain the per-stage sliding-window maxima. Positions are
        // the monotone observation count, so the window front sits at
        // `epochs_seen - window.len()` regardless of epoch numbering.
        let pos = self.epochs_seen - 1;
        let front_pos = self.epochs_seen - self.window.len() as u64;
        let back = self.window.back().expect("just pushed");
        for si in 0..self.win_max.len() {
            let c = back.stage_cycles.get(si).copied().unwrap_or(0);
            if c >= self.win_max[si].0 {
                self.win_max[si] = (c, pos);
            } else if self.win_max[si].1 < front_pos {
                // The recorded max slid out: rescan this one column.
                let mut best = (0, front_pos);
                for (off, o) in self.window.iter().enumerate() {
                    let v = o.stage_cycles.get(si).copied().unwrap_or(0);
                    if v >= best.0 {
                        best = (v, front_pos + off as u64);
                    }
                }
                self.win_max[si] = best;
            }
        }
        if self.tripped.is_some() || self.epochs_seen <= self.budget.warmup_epochs {
            return None;
        }
        let v = self.evaluate();
        if let Some(v) = &v {
            self.tripped = Some(v.clone());
        }
        v
    }

    /// Evaluates every budget dimension over the retained window,
    /// returning the first violation in a fixed deterministic order
    /// (stages in stream order, then crosstalk, lag, quarantine).
    fn evaluate(&mut self) -> Option<SloViolation> {
        let epoch = self.window.back().map(|o| o.epoch).unwrap_or(0);
        let q = self.budget.quantile_ppm;
        let w = self.window.len();
        let ns = self.stages.len();
        // The estimate only depends on the rank-selected value, so a
        // high quantile (rank == window length — always, for p99 over
        // the small retained window) needs just each stage's column
        // max, which `observe` already maintains incrementally in
        // `win_max`: the whole per-epoch evaluation is then one budget
        // check per stage, with no window walk at all. (For the max,
        // `bucket_hi(bucket_of(max)).min(max)` is `max` itself, so the
        // estimate IS the column max.) Other ranks take the
        // transposed-grid path. Both are bit-equal to a freshly built
        // sketch over the same values.
        let max_rank = w > 0 && rank_of(w as u64, q) == w as u64;
        let mut grid: Vec<u64> = vec![0; if max_rank { 0 } else { w * ns }];
        if !max_rank {
            for (wi, o) in self.window.iter().enumerate() {
                for (si, &c) in o.stage_cycles.iter().enumerate().take(ns) {
                    grid[si * w + wi] = c;
                }
            }
        }
        for si in 0..ns {
            let budget = self.stage_budget.get(si).copied().flatten();
            let floor = self.stage_floor.get(si).copied().flatten();
            if budget.is_none() && floor.is_none() {
                continue;
            }
            let est = if max_rank {
                self.win_max[si].0
            } else {
                let Some(est) = quantile_ppm_over(&mut grid[si * w..(si + 1) * w], q) else {
                    continue;
                };
                est
            };
            if let Some(budget) = budget {
                if est > budget {
                    return Some(SloViolation {
                        epoch,
                        dimension: format!("tail:{}", self.stages[si]),
                        observed: est,
                        budget,
                    });
                }
            }
            // The floor is a *sustained* starvation check: it engages
            // only on a full window, so even the window's best epoch
            // being under the floor means the whole retained window
            // starved.
            if let Some(floor) = floor {
                if self.window.len() as u64 >= self.budget.window_epochs && est < floor {
                    return Some(SloViolation {
                        epoch,
                        dimension: format!("starve:{}", self.stages[si]),
                        observed: est,
                        budget: floor,
                    });
                }
            }
        }
        if let Some(budget) = self.budget.xt_wait {
            self.xt_scratch.clear();
            self.xt_scratch.extend(self.window.iter().map(|o| o.xt_wait));
            if let Some(est) = quantile_ppm_over(&mut self.xt_scratch, q) {
                if est > budget {
                    return Some(SloViolation {
                        epoch,
                        dimension: "xt-wait".to_owned(),
                        observed: est,
                        budget,
                    });
                }
            }
        }
        if let Some(budget) = self.budget.max_lag {
            let lag = self.window.back().map(|o| o.queued).unwrap_or(0);
            if lag > budget {
                return Some(SloViolation {
                    epoch,
                    dimension: "lag".to_owned(),
                    observed: lag,
                    budget,
                });
            }
        }
        if let Some(budget) = self.budget.max_quarantined {
            if self.quarantined_total > budget {
                return Some(SloViolation {
                    epoch,
                    dimension: "quarantine".to_owned(),
                    observed: self.quarantined_total,
                    budget,
                });
            }
        }
        None
    }

    /// The sticky trip state: the first violation, if any.
    pub fn tripped(&self) -> Option<&SloViolation> {
        self.tripped.as_ref()
    }

    /// The retained observation window (newest last).
    pub fn window(&self) -> &VecDeque<EpochObs> {
        &self.window
    }

    /// The budget this sentinel enforces.
    pub fn budget(&self) -> &SloBudget {
        &self.budget
    }

    /// Epochs observed so far.
    pub fn epochs_seen(&self) -> u64 {
        self.epochs_seen
    }

    /// The lifetime quantile estimate of per-epoch cycles for a
    /// stage's tier (baseline reporting; `None` before any
    /// observation). Same-named stages share one distribution.
    pub fn lifetime_quantile(&self, stage: usize, ppm: u64) -> Option<u64> {
        self.lifetime_of
            .get(stage)
            .and_then(|&li| self.lifetime.get(li))
            .and_then(|s| s.quantile_ppm(ppm))
    }

    /// The lifetime quantile estimate of per-epoch crosstalk wait.
    pub fn lifetime_xt_quantile(&self, ppm: u64) -> Option<u64> {
        self.lifetime_xt.quantile_ppm(ppm)
    }

    /// The stream's stage names, in stage order (empty before
    /// [`Sentinel::start`]).
    pub fn stages(&self) -> &[String] {
        &self.stages
    }
}

/// How many periodic snapshots the time-travel ring retains.
const SNAPSHOT_RING: usize = 8;

/// A [`DeltaSink`] that wires a [`Collector`] (observation tracking
/// forced on) to a [`Sentinel`] and keeps the time-travel snapshot
/// ring. Feed it a stream (e.g. via `run_tpcw_streaming`), then pull
/// the trip state and the before/after snapshots for the incident.
#[derive(Debug)]
pub struct SentinelSink {
    collector: Collector,
    sentinel: Sentinel,
    /// Take a periodic snapshot every this many epochs (the time-travel
    /// granularity).
    snapshot_every: u64,
    /// Periodic `(epoch, snapshot)` ring, oldest first.
    ring: VecDeque<(u64, LiveSnapshot)>,
    /// Snapshot taken at the trip epoch (the "after" state).
    trip_snapshot: Option<LiveSnapshot>,
}

impl SentinelSink {
    /// Builds the sink; `cfg.track_obs` is forced on (the sentinel is
    /// the consumer the flag exists for).
    pub fn new(mut cfg: CollectorConfig, budget: SloBudget) -> Self {
        cfg.track_obs = true;
        SentinelSink {
            collector: Collector::new(cfg),
            sentinel: Sentinel::new(budget),
            snapshot_every: 8,
            ring: VecDeque::new(),
            trip_snapshot: None,
        }
    }

    /// Overrides the periodic-snapshot cadence (epochs).
    pub fn with_snapshot_every(mut self, epochs: u64) -> Self {
        self.snapshot_every = epochs.max(1);
        self
    }

    /// The wrapped collector.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Mutable access to the wrapped collector (e.g. to attach a
    /// [`whodunit_core::delta::ResyncSource`]).
    pub fn collector_mut(&mut self) -> &mut Collector {
        &mut self.collector
    }

    /// The watchdog state.
    pub fn sentinel(&self) -> &Sentinel {
        &self.sentinel
    }

    /// Time travel: the retained snapshot taken at or before `epoch`
    /// (newest such), if the ring still holds one.
    pub fn at(&self, epoch: u64) -> Option<&LiveSnapshot> {
        self.ring
            .iter()
            .rev()
            .find(|(e, _)| *e <= epoch)
            .map(|(_, s)| s)
    }

    /// The retained periodic snapshots, oldest first.
    pub fn snapshots(&self) -> &VecDeque<(u64, LiveSnapshot)> {
        &self.ring
    }

    /// The differential pair for an incident: the newest retained
    /// snapshot from before the trip epoch, and the snapshot taken at
    /// the trip itself. `None` until the sentinel has tripped.
    pub fn before_after(&self) -> Option<(&LiveSnapshot, &LiveSnapshot)> {
        let trip = self.sentinel.tripped()?;
        let after = self.trip_snapshot.as_ref()?;
        let before = self
            .ring
            .iter()
            .rev()
            .find(|(e, _)| *e < trip.epoch)
            .map(|(_, s)| s)?;
        Some((before, after))
    }

    /// Finalizes the wrapped collector, returning its output plus the
    /// sentinel and the trip snapshot.
    pub fn finish(self) -> (CollectorOutput, Sentinel, Option<LiveSnapshot>) {
        (self.collector.finalize(), self.sentinel, self.trip_snapshot)
    }
}

impl DeltaSink for SentinelSink {
    fn on_start(&mut self, header: &StreamHeader) {
        self.collector.start(header);
        self.sentinel.start(header);
        self.ring.clear();
        self.trip_snapshot = None;
    }

    fn on_batch(&mut self, batch: EpochBatch) {
        self.collector.enqueue(batch);
        self.collector.drain();
        let mut newly_tripped = false;
        while let Some(obs) = self.collector.pop_epoch_obs() {
            let epoch = obs.epoch;
            if epoch % self.snapshot_every == 0 {
                self.ring.push_back((epoch, self.collector.snapshot()));
                while self.ring.len() > SNAPSHOT_RING {
                    self.ring.pop_front();
                }
            }
            if self.sentinel.observe(obs).is_some() {
                newly_tripped = true;
            }
        }
        if newly_tripped {
            self.trip_snapshot = Some(self.collector.snapshot());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(epoch: u64, db_cycles: u64) -> EpochObs {
        EpochObs {
            epoch,
            end: epoch * 100,
            events: 1,
            stage_cycles: vec![10, db_cycles],
            xt_wait: 0,
            queued: 0,
            quarantined: 0,
        }
    }

    fn header() -> StreamHeader {
        use whodunit_core::delta::StreamStage;
        StreamHeader {
            stages: vec![
                StreamStage {
                    proc: 1,
                    stage_name: "front".into(),
                },
                StreamStage {
                    proc: 2,
                    stage_name: "db".into(),
                },
            ],
        }
    }

    #[test]
    fn trips_on_the_budgeted_stage_and_is_sticky() {
        let mut s = Sentinel::new(SloBudget {
            stage_cycles: vec![("db".into(), 1000)],
            warmup_epochs: 2,
            window_epochs: 4,
            ..SloBudget::default()
        });
        s.start(&header());
        for e in 0..5 {
            assert_eq!(s.observe(obs(e, 500)), None, "epoch {e}");
        }
        let v = s.observe(obs(5, 5000)).expect("must trip");
        assert_eq!(v.dimension, "tail:db");
        assert_eq!(v.epoch, 5);
        assert!(v.observed > 1000 && v.budget == 1000);
        assert_eq!(s.observe(obs(6, 9000)), None, "sticky");
        assert_eq!(s.tripped().unwrap().epoch, 5);
    }

    #[test]
    fn warmup_suppresses_and_unbudgeted_stages_never_trip() {
        let mut s = Sentinel::new(SloBudget {
            stage_cycles: vec![("front".into(), 1_000_000)],
            warmup_epochs: 3,
            ..SloBudget::default()
        });
        s.start(&header());
        // Violations of db cycles don't matter: db has no budget, and
        // the first epochs are warmup anyway.
        for e in 0..10 {
            assert_eq!(s.observe(obs(e, u64::MAX / 2)), None);
        }
        assert!(s.tripped().is_none());
        assert_eq!(s.epochs_seen(), 10);
    }

    #[test]
    fn quarantine_budget_counts_cumulatively() {
        let mut s = Sentinel::new(SloBudget {
            max_quarantined: Some(2),
            warmup_epochs: 0,
            ..SloBudget::default()
        });
        s.start(&header());
        let mut o = obs(0, 0);
        o.quarantined = 2;
        assert_eq!(s.observe(o), None, "at budget is not over budget");
        let mut o = obs(1, 0);
        o.quarantined = 1;
        let v = s.observe(o).expect("cumulative 3 > 2");
        assert_eq!(v.dimension, "quarantine");
        assert_eq!(v.observed, 3);
    }

    #[test]
    fn starvation_floor_needs_a_full_starved_window() {
        let mut s = Sentinel::new(SloBudget {
            stage_floor: vec![("db".into(), 100)],
            warmup_epochs: 0,
            window_epochs: 3,
            ..SloBudget::default()
        });
        s.start(&header());
        // One good epoch keeps the windowed max above the floor.
        s.observe(obs(0, 500));
        assert_eq!(s.observe(obs(1, 10)), None);
        assert_eq!(s.observe(obs(2, 10)), None, "window still holds epoch 0");
        let v = s.observe(obs(3, 10)).expect("3 starved epochs fill the window");
        assert_eq!(v.dimension, "starve:db");
        assert!(v.observed < 100 && v.budget == 100);
    }

    #[test]
    fn window_is_bounded_and_slides() {
        let mut s = Sentinel::new(SloBudget {
            window_epochs: 3,
            ..SloBudget::default()
        });
        s.start(&header());
        for e in 0..10 {
            s.observe(obs(e, e));
        }
        let epochs: Vec<u64> = s.window().iter().map(|o| o.epoch).collect();
        assert_eq!(epochs, vec![7, 8, 9]);
    }
}
