//! The online collector tier: incremental stitching, bounded-memory
//! aggregation, and live queries over a streaming profile feed.
//!
//! Batch Whodunit (EuroSys 2007 §5) stitches per-stage dumps *post
//! mortem* — `whodunit_core::pipeline::analyze` reads every stage's
//! complete profile at end-of-run. The paper pitches Whodunit as an
//! *online* profiler, though, and the deployable shape of that claim
//! is a collector daemon that consumes per-stage deltas as the tiers
//! produce them. This crate is that tier:
//!
//! - **Ingest** ([`Collector::enqueue`], [`Collector::poll`]): epoch
//!   batches of [`whodunit_core::delta`] stage deltas, with sequence
//!   and checksum verification, queue-depth backpressure, and lag
//!   accounting.
//! - **Incremental stitching**: synopses are indexed as they are
//!   minted; each new context's origin walk runs as soon as the
//!   context arrives. Walks (and request edges) blocked on a synopsis
//!   the collector has not seen yet park in a *pending table* keyed by
//!   the missing raw value and resume the moment a later epoch mints
//!   it. Early resolution is sound because the minted-synopsis index
//!   is insert-only: an entry never changes once written, so a walk
//!   that resolves at epoch *e* resolves identically against the
//!   complete end-of-run index.
//! - **Incremental CCT merge**: each origin's cross-stage profile is
//!   folded node-by-node as CCT deltas arrive, over a collector-local
//!   frame table (the global sorted frame table only exists at
//!   finalize; remapping frame ids commutes with frame-keyed merging,
//!   so folding early changes nothing).
//! - **Bounded memory**: origins idle for
//!   [`CollectorConfig::window_epochs`] epochs are deterministically
//!   evicted (ascending origin order) from the resident working set
//!   into a compact finalized store — flat node arrays instead of
//!   hash-indexed trees — and revived only if late activity arrives.
//!   Peak resident counts are tracked; eviction is lossless.
//! - **Live queries** ([`Collector::snapshot`]): top-k transaction
//!   paths by cost, per-origin tier latency breakdown, and crosstalk
//!   hotspots at any epoch, rendered through
//!   [`whodunit_report::live`].
//!
//! **The end-state lock.** [`Collector::finalize`] must produce output
//! byte-identical to batch [`analyze`] on the same run's dumps:
//! stitched text, crosstalk matrix, dump JSON, and dictionary.
//! Streaming is a pure refactoring of *when* work happens, never
//! *what* is computed. The incremental path covers every stream a
//! live simulation can emit; inputs the incremental path cannot
//! honestly reproduce (an invalid stage dump, a duplicate synopsis
//! mint, a corrupt delta) flip a `broken` flag and finalize falls
//! back to running the batch pipeline on the reconstructed dumps —
//! [`CollectorStats::used_fallback`] records that this happened, and
//! the differential suite asserts it never does on real streams.

#![warn(missing_docs)]

pub mod federation;
pub mod quarantine;
pub mod sentinel;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Mutex;
use whodunit_core::cct::{Cct, CctNodeId, Metrics};
use whodunit_core::hash::FnvHashMap;
use whodunit_core::context::{
    ContextAtom, ContextShard, ShardedContextTable, ShardedCtxId, TransactionContext,
};
use whodunit_core::crosstalk::{CrosstalkMatrix, OriginKey, WaitStats};
use whodunit_core::delta::{
    CctDelta, DeltaError, DeltaSink, EpochBatch, ResyncSource, StageAccumulator, StageDelta,
    StreamHeader,
};
use whodunit_core::exec::{self, StealPlan};
use whodunit_core::frame::FrameId;
use whodunit_core::pipeline::{analyze, OriginProfile, PipelineConfig, PipelineReport};
use whodunit_core::stitch::{ctx_string_of, DumpAtom, DumpNode, RequestEdge, StageDump, UnresolvedEdge};
use whodunit_core::synopsis::{SynChain, Synopsis};
use whodunit_core::wire::{self, WireError};
use whodunit_report::live::{Hotspot, LagStats, LiveSnapshot, ThreadingStats, TierSlice, TopPath};

pub use federation::{
    CleanLinks, FedNodeId, Federation, FederationConfig, FederationOutput, FederationStats,
    LinkPolicy, LinkVerdict, RecoveryRecord,
};
pub use quarantine::{QuarantinePolicy, StageQuarantine};
pub use sentinel::{Sentinel, SentinelSink, SloBudget, SloViolation};

/// Tuning knobs of the collector.
#[derive(Clone, Debug)]
pub struct CollectorConfig {
    /// Dictionary shard count; must match the batch pipeline's for the
    /// byte-identity lock (default: [`PipelineConfig::default`]'s).
    pub shards: usize,
    /// Epochs an origin may stay idle before it is evicted from the
    /// resident working set (minimum 1).
    pub window_epochs: u64,
    /// How many entries live queries return (top paths, hotspots).
    pub top_k: usize,
    /// Ingest queue capacity; `0` means unbounded. When the queue is
    /// full, [`Collector::enqueue`] refuses the batch (backpressure)
    /// and counts it in [`CollectorStats::throttled`].
    pub max_queue: usize,
    /// Quarantine/reorder/resync/stall policy. Only consulted when a
    /// [`ResyncSource`] is attached; without one, damage falls back to
    /// the legacy broken-stream handling.
    pub quarantine: QuarantinePolicy,
    /// Whether to record per-epoch [`EpochObs`] for a sentinel to
    /// drain. Off by default: the observations are cheap but not free,
    /// and only the sentinel consumes them.
    pub track_obs: bool,
    /// Worker threads for CCT fold execution. `1` (the default) is the
    /// serial reference path: folds run inline as deltas arrive,
    /// exactly as before. Larger counts defer each batch's folds into
    /// per-origin groups executed on scoped OS threads via
    /// [`whodunit_core::exec::run`] — the final report stays
    /// byte-identical (the thread-stress suite sweeps counts to prove
    /// it), only wall time and the diagnostic threading counters move.
    pub workers: usize,
    /// Steal schedule for the parallel fold phase. Scheduling can
    /// never change output; the stress harness sweeps seeds and
    /// injects panics through this knob.
    pub steal: StealPlan,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            shards: PipelineConfig::default().shards,
            window_epochs: 4,
            top_k: 5,
            max_queue: 0,
            quarantine: QuarantinePolicy::default(),
            track_obs: false,
            workers: 1,
            steal: StealPlan::CANONICAL,
        }
    }
}

/// Cheap per-epoch observations for SLO evaluation: everything the
/// sentinel's budgets are defined over, computed incrementally from the
/// batch content during ingest (no snapshot, no cloning).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochObs {
    /// Epoch index of the batch.
    pub epoch: u64,
    /// Virtual time (cycles) at the end of the epoch.
    pub end: u64,
    /// Change events the batch carried.
    pub events: u64,
    /// Cycles added per stage this epoch (indexed by stage).
    pub stage_cycles: Vec<u64>,
    /// Crosstalk wait cycles added this epoch.
    pub xt_wait: u64,
    /// Ingest queue depth after the batch was processed.
    pub queued: u64,
    /// Frames quarantined while processing the batch.
    pub quarantined: u64,
}

/// Ingest, memory, and integrity accounting.
#[derive(Clone, Debug, Default)]
pub struct CollectorStats {
    /// Epoch batches processed.
    pub batches: u64,
    /// Individual change events processed.
    pub events: u64,
    /// Batch sequence gaps observed.
    pub seq_gaps: u64,
    /// Deltas rejected by the accumulator (checksum, per-stage
    /// sequence, baseline inconsistency) with no [`ResyncSource`]
    /// attached. Any of these marks the stream broken and forces the
    /// batch fallback at finalize. With a source attached, damage is
    /// routed through quarantine instead (see the counters below).
    pub delta_errors: u64,
    /// Corrupt frames quarantined (checksum / inconsistency, healed by
    /// resync rather than fallback).
    pub quarantined: u64,
    /// Duplicated frames dropped (already-applied sequence numbers).
    pub dup_frames: u64,
    /// Out-of-order frames healed from the reorder buffer.
    pub healed_frames: u64,
    /// Bounded resyncs performed against the attached source.
    pub resyncs: u64,
    /// Frames discarded on halted stages.
    pub dropped_frames: u64,
    /// Stall events declared by the watchdog.
    pub stalls: u64,
    /// Evictions from the resident set into the finalized store.
    pub evictions: u64,
    /// Evicted origins revived by late activity.
    pub revivals: u64,
    /// High-water mark of resident origins.
    pub peak_resident: u64,
    /// Batches refused because the ingest queue was full.
    pub throttled: u64,
    /// High-water mark of the ingest queue depth, all-time.
    pub peak_queued: u64,
    /// High-water mark of the current fill/drain cycle; resets when a
    /// batch arrives on an empty queue, so collector reuse across
    /// drain cycles does not pin the gauge at an ancient peak.
    pub cycle_peak_queued: u64,
    /// Explicit degradation markers, one per stage whose stream needed
    /// quarantine/resync/stall handling (set at finalize; empty on a
    /// clean stream). The [`PipelineReport`] itself stays byte-exact —
    /// degradation is annotated here and in [`LiveSnapshot::degraded`],
    /// never inside the report.
    pub degraded: Vec<String>,
    /// Origin walks still pending when [`Collector::finalize`] began
    /// (before settlement). Zero on a clean complete stream.
    pub pending_walks_at_flush: u64,
    /// Request edges still pending when finalize began.
    pub pending_edges_at_flush: u64,
    /// Whether finalize fell back to the batch pipeline.
    pub used_fallback: bool,
    /// `(epoch, origin)` eviction sequence, in eviction order. A pure
    /// function of the delta stream content (never of hash iteration
    /// or timing) — the window-boundary property tests key on this.
    pub eviction_log: Vec<(u64, OriginKey)>,
    /// Batches whose folds executed on the parallel executor (always 0
    /// on the `workers == 1` reference path).
    pub parallel_fold_batches: u64,
    /// Per-origin fold groups executed in parallel. A pure function of
    /// the stream content and `workers > 1`.
    pub fold_groups: u64,
    /// Work-steal events during parallel fold execution. Timing-
    /// dependent; diagnostic only, never part of any fingerprint.
    pub fold_steals: u64,
    /// Fold workers that panicked. Each one marks the stream broken,
    /// so finalize falls back to the batch pipeline — a clean,
    /// byte-correct report, never a deadlock or partial dump.
    pub fold_panics: u64,
    /// Binary wire frames accepted by [`Collector::enqueue_wire`].
    pub wire_frames: u64,
    /// Total encoded bytes of the accepted wire frames.
    pub wire_bytes: u64,
    /// Wire frames rejected before ingest (bad magic/version/kind,
    /// truncation, envelope checksum, malformed body). The frame is
    /// dropped like a lost batch, so the §12 seq-gap machinery heals
    /// the stream on the next good frame.
    pub wire_errors: u64,
}

/// What [`Collector::finalize`] returns: the batch-identical report
/// plus the collector's own accounting.
#[derive(Debug)]
pub struct CollectorOutput {
    /// Analysis output; byte-identical to batch [`analyze`] on the
    /// same dumps (same stitched text, crosstalk text, dump JSON,
    /// dictionary, fingerprint).
    pub report: PipelineReport,
    /// Ingest/memory/integrity accounting of the streaming run.
    pub stats: CollectorStats,
}

/// A resident (still accumulating) origin aggregate.
#[derive(Debug)]
struct ResidentOrigin {
    cct: Cct,
    stages: BTreeSet<usize>,
    tier_cycles: BTreeMap<usize, u64>,
    last_active: u64,
}

impl ResidentOrigin {
    fn new(epoch: u64) -> Self {
        ResidentOrigin {
            cct: Cct::new(),
            stages: BTreeSet::new(),
            tier_cycles: BTreeMap::new(),
            last_active: epoch,
        }
    }
}

/// One node of a compacted CCT: creation order, parents first, so the
/// tree (and its node ids) rebuild exactly.
#[derive(Clone, Copy, Debug)]
struct CompactNode {
    /// Collector-local frame id; `u32::MAX` for the root.
    frame: u32,
    /// Parent node index; `u32::MAX` for the root.
    parent: u32,
    m: Metrics,
}

/// An evicted origin aggregate: flat arrays, no hash indexes.
#[derive(Debug)]
struct FinalizedOrigin {
    nodes: Vec<CompactNode>,
    stages: BTreeSet<usize>,
    tier_cycles: BTreeMap<usize, u64>,
    /// Hottest path (collector-global frame ids), memoized on first
    /// snapshot use: live snapshots rank finalized origins too, and
    /// rebuilding a CCT per origin per snapshot would put an O(nodes)
    /// tax on every live query — while computing it eagerly at
    /// eviction would tax ingest for origins no query ever ranks.
    hot_path: std::cell::OnceCell<Vec<u32>>,
    samples: u64,
    /// Sum of `tier_cycles`, fixed at eviction (revival recomputes on
    /// the next eviction): snapshots rank every finalized origin, and
    /// at fleet scale re-summing each one's tier map per snapshot is
    /// the ranking's dominant cost.
    cycles: u64,
}

fn compact_cct(cct: &Cct) -> Vec<CompactNode> {
    cct.node_ids()
        .map(|id| CompactNode {
            frame: cct.frame(id).map_or(u32::MAX, |f| f.0),
            parent: cct.parent(id).map_or(u32::MAX, |p| p.0),
            m: cct.metrics(id),
        })
        .collect()
}

/// Rebuilds a compacted CCT; node ids come back identical because
/// nodes are replayed in their original creation order.
fn rebuild_cct(nodes: &[CompactNode]) -> Cct {
    let mut cct = Cct::new();
    let mut map: Vec<CctNodeId> = Vec::with_capacity(nodes.len());
    for (i, n) in nodes.iter().enumerate() {
        let id = if i == 0 {
            CctNodeId::ROOT
        } else {
            cct.child(map[n.parent as usize], FrameId(n.frame))
        };
        cct.record_at(id, n.m);
        map.push(id);
    }
    cct
}

/// Per-stage streaming state.
#[derive(Debug)]
struct StageState {
    acc: StageAccumulator,
    /// Per context index: the resolved origin, once the walk settles.
    bindings: Vec<Option<OriginKey>>,
    /// Per context index, `Some` once the context's CCT mass is folded:
    /// dump CCT node index → node id inside the origin's merged CCT.
    fold: Vec<Option<Vec<CctNodeId>>>,
    /// Stage-local frame index → collector-global frame id, kept in
    /// sync as deltas arrive so folds never rebuild the mapping.
    frame_map: Vec<u32>,
}

/// One deferred fold operation (parallel mode): recorded exactly where
/// the serial path would fold inline, executed in per-origin groups at
/// the end of the batch.
#[derive(Debug)]
enum FoldOp {
    /// Fold the whole accumulated CCT of `(stage, ctx)` — the binding
    /// just settled, or first mass arrived on a bound context.
    Full { stage: usize, ctx: u32 },
    /// Fold one CCT increment through the context's existing node map.
    Delta { stage: usize, delta: CctDelta },
}

/// A [`FoldOp`] with its inputs resolved at plan time, so group
/// execution touches nothing but the group's own state.
#[derive(Debug)]
enum PlannedOp {
    Full {
        stage: usize,
        ctx: u32,
        nodes: Vec<DumpNode>,
    },
    Delta {
        stage: usize,
        delta: CctDelta,
    },
}

/// All of one origin's fold work for the batch, owning everything it
/// mutates: the resident aggregate (removed from the map for the
/// duration) and the fold node maps of every context it updates.
/// Disjoint by construction — each `(stage, ctx)` binds to exactly one
/// origin — which is what makes group-parallel execution safe.
#[derive(Debug)]
struct FoldGroup {
    origin: OriginKey,
    entry: ResidentOrigin,
    ops: Vec<PlannedOp>,
    /// `(stage, ctx)` → that context's fold node map: taken from the
    /// stage at plan time for `Delta` ops, created by `Full` ops.
    /// Restored to the stages (in group order) after execution.
    maps: Vec<((usize, u32), Vec<CctNodeId>)>,
    /// Whether an op hit a condition the serial fold marks the stream
    /// broken for (malformed node, out-of-order delta).
    broken: bool,
}

impl FoldGroup {
    /// Runs the group's ops in recorded order — the fold_full /
    /// fold_delta bodies verbatim, against the owned aggregate and
    /// maps, with stage frame maps shared read-only.
    fn execute(&mut self, frame_maps: &[Vec<u32>]) {
        let ops = std::mem::take(&mut self.ops);
        for op in ops {
            match op {
                PlannedOp::Full { stage, ctx, nodes } => {
                    let frame_of = &frame_maps[stage];
                    let mut cycles = 0u64;
                    let mut map: Vec<CctNodeId> = Vec::with_capacity(nodes.len());
                    let mut ok = true;
                    for (i, n) in nodes.iter().enumerate() {
                        let id = if i == 0 {
                            CctNodeId::ROOT
                        } else {
                            let (Some(p), Some(f)) = (n.parent, n.frame) else {
                                self.broken = true;
                                ok = false;
                                break;
                            };
                            if p as usize >= map.len() {
                                self.broken = true;
                                ok = false;
                                break;
                            }
                            let cf = frame_of.get(f as usize).copied().unwrap_or(u32::MAX);
                            self.entry.cct.child(map[p as usize], FrameId(cf))
                        };
                        self.entry.cct.record_at(
                            id,
                            Metrics {
                                samples: n.samples,
                                cycles: n.cycles,
                                calls: n.calls,
                            },
                        );
                        cycles += n.cycles;
                        map.push(id);
                    }
                    if !ok {
                        // Serial fold_full returns without installing
                        // the map; the fallback owns the report now.
                        continue;
                    }
                    self.entry.stages.insert(stage);
                    *self.entry.tier_cycles.entry(stage).or_insert(0) += cycles;
                    self.maps.push(((stage, ctx), map));
                }
                PlannedOp::Delta { stage, delta } => {
                    let key = (stage, delta.ctx);
                    let map = &mut self
                        .maps
                        .iter_mut()
                        .find(|(k, _)| *k == key)
                        .expect("map taken at plan time")
                        .1;
                    if map.len() != delta.nodes_before as usize {
                        self.broken = true;
                        continue;
                    }
                    let frame_of = &frame_maps[stage];
                    let mut cycles = 0u64;
                    for &(i, ds, dc, da) in &delta.grown {
                        self.entry.cct.record_at(
                            map[i as usize],
                            Metrics {
                                samples: ds,
                                cycles: dc,
                                calls: da,
                            },
                        );
                        cycles += dc;
                    }
                    let mut ok = true;
                    for n in &delta.new_nodes {
                        let (Some(p), Some(f)) = (n.parent, n.frame) else {
                            self.broken = true;
                            ok = false;
                            break;
                        };
                        if p as usize >= map.len() {
                            self.broken = true;
                            ok = false;
                            break;
                        }
                        let cf = frame_of.get(f as usize).copied().unwrap_or(u32::MAX);
                        let id = self.entry.cct.child(map[p as usize], FrameId(cf));
                        self.entry.cct.record_at(
                            id,
                            Metrics {
                                samples: n.samples,
                                cycles: n.cycles,
                                calls: n.calls,
                            },
                        );
                        cycles += n.cycles;
                        map.push(id);
                    }
                    if !ok {
                        continue;
                    }
                    self.entry.stages.insert(stage);
                    *self.entry.tier_cycles.entry(stage).or_insert(0) += cycles;
                }
            }
        }
    }
}

/// The streaming collector. See the crate docs for the model.
#[derive(Debug)]
pub struct Collector {
    cfg: CollectorConfig,
    header: StreamHeader,
    stages: Vec<StageState>,
    /// Raw synopsis → `(stage, ctx)` that minted it. Insert-only.
    /// FNV-hashed: probed on every origin-walk hop and context mint.
    syn_index: FnvHashMap<u64, (usize, u32)>,
    /// Missing raw synopsis → walk start contexts parked on it.
    pending_walks: FnvHashMap<u64, Vec<(usize, u32)>>,
    /// Missing raw synopsis → receiving `(stage, ctx)` request edges
    /// parked on it.
    pending_edges: FnvHashMap<u64, Vec<(usize, u32)>>,
    edges: Vec<RequestEdge>,
    /// Crosstalk increments whose waiter or holder origin is not yet
    /// resolved: `(stage, waiter, holder, count, total_wait)`; a
    /// waiter-only row uses `holder == u32::MAX` as the marker.
    deferred_xt: Vec<(usize, u32, u32, u64, u64)>,
    // Hash-indexed for the per-fold/per-row hot lookups; every
    // consumer that emits ordered output sorts explicitly.
    xt_pairs: FnvHashMap<(OriginKey, OriginKey), WaitStats>,
    xt_waiters: FnvHashMap<OriginKey, WaitStats>,
    resident: FnvHashMap<OriginKey, ResidentOrigin>,
    finalized: FnvHashMap<OriginKey, FinalizedOrigin>,
    /// Finalized origins ordered by `(cycles desc, key asc)` — the
    /// snapshot ranking order. Maintained at eviction/revival so a
    /// live snapshot ranks `resident ∪ top-k(finalized)` instead of
    /// walking the whole (ever-growing) finalized store.
    finalized_rank: std::collections::BTreeSet<(std::cmp::Reverse<u64>, OriginKey)>,
    /// Memoized origin labels (see [`Collector::origin_label`]).
    label_cache: std::cell::RefCell<FnvHashMap<OriginKey, String>>,
    /// Collector-local frame intern table (union of stage frames in
    /// arrival order; remapped to the global sorted table at finalize).
    frames: Vec<String>,
    frame_ids: FnvHashMap<String, u32>,
    epoch: u64,
    now: u64,
    queue: VecDeque<EpochBatch>,
    next_batch_seq: u64,
    stats: CollectorStats,
    started: bool,
    broken: bool,
    /// Per-stage quarantine/reorder/stall state, parallel to `stages`.
    quarantine: Vec<StageQuarantine>,
    /// Emitter-side snapshot provider for bounded resync, if attached.
    resync: Option<ResyncHandle>,
    /// Epoch of the batch currently being ingested (for per-stage
    /// progress tracking; `epoch` itself only advances post-batch to
    /// keep eviction timing unchanged).
    ingest_epoch: u64,
    /// Deferred fold operations of the batch being ingested (parallel
    /// mode only; always empty between batches and on the serial path).
    fold_ops: Vec<FoldOp>,
    /// `(stage, ctx)` pairs with a queued `Full` op this batch: later
    /// increments for them are subsumed (the full fold reads the
    /// accumulator at execution time).
    fold_queued: HashSet<(usize, u32)>,
    /// Recorded per-epoch observations awaiting `take_epoch_obs`.
    epoch_obs: VecDeque<EpochObs>,
    /// Per-batch scratch for `EpochObs::stage_cycles`.
    obs_stage_cycles: Vec<u64>,
    /// Per-batch scratch for `EpochObs::xt_wait`.
    obs_xt_wait: u64,
    /// Per-batch scratch for `EpochObs::quarantined`.
    obs_quarantined: u64,
}

/// Debug-opaque wrapper so `Collector` can keep `derive(Debug)` while
/// holding a trait object.
struct ResyncHandle(Box<dyn ResyncSource>);

impl std::fmt::Debug for ResyncHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ResyncSource(..)")
    }
}

/// Bound on retained [`EpochObs`] when nothing drains them.
const OBS_CAPACITY: usize = 4096;

const WAITER_ONLY: u32 = u32::MAX;

impl Collector {
    /// A collector that has not yet seen its stream header.
    pub fn new(cfg: CollectorConfig) -> Self {
        Collector {
            cfg,
            header: StreamHeader::default(),
            stages: Vec::new(),
            syn_index: FnvHashMap::default(),
            pending_walks: FnvHashMap::default(),
            pending_edges: FnvHashMap::default(),
            edges: Vec::new(),
            deferred_xt: Vec::new(),
            xt_pairs: FnvHashMap::default(),
            xt_waiters: FnvHashMap::default(),
            resident: FnvHashMap::default(),
            finalized: FnvHashMap::default(),
            finalized_rank: std::collections::BTreeSet::new(),
            label_cache: std::cell::RefCell::new(FnvHashMap::default()),
            frames: Vec::new(),
            frame_ids: FnvHashMap::default(),
            epoch: 0,
            now: 0,
            queue: VecDeque::new(),
            next_batch_seq: 0,
            stats: CollectorStats::default(),
            started: false,
            broken: false,
            quarantine: Vec::new(),
            resync: None,
            ingest_epoch: 0,
            fold_ops: Vec::new(),
            fold_queued: HashSet::new(),
            epoch_obs: VecDeque::new(),
            obs_stage_cycles: Vec::new(),
            obs_xt_wait: 0,
            obs_quarantined: 0,
        }
    }

    /// A collector initialized for `header`'s stage set.
    pub fn with_header(header: &StreamHeader, cfg: CollectorConfig) -> Self {
        let mut c = Collector::new(cfg);
        c.start(header);
        c
    }

    /// Installs the stream header (stage set). Must be called exactly
    /// once, before any batch.
    pub fn start(&mut self, header: &StreamHeader) {
        assert!(!self.started, "collector already started");
        self.started = true;
        self.header = header.clone();
        self.stages = header
            .stages
            .iter()
            .map(|s| StageState {
                acc: StageAccumulator::new(s),
                bindings: Vec::new(),
                fold: Vec::new(),
                frame_map: Vec::new(),
            })
            .collect();
        self.quarantine = vec![StageQuarantine::default(); self.stages.len()];
    }

    /// Attaches an emitter-side snapshot provider, switching damage
    /// handling from broken-stream fallback to quarantine + bounded
    /// resync. The source must be advanced to (at least) the batch the
    /// collector is about to process — a snapshot that lags the damage
    /// cannot heal it.
    pub fn set_resync_source(&mut self, src: Box<dyn ResyncSource>) {
        self.resync = Some(ResyncHandle(src));
    }

    /// Per-stage quarantine/reorder/stall accounting.
    pub fn quarantine_state(&self) -> &[StageQuarantine] {
        &self.quarantine
    }

    /// The explicit degradation markers for every stage whose stream
    /// needed self-healing, in stage order. Empty on a clean stream.
    pub fn degraded_markers(&self) -> Vec<String> {
        self.quarantine
            .iter()
            .enumerate()
            .filter(|(_, q)| q.degraded())
            .map(|(si, q)| {
                let name = self
                    .header
                    .stages
                    .get(si)
                    .map(|s| s.stage_name.as_str())
                    .unwrap_or("?");
                q.marker(si, name)
            })
            .collect()
    }

    /// Drains the per-epoch observations recorded since the last call
    /// (empty unless [`CollectorConfig::track_obs`] is set).
    pub fn take_epoch_obs(&mut self) -> Vec<EpochObs> {
        self.epoch_obs.drain(..).collect()
    }

    /// Pops the oldest pending observation, if any — the allocation-
    /// free form of [`Collector::take_epoch_obs`] for per-batch
    /// polling loops.
    pub fn pop_epoch_obs(&mut self) -> Option<EpochObs> {
        self.epoch_obs.pop_front()
    }

    /// Read access to the running stats.
    pub fn stats(&self) -> &CollectorStats {
        &self.stats
    }

    /// The epoch of the last processed batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the incremental path has given up (finalize will fall
    /// back to the batch pipeline).
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Offers a batch to the ingest queue. Returns `false` (and counts
    /// a throttle) if the queue is at capacity — the emitter must slow
    /// down or retry; the batch was **not** accepted.
    pub fn enqueue(&mut self, batch: EpochBatch) -> bool {
        if self.cfg.max_queue > 0 && self.queue.len() >= self.cfg.max_queue {
            self.stats.throttled += 1;
            return false;
        }
        // A batch landing on an empty queue starts a new fill/drain
        // cycle: the cycle gauge resets while the all-time peak stays.
        if self.queue.is_empty() {
            self.stats.cycle_peak_queued = 0;
        }
        self.queue.push_back(batch);
        let depth = self.queue.len() as u64;
        self.stats.peak_queued = self.stats.peak_queued.max(depth);
        self.stats.cycle_peak_queued = self.stats.cycle_peak_queued.max(depth);
        true
    }

    /// Installs the stream header from its binary wire frame
    /// ([`whodunit_core::wire::encode_header`]). The wire twin of
    /// [`Collector::start`].
    pub fn start_wire(&mut self, frame: &[u8]) -> Result<(), WireError> {
        let (header, _) = wire::decode_header(frame)?;
        self.start(&header);
        Ok(())
    }

    /// Offers a binary wire frame to the ingest queue — the wire twin
    /// of [`Collector::enqueue`]. The envelope (magic, version, kind,
    /// length, FNV digest) is verified before any decode; a damaged
    /// frame is counted in [`CollectorStats::wire_errors`] and dropped,
    /// which the self-healing machinery then treats exactly like a
    /// lost batch (reorder-buffer park on the next good frame, bounded
    /// resync if the hole cannot be healed). `Ok(false)` means the
    /// frame decoded but the queue was full (the frame was **not**
    /// accepted, and is not counted in [`CollectorStats::wire_frames`]).
    pub fn enqueue_wire(&mut self, frame: &[u8]) -> Result<bool, WireError> {
        match wire::decode_batch(frame) {
            Ok((batch, consumed)) => {
                let accepted = self.enqueue(batch);
                if accepted {
                    self.stats.wire_frames += 1;
                    self.stats.wire_bytes += consumed as u64;
                }
                Ok(accepted)
            }
            Err(e) => {
                self.stats.wire_errors += 1;
                Err(e)
            }
        }
    }

    /// Processes one queued batch; returns whether one was processed.
    pub fn poll(&mut self) -> bool {
        let Some(batch) = self.queue.pop_front() else {
            return false;
        };
        self.process_batch(batch);
        true
    }

    /// Processes every queued batch.
    pub fn drain(&mut self) {
        while self.poll() {}
    }

    /// Number of batches queued but not yet processed.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    fn process_batch(&mut self, batch: EpochBatch) {
        assert!(self.started, "collector not started");
        self.stats.batches += 1;
        let events = batch.events();
        self.stats.events += events;
        if batch.seq != self.next_batch_seq {
            self.stats.seq_gaps += 1;
        }
        self.next_batch_seq = batch.seq + 1;
        self.ingest_epoch = batch.epoch;
        if self.cfg.track_obs {
            self.obs_stage_cycles.clear();
            self.obs_stage_cycles.resize(self.stages.len(), 0);
            self.obs_xt_wait = 0;
            self.obs_quarantined = 0;
        }
        for d in &batch.deltas {
            self.ingest_delta(d);
        }
        // Parallel mode: the batch's deferred folds, before the epoch
        // advances (the serial path folds inline at the same epoch).
        self.execute_folds();
        self.retry_deferred_xt();
        self.epoch = self.epoch.max(batch.epoch);
        self.now = self.now.max(batch.end);
        self.evict_idle();
        // Stall watchdog: a stage silent for the configured number of
        // epochs is explicitly marked (and un-marks on progress; the
        // stall count stays).
        let stall = self.cfg.quarantine.stall_epochs;
        if stall > 0 {
            for q in &mut self.quarantine {
                if !q.halted && !q.stalled && self.epoch.saturating_sub(q.last_progress) >= stall
                {
                    q.stalled = true;
                    q.stalls += 1;
                    self.stats.stalls += 1;
                }
            }
        }
        if self.cfg.track_obs {
            self.epoch_obs.push_back(EpochObs {
                epoch: batch.epoch,
                end: batch.end,
                events,
                stage_cycles: std::mem::take(&mut self.obs_stage_cycles),
                xt_wait: self.obs_xt_wait,
                queued: self.queue.len() as u64,
                quarantined: self.obs_quarantined,
            });
            if self.epoch_obs.len() > OBS_CAPACITY {
                self.epoch_obs.pop_front();
            }
        }
    }

    /// One stage delta: classify (apply / quarantine / park / drop),
    /// then do the incremental stitching work its content unlocks.
    fn ingest_delta(&mut self, d: &StageDelta) {
        if d.stage >= self.stages.len() {
            self.broken = true;
            self.stats.delta_errors += 1;
            return;
        }
        if self.quarantine[d.stage].halted {
            self.quarantine[d.stage].dropped += 1;
            self.stats.dropped_frames += 1;
            return;
        }
        self.try_apply(d);
    }

    /// Applies one frame through the accumulator and, on success, the
    /// incremental stitch work plus any parked frames it unblocks. On
    /// failure routes the frame through quarantine (or the legacy
    /// broken-stream path when no [`ResyncSource`] is attached).
    fn try_apply(&mut self, d: &StageDelta) {
        let ctx_base = self.stages[d.stage].acc.context_count() as u32;
        match self.stages[d.stage].acc.apply(d) {
            Ok(()) => {
                let q = &mut self.quarantine[d.stage];
                q.last_progress = self.ingest_epoch;
                q.stalled = false;
                self.apply_stitch(d, ctx_base);
                self.drain_parked(d.stage);
            }
            Err(e) if self.resync.is_none() => {
                let _ = e;
                self.broken = true;
                self.stats.delta_errors += 1;
            }
            Err(DeltaError::SeqGap { expected, got, .. }) if got < expected => {
                // Duplicate of an already-applied frame: drop it.
                self.quarantine[d.stage].duplicates += 1;
                self.stats.dup_frames += 1;
            }
            Err(DeltaError::SeqGap { .. }) => self.park(d),
            Err(_) => {
                // Checksum or baseline inconsistency: the frame's
                // content is unusable. Quarantine it and catch up from
                // the emitter snapshot.
                self.quarantine[d.stage].corrupt += 1;
                self.stats.quarantined += 1;
                self.obs_quarantined += 1;
                self.request_resync(d.stage);
            }
        }
    }

    /// Parks an out-of-order frame in the bounded reorder buffer; an
    /// overflowing hole is treated as loss and resyncs.
    fn park(&mut self, d: &StageDelta) {
        let q = &mut self.quarantine[d.stage];
        q.parked.entry(d.seq).or_insert_with(|| d.clone());
        q.parked_peak = q.parked_peak.max(q.parked.len() as u64);
        if q.parked.len() > self.cfg.quarantine.reorder_buffer {
            self.request_resync(d.stage);
        }
    }

    /// Applies parked frames that have become contiguous with the
    /// accumulator's expected sequence number.
    fn drain_parked(&mut self, si: usize) {
        loop {
            let next = self.stages[si].acc.next_seq();
            let Some(d) = self.quarantine[si].parked.remove(&next) else {
                return;
            };
            self.quarantine[si].healed += 1;
            self.stats.healed_frames += 1;
            // Recursion depth is bounded by the reorder buffer size.
            self.try_apply(&d);
        }
    }

    /// Bounded resync: fold the emitter's snapshot in as a synthetic
    /// catch-up delta through the normal ingest path, fast-forward the
    /// sequence horizon, and drain whatever parked frames survive.
    /// Exhausted (or unusable) resync halts the stage — explicitly
    /// degraded, never a batch fallback.
    fn request_resync(&mut self, si: usize) {
        if self.quarantine[si].halted {
            return;
        }
        if self.quarantine[si].resyncs >= self.cfg.quarantine.max_resyncs {
            self.halt(si);
            return;
        }
        let snap = self.resync.as_ref().and_then(|h| h.0.snapshot(si));
        let Some((dump, upto)) = snap else {
            self.halt(si);
            return;
        };
        if upto < self.stages[si].acc.next_seq() {
            // The source lags the collector: it cannot cover the
            // damage (callers must advance it batch-by-batch first).
            self.halt(si);
            return;
        }
        self.quarantine[si].resyncs += 1;
        self.stats.resyncs += 1;
        if let Some(cd) = self.stages[si].acc.catchup_delta(si, &dump) {
            let ctx_base = self.stages[si].acc.context_count() as u32;
            match self.stages[si].acc.apply(&cd) {
                Ok(()) => {
                    let q = &mut self.quarantine[si];
                    q.last_progress = self.ingest_epoch;
                    q.stalled = false;
                    self.apply_stitch(&cd, ctx_base);
                }
                Err(_) => {
                    // A self-built catch-up delta failing to apply
                    // means the snapshot is not an extension of our
                    // state — an emitter bug, not stream damage.
                    self.broken = true;
                    self.stats.delta_errors += 1;
                    return;
                }
            }
        }
        self.stages[si].acc.set_next_seq(upto);
        // Parked frames the snapshot subsumed are no longer needed.
        self.quarantine[si].parked.retain(|&s, _| s >= upto);
        self.drain_parked(si);
    }

    /// Halts a stage: no more frames are accepted for it, parked ones
    /// are discarded, and the report will carry its degradation marker.
    fn halt(&mut self, si: usize) {
        let q = &mut self.quarantine[si];
        if q.halted {
            return;
        }
        q.halted = true;
        let parked = q.parked.len() as u64;
        q.parked.clear();
        q.dropped += parked;
        self.stats.dropped_frames += parked;
    }

    /// The incremental stitching work an applied delta unlocks. Must
    /// only be called after `acc.apply(d)` succeeded.
    fn apply_stitch(&mut self, d: &StageDelta, ctx_base: u32) {
        if self.cfg.track_obs {
            let cycles: u64 = d
                .ccts
                .iter()
                .map(|c| {
                    c.grown.iter().map(|&(_, _, dc, _)| dc).sum::<u64>()
                        + c.new_nodes.iter().map(|n| n.cycles).sum::<u64>()
                })
                .sum();
            if let Some(slot) = self.obs_stage_cycles.get_mut(d.stage) {
                *slot += cycles;
            }
            self.obs_xt_wait += d.pairs.iter().map(|p| p.total_wait).sum::<u64>();
        }
        for f in &d.new_frames {
            self.intern_frame(f);
        }
        // Extend the stage's frame map for frames this delta added;
        // every stage frame is interned by now, so the entries are
        // final and folds can index the map directly.
        {
            let st = &mut self.stages[d.stage];
            for i in st.frame_map.len()..st.acc.frames.len() {
                let id = self
                    .frame_ids
                    .get(&st.acc.frames[i])
                    .copied()
                    .unwrap_or(u32::MAX);
                st.frame_map.push(id);
            }
        }
        // CCT increments for contexts whose mass is already folded.
        // Unbound contexts are skipped here: their mass stays in the
        // accumulator and is folded wholesale when the walk settles.
        // Parallel mode queues the same decisions for the end-of-batch
        // group phase instead of folding inline.
        for c in &d.ccts {
            if self.parallel_fold() {
                self.queue_fold(d.stage, c);
            } else if self.stages[d.stage]
                .fold
                .get(c.ctx as usize)
                .is_some_and(Option::is_some)
            {
                self.fold_delta(d.stage, c);
            } else if self.stages[d.stage].bindings.get(c.ctx as usize).copied().flatten().is_some()
            {
                self.fold_full(d.stage, c.ctx);
            }
        }
        // Index new mints; each may unpark pending walks and edges.
        for &(raw, ctx) in &d.new_synopses {
            match self.syn_index.insert(raw, (d.stage, ctx)) {
                Some(prev) if prev != (d.stage, ctx) => {
                    // A duplicate mint with a different owner cannot
                    // happen on a real stream (process ids are packed
                    // into the raw value); batch last-insert-wins
                    // semantics are not reproducible incrementally,
                    // so hand the run to the fallback.
                    self.broken = true;
                }
                _ => {}
            }
            if let Some(starts) = self.pending_walks.remove(&raw) {
                for s in starts {
                    self.try_walk(s);
                }
            }
            if let Some(tos) = self.pending_edges.remove(&raw) {
                let (fs, fc) = self.syn_index[&raw];
                for (ts, tc) in tos {
                    self.edges.push(RequestEdge {
                        from_stage: fs,
                        from_ctx: fc,
                        to_stage: ts,
                        to_ctx: tc,
                    });
                }
            }
        }
        // New contexts: request-edge classification plus origin walk.
        let ctx_total = self.stages[d.stage].acc.context_count() as u32;
        self.stages[d.stage]
            .bindings
            .resize(ctx_total as usize, None);
        for ci in ctx_base..ctx_total {
            let first_remote_last = {
                let c = &self.stages[d.stage].acc.contexts[ci as usize];
                match c.atoms.first() {
                    Some(DumpAtom::Remote(chain)) => chain.last().copied(),
                    _ => None,
                }
            };
            if let Some(last) = first_remote_last {
                match self.syn_index.get(&last) {
                    Some(&(fs, fc)) => self.edges.push(RequestEdge {
                        from_stage: fs,
                        from_ctx: fc,
                        to_stage: d.stage,
                        to_ctx: ci,
                    }),
                    None => self
                        .pending_edges
                        .entry(last)
                        .or_default()
                        .push((d.stage, ci)),
                }
            }
            self.try_walk((d.stage, ci));
        }
        // Crosstalk increments resolve through origin bindings; rows
        // whose origins are still pending park until they settle.
        for p in &d.pairs {
            self.deferred_xt
                .push((d.stage, p.waiter, p.holder, p.count, p.total_wait));
        }
        for w in &d.waiters {
            self.deferred_xt
                .push((d.stage, w.waiter, WAITER_ONLY, w.count, w.total_wait));
        }
    }

    fn intern_frame(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.frame_ids.get(name) {
            return id;
        }
        let id = self.frames.len() as u32;
        self.frames.push(name.to_owned());
        self.frame_ids.insert(name.to_owned(), id);
        id
    }

    /// The incremental origin walk, replicating the batch
    /// `walk_origin` semantics except that an unresolvable chain head
    /// *parks* instead of settling (the batch answer depends on the
    /// complete index, so the walk resumes when the missing synopsis
    /// arrives, or settles batch-style at finalize).
    fn try_walk(&mut self, start: (usize, u32)) {
        if self
            .stages
            .get(start.0)
            .and_then(|s| s.bindings.get(start.1 as usize))
            .copied()
            .flatten()
            .is_some()
        {
            return;
        }
        match self.walk(start, false) {
            Ok(origin) => self.bind(start, origin),
            Err(missing) => self
                .pending_walks
                .entry(missing)
                .or_default()
                .push(start),
        }
    }

    /// Walks the remote chain from `start` through the current index.
    /// `settle` makes an unresolvable head terminate the walk (batch
    /// end-of-run semantics) instead of reporting the missing raw.
    fn walk(&self, start: (usize, u32), settle: bool) -> Result<OriginKey, u64> {
        let mut cur = start;
        for _ in 0..64 {
            let Some(st) = self.stages.get(cur.0) else {
                return Ok(cur);
            };
            let Some(c) = st.acc.contexts.get(cur.1 as usize) else {
                return Ok(cur);
            };
            let Some(DumpAtom::Remote(chain)) = c.atoms.first() else {
                return Ok(cur);
            };
            let Some(&head) = chain.first() else {
                return Ok(cur);
            };
            let Some(&next) = self.syn_index.get(&head) else {
                return if settle { Ok(cur) } else { Err(head) };
            };
            if next == cur {
                return Ok(cur);
            }
            cur = next;
        }
        Ok(cur)
    }

    /// Records a settled origin and folds any CCT mass the context has
    /// already accumulated.
    fn bind(&mut self, start: (usize, u32), origin: OriginKey) {
        self.stages[start.0].bindings[start.1 as usize] = Some(origin);
        if self.stages[start.0].acc.cct_nodes(start.1).is_some() {
            if self.parallel_fold() {
                self.queue_full(start.0, start.1);
            } else {
                self.fold_full(start.0, start.1);
            }
        }
    }

    /// Whether folds defer to the end-of-batch parallel group phase.
    fn parallel_fold(&self) -> bool {
        self.cfg.workers > 1
    }

    /// Parallel-mode twin of the inline fold dispatch in
    /// `apply_stitch`: records the fold decision for this increment.
    fn queue_fold(&mut self, si: usize, c: &CctDelta) {
        if self.fold_queued.contains(&(si, c.ctx)) {
            // A Full op is queued for this context; it reads the
            // accumulator at execution time, increments included.
            return;
        }
        if self.stages[si]
            .fold
            .get(c.ctx as usize)
            .is_some_and(Option::is_some)
        {
            self.fold_ops.push(FoldOp::Delta {
                stage: si,
                delta: c.clone(),
            });
        } else if self.stages[si].bindings.get(c.ctx as usize).copied().flatten().is_some() {
            self.queue_full(si, c.ctx);
        }
    }

    /// Queues a whole-CCT fold once per `(stage, ctx)` per batch.
    fn queue_full(&mut self, si: usize, ctx: u32) {
        if self.fold_queued.insert((si, ctx)) {
            self.fold_ops.push(FoldOp::Full { stage: si, ctx });
        }
    }

    /// The end-of-batch parallel fold phase: plan per-origin groups
    /// (serially — residency and revival bookkeeping happen here, in
    /// queue order, so stats match the serial path), execute them on
    /// the deterministic work-stealing executor, then restore the
    /// groups' state in group order. Runs before the epoch advances,
    /// exactly where the serial path folded, so `last_active` and
    /// eviction timing are unchanged.
    fn execute_folds(&mut self) {
        if self.fold_ops.is_empty() {
            return;
        }
        let ops = std::mem::take(&mut self.fold_ops);
        self.fold_queued.clear();
        let mut groups: Vec<FoldGroup> = Vec::new();
        let mut by_origin: FnvHashMap<OriginKey, usize> = FnvHashMap::default();
        for op in ops {
            let (si, ctx) = match &op {
                FoldOp::Full { stage, ctx } => (*stage, *ctx),
                FoldOp::Delta { stage, delta } => (*stage, delta.ctx),
            };
            let Some(origin) = self.binding_of(si, ctx) else {
                // fold_delta's missing-binding condition (bindings
                // never unbind, so Full ops cannot reach this).
                self.broken = true;
                continue;
            };
            let planned = match op {
                FoldOp::Full { stage, ctx } => match self.stages[stage].acc.cct_nodes(ctx) {
                    Some(n) => PlannedOp::Full {
                        stage,
                        ctx,
                        nodes: n.to_vec(),
                    },
                    // Serial fold_full's early return: no mass, no
                    // residency touch.
                    None => continue,
                },
                FoldOp::Delta { stage, delta } => PlannedOp::Delta { stage, delta },
            };
            let gi = match by_origin.get(&origin) {
                Some(&gi) => gi,
                None => {
                    // First touch this batch: revival / peak_resident /
                    // last_active bookkeeping, identical to the serial
                    // path's first fold for the origin.
                    self.touch_resident(origin);
                    let entry = self.resident.remove(&origin).expect("just touched");
                    by_origin.insert(origin, groups.len());
                    groups.push(FoldGroup {
                        origin,
                        entry,
                        ops: Vec::new(),
                        maps: Vec::new(),
                        broken: false,
                    });
                    groups.len() - 1
                }
            };
            let g = &mut groups[gi];
            if let PlannedOp::Delta { stage, delta } = &planned {
                let key = (*stage, delta.ctx);
                if !g.maps.iter().any(|(k, _)| *k == key) {
                    let map = self.stages[key.0].fold[key.1 as usize]
                        .take()
                        .expect("fold map existed when the delta was queued");
                    g.maps.push((key, map));
                }
            }
            g.ops.push(planned);
        }

        // Stage frame maps, shared read-only across groups.
        let frame_maps: Vec<Vec<u32>> = self
            .stages
            .iter_mut()
            .map(|s| std::mem::take(&mut s.frame_map))
            .collect();
        let n = groups.len();
        let slots: Vec<Mutex<Option<FoldGroup>>> =
            groups.into_iter().map(|g| Mutex::new(Some(g))).collect();
        let outcome = exec::run("collector-fold", self.cfg.workers, self.cfg.steal, n, |gi| {
            let mut g = slots[gi]
                .lock()
                .expect("group slot poisoned")
                .take()
                .expect("each group executes exactly once");
            g.execute(&frame_maps);
            g
        });
        for (s, fm) in self.stages.iter_mut().zip(frame_maps) {
            s.frame_map = fm;
        }
        match outcome {
            Ok((done, stats)) => {
                self.stats.parallel_fold_batches += 1;
                self.stats.fold_groups += done.len() as u64;
                self.stats.fold_steals += stats.steals;
                for g in done {
                    self.broken |= g.broken;
                    self.resident.insert(g.origin, g.entry);
                    for ((si, ctx), map) in g.maps {
                        let st = &mut self.stages[si];
                        if st.fold.len() <= ctx as usize {
                            st.fold.resize_with(ctx as usize + 1, || None);
                        }
                        st.fold[ctx as usize] = Some(map);
                    }
                }
            }
            Err(_) => {
                // A fold worker panicked. The aggregates its group (and
                // any unexecuted groups) owned are gone, so live views
                // degrade — but the accumulators are untouched, the
                // stream is marked broken, and finalize rebuilds the
                // full byte-correct report through the batch fallback.
                // Clean degradation: no deadlock, no partial dump.
                self.broken = true;
                self.stats.fold_panics += 1;
            }
        }
    }

    /// Moves an origin into the resident set (reviving it from the
    /// finalized store if needed) and returns it for folding.
    fn touch_resident(&mut self, origin: OriginKey) -> &mut ResidentOrigin {
        let epoch = self.epoch;
        let prior = self.resident.len() as u64;
        let e = match self.resident.entry(origin) {
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let entry = match self.finalized.remove(&origin) {
                    Some(f) => {
                        self.stats.revivals += 1;
                        self.finalized_rank.remove(&(std::cmp::Reverse(f.cycles), origin));
                        ResidentOrigin {
                            cct: rebuild_cct(&f.nodes),
                            stages: f.stages,
                            tier_cycles: f.tier_cycles,
                            last_active: epoch,
                        }
                    }
                    None => ResidentOrigin::new(epoch),
                };
                self.stats.peak_resident = self.stats.peak_resident.max(prior + 1);
                v.insert(entry)
            }
        };
        e.last_active = epoch;
        e
    }

    /// Folds the *entire* accumulated CCT of `(si, ctx)` into its
    /// origin's aggregate, creating the node map for later
    /// incremental folds. Called once, when the binding settles.
    fn fold_full(&mut self, si: usize, ctx: u32) {
        debug_assert!(self
            .stages[si]
            .fold
            .get(ctx as usize)
            .is_none_or(Option::is_none));
        let origin = self.stages[si].bindings[ctx as usize].expect("bound before fold");
        let nodes: Vec<_> = match self.stages[si].acc.cct_nodes(ctx) {
            Some(n) => n.to_vec(),
            None => return,
        };
        // Borrow the cached stage frame map for the duration of the
        // fold (taken rather than cloned; restored on every exit).
        let frame_of = std::mem::take(&mut self.stages[si].frame_map);
        let mut cycles = 0u64;
        let mut map: Vec<CctNodeId> = Vec::with_capacity(nodes.len());
        {
            let entry = self.touch_resident(origin);
            for (i, n) in nodes.iter().enumerate() {
                let id = if i == 0 {
                    CctNodeId::ROOT
                } else {
                    let (Some(p), Some(f)) = (n.parent, n.frame) else {
                        // Malformed node: the dump will fail validation
                        // at finalize and the fallback takes over.
                        self.broken = true;
                        self.stages[si].frame_map = frame_of;
                        return;
                    };
                    if p as usize >= map.len() {
                        self.broken = true;
                        self.stages[si].frame_map = frame_of;
                        return;
                    }
                    let cf = frame_of.get(f as usize).copied().unwrap_or(u32::MAX);
                    entry.cct.child(map[p as usize], FrameId(cf))
                };
                entry.cct.record_at(
                    id,
                    Metrics {
                        samples: n.samples,
                        cycles: n.cycles,
                        calls: n.calls,
                    },
                );
                cycles += n.cycles;
                map.push(id);
            }
            entry.stages.insert(si);
            *entry.tier_cycles.entry(si).or_insert(0) += cycles;
        }
        let st = &mut self.stages[si];
        st.frame_map = frame_of;
        if st.fold.len() <= ctx as usize {
            st.fold.resize_with(ctx as usize + 1, || None);
        }
        st.fold[ctx as usize] = Some(map);
    }

    /// Folds one CCT increment through the context's existing node
    /// map.
    fn fold_delta(&mut self, si: usize, c: &CctDelta) {
        let origin = match self.stages[si].bindings.get(c.ctx as usize).copied().flatten() {
            Some(o) => o,
            None => {
                self.broken = true;
                return;
            }
        };
        let map_len = self.stages[si].fold[c.ctx as usize]
            .as_ref()
            .expect("caller checked the fold map exists")
            .len();
        if map_len != c.nodes_before as usize {
            // The fold map is synced to the accumulator after every
            // delta, so a mismatch means deltas arrived out of order.
            self.broken = true;
            return;
        }
        let frame_of = std::mem::take(&mut self.stages[si].frame_map);
        let mut map = self.stages[si].fold[c.ctx as usize]
            .take()
            .expect("checked above");
        let mut cycles = 0u64;
        {
            let entry = self.touch_resident(origin);
            for &(i, ds, dc, da) in &c.grown {
                entry.cct.record_at(
                    map[i as usize],
                    Metrics {
                        samples: ds,
                        cycles: dc,
                        calls: da,
                    },
                );
                cycles += dc;
            }
            for n in &c.new_nodes {
                let (Some(p), Some(f)) = (n.parent, n.frame) else {
                    self.broken = true;
                    self.stages[si].frame_map = frame_of;
                    self.stages[si].fold[c.ctx as usize] = Some(map);
                    return;
                };
                if p as usize >= map.len() {
                    self.broken = true;
                    self.stages[si].frame_map = frame_of;
                    self.stages[si].fold[c.ctx as usize] = Some(map);
                    return;
                }
                let cf = frame_of.get(f as usize).copied().unwrap_or(u32::MAX);
                let id = entry.cct.child(map[p as usize], FrameId(cf));
                entry.cct.record_at(
                    id,
                    Metrics {
                        samples: n.samples,
                        cycles: n.cycles,
                        calls: n.calls,
                    },
                );
                cycles += n.cycles;
                map.push(id);
            }
            entry.stages.insert(si);
            *entry.tier_cycles.entry(si).or_insert(0) += cycles;
        }
        self.stages[si].frame_map = frame_of;
        self.stages[si].fold[c.ctx as usize] = Some(map);
    }

    fn binding_of(&self, si: usize, ctx: u32) -> Option<OriginKey> {
        self.stages
            .get(si)
            .and_then(|s| s.bindings.get(ctx as usize))
            .copied()
            .flatten()
    }

    /// Replays deferred crosstalk rows whose origins have settled.
    fn retry_deferred_xt(&mut self) {
        let rows = std::mem::take(&mut self.deferred_xt);
        for row in rows {
            let (si, waiter, holder, count, total_wait) = row;
            let w = self.binding_of(si, waiter);
            let resolved = if holder == WAITER_ONLY {
                w.map(|w| (w, None))
            } else {
                match (w, self.binding_of(si, holder)) {
                    (Some(w), Some(h)) => Some((w, Some(h))),
                    _ => None,
                }
            };
            match resolved {
                Some((w, h)) => self.account_xt(w, h, count, total_wait),
                None => self.deferred_xt.push(row),
            }
        }
    }

    fn account_xt(&mut self, w: OriginKey, h: Option<OriginKey>, count: u64, total_wait: u64) {
        match h {
            Some(h) => {
                let e = self.xt_pairs.entry((w, h)).or_default();
                e.count += count;
                e.total_wait += total_wait;
            }
            None => {
                let e = self.xt_waiters.entry(w).or_default();
                e.count += count;
                e.total_wait += total_wait;
            }
        }
    }

    /// Evicts origins idle for at least the configured window, in
    /// ascending origin order — a pure function of epochs and stream
    /// content, never of arrival timing or hash order.
    fn evict_idle(&mut self) {
        let window = self.cfg.window_epochs.max(1);
        let epoch = self.epoch;
        let mut idle: Vec<OriginKey> = self
            .resident
            .iter()
            .filter(|(_, r)| epoch.saturating_sub(r.last_active) >= window)
            .map(|(&k, _)| k)
            .collect();
        idle.sort_unstable();
        for k in idle {
            let r = self.resident.remove(&k).expect("listed above");
            let samples = r.cct.total().samples;
            let cycles = r.tier_cycles.values().sum();
            self.finalized.insert(
                k,
                FinalizedOrigin {
                    nodes: compact_cct(&r.cct),
                    stages: r.stages,
                    tier_cycles: r.tier_cycles,
                    hot_path: std::cell::OnceCell::new(),
                    samples,
                    cycles,
                },
            );
            self.finalized_rank.insert((std::cmp::Reverse(cycles), k));
            self.stats.evictions += 1;
            self.stats.eviction_log.push((epoch, k));
        }
    }

    fn pending_walk_count(&self) -> u64 {
        self.pending_walks.values().map(|v| v.len() as u64).sum()
    }

    fn pending_edge_count(&self) -> u64 {
        self.pending_edges.values().map(|v| v.len() as u64).sum()
    }

    /// `stage:context` label for an origin, matching the batch
    /// report's `origin_label` rendering. An origin's label is fixed
    /// once its context is interned (the frame and context tables are
    /// append-only), so it is memoized: periodic snapshots re-label
    /// the same hot origins every time, and the context-chain walk is
    /// the expensive part.
    fn origin_label(&self, origin: OriginKey) -> String {
        if let Some(s) = self.label_cache.borrow().get(&origin) {
            return s.clone();
        }
        let s = match (self.header.stages.get(origin.0), self.stages.get(origin.0)) {
            (Some(s), Some(st)) => format!(
                "{}:{}",
                s.stage_name,
                ctx_string_of(&st.acc.frames, &st.acc.contexts, origin.1)
            ),
            _ => format!("<stage {}?>:{}", origin.0, origin.1),
        };
        self.label_cache.borrow_mut().insert(origin, s.clone());
        s
    }

    /// Answers the live queries at the current epoch: top-k
    /// transaction paths by cost, their tier breakdowns, and crosstalk
    /// hotspots, plus memory/pending/lag gauges.
    pub fn snapshot(&self) -> LiveSnapshot {
        let total_cycles = |tc: &BTreeMap<usize, u64>| tc.values().sum::<u64>();
        // Candidates: every resident origin (totals change as deltas
        // land) plus the top-k finalized ones from the maintained rank
        // index — any finalized origin in the union's top-k is
        // necessarily in the finalized top-k, so this selects exactly
        // the same entries as ranking the whole finalized store.
        let mut ranked: Vec<(u64, OriginKey)> = self
            .resident
            .iter()
            .map(|(&k, r)| (total_cycles(&r.tier_cycles), k))
            .chain(
                self.finalized_rank
                    .iter()
                    .take(self.cfg.top_k)
                    .map(|&(std::cmp::Reverse(c), k)| (c, k)),
            )
            .collect();
        // Partial selection: the comparator is a total order (cycles
        // descending, key ascending on ties), so selecting the top-k
        // prefix and sorting only that yields exactly the full sort's
        // first k entries — snapshots run mid-ingest, where a full
        // O(n log n) over every origin is the dominant cost.
        let cmp = |a: &(u64, OriginKey), b: &(u64, OriginKey)| (b.0, a.1).cmp(&(a.0, b.1));
        if ranked.len() > self.cfg.top_k {
            if self.cfg.top_k > 0 {
                ranked.select_nth_unstable_by(self.cfg.top_k - 1, cmp);
            }
            ranked.truncate(self.cfg.top_k);
        }
        ranked.sort_by(cmp);

        let mut top_paths = Vec::new();
        let mut tiers = Vec::new();
        for &(cycles, k) in &ranked {
            let frame_name = |f: u32| {
                self.frames
                    .get(f as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("<frame {f}?>"))
            };
            let (path, samples, stages_cycles): (Vec<String>, u64, _) =
                match self.resident.get(&k) {
                    Some(r) => (
                        r.cct
                            .hot_paths(1)
                            .into_iter()
                            .next()
                            .map(|(frames, _)| frames.iter().map(|f| frame_name(f.0)).collect())
                            .unwrap_or_default(),
                        r.cct.total().samples,
                        &r.tier_cycles,
                    ),
                    None => {
                        let f = &self.finalized[&k];
                        let hot = f.hot_path.get_or_init(|| {
                            rebuild_cct(&f.nodes)
                                .hot_paths(1)
                                .into_iter()
                                .next()
                                .map(|(frames, _)| frames.iter().map(|fr| fr.0).collect())
                                .unwrap_or_default()
                        });
                        (
                            hot.iter().map(|&fr| frame_name(fr)).collect(),
                            f.samples,
                            &f.tier_cycles,
                        )
                    }
                };
            top_paths.push(TopPath {
                origin: self.origin_label(k),
                cycles,
                samples,
                path,
            });
            tiers.push(TierSlice {
                origin: self.origin_label(k),
                stages: stages_cycles
                    .iter()
                    .map(|(&si, &cy)| {
                        let name = self
                            .header
                            .stages
                            .get(si)
                            .map(|s| s.stage_name.clone())
                            .unwrap_or_else(|| format!("<stage {si}?>"));
                        (name, cy)
                    })
                    .collect(),
            });
        }

        let mut hot: Vec<(&(OriginKey, OriginKey), &WaitStats)> = self.xt_pairs.iter().collect();
        // Same partial-selection argument as `ranked` above: the
        // comparator is a total order, so top-k-then-sort equals the
        // full sort's first k entries.
        let hot_cmp = |a: &(&(OriginKey, OriginKey), &WaitStats),
                       b: &(&(OriginKey, OriginKey), &WaitStats)| {
            (b.1.total_wait, a.0).cmp(&(a.1.total_wait, b.0))
        };
        if hot.len() > self.cfg.top_k {
            if self.cfg.top_k > 0 {
                hot.select_nth_unstable_by(self.cfg.top_k - 1, hot_cmp);
            }
            hot.truncate(self.cfg.top_k);
        }
        hot.sort_by(hot_cmp);
        let hotspots = hot
            .into_iter()
            .map(|(&(w, h), s)| Hotspot {
                waiter: self.origin_label(w),
                holder: self.origin_label(h),
                count: s.count,
                total_wait: s.total_wait,
            })
            .collect();

        LiveSnapshot {
            epoch: self.epoch,
            now: self.now,
            resident_origins: self.resident.len() as u64,
            finalized_origins: self.finalized.len() as u64,
            peak_resident: self.stats.peak_resident,
            evictions: self.stats.evictions,
            pending_walks: self.pending_walk_count(),
            pending_edges: self.pending_edge_count(),
            lag: LagStats {
                batches: self.stats.batches,
                events: self.stats.events,
                seq_gaps: self.stats.seq_gaps,
                queued: self.queue.len() as u64,
                peak_queued: self.stats.peak_queued,
                cycle_peak_queued: self.stats.cycle_peak_queued,
                throttled: self.stats.throttled,
            },
            threads: ThreadingStats {
                workers: self.cfg.workers.max(1) as u64,
                parallel_fold_batches: self.stats.parallel_fold_batches,
                fold_groups: self.stats.fold_groups,
                fold_steals: self.stats.fold_steals,
                fold_panics: self.stats.fold_panics,
            },
            degraded: self.degraded_markers(),
            top_paths,
            tiers,
            hotspots,
        }
    }

    /// Final flush: drains the queue, settles every pending walk and
    /// edge with the complete index (batch end-of-run semantics),
    /// and assembles the batch-identical [`PipelineReport`].
    pub fn finalize(mut self) -> CollectorOutput {
        assert!(self.started, "collector not started");
        self.drain();
        self.stats.pending_walks_at_flush = self.pending_walk_count();
        self.stats.pending_edges_at_flush = self.pending_edge_count();

        // Settle pending walks: with the complete index, an
        // unresolvable head now terminates the walk exactly like the
        // batch `walk_origin`. Deterministic (stage, ctx) order.
        for si in 0..self.stages.len() {
            for ci in 0..self.stages[si].bindings.len() as u32 {
                if self.stages[si].bindings[ci as usize].is_none() {
                    let origin = self.walk((si, ci), true).expect("settled walk");
                    self.bind((si, ci), origin);
                }
            }
        }
        // Settling binds queues folds in parallel mode; run them.
        self.execute_folds();
        self.pending_walks.clear();
        // Pending edges whose synopsis never arrived are unresolved.
        let unresolved: Vec<UnresolvedEdge> = self
            .pending_edges
            .drain()
            .flat_map(|(raw, tos)| {
                tos.into_iter().map(move |(ts, tc)| UnresolvedEdge {
                    to_stage: ts,
                    to_ctx: tc,
                    missing: raw,
                })
            })
            .collect();
        // All bindings exist now, so deferred crosstalk settles fully.
        self.retry_deferred_xt();
        if !self.deferred_xt.is_empty() {
            // A crosstalk row naming a context index the stage never
            // interned: batch `origin_of` falls back to the identity
            // key, so do the same.
            let rows = std::mem::take(&mut self.deferred_xt);
            for (si, waiter, holder, count, total_wait) in rows {
                let of = |ctx: u32| self.binding_of(si, ctx).unwrap_or((si, ctx));
                if holder == WAITER_ONLY {
                    self.account_xt(of(waiter), None, count, total_wait);
                } else {
                    self.account_xt(of(waiter), Some(of(holder)), count, total_wait);
                }
            }
        }

        let dumps: Vec<StageDump> = self.stages.iter().map(|s| s.acc.to_dump()).collect();
        let mut stats = std::mem::take(&mut self.stats);
        stats.degraded = self.degraded_markers();
        if self.broken || dumps.iter().any(|d| d.validate().is_err()) {
            stats.used_fallback = true;
            let report = analyze(
                dumps,
                PipelineConfig {
                    workers: 1,
                    shards: self.cfg.shards,
                },
            );
            return CollectorOutput { report, stats };
        }
        let report = self.assemble(dumps, unresolved);
        CollectorOutput { report, stats }
    }

    /// Assembles the final report from incrementally computed state,
    /// replicating every ordering rule of the batch pipeline.
    fn assemble(
        mut self,
        dumps: Vec<StageDump>,
        mut unresolved: Vec<UnresolvedEdge>,
    ) -> PipelineReport {
        let shards = self.cfg.shards.max(1);
        // Global frame table: sorted union, exactly as batch builds it.
        let names: BTreeSet<&str> = dumps
            .iter()
            .flat_map(|d| d.frames.iter().map(|f| f.as_str()))
            .collect();
        let frames: Vec<String> = names.iter().map(|s| (*s).to_owned()).collect();
        let frame_global: HashMap<&str, u32> = frames
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as u32))
            .collect();
        let remap: Vec<Vec<u32>> = dumps
            .iter()
            .map(|d| d.frames.iter().map(|f| frame_global[f.as_str()]).collect())
            .collect();
        let coll_to_global: Vec<u32> = self
            .frames
            .iter()
            .map(|n| frame_global.get(n.as_str()).copied().unwrap_or(u32::MAX))
            .collect();

        // The dictionary and each origin's global context id replay
        // the batch interning order exactly: scan CCTs in (stage, cct)
        // order, intern each origin's value at its first occurrence
        // into the shard that value hashes to.
        let mut shard_tabs: Vec<ContextShard> = (0..shards).map(|_| ContextShard::default()).collect();
        let mut global_ctx: HashMap<OriginKey, ShardedCtxId> = HashMap::new();
        for (si, d) in dumps.iter().enumerate() {
            for c in &d.ccts {
                let origin = self.binding_of(si, c.ctx).unwrap_or((si, c.ctx));
                if global_ctx.contains_key(&origin) {
                    continue;
                }
                let value = global_value(&dumps, &remap, origin);
                let shard = (value.stable_hash() % shards as u64) as usize;
                let local = shard_tabs[shard].intern_local(value);
                global_ctx.insert(origin, ShardedCtxId::new(shard as u32, local));
            }
        }
        let dict = ShardedContextTable::from_parts(shards, shard_tabs.into_iter().enumerate());

        // Profiles: resident ∪ finalized in ascending origin order,
        // CCTs remapped from collector-local to global frame ids.
        let resident = std::mem::take(&mut self.resident);
        let finalized = std::mem::take(&mut self.finalized);
        let mut parts: BTreeMap<OriginKey, (Cct, BTreeSet<usize>)> = BTreeMap::new();
        for (k, r) in resident {
            parts.insert(k, (r.cct, r.stages));
        }
        for (k, f) in finalized {
            parts.insert(k, (rebuild_cct(&f.nodes), f.stages));
        }
        let profiles: Vec<OriginProfile> = parts
            .into_iter()
            .map(|(origin, (cct, stages))| OriginProfile {
                origin,
                global_ctx: global_ctx.get(&origin).copied().unwrap_or_else(|| {
                    // An aggregate with no CCT occurrence cannot exist
                    // (aggregates are only created by folds); keep a
                    // deterministic placeholder rather than panicking.
                    ShardedCtxId::new(0, u32::MAX)
                }),
                stages: stages.into_iter().collect(),
                cct: remap_cct(&cct, &coll_to_global),
            })
            .collect();

        let mut edges = std::mem::take(&mut self.edges);
        edges.sort_by_key(|e| (e.to_stage, e.to_ctx, e.from_stage, e.from_ctx));
        unresolved.sort_by_key(|u| (u.to_stage, u.to_ctx, u.missing));
        // The matrix is keyed output: restore the ascending key order
        // the batch pipeline emits.
        let mut pairs: Vec<(OriginKey, OriginKey, WaitStats)> = self
            .xt_pairs
            .iter()
            .map(|(&(w, h), &s)| (w, h, s))
            .collect();
        pairs.sort_unstable_by_key(|&(w, h, _)| (w, h));
        let mut waiters: Vec<(OriginKey, WaitStats)> =
            self.xt_waiters.iter().map(|(&w, &s)| (w, s)).collect();
        waiters.sort_unstable_by_key(|&(w, _)| w);
        let matrix = CrosstalkMatrix { pairs, waiters };

        let mut dumps_json = String::from("[\n");
        for (i, d) in dumps.iter().enumerate() {
            if i > 0 {
                dumps_json.push_str(",\n");
            }
            dumps_json.push_str(&whodunit_core::dumpjson::dump_to_json(d));
        }
        dumps_json.push_str("\n]\n");

        PipelineReport {
            workers: 1,
            shards,
            stages: dumps,
            frames,
            warnings: Vec::new(),
            edges,
            unresolved,
            profiles,
            matrix,
            dict,
            dumps_json,
            timings: Vec::new(),
        }
    }

}

/// The batch pipeline's `global_value`: an origin's dumped context
/// with stage-local frame indices remapped onto the global table.
fn global_value(dumps: &[StageDump], remap: &[Vec<u32>], origin: OriginKey) -> TransactionContext {
    let Some(d) = dumps.get(origin.0) else {
        return TransactionContext::root();
    };
    let Some(c) = d.contexts.get(origin.1 as usize) else {
        return TransactionContext::root();
    };
    let rm = &remap[origin.0];
    let gf = |f: &u32| FrameId(rm.get(*f as usize).copied().unwrap_or(u32::MAX));
    TransactionContext(
        c.atoms
            .iter()
            .map(|a| match a {
                DumpAtom::Frame(f) => ContextAtom::Frame(gf(f)),
                DumpAtom::Path(p) => ContextAtom::Path(p.iter().map(&gf).collect::<Vec<_>>().into()),
                DumpAtom::Remote(chain) => {
                    ContextAtom::Remote(SynChain(chain.iter().map(|&s| Synopsis(s)).collect()))
                }
            })
            .collect(),
    )
}

/// Rebuilds a CCT with every frame id passed through `map`. Frame
/// mapping is injective (ids alias distinct names), so the frame-keyed
/// tree structure is preserved exactly.
fn remap_cct(cct: &Cct, map: &[u32]) -> Cct {
    let mut out = Cct::new();
    let mut ids: Vec<CctNodeId> = Vec::with_capacity(cct.len());
    for id in cct.node_ids() {
        let nid = match (cct.parent(id), cct.frame(id)) {
            (Some(p), Some(f)) => {
                let gf = map.get(f.0 as usize).copied().unwrap_or(u32::MAX);
                out.child(ids[p.0 as usize], FrameId(gf))
            }
            _ => CctNodeId::ROOT,
        };
        out.record_at(nid, cct.metrics(id));
        ids.push(nid);
    }
    out
}

impl DeltaSink for Collector {
    fn on_start(&mut self, header: &StreamHeader) {
        self.start(header);
    }
    fn on_batch(&mut self, batch: EpochBatch) {
        self.enqueue(batch);
        self.drain();
    }
}
