//! The faultstorm invariants as a test: the `faultstorm` bin keeps the
//! full 120-second storm for manual runs; this suite holds the same
//! assertions on a shorter storm so `cargo test` exercises them on
//! every change.
//!
//! The invariants (see the bin for the long-form rationale):
//! determinism of the whole profile, per-tier profile-mass conservation
//! under faults, partial/corrupt stitching degradation, and crosstalk
//! attribution surviving the storm.

use whodunit_apps::dbserver::Engine;
use whodunit_apps::tpcw::{run_tpcw, TpcwConfig, TpcwFaults, TpcwReport};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::stitch::Stitched;
use whodunit_sim::ChannelFaults;

/// A compressed storm: same fault classes as the bin (drops, delays,
/// slowdown window, mid-run crash), sized so the whole suite runs in
/// seconds even unoptimized.
fn storm_config() -> TpcwConfig {
    TpcwConfig {
        clients: 30,
        engine: Engine::MyIsam,
        duration: 60 * CPU_HZ,
        warmup: 15 * CPU_HZ,
        db_timeout: CPU_HZ / 2,
        faults: Some(TpcwFaults {
            seed: 0xF0057,
            db_chan: ChannelFaults {
                drop_p: 0.05,
                delay_p: 0.10,
                delay_cycles: CPU_HZ / 100,
                ..ChannelFaults::default()
            },
            db_slowdown: Some((20 * CPU_HZ, 30 * CPU_HZ, 3)),
            db_crash_at: Some(50 * CPU_HZ),
            ..TpcwFaults::default()
        }),
        ..TpcwConfig::default()
    }
}

/// Sum of CCT cycles across every profiled context of one tier.
fn profile_mass(r: &TpcwReport, tier: usize) -> u64 {
    let w = r.runtimes[tier]
        .whodunit
        .as_ref()
        .expect("storm runs with Whodunit installed")
        .borrow();
    w.profiled_contexts()
        .iter()
        .map(|&c| w.cct(c).map_or(0, |t| t.total().cycles))
        .sum()
}

#[test]
fn storm_is_deterministic_and_actually_storms() {
    let r1 = run_tpcw(storm_config());
    let r2 = run_tpcw(storm_config());
    assert_eq!(r1.dumps, r2.dumps, "stage dumps must be bit-identical");
    assert_eq!(
        r1.throughput_per_min.to_bits(),
        r2.throughput_per_min.to_bits()
    );
    assert_eq!(r1.compute_truth, r2.compute_truth);
    assert_eq!(r1.client_errors, r2.client_errors);
    assert_eq!(r1.dropped_msgs, r2.dropped_msgs);
    assert_eq!(r1.app_db_retries, r2.app_db_retries);
    // The invariants below are vacuous unless the storm actually bites.
    assert!(r1.dropped_msgs > 0, "plan dropped messages");
    assert!(r1.app_db_timeouts > 0, "tomcat RPC timeouts fired");
    assert!(r1.app_db_retries > 0, "tomcat resent queries");
    assert!(r1.app_sheds > 0, "tomcat shed after the crash");
    assert!(r1.client_errors > 0, "clients saw classified errors");
}

#[test]
fn profile_mass_is_conserved_per_tier_under_the_storm() {
    let r = run_tpcw(storm_config());
    for (tier, name) in ["squid", "tomcat", "mysql"].iter().enumerate() {
        let mass = profile_mass(&r, tier);
        let truth = r.compute_truth[tier];
        assert_eq!(
            mass, truth,
            "{name}: profiled cycles diverge from ground truth"
        );
    }
}

#[test]
fn stitching_degrades_not_panics_under_missing_and_corrupt_dumps() {
    let r = run_tpcw(storm_config());

    let full = Stitched::new(r.dumps.clone());
    assert!(
        !full.request_edges().is_empty(),
        "healthy stitch finds request edges"
    );
    assert!(full.unresolved_edges().is_empty(), "nothing unresolved");

    // Front tier's dump missing: tomcat's remote contexts surface as
    // unresolved edges; mysql→tomcat edges still resolve.
    let partial = Stitched::new(vec![r.dumps[1].clone(), r.dumps[2].clone()]);
    assert!(
        !partial.unresolved_edges().is_empty(),
        "missing sender dump yields unresolved edges"
    );
    assert!(
        !partial.request_edges().is_empty(),
        "surviving stages still stitch"
    );

    // A corrupted dump is quarantined with a warning.
    let mut corrupt = r.dumps.clone();
    if let Some(cct) = corrupt[2].ccts.first_mut() {
        if let Some(node) = cct.nodes.get_mut(1) {
            node.parent = None;
        }
    }
    let quarantined = Stitched::new(corrupt);
    assert!(!quarantined.warnings().is_empty());
    assert!(!quarantined.stage_valid(2), "mysql dump quarantined");
    assert!(
        quarantined.stage_valid(0) && quarantined.stage_valid(1),
        "healthy dumps unaffected"
    );
}

#[test]
fn crosstalk_attribution_survives_the_storm() {
    let r = run_tpcw(storm_config());
    let cross: u64 = r.dumps[2]
        .crosstalk_pairs
        .iter()
        .filter(|p| p.waiter != p.holder)
        .map(|p| p.total_wait)
        .sum();
    assert!(
        cross > 0,
        "cross-context lock waits still attributed at mysql"
    );
}
