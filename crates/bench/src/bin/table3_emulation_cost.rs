//! Table 3: execution cost of Apache's fd-queue critical sections under
//! direct execution, translation + emulation, and cached emulation.

use whodunit_bench::{compare, header};
use whodunit_core::ids::ThreadId;
use whodunit_vm::programs::FdQueue;
use whodunit_vm::{Cpu, CsEmulator, ExecMode, GuestMem, Program, TranslationCache};

fn run(prog: &Program, mem: &mut GuestMem, mode: ExecMode<'_>, args: &[(usize, i64)]) -> u64 {
    let mut cpu = Cpu::new(ThreadId(1));
    for &(r, v) in args {
        cpu.regs[r] = v;
    }
    let emu = CsEmulator::default();
    emu.run(prog, &mut cpu, mem, mode, &mut |_| {}).cycles
}

fn main() {
    header(
        "Table 3",
        "cycles per fd-queue critical section: direct / translate+emulate / cached emulation",
    );
    let q = FdQueue::new(3);
    let mut mem = GuestMem::new(FdQueue::mem_words(16));

    // Direct execution.
    let push_direct = run(&q.push, &mut mem, ExecMode::Direct, &[(1, 10), (2, 20)]);
    let pop_direct = run(&q.pop, &mut mem, ExecMode::Direct, &[]);

    // Translation + emulation (cold cache).
    let mut tc = TranslationCache::new();
    let push_cold = run(
        &q.push,
        &mut mem,
        ExecMode::Emulated { tcache: &mut tc },
        &[(1, 10), (2, 20)],
    );
    let pop_cold = run(
        &q.pop,
        &mut mem,
        ExecMode::Emulated { tcache: &mut tc },
        &[],
    );

    // Cached emulation.
    let push_warm = run(
        &q.push,
        &mut mem,
        ExecMode::Emulated { tcache: &mut tc },
        &[(1, 10), (2, 20)],
    );
    let pop_warm = run(
        &q.pop,
        &mut mem,
        ExecMode::Emulated { tcache: &mut tc },
        &[],
    );

    compare("ap_queue_push direct", 131.64, push_direct as f64, "cycles");
    compare(
        "ap_queue_push translate+emulate",
        62_508.0,
        push_cold as f64,
        "cycles",
    );
    compare(
        "ap_queue_push cached emulation",
        11_606.8,
        push_warm as f64,
        "cycles",
    );
    compare("ap_queue_pop direct", 109.72, pop_direct as f64, "cycles");
    compare(
        "ap_queue_pop translate+emulate",
        40_852.0,
        pop_cold as f64,
        "cycles",
    );
    compare(
        "ap_queue_pop cached emulation",
        12_118.0,
        pop_warm as f64,
        "cycles",
    );

    assert!(push_direct < push_warm && push_warm < push_cold);
    assert!(pop_direct < pop_warm && pop_warm < pop_cold);
    println!("\nOrdering direct < cached emulation < translate+emulate holds.");
}
