//! Figure 7: the stitched transactional profile of an RPC caller and
//! callee with two transaction paths (`foo` and `bar`).
//!
//! Figures 6–7 are the paper's illustration of transaction contexts
//! across message passing: the callee's call-path tree appears once per
//! caller context, connected by request edges. This binary builds the
//! exact scenario, stitches the two stage dumps, and renders the
//! Figure 7 graph (text and DOT).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use whodunit_bench::header;
use whodunit_core::cost::ms_to_cycles;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::{ChanId, ProcId};
use whodunit_core::profiler::{Whodunit, WhodunitConfig};
use whodunit_core::rt::Runtime;
use whodunit_core::stitch::Stitched;
use whodunit_report::render;
use whodunit_sim::{Msg, Op, Sim, SimConfig, ThreadBody, ThreadCx, Wake};

struct Caller {
    svc: ChanId,
    reply: ChanId,
    frames: Vec<FrameId>, // [main, foo, bar, rpc_call, send]
    rounds: u32,
    state: u8,
}

impl ThreadBody for Caller {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match self.state {
            0 => {
                cx.push_frame(self.frames[0]);
                self.state = 1;
                Op::Compute(ms_to_cycles(0.1))
            }
            1 => {
                if self.rounds == 0 {
                    return Op::Exit;
                }
                let via = if self.rounds.is_multiple_of(2) { 1 } else { 2 };
                cx.push_frame(self.frames[via]);
                cx.push_frame(self.frames[3]);
                cx.push_frame(self.frames[4]);
                self.state = 2;
                Op::Send(self.svc, Msg::new(self.reply, 256))
            }
            2 => {
                self.state = 3;
                Op::Recv(self.reply)
            }
            3 => {
                let Wake::Received(_) = wake else {
                    unreachable!()
                };
                cx.pop_frame();
                cx.pop_frame();
                cx.pop_frame();
                self.rounds -= 1;
                self.state = 1;
                Op::Compute(ms_to_cycles(0.3))
            }
            _ => Op::Exit,
        }
    }
}

struct Callee {
    in_chan: ChanId,
    frames: Vec<FrameId>, // [main, svc_run, dispatch, callee_rpc_svc, send]
    queue: VecDeque<ChanId>,
    state: u8,
}

impl ThreadBody for Callee {
    fn resume(&mut self, cx: &mut ThreadCx<'_>, wake: Wake) -> Op {
        match self.state {
            0 => {
                cx.push_frame(self.frames[0]);
                cx.push_frame(self.frames[1]);
                self.state = 1;
                Op::Recv(self.in_chan)
            }
            1 => {
                let Wake::Received(msg) = wake else {
                    unreachable!()
                };
                self.queue.push_back(msg.take::<ChanId>());
                cx.push_frame(self.frames[2]);
                cx.push_frame(self.frames[3]);
                self.state = 2;
                Op::Compute(ms_to_cycles(2.0))
            }
            2 => {
                cx.pop_frame();
                cx.push_frame(self.frames[4]);
                self.state = 3;
                Op::Send(self.queue.pop_front().unwrap(), Msg::new((), 512))
            }
            3 => {
                cx.pop_frame();
                cx.pop_frame();
                self.state = 1;
                Op::Recv(self.in_chan)
            }
            _ => Op::Exit,
        }
    }
}

fn main() {
    header(
        "Figure 7",
        "stitched caller/callee transactional profile (foo and bar paths)",
    );
    let mut sim = Sim::new(SimConfig::default());
    let m = sim.add_machine(2);
    let caller_rt = Rc::new(RefCell::new(Whodunit::new(
        WhodunitConfig::new(ProcId(0), "caller"),
        sim.frames().clone(),
    )));
    let callee_rt = Rc::new(RefCell::new(Whodunit::new(
        WhodunitConfig::new(ProcId(1), "callee"),
        sim.frames().clone(),
    )));
    let pc = sim.add_process("caller", caller_rt.clone());
    let ps = sim.add_process("callee", callee_rt.clone());
    let svc = sim.add_channel(50_000, 2);
    let reply = sim.add_channel(50_000, 2);
    let caller_frames = ["main_caller", "foo", "bar", "rpc_call", "send"]
        .iter()
        .map(|n| sim.frame(n))
        .collect();
    let callee_frames = [
        "main_callee",
        "svc_run",
        "dispatch",
        "callee_rpc_svc",
        "send",
    ]
    .iter()
    .map(|n| sim.frame(n))
    .collect();
    sim.spawn(
        pc,
        m,
        "caller",
        Box::new(Caller {
            svc,
            reply,
            frames: caller_frames,
            rounds: 40,
            state: 0,
        }),
    );
    sim.spawn(
        ps,
        m,
        "callee",
        Box::new(Callee {
            in_chan: svc,
            frames: callee_frames,
            queue: VecDeque::new(),
            state: 0,
        }),
    );
    sim.run_to_idle();

    let dumps = vec![
        caller_rt.borrow().dump().unwrap(),
        callee_rt.borrow().dump().unwrap(),
    ];
    let stitched = Stitched::new(dumps);
    print!("{}", render::render_stitched_text(&stitched));

    // The Figure 7 shape: the callee's call-path tree appears twice,
    // once per caller transaction context.
    let callee_ccts = stitched.stages[1].ccts.len();
    println!("\ncallee CCT instances: {callee_ccts} (Figure 7 shows the tree twice)");
    assert_eq!(callee_ccts, 2, "one CCT per caller path");
    let edges = stitched.request_edges();
    assert!(edges.len() >= 2, "request edges connect both paths");
    println!("DOT output (render with graphviz):\n");
    print!("{}", render::render_stitched_dot(&stitched));
}
