//! parallel: true OS-thread execution of the analysis pipeline under
//! the deterministic merge — worker sweep, steal-schedule stress, and
//! an honest wall-clock account.
//!
//! The `pipeline` bench sweeps worker counts under the canonical
//! schedule and reports the deterministic critical-path model. This
//! bench attacks the *execution* axis the thread refactor added: every
//! worker count in the sweep runs both the canonical schedule and a
//! seeded steal-order perturbation (`StealPlan`), wall times are
//! best-of-N to damp scheduler noise, executor steal counts are
//! surfaced, and the whole sweep is byte-compared against the serial
//! reference — any divergence is a hard failure (DESIGN.md §14).
//!
//! Honesty rules for the emitted `BENCH_parallel.json`:
//!
//! - `host_cores` is `std::thread::available_parallelism()`: on a
//!   single-core host `wall_speedup` hovers near (or below) 1.0 because
//!   the workers time-slice one CPU, and the JSON says so instead of
//!   laundering the model speedup as a measurement.
//! - `wall_speedup` (the gate field) is the best measured speedup
//!   across parallel rows; it is only *required* to clear 1.5x when
//!   `host_cores >= 4`.
//! - `byte_identical` must be true on every row — schedule noise must
//!   never reach the output bytes.
//!
//! Modes:
//!
//! - `parallel [--replicas R] [--clients C] [--duration-s S]
//!   [--workers W1,W2,...] [--repeats N] [--out FILE]` — full sweep.
//! - `parallel --smoke` — small fixed configuration; CI gate.

use std::process::ExitCode;
use std::time::Instant;
use whodunit_bench::matrix::WORKER_SWEEP;
use whodunit_bench::{clamp_replicas, fleet_config, header, run_fleet, write_json_file};
use whodunit_core::exec::StealPlan;
use whodunit_core::pipeline::{analyze_with, PipelineConfig, PipelineReport};
use whodunit_core::stitch::StageDump;

struct Args {
    replicas: usize,
    clients: u32,
    duration_s: u64,
    workers: Vec<usize>,
    repeats: usize,
    out: String,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        replicas: 48,
        clients: 24,
        duration_s: 40,
        workers: WORKER_SWEEP.to_vec(),
        repeats: 3,
        out: "BENCH_parallel.json".to_owned(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--replicas" => {
                a.replicas = val("--replicas")?.parse().map_err(|e| format!("--replicas: {e}"))?
            }
            "--clients" => {
                a.clients = val("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--duration-s" => {
                a.duration_s =
                    val("--duration-s")?.parse().map_err(|e| format!("--duration-s: {e}"))?
            }
            "--workers" => {
                a.workers = val("--workers")?
                    .split(',')
                    .map(|w| w.trim().parse().map_err(|e| format!("--workers: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--repeats" => {
                a.repeats = val("--repeats")?.parse().map_err(|e| format!("--repeats: {e}"))?
            }
            "--out" => a.out = val("--out")?,
            "--smoke" => a.smoke = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if a.smoke {
        a.replicas = 16;
        a.clients = 12;
        a.duration_s = 20;
        a.workers = vec![1, 2, 4];
        a.repeats = 2;
    }
    a.replicas = clamp_replicas(a.replicas);
    a.repeats = a.repeats.max(1);
    if !a.workers.contains(&1) {
        a.workers.insert(0, 1);
    }
    a.workers.sort_unstable();
    a.workers.dedup();
    Ok(a)
}

/// One (workers, schedule) cell of the sweep.
struct Row {
    workers: usize,
    steal_seed: u64,
    wall_ms: f64,
    wall_speedup: f64,
    steals: u64,
    threads: usize,
    fingerprint: u64,
    identical: bool,
}

/// Best-of-`repeats` wall time for one configuration; the report of
/// the last run (all runs are byte-identical by contract — verified by
/// the caller against the serial reference).
fn best_of(
    fleet: &[StageDump],
    workers: usize,
    plan: StealPlan,
    repeats: usize,
) -> (PipelineReport, f64) {
    let mut best = f64::INFINITY;
    let mut rep = None;
    for _ in 0..repeats {
        let t = Instant::now();
        let r = analyze_with(fleet.to_vec(), PipelineConfig::with_workers(workers), plan)
            .expect("no faults injected");
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        rep = Some(r);
    }
    (rep.expect("repeats >= 1"), best)
}

/// The gate summary the sweep rolls up into.
struct Summary {
    host_cores: usize,
    serial_ms: f64,
    wall_speedup: f64,
    byte_identical: bool,
}

fn write_json(path: &str, args: &Args, serial: &PipelineReport, sum: &Summary, rows: &[Row]) {
    let mut j = String::from("{\n");
    j.push_str("  \"bench\": \"parallel\",\n");
    j.push_str(&format!(
        "  \"config\": {{\"replicas\": {}, \"clients\": {}, \"duration_s\": {}, \"stages\": {}, \"shards\": {}, \"repeats\": {}, \"smoke\": {}}},\n",
        args.replicas,
        args.clients,
        args.duration_s,
        serial.stages.len(),
        serial.shards,
        args.repeats,
        args.smoke
    ));
    j.push_str(&format!("  \"host_cores\": {},\n", sum.host_cores));
    j.push_str(&format!("  \"byte_identical\": {},\n", sum.byte_identical));
    j.push_str(&format!("  \"wall_speedup\": {:.4},\n", sum.wall_speedup));
    j.push_str(&format!("  \"serial_wall_ms\": {:.3},\n", sum.serial_ms));
    j.push_str(&format!(
        "  \"serial_fingerprint\": \"{:016x}\",\n",
        serial.fingerprint()
    ));
    j.push_str("  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"workers\": {}, \"steal_seed\": {}, \"threads\": {}, \"wall_ms\": {:.3}, \"wall_speedup\": {:.4}, \"steals\": {}, \"identical_output\": {}, \"fingerprint\": \"{:016x}\"}}{}\n",
            r.workers,
            r.steal_seed,
            r.threads,
            r.wall_ms,
            r.wall_speedup,
            r.steals,
            r.identical,
            r.fingerprint,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    write_json_file(path, &j);
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("parallel: {e}");
            return ExitCode::FAILURE;
        }
    };
    header(
        "parallel",
        "OS-thread execution under the deterministic merge: steal-stressed worker sweep",
    );

    let cfg = fleet_config(args.clients, args.duration_s);
    println!(
        "simulating 3-tier TPC-W: clients={} duration={}s",
        cfg.clients, args.duration_s
    );
    let (_report, fleet) = run_fleet(cfg, args.replicas);
    println!(
        "fleet: {} replicas -> {} stage dumps",
        args.replicas,
        fleet.len()
    );

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (serial, serial_ms) = best_of(&fleet, 1, StealPlan::CANONICAL, args.repeats);
    let serial_fp = serial.fingerprint();
    let serial_text = (serial.stitched_text(), serial.crosstalk_text());
    println!("serial reference: {serial_ms:.1} ms  fingerprint {serial_fp:016x}");

    let mut rows = Vec::new();
    let mut byte_identical = true;
    let mut wall_speedup = 0.0f64;
    for &w in &args.workers {
        if w == 1 {
            continue;
        }
        // Canonical schedule plus one seeded perturbation per worker
        // count: the bytes must not know the difference.
        for plan in [StealPlan::CANONICAL, StealPlan::seeded(0x5eed ^ w as u64)] {
            let (rep, wall_ms) = best_of(&fleet, w, plan, args.repeats);
            let identical = rep.fingerprint() == serial_fp
                && rep.stitched_text() == serial_text.0
                && rep.crosstalk_text() == serial_text.1
                && rep.dumps_json == serial.dumps_json
                && rep.dict == serial.dict;
            byte_identical &= identical;
            let steals: u64 = rep.timings.iter().map(|t| t.steals).sum();
            let row = Row {
                workers: w,
                steal_seed: plan.seed,
                wall_ms,
                wall_speedup: serial_ms / wall_ms,
                steals,
                threads: w.min(fleet.len()),
                fingerprint: rep.fingerprint(),
                identical,
            };
            wall_speedup = wall_speedup.max(row.wall_speedup);
            println!(
                "workers={:2} steal={:>10}  wall {:8.1} ms  speedup {:5.2}x  steals {:6}  identical={}",
                row.workers,
                format!("{:#x}", row.steal_seed),
                row.wall_ms,
                row.wall_speedup,
                row.steals,
                row.identical
            );
            rows.push(row);
        }
    }

    let sum = Summary {
        host_cores,
        serial_ms,
        wall_speedup,
        byte_identical,
    };
    write_json(&args.out, &args, &serial, &sum, &rows);
    println!("wrote {}", args.out);

    if !byte_identical {
        eprintln!("FAIL: a parallel schedule diverged from the serial bytes");
        return ExitCode::FAILURE;
    }
    println!("all worker counts and steal schedules byte-identical to serial");
    if host_cores >= 4 && wall_speedup < 1.5 {
        eprintln!(
            "FAIL: host has {host_cores} cores but best wall speedup is {wall_speedup:.2}x (< 1.5x)"
        );
        return ExitCode::FAILURE;
    }
    if host_cores < 4 {
        println!(
            "wall-speedup gate waived: host_cores={host_cores} (< 4); best observed {wall_speedup:.2}x"
        );
    } else {
        println!("wall-speedup gate passed: {wall_speedup:.2}x on {host_cores} cores");
    }
    ExitCode::SUCCESS
}
