//! Calibration sweep for the TPC-W experiments (not a paper artifact).

use whodunit_apps::dbserver::Engine;
use whodunit_apps::rtconf::RtKind;
use whodunit_apps::tpcw::{run_tpcw, TpcwConfig};
use whodunit_core::cost::CPU_HZ;
use whodunit_workload::Interaction;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let caching = args.iter().any(|a| a == "--caching");
    let clients: Vec<u32> = if args.iter().any(|a| a == "--full") {
        vec![50, 100, 150, 200, 250, 300, 350, 400, 450, 500]
    } else {
        vec![50, 100, 200, 300]
    };
    for n in clients {
        let t0 = std::time::Instant::now();
        let r = run_tpcw(TpcwConfig {
            clients: n,
            caching,
            engine: Engine::MyIsam,
            rt: RtKind::None,
            duration: 260 * CPU_HZ,
            warmup: 80 * CPU_HZ,
            ..TpcwConfig::default()
        });
        let ac = r
            .rt_ms
            .get(&Interaction::AdminConfirm)
            .copied()
            .unwrap_or(0.0);
        let bs = r
            .rt_ms
            .get(&Interaction::BestSellers)
            .copied()
            .unwrap_or(0.0);
        let sr = r
            .rt_ms
            .get(&Interaction::SearchResult)
            .copied()
            .unwrap_or(0.0);
        println!(
            "clients={n:4} tput={:7.1}/min AC={ac:8.1}ms BS={bs:8.1}ms SR={sr:8.1}ms hits={} wall={:.1}s",
            r.throughput_per_min,
            r.cache_hits,
            t0.elapsed().as_secs_f64()
        );
    }
}
