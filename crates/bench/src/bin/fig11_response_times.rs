//! Figure 11: average response time of the AdminConfirm, BestSellers
//! and SearchResult transactions vs concurrent clients, original
//! versus optimized.
//!
//! Two optimizations, as in §8.4:
//! - AdminConfirm: MyISAM table locks → InnoDB row locks (9–72%
//!   response-time reduction in the paper);
//! - BestSellers/SearchResult: 30 s servlet result caching.

use whodunit_apps::dbserver::Engine;
use whodunit_apps::rtconf::RtKind;
use whodunit_apps::tpcw::{run_tpcw, TpcwConfig};
use whodunit_bench::header;
use whodunit_core::cost::CPU_HZ;
use whodunit_report::table;
use whodunit_workload::Interaction;

fn run(clients: u32, engine: Engine, caching: bool) -> std::collections::HashMap<Interaction, f64> {
    run_tpcw(TpcwConfig {
        clients,
        engine,
        caching,
        rt: RtKind::None,
        duration: 320 * CPU_HZ,
        warmup: 80 * CPU_HZ,
        ..TpcwConfig::default()
    })
    .rt_ms
}

fn main() {
    header(
        "Figure 11",
        "Avg response time (ms): AdminConfirm (MyISAM vs InnoDB), BestSellers & SearchResult (no caching vs caching)",
    );
    let clients = [50, 100, 150, 200, 250, 300, 350, 400, 450, 500];
    let mut rows = Vec::new();
    let mut ac_reductions = Vec::new();
    for &n in &clients {
        let orig = run(n, Engine::MyIsam, false);
        let inno = run(n, Engine::InnoDb, false);
        let cache = run(n, Engine::MyIsam, true);
        let g = |m: &std::collections::HashMap<Interaction, f64>, i: Interaction| {
            m.get(&i).copied().unwrap_or(0.0)
        };
        let ac_o = g(&orig, Interaction::AdminConfirm);
        let ac_i = g(&inno, Interaction::AdminConfirm);
        if ac_o > 0.0 && ac_i > 0.0 {
            ac_reductions.push((n, 100.0 * (1.0 - ac_i / ac_o)));
        }
        rows.push(vec![
            n.to_string(),
            table::f(ac_o, 0),
            table::f(ac_i, 0),
            table::f(g(&orig, Interaction::BestSellers), 0),
            table::f(g(&cache, Interaction::BestSellers), 0),
            table::f(g(&orig, Interaction::SearchResult), 0),
            table::f(g(&cache, Interaction::SearchResult), 0),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "Clients",
                "AC orig",
                "AC InnoDB",
                "BS orig",
                "BS cached",
                "SR orig",
                "SR cached",
            ],
            &rows
        )
    );
    println!("Paper at 100 clients: AdminConfirm 640 → 550 ms (−14%); reductions range 9–72%.");
    println!("Measured AdminConfirm reductions (%):");
    for (n, red) in &ac_reductions {
        println!("  {n:>4} clients: {red:5.1}%");
    }
    // Shape checks: caching helps BestSellers/SearchResult at moderate
    // load; InnoDB reduces AdminConfirm response time at saturation.
    let bs_o: f64 = rows[1][3].parse().unwrap();
    let bs_c: f64 = rows[1][4].parse().unwrap();
    assert!(bs_c < bs_o, "caching reduces BestSellers RT at 100 clients");
    let mean_red: f64 =
        ac_reductions.iter().map(|&(_, r)| r).sum::<f64>() / ac_reductions.len().max(1) as f64;
    println!("Mean AdminConfirm reduction: {mean_red:.1}% (paper: 9–72%)");
}
