//! Figure 10: transactional profile of Haboob under the web workload.
//!
//! Two transaction contexts reach WriteStage: the cache-hit path and
//! the miss path via MissStage and the File I/O Stage. The paper
//! reports 37.65% of Haboob's CPU in WriteStage via the hit path and
//! 46.58% via the miss path.

use whodunit_apps::rtconf::RtKind;
use whodunit_apps::sedasrv::{run_haboob, HaboobConfig};
use whodunit_bench::{compare, header};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::Runtime;
use whodunit_report::render;

const HIT: &str = "ListenStage -> HttpServer -> ReadStage -> HttpRecv -> CacheStage -> WriteStage";
const MISS: &str = "ListenStage -> HttpServer -> ReadStage -> HttpRecv -> CacheStage -> MissStage -> FileIoStage -> WriteStage";

fn main() {
    header(
        "Figure 10",
        "transactional profile of Haboob (SEDA stages, hit vs miss paths)",
    );
    let r = run_haboob(HaboobConfig {
        clients: 24,
        duration: 30 * CPU_HZ,
        rt: RtKind::Whodunit,
        ..HaboobConfig::default()
    });
    let w = r
        .runtime
        .whodunit
        .as_ref()
        .expect("whodunit installed")
        .borrow();
    let dump = w.dump().expect("profile dumped");
    let shares = render::context_shares(&dump);
    for s in &shares {
        println!("{:6.2}%  {}", s.pct, s.ctx);
    }
    let share = |ctx: &str| {
        shares
            .iter()
            .find(|s| s.ctx == ctx)
            .map(|s| s.pct)
            .unwrap_or(0.0)
    };
    // The WriteStage exclusive share within each path's context: the
    // context share is dominated by its last stage (WriteStage) since
    // write costs dwarf the pass-through stages.
    let hit = share(HIT);
    let miss = share(MISS);
    println!();
    compare("WriteStage via cache-hit path", 37.65, hit, "%");
    compare("WriteStage via miss path", 46.58, miss, "%");
    println!("request hit rate: {:.1}%", r.hit_rate * 100.0);
    assert!(hit > 5.0 && miss > 5.0, "both paths carry substantial CPU");
    println!("\nWhodunit separates WriteStage's CPU by the path that reached it;");
    println!("a regular profiler reports a single WriteStage number.");
    println!("Throughput while profiled: {:.1} Mb/s", r.throughput_mbps);
}
