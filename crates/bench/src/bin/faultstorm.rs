//! faultstorm: the 3-tier TPC-W assembly under a seeded fault plan —
//! dropped and delayed tomcat→mysql requests, a MySQL machine
//! slowdown window, and a mid-run MySQL crash — validating that the
//! transactional profile stays *sound* when the run itself does not:
//!
//! 1. **Determinism** — two runs with the same seed produce bit-
//!    identical stage dumps, error counts, and ground-truth cycles.
//! 2. **Profile-mass conservation** — per profiled tier, the cycles
//!    recorded across every transaction context's CCT sum exactly to
//!    the simulator's ground-truth compute cycles, faults and all.
//! 3. **Partial stitching** — stitching with the front tier's dump
//!    missing reports unresolved request edges (no panic), and a
//!    corrupted dump is quarantined with a warning while the healthy
//!    stages still stitch.
//! 4. **Crosstalk attribution** — lock crosstalk between distinct
//!    transaction contexts is still recorded at MySQL.

use whodunit_apps::dbserver::Engine;
use whodunit_apps::tpcw::{run_tpcw, TpcwConfig, TpcwFaults, TpcwReport};
use whodunit_bench::header;
use whodunit_core::cost::CPU_HZ;
use whodunit_core::stitch::Stitched;
use whodunit_report::render::render_stitched_text;
use whodunit_sim::ChannelFaults;

fn storm_config() -> TpcwConfig {
    TpcwConfig {
        clients: 40,
        engine: Engine::MyIsam,
        duration: 120 * CPU_HZ,
        warmup: 30 * CPU_HZ,
        db_timeout: CPU_HZ / 2,
        faults: Some(TpcwFaults {
            seed: 0xF0057,
            db_chan: ChannelFaults {
                drop_p: 0.05,
                delay_p: 0.10,
                delay_cycles: CPU_HZ / 100, // 10 ms
                ..ChannelFaults::default()
            },
            db_slowdown: Some((40 * CPU_HZ, 60 * CPU_HZ, 3)),
            db_crash_at: Some(100 * CPU_HZ),
            ..TpcwFaults::default()
        }),
        ..TpcwConfig::default()
    }
}

/// Sum of CCT cycles across every profiled context of one tier.
fn profile_mass(r: &TpcwReport, tier: usize) -> u64 {
    let w = r.runtimes[tier]
        .whodunit
        .as_ref()
        .expect("faultstorm runs with Whodunit installed")
        .borrow();
    w.profiled_contexts()
        .iter()
        .map(|&c| w.cct(c).map_or(0, |t| t.total().cycles))
        .sum()
}

fn main() {
    header(
        "faultstorm",
        "TPC-W under drops, delays, slowdown, and a DB crash",
    );

    let r1 = run_tpcw(storm_config());
    let r2 = run_tpcw(storm_config());

    // 1. Determinism: the whole profile, not just summary scalars.
    assert_eq!(r1.dumps, r2.dumps, "stage dumps must be bit-identical");
    assert_eq!(
        r1.throughput_per_min.to_bits(),
        r2.throughput_per_min.to_bits()
    );
    assert_eq!(r1.compute_truth, r2.compute_truth);
    assert_eq!(r1.client_errors, r2.client_errors);
    assert_eq!(r1.dropped_msgs, r2.dropped_msgs);
    assert_eq!(r1.app_db_retries, r2.app_db_retries);
    println!("determinism          two seeded runs are bit-identical");

    // The storm actually stormed.
    assert!(r1.dropped_msgs > 0, "plan dropped messages");
    assert!(r1.app_db_timeouts > 0, "tomcat RPC timeouts fired");
    assert!(r1.app_db_retries > 0, "tomcat resent queries");
    assert!(r1.app_sheds > 0, "tomcat shed after the crash");
    assert!(r1.client_errors > 0, "clients saw classified errors");
    println!(
        "storm                dropped={} timeouts={} retries={} sheds={} client_errors={}",
        r1.dropped_msgs, r1.app_db_timeouts, r1.app_db_retries, r1.app_sheds, r1.client_errors
    );
    println!(
        "throughput           {:.0} interactions/min despite the storm",
        r1.throughput_per_min
    );

    // 2. Profile-mass conservation per tier.
    for (tier, name) in ["squid", "tomcat", "mysql"].iter().enumerate() {
        let mass = profile_mass(&r1, tier);
        let truth = r1.compute_truth[tier];
        assert_eq!(
            mass, truth,
            "{name}: profiled cycles diverge from ground truth"
        );
        println!("mass conservation    {name:<7} {mass} cycles == simulator truth");
    }

    // 3a. Full stitch first: three healthy dumps, resolvable edges.
    let full = Stitched::new(r1.dumps.clone());
    let full_edges = full.request_edges().len();
    assert!(full_edges > 0, "healthy stitch finds request edges");
    assert!(full.unresolved_edges().is_empty(), "nothing unresolved");

    // 3b. The front tier's host "crashed before dumping": stitch only
    // tomcat + mysql. Tomcat's remote contexts were minted by squid,
    // whose dump is missing — they must surface as unresolved edges,
    // not a panic, and mysql→tomcat edges must still resolve.
    let partial = Stitched::new(vec![r1.dumps[1].clone(), r1.dumps[2].clone()]);
    let unresolved = partial.unresolved_edges();
    assert!(
        !unresolved.is_empty(),
        "missing sender dump yields unresolved edges"
    );
    assert!(
        !partial.request_edges().is_empty(),
        "surviving stages still stitch"
    );
    println!(
        "partial stitch       {} unresolved edges with squid's dump missing ({} resolved)",
        unresolved.len(),
        partial.request_edges().len()
    );
    let rendered = render_stitched_text(&partial);
    assert!(rendered.contains("unresolved"), "report renders degradation");

    // 3c. A corrupted dump is quarantined with a warning; the rest
    // still stitches.
    let mut corrupt = r1.dumps.clone();
    if let Some(cct) = corrupt[2].ccts.first_mut() {
        if let Some(node) = cct.nodes.get_mut(1) {
            node.parent = None; // non-root node without a parent
        }
    }
    let quarantined = Stitched::new(corrupt);
    assert!(
        !quarantined.warnings().is_empty(),
        "corrupt dump produces a warning"
    );
    assert!(!quarantined.stage_valid(2), "mysql dump quarantined");
    assert!(
        quarantined.stage_valid(0) && quarantined.stage_valid(1),
        "healthy dumps unaffected"
    );
    println!(
        "corrupt dump         quarantined with {} warning(s), healthy stages kept",
        quarantined.warnings().len()
    );

    // 4. Crosstalk attribution survives the storm: MySQL still records
    // lock waits between *distinct* transaction contexts.
    let pairs = &r1.dumps[2].crosstalk_pairs;
    let cross: u64 = pairs
        .iter()
        .filter(|p| p.waiter != p.holder)
        .map(|p| p.total_wait)
        .sum();
    assert!(
        cross > 0,
        "cross-context lock waits still attributed at mysql"
    );
    println!(
        "crosstalk            {} pair rows, {} cross-context wait cycles",
        pairs.len(),
        cross
    );

    println!("\nfaultstorm: all invariants held");
}
