//! federation: leaf/regional/global aggregation at fleet scale.
//!
//! Records one 3-tier TPC-W run's epoch delta stream, replicates it
//! into a staggered fleet of disjoint-process-id replicas (the same
//! delta-level remap trick as `collectord`, scaled into the thousands
//! now that synopses carry 64-bit process ids), and carves the fleet
//! across a leaf → regional → root federation. Four scenarios, each a
//! hard gate:
//!
//! - **clean**: every uplink delivers; the root's finalized report
//!   must be byte-identical to batch `analyze` over `replicate_fleet`
//!   of the same dumps, with zero ledger mass loss, bounded resident
//!   peaks at every level, and the summary path compacting (never
//!   inflating) the stream;
//! - **recovery**: a planted leaf crash at a mid-run tick with a later
//!   restart; the leaf must recover from its checkpoint with zero mass
//!   loss and byte-identity intact, and the root-observed recovery
//!   latency (epochs from crash to the recovered leaf reappearing in
//!   root state) is recorded;
//! - **lossy**: every link runs under a seeded drop/dup/delay plan;
//!   retransmission must heal the stream back to byte-identity;
//! - **degraded**: a leaf dies and never returns; the run must
//!   finalize (not abort) with honest partial coverage — the lost
//!   subtree marked degraded, the survivors' mass fully delivered,
//!   and the federation ledger oracle clean.
//!
//! Results go to `BENCH_federation.json`. Modes:
//!
//! - `federation [--replicas R] [--max-replicas CAP] [--clients C]
//!   [--duration-s S] [--stagger E] [--leaves L] [--regions G]
//!   [--out FILE]` — full run. The effective replica cap is
//!   `--max-replicas` when given, else `WHODUNIT_MAX_REPLICAS`, else
//!   the legacy default; the full-mode default asks for 1024 replicas,
//!   so raise the cap to get the fleet-scale headline numbers.
//! - `federation --smoke` — small fixed configuration; CI gate.

use std::process::ExitCode;
use std::time::Instant;
use whodunit_apps::federation::{fan_in_topology, run_federation, FaultLinkPolicy, FedCrash};
use whodunit_apps::tpcw::run_tpcw_streaming;
use whodunit_bench::{clamp_replicas_to, fleet_config, header, replica_cap, write_json_file};
use whodunit_collector::federation::{
    CleanLinks, FedNodeId, FederationConfig, FederationOutput, LinkPolicy,
};
use whodunit_collector::CollectorConfig;
use whodunit_core::cost::CPU_HZ;
use whodunit_core::delta::RecordingSink;
use whodunit_core::oracle::check_federation;
use whodunit_core::pipeline::{analyze, replicate_fleet, PipelineConfig, PipelineReport};
use whodunit_sim::fault::ChannelFaults;
use whodunit_sim::FaultPlan;

struct Args {
    replicas: usize,
    max_replicas: Option<usize>,
    clients: u32,
    duration_s: u64,
    stagger: u64,
    leaves: usize,
    regions: usize,
    out: String,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        replicas: 1024,
        max_replicas: None,
        clients: 12,
        duration_s: 20,
        stagger: 2,
        leaves: 64,
        regions: 8,
        out: "BENCH_federation.json".to_owned(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--replicas" => {
                a.replicas = val("--replicas")?.parse().map_err(|e| format!("--replicas: {e}"))?
            }
            "--max-replicas" => {
                a.max_replicas = Some(
                    val("--max-replicas")?
                        .parse()
                        .map_err(|e| format!("--max-replicas: {e}"))?,
                )
            }
            "--clients" => {
                a.clients = val("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--duration-s" => {
                a.duration_s =
                    val("--duration-s")?.parse().map_err(|e| format!("--duration-s: {e}"))?
            }
            "--stagger" => {
                a.stagger = val("--stagger")?.parse().map_err(|e| format!("--stagger: {e}"))?
            }
            "--leaves" => {
                a.leaves = val("--leaves")?.parse().map_err(|e| format!("--leaves: {e}"))?
            }
            "--regions" => {
                a.regions = val("--regions")?.parse().map_err(|e| format!("--regions: {e}"))?
            }
            "--out" => a.out = val("--out")?,
            "--smoke" => a.smoke = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if a.smoke {
        a.replicas = 24;
        a.clients = 10;
        a.duration_s = 12;
        a.stagger = 2;
        a.leaves = 4;
        a.regions = 2;
    }
    let requested = a.replicas;
    let cap = a.max_replicas.unwrap_or_else(replica_cap);
    a.replicas = clamp_replicas_to(a.replicas, cap);
    if a.replicas < requested {
        println!(
            "replica cap {cap} clamped the fleet {requested} -> {} \
             (pass --max-replicas or set WHODUNIT_MAX_REPLICAS to scale further)",
            a.replicas
        );
    }
    a.stagger = a.stagger.max(1);
    a.regions = a.regions.clamp(1, a.leaves.max(1));
    a.leaves = a.leaves.max(a.regions);
    Ok(a)
}

/// Leaf counts per region: sizes differing by at most one.
fn regions_of(leaves: usize, regions: usize) -> Vec<usize> {
    let base = leaves / regions;
    (0..regions)
        .map(|r| base + usize::from(r < leaves % regions))
        .collect()
}

fn identical(reference: &PipelineReport, got: &PipelineReport) -> bool {
    got.fingerprint() == reference.fingerprint()
        && got.stitched_text() == reference.stitched_text()
        && got.crosstalk_text() == reference.crosstalk_text()
        && got.dumps_json == reference.dumps_json
        && got.dict == reference.dict
}

/// Undelivered mass across the whole ledger: zero means the root
/// accounted for every cycle the leaves ingested.
fn mass_loss(out: &FederationOutput) -> u64 {
    let truth: u64 = out.evidence.subtrees.iter().map(|s| s.truth).sum();
    let delivered: u64 = out.evidence.subtrees.iter().map(|s| s.delivered).sum();
    truth.saturating_sub(delivered)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("federation: {e}");
            return ExitCode::FAILURE;
        }
    };
    header(
        "federation",
        "fault-tolerant collector federation: leaf/regional/global aggregation",
    );

    let cfg = fleet_config(args.clients, args.duration_s);
    println!(
        "recording 3-tier TPC-W delta stream: clients={} duration={}s epoch=1s",
        cfg.clients, args.duration_s
    );
    let mut sink = RecordingSink::default();
    let report = run_tpcw_streaming(cfg, CPU_HZ, &mut sink);
    assert_eq!(report.dumps.len(), 3, "all three tiers must dump");

    let regions = regions_of(args.leaves, args.regions);
    let fed_cfg = FederationConfig {
        // The link-byte before/after comparison is what this bench
        // records into BENCH_federation.json.
        meter_links: true,
        collector: CollectorConfig::default(),
        ..FederationConfig::default()
    };

    let t = Instant::now();
    let reference = analyze(
        replicate_fleet(&report.dumps, args.replicas),
        PipelineConfig {
            workers: 1,
            shards: CollectorConfig::default().shards,
        },
    );
    let batch_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "fleet: {} replicas across {} leaves in {} regions ({} origins, batch reference {:.0} ms)",
        args.replicas,
        regions.iter().sum::<usize>().min(args.replicas),
        regions.len(),
        reference.profiles.len(),
        batch_ms
    );

    let run = |policy: Box<dyn LinkPolicy>, crashes: &[FedCrash]| -> (FederationOutput, f64) {
        let t = Instant::now();
        let out = run_federation(
            &sink.header,
            &sink.batches,
            args.replicas,
            args.stagger,
            CPU_HZ,
            &regions,
            fed_cfg.clone(),
            policy,
            crashes,
        );
        (out, t.elapsed().as_secs_f64() * 1e3)
    };

    let mut ok = true;

    // -- clean: byte-identity, zero loss, bounded residency --
    let (clean, clean_ms) = run(Box::new(CleanLinks), &[]);
    let s = clean.stats.clone();
    let byte_identical_clean = identical(&reference, &clean.output.report);
    let mass_loss_clean = mass_loss(&clean);
    let compaction = s.leaf_events_in as f64 / (s.root_events_applied.max(1)) as f64;
    println!(
        "clean: {:.0} ms  events {} -> {} (compaction x{:.2})  frames {}  identical={}  mass loss {}",
        clean_ms, s.leaf_events_in, s.root_events_applied, compaction, s.frames_sent,
        byte_identical_clean, mass_loss_clean
    );
    println!(
        "peak resident: leaf {}  regional {}  root {}  (stream {} events)",
        s.peak_resident_leaf, s.peak_resident_regional, s.peak_resident_root, s.leaf_events_in
    );
    let link_json = s.leaf_link_json_bytes + s.regional_link_json_bytes;
    let link_wire = s.leaf_link_wire_bytes + s.regional_link_wire_bytes;
    println!(
        "links: leaf {} -> {} B  regional {} -> {} B  (wire {:.1}x smaller than JSON)  decode errors {}",
        s.leaf_link_json_bytes,
        s.leaf_link_wire_bytes,
        s.regional_link_json_bytes,
        s.regional_link_wire_bytes,
        link_json as f64 / link_wire.max(1) as f64,
        s.wire_decode_errors
    );
    ok &= byte_identical_clean
        && mass_loss_clean == 0
        && s.wire_decode_errors == 0
        && link_wire > 0
        && link_wire < link_json
        && clean.coverage_ppm == 1_000_000
        && clean.degraded.is_empty()
        && !clean.output.stats.used_fallback
        && check_federation(&clean.evidence).is_empty()
        && s.peak_resident_leaf < s.leaf_events_in
        && s.peak_resident_regional < s.leaf_events_in
        && s.root_events_applied <= s.leaf_events_in
        && s.spool_stalls == 0;

    // -- recovery: planted leaf crash, restart from checkpoint --
    // The stagger gives each leaf a narrow activity window inside the
    // fleet stream; a crash outside it is vacuous (nothing missed, no
    // frame for the root to observe the restart by), so plant it a
    // third of the way into the victim's own window.
    let victim = 1.min(regions.iter().sum::<usize>() - 1);
    let g = sink.header.stages.len();
    let (_, ranges) = fan_in_topology(args.replicas, g, &regions);
    let (r0, r1) = ranges[victim];
    let window_start = r0 as u64 * args.stagger;
    let window_end = (r1 as u64 - 1) * args.stagger + sink.batches.len() as u64;
    let crash_at = window_start + (window_end - window_start) / 3;
    let crash = FedCrash {
        node: FedNodeId::Leaf(victim),
        at: crash_at,
        recover_at: Some(crash_at + 8),
    };
    let (rec, rec_ms) = run(Box::new(CleanLinks), &[crash]);
    let rec_identical = identical(&reference, &rec.output.report);
    let rec_loss = mass_loss(&rec);
    let latency = rec.recovery.first().and_then(|r| {
        r.recovered_epoch.map(|e| e.saturating_sub(r.crash_epoch))
    });
    println!(
        "recovery: {:.0} ms  crash tick {}  missed {} batches  latency {:?} epochs  identical={}  mass loss {}",
        rec_ms, crash_at, rec.stats.missed_batches, latency, rec_identical, rec_loss
    );
    ok &= rec_identical
        && rec_loss == 0
        && rec.coverage_ppm == 1_000_000
        && rec.stats.recoveries == 1
        && latency.is_some();

    // -- lossy: seeded drop/dup/delay on every link, healed by retry --
    let plan = FaultPlan::new(0xfed).default_channel_faults(ChannelFaults {
        drop_p: 0.08,
        dup_p: 0.04,
        delay_p: 0.08,
        delay_cycles: 3,
    });
    let (lossy, lossy_ms) = run(Box::new(FaultLinkPolicy::new(plan)), &[]);
    let lossy_identical = identical(&reference, &lossy.output.report);
    println!(
        "lossy: {:.0} ms  lost {}+{}  retransmits {}  dups seen {}  identical={}",
        lossy_ms,
        lossy.stats.frames_lost,
        lossy.stats.acks_lost,
        lossy.stats.retransmits,
        lossy.stats.dup_frames,
        lossy_identical
    );
    ok &= lossy_identical
        && mass_loss(&lossy) == 0
        && lossy.stats.frames_lost + lossy.stats.acks_lost > 0
        && lossy.stats.retransmits > 0;

    // -- degraded: unrecoverable leaf, honest partial finalize --
    let mut degraded_cfg = fed_cfg.clone();
    degraded_cfg.deadline_ticks = 256;
    let t = Instant::now();
    let deg = run_federation(
        &sink.header,
        &sink.batches,
        args.replicas,
        args.stagger,
        CPU_HZ,
        &regions,
        degraded_cfg,
        Box::new(CleanLinks),
        &[FedCrash {
            node: crash.node,
            at: crash_at,
            recover_at: None,
        }],
    );
    let deg_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "degraded: {:.0} ms  coverage {}.{:04}%  degraded subtrees {:?}",
        deg_ms,
        deg.coverage_ppm / 10_000,
        deg.coverage_ppm % 10_000,
        deg.degraded
    );
    ok &= deg.coverage_ppm < 1_000_000
        && deg.coverage_ppm > 0
        && !deg.degraded.is_empty()
        && check_federation(&deg.evidence).is_empty()
        && !deg.output.report.profiles.is_empty();

    let mut j = String::from("{\n");
    j.push_str("  \"bench\": \"federation\",\n");
    j.push_str(&format!(
        "  \"config\": {{\"replicas\": {}, \"clients\": {}, \"duration_s\": {}, \"stagger_epochs\": {}, \"smoke\": {}}},\n",
        args.replicas, args.clients, args.duration_s, args.stagger, args.smoke
    ));
    j.push_str(&format!(
        "  \"fan_in\": {{\"leaves\": {}, \"regions\": {}, \"replicas_per_leaf\": {:.1}}},\n",
        regions.iter().sum::<usize>().min(args.replicas),
        regions.len(),
        args.replicas as f64 / regions.iter().sum::<usize>().min(args.replicas) as f64
    ));
    j.push_str(&format!(
        "  \"batch_fingerprint\": \"{:016x}\",\n",
        reference.fingerprint()
    ));
    j.push_str(&format!("  \"byte_identical_clean\": {byte_identical_clean},\n"));
    j.push_str(&format!("  \"mass_loss_clean\": {mass_loss_clean},\n"));
    j.push_str(&format!(
        "  \"clean\": {{\"wall_ms\": {:.1}, \"batch_wall_ms\": {:.1}, \"frames_sent\": {}, \"checkpoints\": {}, \"leaf_events_in\": {}, \"root_events_applied\": {}, \"compaction_ratio\": {:.3}}},\n",
        clean_ms, batch_ms, s.frames_sent, s.checkpoints, s.leaf_events_in,
        s.root_events_applied, compaction
    ));
    j.push_str(&format!(
        "  \"peak_resident\": {{\"per_level\": {{\"leaf\": {}, \"regional\": {}, \"root\": {}}}, \"stream_events\": {}}},\n",
        s.peak_resident_leaf, s.peak_resident_regional, s.peak_resident_root, s.leaf_events_in
    ));
    j.push_str(&format!(
        "  \"recovery\": {{\"latency_epochs\": {}, \"crash_tick\": {}, \"missed_batches\": {}, \"mass_loss\": {}, \"byte_identical\": {}}},\n",
        latency.unwrap_or(u64::MAX),
        crash_at,
        rec.stats.missed_batches,
        rec_loss,
        rec_identical
    ));
    j.push_str(&format!(
        "  \"lossy\": {{\"frames_lost\": {}, \"acks_lost\": {}, \"retransmits\": {}, \"dup_frames\": {}, \"byte_identical\": {}}},\n",
        lossy.stats.frames_lost, lossy.stats.acks_lost, lossy.stats.retransmits,
        lossy.stats.dup_frames, lossy_identical
    ));
    j.push_str(&format!(
        "  \"degraded\": {{\"coverage_ppm\": {}, \"subtrees\": {}}},\n",
        deg.coverage_ppm,
        deg.degraded.len()
    ));
    j.push_str(&format!(
        "  \"wire_links\": {{\"leaf_json_bytes\": {}, \"leaf_wire_bytes\": {}, \"regional_json_bytes\": {}, \"regional_wire_bytes\": {}, \"compression_vs_json\": {:.2}, \"decode_errors\": {}}},\n",
        s.leaf_link_json_bytes,
        s.leaf_link_wire_bytes,
        s.regional_link_json_bytes,
        s.regional_link_wire_bytes,
        link_json as f64 / link_wire.max(1) as f64,
        s.wire_decode_errors
    ));
    j.push_str(&format!("  \"ok\": {ok}\n"));
    j.push_str("}\n");
    write_json_file(&args.out, &j);
    println!("wrote {}", args.out);

    if !ok {
        eprintln!("FAIL: divergence, mass loss, unbounded residency, or a dishonest finalize");
        return ExitCode::FAILURE;
    }
    println!("all four scenarios held: byte-identical, zero-loss, bounded, honest when degraded");
    ExitCode::SUCCESS
}
