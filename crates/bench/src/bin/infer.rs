//! infer: black-box inference quality sweep — per-scenario
//! precision/recall/F1 of `whodunit-infer` against simulator ground
//! truth, across the topology zoo and the TPC-W inference slice,
//! under three visibility configurations.
//!
//! Every scenario runs once with the passive comm-event log enabled,
//! then the same log is stitched three ways:
//!
//! - `blackbox` — every tier opaque: pure timing/nesting inference
//!   over bare send/recv events (`infer_stitch`). The hard case and
//!   the one the clean-matrix F1 gate binds on.
//! - `hybrid` — one backend tier (proc 1) opaque, everything else
//!   cooperating: synopsis attribution where both endpoints cooperate,
//!   inference for the opaque remainder (`hybrid_stitch`).
//! - `full` — every tier cooperating: synopses resolve every recv, no
//!   inference runs. Must reproduce ground truth *exactly*.
//!
//! Each stitch is scored per-scenario (message pairings, request
//! origins, and the full-confidence pairing subset) and every score is
//! pushed through the core inference oracle, which recomputes the
//! rates and rejects inferred mass exceeding ground truth.
//!
//! Gates (any miss exits nonzero):
//!
//! - every clean scenario × every visibility config: pairs *and*
//!   origins F1 ≥ 0.95;
//! - `check_inference` clean on every row, faulty ones included;
//! - `full` rows reproduce the truth maps exactly;
//! - comm-log purity: the batch-analysis fingerprint of a fleet run
//!   with the comm log enabled equals the published fingerprint
//!   `5dabdc5f5ca7e570` (full mode) or a comm-off twin (smoke mode).
//!
//! Modes:
//!
//! - `infer [--slack N] [--out FILE]` — full sweep: 12 TPC-W
//!   scenarios (6 seeds × clean/faulty) + 3 topologies × 4 workload
//!   shapes, 3 visibility configs each.
//! - `infer --smoke` — reduced scenario set on shorter runs; same
//!   gates. Used as a CI gate.

use std::process::ExitCode;
use whodunit_apps::tpcw::run_tpcw;
use whodunit_apps::zoo::{run_zoo, Topology, ZooConfig, ZooFaults};
use whodunit_bench::{
    clamp_replicas, fleet_config, header, json_escape, matrix, run_fleet, write_json_file,
};
use whodunit_core::blackbox::{CommLog, TierVisibility};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::oracle::{check_inference, InferenceScore};
use whodunit_core::pipeline::{analyze, PipelineConfig};
use whodunit_infer::{
    evidence, hybrid_stitch, infer_stitch, score_confident_pairs, score_origins, score_pairs,
    PairingConfig,
};
use whodunit_sim::fault::ChannelFaults;
use whodunit_workload::LoadShape;

/// The published batch fingerprint every fleet-scale bench is gated
/// on; a comm-log-enabled run must still produce exactly this.
const EXPECTED_BATCH_FP: u64 = 0x5dab_dc5f_5ca7_e570;

/// Clean-scenario F1 floor, ppm.
const GATE_F1_PPM: u64 = 950_000;

struct Args {
    slack: u64,
    out: String,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        slack: 0,
        out: "BENCH_infer.json".to_owned(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--slack" => a.slack = val("--slack")?.parse().map_err(|e| format!("--slack: {e}"))?,
            "--out" => a.out = val("--out")?,
            "--smoke" => a.smoke = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(a)
}

/// One simulated run whose comm log the visibility sweep stitches.
struct Scenario {
    label: String,
    clean: bool,
    log: CommLog,
}

/// The zoo storm plan: lossy frontend, lossy/dup/laggy backbone —
/// the same shape as the TPC-W matrix fault plan.
fn zoo_storm(seed: u64) -> ZooFaults {
    ZooFaults {
        seed: seed ^ 0xfa07,
        front_chan: ChannelFaults {
            drop_p: 0.01,
            ..Default::default()
        },
        backbone_chan: ChannelFaults {
            drop_p: 0.02,
            dup_p: 0.01,
            delay_p: 0.05,
            delay_cycles: CPU_HZ / 100,
        },
        ..Default::default()
    }
}

/// Builds the scenario corpus: the TPC-W inference slice plus the
/// topology zoo under its workload shapes.
fn build_scenarios(smoke: bool) -> Vec<Scenario> {
    let mut out = Vec::new();

    for (label, mut cfg) in matrix::inference_slice() {
        // Smoke keeps two seeds per fault arm on shortened runs.
        if smoke {
            if !(label.ends_with("/s1") || label.ends_with("/s2")) {
                continue;
            }
            cfg.clients = 8;
            cfg.duration = 12 * CPU_HZ;
            cfg.warmup = 3 * CPU_HZ;
        }
        let clean = cfg.faults.is_none();
        let report = run_tpcw(cfg);
        let log = report.comm.expect("inference slice records comm logs");
        out.push(Scenario { label, clean, log });
    }

    let shapes: Vec<(&str, LoadShape, Option<ZooFaults>)> = vec![
        ("clean/steady", LoadShape::Steady, None),
        (
            "clean/flash",
            LoadShape::FlashCrowd {
                at: 10 * CPU_HZ,
                len: 8 * CPU_HZ,
                surge_ppm: 300_000,
            },
            None,
        ),
        (
            "clean/diurnal",
            LoadShape::Diurnal {
                period: 12 * CPU_HZ,
                lo_ppm: 400_000,
                hi_ppm: 1_600_000,
            },
            None,
        ),
        ("faulty/storm", LoadShape::Steady, Some(zoo_storm(3))),
    ];
    for t in Topology::ALL {
        for (shape_name, shape, faults) in &shapes {
            // Smoke keeps the two extremes: steady-clean and the storm.
            if smoke && (shape_name.ends_with("flash") || shape_name.ends_with("diurnal")) {
                continue;
            }
            let mut cfg = ZooConfig {
                topology: t,
                seed: 3,
                shape: *shape,
                faults: *faults,
                comm_log: true,
                ..ZooConfig::default()
            };
            if smoke {
                cfg.clients = 8;
                cfg.duration = 12 * CPU_HZ;
                cfg.warmup = 3 * CPU_HZ;
            }
            let report = run_zoo(&cfg);
            let log = report.comm.expect("zoo records comm logs when asked");
            out.push(Scenario {
                label: format!("{}/{shape_name}", t.name()),
                clean: faults.is_none(),
                log,
            });
        }
    }
    out
}

/// One scored (scenario, visibility) cell.
struct Row {
    scenario: String,
    clean: bool,
    vis: &'static str,
    recvs: u64,
    sends: u64,
    pairs: InferenceScore,
    origins: InferenceScore,
    confident: InferenceScore,
    oracle_ok: bool,
    /// `full` rows only: the stitch reproduced both truth maps exactly.
    exact: bool,
}

/// Stitches one scenario under one visibility config and scores it.
fn run_cell(sc: &Scenario, vis: &'static str, pc: &PairingConfig) -> Row {
    let procs = sc.log.events.iter().map(|e| e.proc).max().unwrap_or(0) as usize + 1;
    let stitch = match vis {
        "blackbox" => infer_stitch(&sc.log.events, pc),
        "hybrid" => {
            // One backend tier dark (proc 1: tomcat / svc0 / sub0 /
            // shard0), everything else cooperating.
            let mut v = vec![TierVisibility::Cooperating; procs];
            v[1.min(procs - 1)] = TierVisibility::Opaque;
            hybrid_stitch(&sc.log, &v, pc)
        }
        "full" => hybrid_stitch(&sc.log, &vec![TierVisibility::Cooperating; procs], pc),
        other => unreachable!("unknown visibility config {other}"),
    };
    let ev = evidence(&stitch, &sc.log);
    let exact = vis != "full"
        || (stitch.pair_map() == sc.log.truth_pairs()
            && stitch.origin_map() == sc.log.truth_origins());
    Row {
        scenario: sc.label.clone(),
        clean: sc.clean,
        vis,
        recvs: sc.log.recv_count() as u64,
        sends: sc.log.send_count() as u64,
        pairs: score_pairs(&stitch, &sc.log),
        origins: score_origins(&stitch, &sc.log),
        confident: score_confident_pairs(&stitch, &sc.log),
        oracle_ok: check_inference(&ev).is_empty(),
        exact,
    }
}

/// Analyzes a TPC-W fleet with the comm log on and (in smoke mode)
/// off, returning `(comm_on_fp, expected_fp, identical)`.
fn batch_identity(smoke: bool) -> (u64, u64, bool) {
    let (clients, duration_s, replicas) = if smoke { (12, 20, 16) } else { (24, 40, 48) };
    let mut cfg = fleet_config(clients, duration_s);
    cfg.comm_log = true;
    let (_report, fleet) = run_fleet(cfg, clamp_replicas(replicas));
    let on_fp = analyze(fleet, PipelineConfig::with_workers(1)).fingerprint();
    let expected = if smoke {
        // The published constant pins the full-size fleet; smoke pins
        // the same property against a freshly-run comm-off twin.
        let (_r, fleet_off) = run_fleet(fleet_config(clients, duration_s), clamp_replicas(replicas));
        analyze(fleet_off, PipelineConfig::with_workers(1)).fingerprint()
    } else {
        EXPECTED_BATCH_FP
    };
    (on_fp, expected, on_fp == expected)
}

fn score_json(s: &InferenceScore) -> String {
    format!(
        "{{\"asserted\": {}, \"truth\": {}, \"correct\": {}, \"precision_ppm\": {}, \"recall_ppm\": {}, \"f1_ppm\": {}}}",
        s.asserted,
        s.truth,
        s.correct,
        s.reported_precision_ppm,
        s.reported_recall_ppm,
        s.reported_f1_ppm
    )
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    args: &Args,
    rows: &[Row],
    scenarios: usize,
    clean_min_f1: u64,
    batch: (u64, u64, bool),
    oracle_clean: bool,
    full_exact: bool,
    ok: bool,
) {
    let mut j = String::from("{\n");
    j.push_str("  \"bench\": \"infer\",\n");
    j.push_str(&format!(
        "  \"config\": {{\"scenarios\": {scenarios}, \"vis_configs\": 3, \"delay_slack\": {}, \"smoke\": {}}},\n",
        args.slack, args.smoke
    ));
    j.push_str(&format!(
        "  \"batch\": {{\"fingerprint\": \"{:016x}\", \"expected\": \"{:016x}\", \"identical_output\": {}}},\n",
        batch.0, batch.1, batch.2
    ));
    j.push_str(&format!("  \"gate_f1_ppm\": {GATE_F1_PPM},\n"));
    j.push_str(&format!("  \"clean_min_f1_ppm\": {clean_min_f1},\n"));
    j.push_str(&format!("  \"oracle_clean\": {oracle_clean},\n"));
    j.push_str(&format!("  \"full_exact\": {full_exact},\n"));
    j.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"vis\": \"{}\", \"clean\": {}, \"recvs\": {}, \"sends\": {}, \"pairs\": {}, \"origins\": {}, \"confident\": {}, \"oracle_ok\": {}}}{}\n",
            json_escape(&r.scenario),
            r.vis,
            r.clean,
            r.recvs,
            r.sends,
            score_json(&r.pairs),
            score_json(&r.origins),
            score_json(&r.confident),
            r.oracle_ok,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!("  \"ok\": {ok}\n}}\n"));
    write_json_file(path, &j);
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("infer: {e}");
            return ExitCode::FAILURE;
        }
    };
    header(
        "infer",
        "black-box inference stitching: P/R/F1 vs ground truth across topologies x visibility",
    );

    let pc = PairingConfig {
        delay_slack: args.slack,
    };
    let scenarios = build_scenarios(args.smoke);
    println!(
        "{} scenarios x 3 visibility configs (delay_slack={})",
        scenarios.len(),
        args.slack
    );

    let mut rows = Vec::new();
    for sc in &scenarios {
        for vis in ["blackbox", "hybrid", "full"] {
            let r = run_cell(sc, vis, &pc);
            println!(
                "{:<22} {:<9} recvs {:>6}  pairs F1 {:>7}  origins F1 {:>7}  confident P {:>7} R {:>7}  oracle={}",
                r.scenario,
                r.vis,
                r.recvs,
                r.pairs.reported_f1_ppm,
                r.origins.reported_f1_ppm,
                r.confident.reported_precision_ppm,
                r.confident.reported_recall_ppm,
                if r.oracle_ok { "ok" } else { "VIOLATION" }
            );
            rows.push(r);
        }
    }

    let clean_min_f1 = rows
        .iter()
        .filter(|r| r.clean)
        .map(|r| r.pairs.reported_f1_ppm.min(r.origins.reported_f1_ppm))
        .min()
        .unwrap_or(0);
    let oracle_clean = rows.iter().all(|r| r.oracle_ok);
    let full_exact = rows.iter().all(|r| r.exact);

    println!("checking comm-log purity against the batch fingerprint...");
    let batch = batch_identity(args.smoke);
    println!(
        "batch fingerprint {:016x} (expected {:016x}) identical={}",
        batch.0, batch.1, batch.2
    );

    let ok = clean_min_f1 >= GATE_F1_PPM && oracle_clean && full_exact && batch.2;
    write_json(
        &args.out,
        &args,
        &rows,
        scenarios.len(),
        clean_min_f1,
        batch,
        oracle_clean,
        full_exact,
        ok,
    );
    println!("wrote {}", args.out);
    println!(
        "clean-matrix min F1 {:.3} (gate {:.3})  oracle_clean={oracle_clean}  full_exact={full_exact}",
        clean_min_f1 as f64 / 1e6,
        GATE_F1_PPM as f64 / 1e6
    );

    if !ok {
        if clean_min_f1 < GATE_F1_PPM {
            eprintln!("FAIL: clean-scenario F1 below gate");
        }
        if !oracle_clean {
            eprintln!("FAIL: inference-accounting oracle violation");
        }
        if !full_exact {
            eprintln!("FAIL: full-visibility stitch diverged from ground truth");
        }
        if !batch.2 {
            eprintln!("FAIL: comm log perturbed the batch fingerprint");
        }
        return ExitCode::FAILURE;
    }
    println!("all gates green");
    ExitCode::SUCCESS
}
