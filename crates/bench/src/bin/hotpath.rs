//! hotpath: microbenchmarks of the four hottest data paths, plus the
//! end-to-end streaming-collector ingest rate they add up to.
//!
//! The hot-path overhaul (interned keys, arena CCTs, FNV-indexed flow
//! dictionary, zero-alloc serializer, lane-wise delta checksums) is a
//! pure performance change: every output is locked byte-identical by
//! the differential/golden harness. This bench makes the performance
//! side measurable and gates it:
//!
//! - **flow** — `FlowDetector::on_event` throughput over a synthetic
//!   Figure-1 produce/consume stream (disjoint producer/consumer
//!   thread sets, so flow stays enabled on every lock);
//! - **intern** — `ContextTable::intern` throughput over a realistic
//!   mix of first-seen and repeated context values;
//! - **cct** — CCT fold throughput (`path_node` + `record_at` over a
//!   fixed path population — the shape of the collector's merge);
//! - **serialize** — `dumpjson::to_json` throughput over real fleet
//!   dumps, with every iteration byte-compared;
//! - **ingest** — the collectord scenario end to end: a staggered
//!   48-replica fleet stream through `Collector`, finalized output
//!   byte-compared against batch `analyze`, throughput compared
//!   against the pre-overhaul recorded baseline.
//!
//! Exit is non-zero unless every self-check holds and every ingest
//! sweep entry is byte-identical to the batch reference; the full run
//! additionally requires the ingest rate to beat the recorded baseline
//! by at least 2x (`--smoke` only applies a loose absolute floor, so
//! the CI gate stays robust to slow shared runners).
//!
//! Results go to `BENCH_hotpath.json`. Modes:
//!
//! - `hotpath [--replicas R] [--clients C] [--duration-s S]
//!   [--scale K] [--out FILE]` — full run.
//! - `hotpath --smoke` — small fixed configuration; CI gate.

use std::process::ExitCode;
use std::time::Instant;
use whodunit_apps::tpcw::run_tpcw_streaming;
use whodunit_bench::{clamp_replicas, fleet_config, fleet_stream, header, write_json_file};
use whodunit_collector::{Collector, CollectorConfig};
use whodunit_core::cct::{Cct, Metrics};
use whodunit_core::context::{ContextPolicy, ContextTable, CtxId, TransactionContext};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::delta::RecordingSink;
use whodunit_core::dumpjson;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::{LockId, ThreadId};
use whodunit_core::pipeline::{analyze, replicate_fleet, PipelineConfig, PipelineReport};
use whodunit_core::shm::{FlowDetector, FlowEvent, Loc, MemEvent};

/// `BENCH_collector.json` window=8 `ingest_events_per_s` as recorded
/// before the hot-path overhaul (batch fingerprint 5dabdc5f5ca7e570,
/// 48 replicas). The full run must beat 2x this on the same scenario.
const BASELINE_EVENTS_PER_S: f64 = 2_052_189.0;

/// The struct-path ingest rate recorded after the hot-path overhaul
/// (`BENCH_hotpath.json` ingest sweep, same 48-replica scenario). The
/// wire apply path — columns streamed straight into the accumulators'
/// dense layouts, transport integrity settled once by the envelope
/// digest — must beat 2x this.
const WIRE_BASELINE_EVENTS_PER_S: f64 = 6_200_000.0;

/// Wire frames must be at most this fraction of the legacy JSON edge
/// encoding of the same stream.
const WIRE_MAX_JSON_FRACTION: f64 = 0.2;

struct Args {
    replicas: usize,
    clients: u32,
    duration_s: u64,
    stagger: u64,
    /// Micro-iteration multiplier (1 = the standard full volumes).
    scale: u64,
    out: String,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        replicas: 48,
        clients: 24,
        duration_s: 40,
        stagger: 2,
        scale: 1,
        out: "BENCH_hotpath.json".to_owned(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--replicas" => {
                a.replicas = val("--replicas")?.parse().map_err(|e| format!("--replicas: {e}"))?
            }
            "--clients" => {
                a.clients = val("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--duration-s" => {
                a.duration_s =
                    val("--duration-s")?.parse().map_err(|e| format!("--duration-s: {e}"))?
            }
            "--stagger" => {
                a.stagger = val("--stagger")?.parse().map_err(|e| format!("--stagger: {e}"))?
            }
            "--scale" => a.scale = val("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--out" => a.out = val("--out")?,
            "--smoke" => a.smoke = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if a.smoke {
        a.replicas = 12;
        a.clients = 12;
        a.duration_s = 12;
        a.stagger = 2;
        a.scale = 0; // Sentinel: 1/10th micro volumes.
    }
    a.replicas = clamp_replicas(a.replicas);
    a.stagger = a.stagger.max(1);
    Ok(a)
}

/// One microbench result row.
struct Micro {
    ops: u64,
    ms: f64,
    per_s: f64,
    ok: bool,
}

fn time<F: FnMut() -> (u64, bool)>(mut f: F) -> Micro {
    let t = Instant::now();
    let (ops, ok) = f();
    let ms = t.elapsed().as_secs_f64() * 1e3;
    Micro {
        ops,
        ms,
        per_s: ops as f64 / (ms / 1e3).max(1e-9),
        ok,
    }
}

/// Figure-1 produce/consume rounds: producers 0..T/2 store into lock-
/// sharded slots under a critical section, consumers T/2..T load and
/// use them. Producer and consumer sets stay disjoint per lock, so
/// flow must remain enabled and every round must yield exactly one
/// `Produced` and one `Consumed` inference.
fn bench_flow(rounds: u64) -> Micro {
    const THREADS: u32 = 8;
    const LOCKS: u32 = 4;
    const SLOTS: u64 = 64;
    let mut d = FlowDetector::default();
    let mut out: Vec<FlowEvent> = Vec::with_capacity(4);
    time(|| {
        let (mut produced, mut consumed) = (0u64, 0u64);
        let mut events = 0u64;
        for i in 0..rounds {
            let lock = LockId(1 + (i % u64::from(LOCKS)) as u32);
            let slot = Loc::Mem(1000 + (i % SLOTS) + u64::from(lock.0) * SLOTS);
            let p = ThreadId((i % u64::from(THREADS / 2)) as u32);
            let c = ThreadId((THREADS / 2) + (i % u64::from(THREADS / 2)) as u32);
            let ctx = CtxId(1 + (i % 512) as u32);
            let arg = Loc::Mem(i % 16);
            let dst = Loc::Mem(500 + (i % 32));

            out.clear();
            d.on_event(p, ctx, &MemEvent::CsEnter { lock }, &mut out);
            d.on_event(p, ctx, &MemEvent::Mov { src: arg, dst: Loc::Reg(p, 0) }, &mut out);
            d.on_event(p, ctx, &MemEvent::Mov { src: Loc::Reg(p, 0), dst: slot }, &mut out);
            d.on_event(p, ctx, &MemEvent::Modify { dst: Loc::Mem(100) }, &mut out);
            d.on_event(p, ctx, &MemEvent::CsExit, &mut out);
            produced += out
                .iter()
                .filter(|e| matches!(e, FlowEvent::Produced { .. }))
                .count() as u64;

            out.clear();
            let cctx = CtxId(600 + (i % 64) as u32);
            d.on_event(c, cctx, &MemEvent::CsEnter { lock }, &mut out);
            d.on_event(c, cctx, &MemEvent::Mov { src: slot, dst: Loc::Reg(c, 1) }, &mut out);
            d.on_event(c, cctx, &MemEvent::Mov { src: Loc::Reg(c, 1), dst }, &mut out);
            d.on_event(c, cctx, &MemEvent::CsExit, &mut out);
            d.on_event(c, cctx, &MemEvent::Use { loc: dst }, &mut out);
            consumed += out
                .iter()
                .filter(|e| matches!(e, FlowEvent::Consumed { .. }))
                .count() as u64;
            events += 10;
        }
        let flows_ok = (1..=LOCKS).all(|l| d.flow_enabled(LockId(l)));
        (events, flows_ok && produced == rounds && consumed == rounds)
    })
}

/// Interns a population of `distinct` chain-shaped context values,
/// cycling so most interns are repeat hits (the profiler's steady
/// state), and checks the table holds exactly the population.
fn bench_intern(total: u64) -> Micro {
    const DISTINCT: u64 = 2048;
    let policy = ContextPolicy::full_history();
    let values: Vec<TransactionContext> = (0..DISTINCT)
        .map(|i| {
            let mut v = TransactionContext::root();
            let depth = 1 + (i % 8);
            for d in 0..depth {
                // A skewed frame alphabet: hot entry frames shared
                // across values, deeper frames increasingly distinct.
                let f = (i * 31 + d * 7) % (8 + i / 4 + d * 13);
                v = v.append_frame(FrameId(f as u32), policy);
            }
            v
        })
        .collect();
    let mut t = ContextTable::new(policy);
    time(|| {
        for i in 0..total {
            let v = &values[(i % DISTINCT) as usize];
            let id = t.intern(v.clone());
            std::hint::black_box(id);
        }
        // Root is pre-interned; values may collide after policy
        // truncation, so distinct-count is an upper bound.
        (total, t.len() as u64 >= 2 && t.len() as u64 <= DISTINCT + 1)
    })
}

/// Folds a fixed path population into one CCT, the access pattern of
/// the collector's incremental merge: resolve the path's node, then
/// record metrics at it.
fn bench_cct(total: u64) -> Micro {
    const PATHS: usize = 512;
    let paths: Vec<Vec<FrameId>> = (0..PATHS)
        .map(|i| {
            let depth = 2 + i % 11;
            (0..depth)
                .map(|d| FrameId(((i * 17 + d * d * 5) % 64) as u32))
                .collect()
        })
        .collect();
    let mut cct = Cct::new();
    let nodes: Vec<_> = paths.iter().map(|p| cct.path_node(p)).collect();
    time(|| {
        for i in 0..total {
            let n = nodes[(i as usize) % PATHS];
            cct.record_at(
                n,
                Metrics {
                    samples: 1,
                    cycles: 100 + i % 900,
                    calls: 1,
                },
            );
        }
        (total, cct.total().samples == total)
    })
}

/// Serializes real fleet dumps repeatedly; every iteration must be
/// byte-identical to the first.
fn bench_serialize(
    dumps: &[whodunit_core::stitch::StageDump],
    iters: u64,
) -> (Micro, u64, f64) {
    let first = dumpjson::to_json(dumps);
    let bytes = first.len() as u64;
    let m = time(|| {
        let mut same = true;
        for _ in 0..iters {
            let j = dumpjson::to_json(dumps);
            same &= j == first;
            std::hint::black_box(&j);
        }
        (iters, same)
    });
    let mb_per_s = (bytes * iters) as f64 / 1e6 / (m.ms / 1e3).max(1e-9);
    (m, bytes, mb_per_s)
}

struct IngestRow {
    window: u64,
    ingest_ms: f64,
    events_per_s: f64,
    identical: bool,
    fingerprint: u64,
}

fn identical(reference: &PipelineReport, got: &PipelineReport) -> bool {
    got.fingerprint() == reference.fingerprint()
        && got.stitched_text() == reference.stitched_text()
        && got.crosstalk_text() == reference.crosstalk_text()
        && got.dumps_json == reference.dumps_json
        && got.dict == reference.dict
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hotpath: {e}");
            return ExitCode::FAILURE;
        }
    };
    header(
        "hotpath",
        "hot-path microbenchmarks + end-to-end streaming ingest gate",
    );

    // Micro volumes: full standard is scale=1; --smoke runs 1/10th.
    let unit = if args.scale == 0 { 100_000 } else { 1_000_000 * args.scale };
    let flow = bench_flow(unit / 5);
    println!(
        "flow       {:>9} events {:8.1} ms ({:9.0} ev/s)      ok={}",
        flow.ops, flow.ms, flow.per_s, flow.ok
    );
    let intern = bench_intern(unit);
    println!(
        "intern     {:>9} interns {:7.1} ms ({:9.0} interns/s) ok={}",
        intern.ops, intern.ms, intern.per_s, intern.ok
    );
    let cct = bench_cct(unit * 2);
    println!(
        "cct        {:>9} folds  {:8.1} ms ({:9.0} folds/s)    ok={}",
        cct.ops, cct.ms, cct.per_s, cct.ok
    );

    // Real dumps for the serializer and the ingest scenario.
    let cfg = fleet_config(args.clients, args.duration_s);
    let mut sink = RecordingSink::default();
    let report = run_tpcw_streaming(cfg, CPU_HZ, &mut sink);
    assert_eq!(report.dumps.len(), 3, "all three tiers must dump");
    let fleet_dumps = replicate_fleet(&report.dumps, args.replicas);

    let ser_iters = if args.scale == 0 { 5 } else { 40 * args.scale };
    let (ser, ser_bytes, ser_mb_s) = bench_serialize(&fleet_dumps, ser_iters);
    println!(
        "serialize  {:>9} bytes x{:<3} {:6.1} ms ({:9.1} MB/s)   identical={}",
        ser_bytes, ser.ops, ser.ms, ser_mb_s, ser.ok
    );

    // End-to-end ingest: the collectord scenario, byte-compared
    // against batch analyze. Best-of-3 per window so a noisy shared
    // host cannot fail the throughput gate on one bad run.
    let reference = analyze(
        fleet_dumps,
        PipelineConfig {
            workers: 1,
            shards: CollectorConfig::default().shards,
        },
    );
    let (fleet_hdr, stream) = fleet_stream(&sink.header, &sink.batches, args.replicas, args.stagger);
    let stream_events: u64 = stream.iter().map(|b| b.events()).sum();
    println!(
        "ingest stream: {} stages, {} epochs, {} events",
        fleet_hdr.stages.len(),
        stream.len(),
        stream_events
    );

    let windows: &[u64] = if args.smoke { &[4] } else { &[1, 8] };
    const REPS: usize = 3;
    let mut rows = Vec::new();
    for &window in windows {
        let mut best_ms = f64::INFINITY;
        let mut all_identical = true;
        let mut fingerprint = 0u64;
        for _ in 0..REPS {
            let mut c = Collector::with_header(
                &fleet_hdr,
                CollectorConfig {
                    window_epochs: window,
                    ..CollectorConfig::default()
                },
            );
            let t = Instant::now();
            for b in &stream {
                assert!(c.enqueue(b.clone()), "unbounded queue refused a batch");
                c.drain();
            }
            let ms = t.elapsed().as_secs_f64() * 1e3;
            best_ms = best_ms.min(ms);
            let out = c.finalize();
            all_identical &= identical(&reference, &out.report) && !out.stats.used_fallback;
            fingerprint = out.report.fingerprint();
        }
        let row = IngestRow {
            window,
            ingest_ms: best_ms,
            events_per_s: stream_events as f64 / (best_ms / 1e3).max(1e-9),
            identical: all_identical,
            fingerprint,
        };
        println!(
            "ingest     window={:2}  best {:8.1} ms ({:9.0} ev/s)  identical={}",
            row.window, row.ingest_ms, row.events_per_s, row.identical
        );
        rows.push(row);
    }

    // Wire codec (DESIGN.md §16): encode and decode rates over the
    // same fleet stream, the direct-to-accumulator apply rate, frame
    // size against the legacy JSON edge encoding, and one full
    // collector run ingesting through `enqueue_wire` — all
    // byte-checked.
    let frames: Vec<Vec<u8>> = stream.iter().map(whodunit_core::encode_batch).collect();
    let wire_frame_bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();

    let mut encode_best_ms = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        for b in &stream {
            std::hint::black_box(whodunit_core::encode_batch(b));
        }
        encode_best_ms = encode_best_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let encode_events_per_s = stream_events as f64 / (encode_best_ms / 1e3).max(1e-9);

    let mut decode_best_ms = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        for f in &frames {
            std::hint::black_box(whodunit_core::decode_batch(f).expect("own frame decodes"));
        }
        decode_best_ms = decode_best_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let decode_events_per_s = stream_events as f64 / (decode_best_ms / 1e3).max(1e-9);
    let decode_exact = frames
        .iter()
        .zip(&stream)
        .all(|(f, b)| matches!(whodunit_core::decode_batch(f), Ok((back, n)) if back == *b && n == f.len()));
    println!(
        "wire enc   {:>9} bytes  {:8.1} ms ({:9.0} ev/s)",
        wire_frame_bytes, encode_best_ms, encode_events_per_s
    );
    println!(
        "wire dec   {:>9} bytes  {:8.1} ms ({:9.0} ev/s)  exact={}",
        wire_frame_bytes, decode_best_ms, decode_events_per_s, decode_exact
    );

    // Struct-path reference accumulators for the apply self-check.
    use whodunit_core::delta::StageAccumulator;
    let mut struct_accs: Vec<StageAccumulator> =
        fleet_hdr.stages.iter().map(StageAccumulator::new).collect();
    for b in &stream {
        for d in &b.deltas {
            struct_accs[d.stage].apply(d).expect("clean stream applies");
        }
    }
    let struct_dumps: Vec<_> = struct_accs.iter().map(|a| a.to_dump()).collect();

    let mut apply_best_ms = f64::INFINITY;
    let mut apply_identical = true;
    for _ in 0..REPS {
        let mut accs: Vec<StageAccumulator> =
            fleet_hdr.stages.iter().map(StageAccumulator::new).collect();
        let mut applied_events = 0u64;
        let t = Instant::now();
        for f in &frames {
            let info = whodunit_core::apply_batch(&mut accs, f).expect("clean frame applies");
            applied_events += info.events;
        }
        apply_best_ms = apply_best_ms.min(t.elapsed().as_secs_f64() * 1e3);
        apply_identical &= applied_events == stream_events
            && accs
                .iter()
                .zip(&struct_dumps)
                .all(|(a, d)| a.to_dump() == *d);
    }
    let wire_ingest_events_per_s = stream_events as f64 / (apply_best_ms / 1e3).max(1e-9);
    let wire_speedup = wire_ingest_events_per_s / WIRE_BASELINE_EVENTS_PER_S;
    println!(
        "wire apply {:>9} events {:8.1} ms ({:9.0} ev/s)  identical={}  ({:.2}x the {:.1}M ev/s struct baseline)",
        stream_events,
        apply_best_ms,
        wire_ingest_events_per_s,
        apply_identical,
        wire_speedup,
        WIRE_BASELINE_EVENTS_PER_S / 1e6
    );

    // Frame size against the legacy JSON edge encoding of the stream.
    let json_edge_bytes: u64 = stream
        .iter()
        .map(|b| whodunit_core::batch_to_json(b).len() as u64)
        .sum();
    let bytes_per_event = wire_frame_bytes as f64 / (stream_events as f64).max(1.0);
    let json_bytes_per_event = json_edge_bytes as f64 / (stream_events as f64).max(1.0);
    let compression_vs_json = json_edge_bytes as f64 / (wire_frame_bytes as f64).max(1.0);
    let size_ok =
        wire_frame_bytes as f64 <= WIRE_MAX_JSON_FRACTION * json_edge_bytes as f64;
    println!(
        "wire size  {:.2} B/event vs {:.2} B/event JSON ({:.1}x smaller, gate <= {:.1}x: {})",
        bytes_per_event,
        json_bytes_per_event,
        compression_vs_json,
        WIRE_MAX_JSON_FRACTION,
        size_ok
    );

    // Full collector ingest through the wire: header frame, every
    // batch frame, finalized report byte-compared.
    let mut wc = Collector::new(CollectorConfig::default());
    wc.start_wire(&whodunit_core::wire::encode_header(&fleet_hdr))
        .expect("header frame decodes");
    let t = Instant::now();
    for f in &frames {
        assert!(
            wc.enqueue_wire(f).expect("clean wire frame decodes"),
            "unbounded queue refused a frame"
        );
        wc.drain();
    }
    let wire_collector_ms = t.elapsed().as_secs_f64() * 1e3;
    let wout = wc.finalize();
    let wire_collector_identical =
        identical(&reference, &wout.report) && !wout.stats.used_fallback && wout.stats.wire_errors == 0;
    println!(
        "wire e2e   {:>9} events {:8.1} ms ({:9.0} ev/s)  identical={}",
        stream_events,
        wire_collector_ms,
        stream_events as f64 / (wire_collector_ms / 1e3).max(1e-9),
        wire_collector_identical
    );

    // Hard gates (smoke included): the apply path is a pure in-memory
    // pass, so unlike the end-to-end collector gate it holds its 2x
    // margin even on slow shared runners; the size gate is exact.
    let wire_throughput_ok = wire_speedup >= 2.0;
    let wire_ok =
        decode_exact && apply_identical && wire_collector_identical && size_ok && wire_throughput_ok;

    let gate_row = rows.last().expect("at least one window");
    let speedup = gate_row.events_per_s / BASELINE_EVENTS_PER_S;
    let throughput_ok = if args.smoke {
        // Loose floor: an order of magnitude under the recorded
        // baseline still passes on a slow shared runner.
        gate_row.events_per_s > BASELINE_EVENTS_PER_S / 10.0
    } else {
        speedup >= 2.0
    };
    println!(
        "ingest speedup vs recorded baseline ({:.0} ev/s): {:.2}x  (gate: {})",
        BASELINE_EVENTS_PER_S,
        speedup,
        if args.smoke { ">=0.1x (smoke)" } else { ">=2x" }
    );

    let micros_ok = flow.ok && intern.ok && cct.ok && ser.ok;
    let ingest_ok = rows.iter().all(|r| r.identical);
    let ok = micros_ok && ingest_ok && throughput_ok && wire_ok;

    let mut j = String::from("{\n");
    j.push_str("  \"bench\": \"hotpath\",\n");
    j.push_str(&format!(
        "  \"config\": {{\"replicas\": {}, \"clients\": {}, \"duration_s\": {}, \"stagger_epochs\": {}, \"scale\": {}, \"smoke\": {}}},\n",
        args.replicas, args.clients, args.duration_s, args.stagger, args.scale, args.smoke
    ));
    j.push_str(&format!(
        "  \"flow\": {{\"events\": {}, \"ms\": {:.3}, \"events_per_s\": {:.0}, \"ok\": {}}},\n",
        flow.ops, flow.ms, flow.per_s, flow.ok
    ));
    j.push_str(&format!(
        "  \"intern\": {{\"interns\": {}, \"ms\": {:.3}, \"interns_per_s\": {:.0}, \"ok\": {}}},\n",
        intern.ops, intern.ms, intern.per_s, intern.ok
    ));
    j.push_str(&format!(
        "  \"cct\": {{\"folds\": {}, \"ms\": {:.3}, \"folds_per_s\": {:.0}, \"ok\": {}}},\n",
        cct.ops, cct.ms, cct.per_s, cct.ok
    ));
    j.push_str(&format!(
        "  \"serialize\": {{\"bytes\": {}, \"iters\": {}, \"ms\": {:.3}, \"mb_per_s\": {:.1}, \"identical_output\": {}}},\n",
        ser_bytes, ser.ops, ser.ms, ser_mb_s, ser.ok
    ));
    j.push_str(&format!(
        "  \"batch_fingerprint\": \"{:016x}\",\n",
        reference.fingerprint()
    ));
    j.push_str("  \"ingest\": {\n");
    j.push_str(&format!(
        "    \"stream\": {{\"stages\": {}, \"epochs\": {}, \"events\": {}}},\n",
        fleet_hdr.stages.len(),
        stream.len(),
        stream_events
    ));
    j.push_str(&format!(
        "    \"baseline_events_per_s\": {:.0},\n",
        BASELINE_EVENTS_PER_S
    ));
    j.push_str("    \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "      {{\"window_epochs\": {}, \"ingest_ms\": {:.3}, \"ingest_events_per_s\": {:.0}, \"identical_output\": {}, \"fingerprint\": \"{:016x}\"}}{}\n",
            r.window,
            r.ingest_ms,
            r.events_per_s,
            r.identical,
            r.fingerprint,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("    ],\n");
    j.push_str(&format!(
        "    \"speedup_vs_baseline\": {:.2}\n",
        speedup
    ));
    j.push_str("  },\n");
    j.push_str("  \"wire\": {\n");
    j.push_str(&format!(
        "    \"frame_bytes\": {}, \"json_edge_bytes\": {},\n",
        wire_frame_bytes, json_edge_bytes
    ));
    j.push_str(&format!(
        "    \"bytes_per_event\": {:.3}, \"json_bytes_per_event\": {:.3}, \"compression_vs_json\": {:.2},\n",
        bytes_per_event, json_bytes_per_event, compression_vs_json
    ));
    j.push_str(&format!(
        "    \"encode_events_per_s\": {:.0}, \"decode_events_per_s\": {:.0}, \"ingest_events_per_s\": {:.0},\n",
        encode_events_per_s, decode_events_per_s, wire_ingest_events_per_s
    ));
    j.push_str(&format!(
        "    \"baseline_events_per_s\": {:.0}, \"speedup_vs_baseline\": {:.2},\n",
        WIRE_BASELINE_EVENTS_PER_S, wire_speedup
    ));
    j.push_str(&format!(
        "    \"decode_exact\": {decode_exact}, \"apply_identical\": {apply_identical}, \"collector_identical\": {wire_collector_identical}, \"size_ok\": {size_ok}, \"ok\": {wire_ok}\n",
    ));
    j.push_str("  },\n");
    j.push_str(&format!("  \"ok\": {}\n", ok));
    j.push_str("}\n");
    write_json_file(&args.out, &j);
    println!("wrote {}", args.out);

    if !ok {
        eprintln!(
            "FAIL: micro self-check ({micros_ok}), ingest identity ({ingest_ok}), throughput gate ({throughput_ok}), or wire gate ({wire_ok})"
        );
        return ExitCode::FAILURE;
    }
    println!("all paths self-checked; ingest byte-identical and over the throughput gate");
    ExitCode::SUCCESS
}
