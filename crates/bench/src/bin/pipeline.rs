//! pipeline: worker-count sweep of the parallel sharded analysis
//! pipeline over a fleet-sized 3-tier TPC-W workload.
//!
//! Runs the TPC-W stack once, replicates the three tier dumps into a
//! fleet of disjoint-process-id copies (a deterministic way to scale
//! the *analysis* workload without scaling the simulation), then
//! analyzes the fleet at each worker count. Every parallel result is
//! checked byte-for-byte against the serial (`workers = 1`) result —
//! any divergence is a hard failure — and the sweep is written to
//! `BENCH_pipeline.json`.
//!
//! Two speedups are reported per worker count:
//!
//! - `model_speedup`: the deterministic critical-path speedup — total
//!   work units over the max per-worker work units under the pipeline's
//!   static `item % workers` assignment, summed across phases. A pure
//!   function of the dumps; reproducible on any host.
//! - `wall_speedup`: serial wall time over measured wall time. Honest
//!   but hardware-bound: on a single-core host (`host_cores: 1`) it
//!   hovers around 1.0 because the workers time-slice one CPU.
//!
//! Modes:
//!
//! - `pipeline [--replicas R] [--clients C] [--duration-s S]
//!   [--workers W1,W2,...] [--out FILE]` — full sweep.
//! - `pipeline --smoke` — small fixed configuration, sweep {1, 2, 4};
//!   exits nonzero if any parallel result diverges from serial. Used as
//!   a CI gate.

use std::process::ExitCode;
use std::time::Instant;
use whodunit_bench::{clamp_replicas, fleet_config, header, json_escape, run_fleet, write_json_file};
use whodunit_core::pipeline::{analyze, PipelineConfig, PipelineReport};

struct Args {
    replicas: usize,
    clients: u32,
    duration_s: u64,
    workers: Vec<usize>,
    out: String,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        replicas: 48,
        clients: 24,
        duration_s: 40,
        workers: vec![1, 2, 4, 8],
        out: "BENCH_pipeline.json".to_owned(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--replicas" => {
                a.replicas = val("--replicas")?.parse().map_err(|e| format!("--replicas: {e}"))?
            }
            "--clients" => {
                a.clients = val("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--duration-s" => {
                a.duration_s =
                    val("--duration-s")?.parse().map_err(|e| format!("--duration-s: {e}"))?
            }
            "--workers" => {
                a.workers = val("--workers")?
                    .split(',')
                    .map(|w| w.trim().parse().map_err(|e| format!("--workers: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--out" => a.out = val("--out")?,
            "--smoke" => a.smoke = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if a.smoke {
        a.replicas = 16;
        a.clients = 12;
        a.duration_s = 20;
        a.workers = vec![1, 2, 4];
    }
    a.replicas = clamp_replicas(a.replicas);
    if !a.workers.contains(&1) {
        a.workers.insert(0, 1);
    }
    a.workers.sort_unstable();
    a.workers.dedup();
    Ok(a)
}

struct SweepRow {
    workers: usize,
    wall_ms: f64,
    phase_ms: Vec<(&'static str, f64)>,
    model_speedup: f64,
    wall_speedup: f64,
    fingerprint: u64,
    identical: bool,
}

fn timed_analyze(dumps: &[whodunit_core::stitch::StageDump], workers: usize) -> (PipelineReport, f64) {
    let t = Instant::now();
    let rep = analyze(dumps.to_vec(), PipelineConfig::with_workers(workers));
    (rep, t.elapsed().as_secs_f64() * 1e3)
}

fn write_json(path: &str, args: &Args, host_cores: usize, serial: &PipelineReport, rows: &[SweepRow]) {
    let mut j = String::from("{\n");
    j.push_str("  \"bench\": \"pipeline\",\n");
    j.push_str(&format!(
        "  \"config\": {{\"replicas\": {}, \"clients\": {}, \"duration_s\": {}, \"stages\": {}, \"shards\": {}, \"smoke\": {}}},\n",
        args.replicas,
        args.clients,
        args.duration_s,
        serial.stages.len(),
        serial.shards,
        args.smoke
    ));
    j.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    j.push_str(&format!(
        "  \"serial_fingerprint\": \"{:016x}\",\n",
        serial.fingerprint()
    ));
    j.push_str(&format!("  \"total_work_units\": {},\n", serial.total_work()));
    j.push_str(&format!(
        "  \"profiles\": {}, \"edges\": {}, \"dict_len\": {},\n",
        serial.profiles.len(),
        serial.edges.len(),
        serial.dict.len()
    ));
    j.push_str("  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let phases: Vec<String> = r
            .phase_ms
            .iter()
            .map(|(name, ms)| format!("{{\"phase\": \"{}\", \"wall_ms\": {ms:.3}}}", json_escape(name)))
            .collect();
        j.push_str(&format!(
            "    {{\"workers\": {}, \"wall_ms\": {:.3}, \"model_speedup\": {:.4}, \"wall_speedup\": {:.4}, \"identical_output\": {}, \"fingerprint\": \"{:016x}\", \"phases\": [{}]}}{}\n",
            r.workers,
            r.wall_ms,
            r.model_speedup,
            r.wall_speedup,
            r.identical,
            r.fingerprint,
            phases.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    write_json_file(path, &j);
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pipeline: {e}");
            return ExitCode::FAILURE;
        }
    };
    header(
        "pipeline",
        "parallel sharded analysis pipeline: worker-count sweep, serial-identity gate",
    );

    let cfg = fleet_config(args.clients, args.duration_s);
    println!(
        "simulating 3-tier TPC-W: clients={} duration={}s",
        cfg.clients, args.duration_s
    );
    let (_report, fleet) = run_fleet(cfg, args.replicas);
    println!(
        "fleet: {} replicas -> {} stage dumps",
        args.replicas,
        fleet.len()
    );

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (serial, serial_ms) = timed_analyze(&fleet, 1);
    let serial_fp = serial.fingerprint();
    let serial_text = (serial.stitched_text(), serial.crosstalk_text());

    let mut rows = Vec::new();
    let mut all_identical = true;
    for &w in &args.workers {
        let (rep, wall_ms) = if w == 1 {
            // Reuse the reference run for the serial row.
            (analyze(fleet.clone(), PipelineConfig::with_workers(1)), serial_ms)
        } else {
            timed_analyze(&fleet, w)
        };
        let identical = rep.fingerprint() == serial_fp
            && rep.stitched_text() == serial_text.0
            && rep.crosstalk_text() == serial_text.1
            && rep.dumps_json == serial.dumps_json;
        all_identical &= identical;
        let phase_ms = rep
            .timings
            .iter()
            .map(|t| (t.phase, t.wall_ns as f64 / 1e6))
            .collect();
        let row = SweepRow {
            workers: w,
            wall_ms,
            phase_ms,
            model_speedup: serial.model_speedup(w),
            wall_speedup: serial_ms / wall_ms,
            fingerprint: rep.fingerprint(),
            identical,
        };
        println!(
            "workers={:2}  wall {:8.1} ms  model speedup {:5.2}x  wall speedup {:5.2}x  identical={}",
            row.workers, row.wall_ms, row.model_speedup, row.wall_speedup, row.identical
        );
        rows.push(row);
    }

    write_json(&args.out, &args, host_cores, &serial, &rows);
    println!("wrote {}", args.out);

    let s4 = serial.model_speedup(4);
    println!(
        "4-worker critical-path model speedup: {s4:.2}x over {} stages / {} shards (host_cores={host_cores})",
        serial.stages.len(),
        serial.shards
    );
    if !all_identical {
        eprintln!("FAIL: parallel output diverged from serial");
        return ExitCode::FAILURE;
    }
    println!("all worker counts byte-identical to serial");
    ExitCode::SUCCESS
}
