//! Extension study (beyond the paper): the TPC-W shopping and ordering
//! mixes through the same profiled 3-tier assembly.
//!
//! The paper evaluates the browsing mix only. TPC-W's other two mixes
//! shift weight from the heavy read queries (BestSellers/SearchResult)
//! toward order placement — so the database bottleneck relaxes, peak
//! throughput rises, and MySQL's transactional profile is dominated by
//! different interactions. Whodunit's per-interaction attribution makes
//! the shift directly visible.

use whodunit_apps::dbserver::Engine;
use whodunit_apps::rtconf::RtKind;
use whodunit_apps::tpcw::{run_tpcw, TpcwConfig};
use whodunit_bench::header;
use whodunit_core::cost::CPU_HZ;
use whodunit_core::stitch::Stitched;
use whodunit_report::tpcw::table1;
use whodunit_workload::{Interaction, Mix};

fn label_of(frame: &str) -> Option<String> {
    Interaction::ALL
        .iter()
        .find(|i| i.servlet() == frame)
        .map(|i| i.name().to_owned())
}

fn main() {
    header(
        "Appendix (extension)",
        "TPC-W mixes: browsing vs shopping vs ordering through the profiled assembly",
    );
    for mix in [Mix::Browsing, Mix::Shopping, Mix::Ordering] {
        let r = run_tpcw(TpcwConfig {
            clients: 150,
            engine: Engine::MyIsam,
            caching: false,
            rt: RtKind::Whodunit,
            mix,
            duration: 200 * CPU_HZ,
            warmup: 50 * CPU_HZ,
            ..TpcwConfig::default()
        });
        let stitched = Stitched::new(r.dumps.clone());
        let mut rows = table1(&stitched, 2, &|n| label_of(n));
        rows.sort_by(|a, b| b.cpu_pct.partial_cmp(&a.cpu_pct).unwrap());
        println!(
            "\n{mix:?} mix: {:.0} interactions/min; top MySQL consumers:",
            r.throughput_per_min
        );
        for row in rows.iter().take(4) {
            println!(
                "  {:<22} {:6.2}% CPU   {:8.2} ms crosstalk",
                row.interaction, row.cpu_pct, row.crosstalk_ms
            );
        }
    }
    println!("\n(The heavy sorts shrink outside the browsing mix; throughput rises as");
    println!(" the database bottleneck relaxes — the same attribution machinery,");
    println!(" new workload, no code changes.)");
}
