//! §9.2: Whodunit's overhead on Apache from critical-section emulation.
//!
//! The workload repeatedly opens fresh connections (each crossing the
//! fd queue, forcing emulation of `ap_queue_push`/`ap_queue_pop`).
//! Paper: 393.64 Mb/s unprofiled → 384.58 Mb/s profiled, a 2.3%
//! overhead, kept small by the translation cache.

use whodunit_apps::httpd::{run_httpd, HttpdConfig};
use whodunit_apps::rtconf::RtKind;
use whodunit_bench::{compare, header};
use whodunit_core::cost::CPU_HZ;

fn run(rt: RtKind) -> (f64, u64) {
    let r = run_httpd(HttpdConfig {
        clients: 32,
        workers: 8,
        duration: 30 * CPU_HZ,
        rt,
        ..HttpdConfig::default()
    });
    (r.throughput_mbps, r.guest_cycles)
}

fn main() {
    header(
        "Section 9.2",
        "Apache peak throughput, normal vs profiled with Whodunit",
    );
    let (base, base_guest) = run(RtKind::None);
    let (prof, prof_guest) = run(RtKind::Whodunit);
    compare("Apache normal execution", 393.64, base, "Mb/s");
    compare("Apache under Whodunit", 384.58, prof, "Mb/s");
    let oh = 100.0 * (1.0 - prof / base);
    compare("overhead", 2.3, oh, "%");
    println!(
        "guest (critical-section) cycles: direct {base_guest} vs emulated {prof_guest} \
         ({:.1}x — the cost Table 3 measures per section)",
        prof_guest as f64 / base_guest.max(1) as f64
    );
    assert!(prof < base, "profiling costs something");
    assert!(oh < 10.0, "overhead stays single-digit");
}
