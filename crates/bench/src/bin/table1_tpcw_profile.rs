//! Table 1: MySQL CPU profile (%) and mean crosstalk waiting times for
//! the TPC-W transactions under the browsing mix with 100 concurrent
//! clients.
//!
//! The measured columns come from the Whodunit profile: per-interaction
//! CPU shares from the per-context CCT sample counts at the MySQL
//! stage, crosstalk means from the lock-wait attribution — both
//! resolved to interaction names by post-mortem stitching of the three
//! stage dumps (squid → tomcat → mysql synopsis chains).

use whodunit_apps::dbserver::Engine;
use whodunit_apps::rtconf::RtKind;
use whodunit_apps::tpcw::{run_tpcw, TpcwConfig};
use whodunit_bench::header;
use whodunit_core::cost::CPU_HZ;
use whodunit_core::stitch::Stitched;
use whodunit_report::table;
use whodunit_report::tpcw::{crosstalk_pairs, table1};
use whodunit_workload::Interaction;

/// Paper Table 1 values: (interaction, CPU %, mean crosstalk ms).
const PAPER: [(&str, f64, f64); 13] = [
    ("AdminConfirm", 0.82, 93.76),
    ("AdminRequest", 0.00, 6.68),
    ("BestSellers", 51.50, 22.16),
    ("BuyConfirm", 0.04, 68.55),
    ("BuyRequest", 0.03, 0.11),
    ("CustomerRegistration", 0.00, 0.01),
    ("Home", 0.57, 1.51),
    ("NewProducts", 3.29, 1.59),
    ("OrderDisplay", 0.01, 0.09),
    ("ProductDetail", 0.22, 0.66),
    ("SearchRequest", 0.16, 1.15),
    ("SearchResult", 43.28, 5.52),
    ("ShoppingCart", 0.07, 0.86),
];

fn label_of(frame: &str) -> Option<String> {
    Interaction::ALL
        .iter()
        .find(|i| i.servlet() == frame)
        .map(|i| i.name().to_owned())
}

fn main() {
    header(
        "Table 1",
        "MySQL CPU profile (%) and mean crosstalk wait (ms), browsing mix, 100 clients",
    );
    let r = run_tpcw(TpcwConfig {
        clients: 100,
        engine: Engine::MyIsam,
        caching: false,
        rt: RtKind::Whodunit,
        duration: 500 * CPU_HZ,
        warmup: 100 * CPU_HZ,
        ..TpcwConfig::default()
    });
    assert_eq!(r.dumps.len(), 3, "three profiled stages dumped");
    let stitched = Stitched::new(r.dumps.clone());
    let rows = table1(&stitched, 2, &|n| label_of(n));

    let mut out_rows = Vec::new();
    for (name, paper_cpu, paper_xt) in PAPER {
        let row = rows.iter().find(|r| r.interaction == name);
        let (cpu, xt) = row
            .map(|r| (r.cpu_pct, r.crosstalk_ms))
            .unwrap_or((0.0, 0.0));
        out_rows.push(vec![
            name.to_owned(),
            table::f(paper_cpu, 2),
            table::f(cpu, 2),
            table::f(paper_xt, 2),
            table::f(xt, 2),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "Transaction",
                "CPU% paper",
                "CPU% meas",
                "XT ms paper",
                "XT ms meas"
            ],
            &out_rows
        )
    );

    // Shape checks the paper's analysis depends on.
    let get = |n: &str| rows.iter().find(|r| r.interaction == n);
    let bs = get("BestSellers").expect("BestSellers profiled");
    let sr = get("SearchResult").expect("SearchResult profiled");
    let ac = get("AdminConfirm");
    println!(
        "BestSellers + SearchResult CPU share: {:.1}%",
        bs.cpu_pct + sr.cpu_pct
    );
    assert!(
        bs.cpu_pct + sr.cpu_pct > 70.0,
        "BestSellers+SearchResult dominate MySQL CPU"
    );
    if let Some(ac) = ac {
        let max_xt = rows.iter().map(|r| r.crosstalk_ms).fold(0.0, f64::max);
        println!(
            "AdminConfirm crosstalk: {:.2} ms (max across interactions: {:.2} ms)",
            ac.crosstalk_ms, max_xt
        );
        assert!(
            ac.crosstalk_ms >= max_xt * 0.999,
            "AdminConfirm has the largest mean crosstalk wait"
        );
    }
    println!("Throughput: {:.0} interactions/min", r.throughput_per_min);

    // §6 presents crosstalk as ordered pairs: who waits for whom.
    println!("\nTop crosstalk pairs (waiter <- holder, mean wait):");
    for (waiter, holder, ms, n) in crosstalk_pairs(&stitched, 2, &|n| label_of(n))
        .iter()
        .take(8)
    {
        println!("  {waiter:<22} waits for {holder:<22} {ms:9.2} ms  x{n}");
    }
}
