//! sentinel: always-on SLO watchdog and anomaly-capture bench.
//!
//! Exercises the full sentinel loop the way a deployment would run it:
//!
//! 1. **Calibrate** a budget from one known-clean TPC-W scenario
//!    (tail quantiles per tier, crosstalk, quarantine).
//! 2. **False-repro sweep**: every clean scenario of the seed × policy
//!    matrix runs under the calibrated budget — any trip is a false
//!    repro and fails the bench (the zero-false-repro gate).
//! 3. **Faultstorm capture**: a mysql slowdown is planted at a known
//!    onset epoch; the bench measures detection latency (trip epoch
//!    minus onset), captures a window-scoped repro, shrinks it, and
//!    verifies bit-identical replay through the capture oracle. The
//!    repro bundle and the rendered incident report are written next
//!    to the JSON output.
//! 4. **Capture overhead**: the same recorded clean stream is ingested
//!    through a plain `Collector` and through a `SentinelSink` as
//!    back-to-back pairs; the reported overhead is the median plain
//!    time plus the median per-pair delta (robust to timer drift),
//!    and must stay within the gate (default 10%).
//!
//! Results go to `BENCH_sentinel.json`. Modes:
//!
//! - `sentinel [--clients C] [--duration-s S] [--factor F]
//!   [--overhead-gate-pct P] [--out FILE]` — full matrix.
//! - `sentinel --smoke` — reduced seed × policy set; CI gate.

use std::process::ExitCode;
use std::time::Instant;
use whodunit_apps::chaos::default_workload;
use whodunit_apps::sentinel::{calibrate_budget, capture_incident, run_with_sentinel};
use whodunit_apps::tpcw::run_tpcw_streaming;
use whodunit_bench::{fleet_stream, header, write_json_file};
use whodunit_collector::{Collector, CollectorConfig, SentinelSink, SloBudget};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::delta::{DeltaSink, RecordingSink};
use whodunit_core::repro::{repro_to_json, ChaosRepro, FaultEntry};
use whodunit_report::render_incident;

const MATRIX_SEEDS: &[u64] = &[1, 2, 3, 5, 8, 13];

struct Args {
    clients: u64,
    duration_s: u64,
    factor: u64,
    overhead_gate_pct: f64,
    out: String,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        clients: 12,
        duration_s: 25,
        factor: 8,
        overhead_gate_pct: 10.0,
        out: "BENCH_sentinel.json".to_owned(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--clients" => {
                a.clients = val("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--duration-s" => {
                a.duration_s =
                    val("--duration-s")?.parse().map_err(|e| format!("--duration-s: {e}"))?
            }
            "--factor" => {
                a.factor = val("--factor")?.parse().map_err(|e| format!("--factor: {e}"))?
            }
            "--overhead-gate-pct" => {
                a.overhead_gate_pct = val("--overhead-gate-pct")?
                    .parse()
                    .map_err(|e| format!("--overhead-gate-pct: {e}"))?
            }
            "--out" => a.out = val("--out")?,
            "--smoke" => a.smoke = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if a.duration_s < 12 {
        return Err("--duration-s must be at least 12 (fault onset is at 10s)".into());
    }
    Ok(a)
}

/// The seed × policy matrix of clean scenarios (the same family the
/// streaming differential tests lock down).
fn clean_matrix(smoke: bool) -> Vec<(u64, String)> {
    let seeds: &[u64] = if smoke { &MATRIX_SEEDS[..2] } else { MATRIX_SEEDS };
    let mut out = Vec::new();
    for &seed in seeds {
        out.push((seed, "fifo".to_owned()));
        out.push((seed, format!("random:{}", seed ^ 0xa5)));
        if !smoke {
            out.push((seed, format!("perturb:{}:200000", seed ^ 0x5a)));
        }
    }
    out
}

fn matrix_repro(args: &Args, seed: u64, policy: &str) -> ChaosRepro {
    let mut r = ChaosRepro {
        seed,
        policy: policy.to_owned(),
        workload: default_workload(),
        faults: Vec::new(),
        violation: None,
        window: None,
    };
    r.set_knob("clients", args.clients);
    r.set_knob("duration", args.duration_s * CPU_HZ);
    r.set_knob("warmup", 5 * CPU_HZ);
    r
}

/// One timed ingest of a recorded stream through `sink`, in
/// milliseconds. `finish` consumes whatever the sink accumulated so
/// the next repetition starts clean.
fn ingest_once<S: DeltaSink>(
    header: &whodunit_core::delta::StreamHeader,
    batches: &[whodunit_core::delta::EpochBatch],
    make: impl FnOnce() -> S,
    finish: impl FnOnce(S),
) -> f64 {
    let mut sink = make();
    let t = Instant::now();
    sink.on_start(header);
    for b in batches {
        sink.on_batch(b.clone());
    }
    finish(sink);
    t.elapsed().as_secs_f64() * 1e3
}

/// Paired wall times for the plain and sentinel sinks. Every
/// repetition times one plain ingest and one sentinel ingest back to
/// back, so clock-frequency and allocator drift over the run lands on
/// both sides of each pair equally; the sentinel's cost is then the
/// **median of the per-pair differences** — scheduler spikes hit one
/// rep's difference, not the estimate, and unlike best-of-N ratios
/// the paired median doesn't swing when the two sides' luckiest reps
/// happen in different moments. Returns `(plain_ms, sentinel_ms)`
/// where `plain_ms` is the median plain time and `sentinel_ms` is
/// `plain_ms` plus the median paired difference.
fn time_ingest_pair(
    header: &whodunit_core::delta::StreamHeader,
    batches: &[whodunit_core::delta::EpochBatch],
    budget: &SloBudget,
) -> (f64, f64) {
    const REPS: usize = 25;
    let mut plains = Vec::with_capacity(REPS);
    let mut diffs = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let plain = ingest_once(
            header,
            batches,
            || Collector::new(CollectorConfig::default()),
            |c| {
                c.finalize();
            },
        );
        let sentinel = ingest_once(
            header,
            batches,
            || SentinelSink::new(CollectorConfig::default(), budget.clone()),
            |s| {
                s.finish();
            },
        );
        plains.push(plain);
        diffs.push(sentinel - plain);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let plain_ms = median(&mut plains);
    let delta_ms = median(&mut diffs);
    (plain_ms, plain_ms + delta_ms)
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    args: &Args,
    budget: &SloBudget,
    clean_total: usize,
    false_repros: u64,
    inc: &whodunit_apps::sentinel::Incident,
    onset_epoch: u64,
    shrunk_duration: u64,
    overhead: (f64, f64, f64, bool),
) {
    let latency = inc.violation.epoch.saturating_sub(onset_epoch);
    let s = inc.card.shrink.as_ref().expect("shrink summary");
    let r = inc.card.replay.as_ref().expect("replay summary");
    let before_work = args.duration_s * args.clients;
    let after_work = (shrunk_duration / CPU_HZ) * s.clients_after;
    let shrink_ratio = after_work as f64 / before_work.max(1) as f64;
    let (plain_ms, sentinel_ms, overhead_pct, within_gate) = overhead;
    let mut j = String::from("{\n");
    j.push_str("  \"bench\": \"sentinel\",\n");
    j.push_str(&format!(
        "  \"config\": {{\"clients\": {}, \"duration_s\": {}, \"slowdown_factor\": {}, \"smoke\": {}}},\n",
        args.clients, args.duration_s, args.factor, args.smoke
    ));
    j.push_str(&format!(
        "  \"budget\": {{\"quantile_ppm\": {}, \"stages\": {}, \"window_epochs\": {}, \"warmup_epochs\": {}}},\n",
        budget.quantile_ppm,
        budget.stage_cycles.len(),
        budget.window_epochs,
        budget.warmup_epochs
    ));
    j.push_str(&format!("  \"clean_scenarios\": {clean_total},\n"));
    j.push_str(&format!("  \"false_repros\": {false_repros},\n"));
    j.push_str(&format!(
        "  \"detection\": {{\"dimension\": \"{}\", \"onset_epoch\": {}, \"trip_epoch\": {}, \"latency_epochs\": {}}},\n",
        inc.violation.dimension, onset_epoch, inc.violation.epoch, latency
    ));
    j.push_str(&format!(
        "  \"capture\": {{\"runs\": {}, \"faults_before\": {}, \"faults_after\": {}, \"clients_before\": {}, \"clients_after\": {}, \"duration_before_s\": {}, \"duration_after_s\": {}, \"shrink_ratio\": {:.4}}},\n",
        inc.capture_runs,
        s.faults_before,
        s.faults_after,
        s.clients_before,
        s.clients_after,
        args.duration_s,
        shrunk_duration / CPU_HZ,
        shrink_ratio
    ));
    j.push_str(&format!(
        "  \"replay\": {{\"fingerprint\": \"{:016x}\", \"bit_identical\": {}, \"retripped\": {}, \"oracle_violations\": {}}},\n",
        r.fingerprint,
        r.bit_identical,
        r.retripped,
        inc.oracle.len()
    ));
    j.push_str(&format!(
        "  \"overhead\": {{\"plain_ingest_ms\": {:.3}, \"sentinel_ingest_ms\": {:.3}, \"capture_overhead_pct\": {:.2}, \"gate_pct\": {:.1}, \"within_gate\": {}}}\n",
        plain_ms, sentinel_ms, overhead_pct, args.overhead_gate_pct, within_gate
    ));
    j.push_str("}\n");
    write_json_file(path, &j);
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sentinel: {e}");
            return ExitCode::FAILURE;
        }
    };
    header(
        "sentinel",
        "always-on SLO watchdog: detection latency, capture overhead, shrink ratio",
    );

    // 1. Calibrate from the first clean scenario of the matrix.
    let baseline = matrix_repro(&args, MATRIX_SEEDS[0], "fifo");
    let budget = calibrate_budget(&baseline, CPU_HZ, 3, 2);
    println!(
        "calibrated budget: {} stage tails at p{:.2}, xt {:?}, quarantine {:?}",
        budget.stage_cycles.len(),
        budget.quantile_ppm as f64 / 10_000.0,
        budget.xt_wait,
        budget.max_quarantined
    );

    // 2. Zero-false-repro sweep over the clean matrix.
    let matrix = clean_matrix(args.smoke);
    let mut false_repros = 0u64;
    for (seed, policy) in &matrix {
        let run = run_with_sentinel(&matrix_repro(&args, *seed, policy), &budget, CPU_HZ);
        match &run.violation {
            Some(v) => {
                false_repros += 1;
                eprintln!("FALSE REPRO: seed {seed} policy {policy}: {v}");
            }
            None => println!("clean: seed {seed:2} policy {policy:<18} ok ({} epochs)", run.epochs),
        }
    }
    println!(
        "false repros: {false_repros}/{} clean scenarios",
        matrix.len()
    );

    // 3. Faultstorm: plant a mysql slowdown at a known onset, capture.
    let onset_epoch = 10u64;
    let mut storm = matrix_repro(&args, MATRIX_SEEDS[0], "fifo");
    storm.faults = vec![FaultEntry::Slowdown {
        machine: "mysql".into(),
        from: onset_epoch * CPU_HZ,
        until: args.duration_s * CPU_HZ,
        factor: args.factor,
    }];
    let inc = match capture_incident(&storm, &budget, CPU_HZ) {
        Some(inc) => inc,
        None => {
            eprintln!("FAIL: faultstorm (factor {}) never tripped the sentinel", args.factor);
            return ExitCode::FAILURE;
        }
    };
    let shrunk_duration = inc.repro.knob("duration").unwrap_or(args.duration_s * CPU_HZ);
    println!(
        "detected {} at epoch {} (onset {}, latency {} epochs); capture took {} runs",
        inc.violation.dimension,
        inc.violation.epoch,
        onset_epoch,
        inc.violation.epoch.saturating_sub(onset_epoch),
        inc.capture_runs
    );
    println!(
        "shrunk: duration {}s -> {}s; replay {}",
        args.duration_s,
        shrunk_duration / CPU_HZ,
        if inc.oracle.is_empty() { "verified bit-identical" } else { "FAILED ORACLE" }
    );

    // Write the self-contained bundle next to the JSON output.
    let base = args.out.strip_suffix(".json").unwrap_or(&args.out);
    let repro_path = format!("{base}.repro.json");
    let report_path = format!("{base}.incident.txt");
    write_json_file(&repro_path, &repro_to_json(&inc.repro));
    std::fs::write(&report_path, render_incident(&inc.card))
        .unwrap_or_else(|e| panic!("write {report_path}: {e}"));
    println!("wrote {repro_path} and {report_path}");

    // 4. Capture overhead, interleaved best-of-15 each way. The
    // recorded baseline stream is replicated to fleet size first: the
    // always-on cost only makes sense against a realistically-sized
    // ingest load, not a single-node stream where one snapshot dwarfs
    // the epoch work.
    // Same fleet scale in smoke and full mode: the overhead ratio is
    // scale-sensitive (fixed per-snapshot costs amortize over stream
    // size), so the CI smoke must measure the same deployment shape
    // the full bench gates.
    let mut rec = RecordingSink::default();
    run_tpcw_streaming(whodunit_apps::chaos::config_of(&baseline), CPU_HZ, &mut rec);
    let (fleet_hdr, fleet_batches) = fleet_stream(&rec.header, &rec.batches, 32, 2);
    let (plain_ms, sentinel_ms) = time_ingest_pair(&fleet_hdr, &fleet_batches, &budget);
    let overhead_pct = (sentinel_ms - plain_ms) / plain_ms.max(1e-9) * 100.0;
    let within_gate = overhead_pct <= args.overhead_gate_pct;
    println!(
        "ingest: plain {plain_ms:.2} ms, sentinel {sentinel_ms:.2} ms -> overhead {overhead_pct:.2}% (gate {:.1}%)",
        args.overhead_gate_pct
    );

    write_json(
        &args.out,
        &args,
        &budget,
        matrix.len(),
        false_repros,
        &inc,
        onset_epoch,
        shrunk_duration,
        (plain_ms, sentinel_ms, overhead_pct, within_gate),
    );
    println!("wrote {}", args.out);

    let replay_ok = inc.oracle.is_empty()
        && inc.card.replay.as_ref().is_some_and(|r| r.bit_identical && r.retripped);
    if false_repros > 0 || !replay_ok || !within_gate {
        eprintln!(
            "FAIL: false_repros={false_repros} replay_ok={replay_ok} overhead_within_gate={within_gate}"
        );
        return ExitCode::FAILURE;
    }
    println!("gates passed: zero false repros, bit-identical verified replay, overhead within gate");
    ExitCode::SUCCESS
}
