//! Figure 9: transactional profile of Squid under the web workload.
//!
//! The event-handler sequences establish one context per hit/miss path;
//! `commHandleWrite` appears under both, with the hit-path share larger
//! than the miss-path share (38.5% vs 11.5% in the paper), and
//! `httpReadReply` only under the miss path.

use whodunit_apps::proxy::{run_proxy, ProxyConfig};
use whodunit_apps::rtconf::RtKind;
use whodunit_bench::{compare, header};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::Runtime;
use whodunit_report::render;

const HIT: &str = "httpAccept -> clientReadRequest -> commHandleWrite";
const MISS: &str =
    "httpAccept -> clientReadRequest -> commConnectHandle -> httpReadReply -> commHandleWrite";

fn main() {
    header(
        "Figure 9",
        "transactional profile of Squid (hit vs miss contexts)",
    );
    let r = run_proxy(ProxyConfig {
        clients: 24,
        duration: 30 * CPU_HZ,
        rt: RtKind::Whodunit,
        ..ProxyConfig::default()
    });
    let w = r
        .runtime
        .whodunit
        .as_ref()
        .expect("whodunit installed")
        .borrow();
    let dump = w.dump().expect("profile dumped");
    let shares = render::context_shares(&dump);
    for s in &shares {
        println!("{:6.2}%  {}", s.pct, s.ctx);
    }

    let share = |ctx: &str| {
        shares
            .iter()
            .find(|s| s.ctx == ctx)
            .map(|s| s.pct)
            .unwrap_or(0.0)
    };
    let hit = share(HIT);
    let miss = share(MISS);
    println!();
    compare("commHandleWrite via cache-hit ctx", 38.5, hit, "%");
    compare("commHandleWrite via cache-miss ctx", 11.5, miss, "%");
    println!("request hit rate: {:.1}%", r.hit_rate * 100.0);
    assert!(hit > 0.0 && miss > 0.0, "both contexts profiled");
    assert!(hit > miss, "hit-path write dominates (most requests hit)");
    println!("\nWhodunit distinguishes the time spent in commHandleWrite for");
    println!("cache hits vs misses — a regular profiler reports one number.");
    println!("Throughput while profiled: {:.1} Mb/s", r.throughput_mbps);
}
