//! Figure 12: TPC-W throughput (interactions/minute) under the
//! browsing mix, with and without servlet result caching, as a
//! function of concurrent clients.
//!
//! Paper shape: without caching the database CPU saturates around 200
//! clients at a peak of 1184/min; with caching throughput grows almost
//! linearly to ≈450 clients and peaks at 3376/min — close to 3×.

use whodunit_apps::dbserver::Engine;
use whodunit_apps::rtconf::RtKind;
use whodunit_apps::tpcw::{run_tpcw, TpcwConfig};
use whodunit_bench::{compare, header};
use whodunit_core::cost::CPU_HZ;
use whodunit_report::table;

fn sweep(caching: bool, clients: &[u32]) -> Vec<(u32, f64)> {
    clients
        .iter()
        .map(|&n| {
            let r = run_tpcw(TpcwConfig {
                clients: n,
                engine: Engine::MyIsam,
                caching,
                rt: RtKind::None,
                duration: 320 * CPU_HZ,
                warmup: 80 * CPU_HZ,
                ..TpcwConfig::default()
            });
            (n, r.throughput_per_min)
        })
        .collect()
}

fn main() {
    header(
        "Figure 12",
        "TPC-W throughput vs concurrent clients, with and without caching",
    );
    let clients = [50, 100, 150, 200, 250, 300, 350, 400, 450, 500];
    let original = sweep(false, &clients);
    let cached = sweep(true, &clients);

    let rows: Vec<Vec<String>> = clients
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            vec![
                n.to_string(),
                table::f(original[i].1, 0),
                table::f(cached[i].1, 0),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["Clients", "Original tx/min", "Caching tx/min"], &rows)
    );

    let peak_orig = original.iter().map(|&(_, t)| t).fold(0.0, f64::max);
    let peak_cache = cached.iter().map(|&(_, t)| t).fold(0.0, f64::max);
    compare("Peak throughput, original", 1184.0, peak_orig, "tx/min");
    compare("Peak throughput, caching", 3376.0, peak_cache, "tx/min");
    compare(
        "Caching speedup",
        3376.0 / 1184.0,
        peak_cache / peak_orig,
        "x",
    );

    // Knee positions: the first client count achieving ≥95% of peak.
    let knee = |curve: &[(u32, f64)], peak: f64| {
        curve
            .iter()
            .find(|&&(_, t)| t >= 0.95 * peak)
            .map(|&(n, _)| n)
            .unwrap_or(0)
    };
    let k_orig = knee(&original, peak_orig);
    let k_cache = knee(&cached, peak_cache);
    println!("\nSaturation knee: original ≈{k_orig} clients (paper ≈200), caching ≈{k_cache} clients (paper ≈450)");
    assert!(peak_cache > 2.0 * peak_orig, "caching wins by >2x");
    assert!(k_cache > k_orig, "caching moves the knee right");
}
