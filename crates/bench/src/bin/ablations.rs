//! Ablations of Whodunit's design decisions (DESIGN.md §4).
//!
//! 1. **Consume window** (`MAX`, §7.2): sweep the window length and
//!    measure flow-detection recall on the fd queue.
//! 2. **Loop pruning** (§4.1): context-count growth on persistent
//!    connections with pruning on vs off.
//! 3. **Produce-requires-memory-destination** (§3): disabling the
//!    restriction turns consumers into "producers" and falsely
//!    disables fd-queue flow.
//! 4. **Emulation bail-out** (§7.2): Apache throughput with the
//!    bail-out disabled (allocator critical sections stay emulated).
//! 5. **Synopsis piggyback** (§7.4): wire bytes of 4-byte synopses vs
//!    shipping rendered full contexts.
//! 6. **Analytic vs stochastic sampling**: per-context CPU shares from
//!    deterministic sample placement vs seeded exponential gaps.

use whodunit_apps::httpd::{run_httpd, HttpdConfig};
use whodunit_apps::proxy::{run_proxy, ProxyConfig};
use whodunit_apps::rtconf::RtKind;
use whodunit_bench::header;
use whodunit_core::context::CtxId;
use whodunit_core::cost::CPU_HZ;
use whodunit_core::ids::{LockId, ThreadId};
use whodunit_core::rt::Runtime;
use whodunit_core::shm::{FlowConfig, FlowDetector, FlowEvent};
use whodunit_vm::programs::FdQueue;
use whodunit_vm::{Cpu, CsEmulator, EmuConfig, ExecMode, GuestMem, TranslationCache};

fn window_recall(max_window: u64, flow: FlowConfig) -> usize {
    let q = FdQueue::new(3);
    let mut mem = GuestMem::new(FdQueue::mem_words(16));
    FdQueue::init(&mut mem, 16);
    let mut det = FlowDetector::new(flow);
    let mut tc = TranslationCache::new();
    let emu = CsEmulator::new(EmuConfig {
        max_window,
        max_steps: 100_000,
    });
    let mut consumed = 0;
    for i in 0..10 {
        let prod = ThreadId(1);
        let mut cpu = Cpu::new(prod);
        cpu.regs[1] = 100 + i;
        cpu.regs[2] = 200 + i;
        let mut out = Vec::new();
        emu.run(
            &q.push,
            &mut cpu,
            &mut mem,
            ExecMode::Emulated { tcache: &mut tc },
            &mut |e| {
                det.on_event(prod, CtxId(5), e, &mut out);
            },
        );
        let cons = ThreadId(2);
        let mut cpu = Cpu::new(cons);
        let mut out = Vec::new();
        emu.run(
            &q.pop,
            &mut cpu,
            &mut mem,
            ExecMode::Emulated { tcache: &mut tc },
            &mut |e| {
                det.on_event(cons, CtxId::ROOT, e, &mut out);
            },
        );
        consumed += out
            .iter()
            .filter(|e| matches!(e, FlowEvent::Consumed { .. }))
            .count();
    }
    consumed
}

fn main() {
    header("Ablations", "design-decision sensitivity studies");

    println!("\n[1] Consume-window length vs fd-queue detection recall (10 rounds):");
    for w in [0u64, 1, 2, 4, 16, 128] {
        let hits = window_recall(w, FlowConfig::default());
        println!("    MAX = {w:>3}: {hits}/20 consumed values detected");
    }
    println!("    (the paper uses MAX = 128; a tiny window misses the consumer's use)");

    println!("\n[2] Loop pruning (§4.1) on persistent connections (Squid):");
    for (kind, label) in [
        (RtKind::Whodunit, "pruned contexts"),
        (RtKind::WhodunitFullHistory, "full histories"),
    ] {
        let r = run_proxy(ProxyConfig {
            clients: 12,
            duration: 6 * CPU_HZ,
            rt: kind,
            ..ProxyConfig::default()
        });
        let w = r.runtime.whodunit.as_ref().unwrap().borrow();
        println!(
            "    {label:<18}: {:>6} distinct contexts after {} requests",
            w.profiled_contexts().len(),
            r.reqs
        );
    }
    println!("    (without pruning, every extra request on a connection mints a new context)");

    println!("\n[3] Produce-requires-memory-destination (§3.2 restriction):");
    for (on, label) in [(true, "restriction on"), (false, "restriction off")] {
        let flow = FlowConfig {
            produce_requires_mem_dst: on,
            ..FlowConfig::default()
        };
        let q = FdQueue::new(3);
        let mut mem = GuestMem::new(FdQueue::mem_words(16));
        FdQueue::init(&mut mem, 16);
        let mut det = FlowDetector::new(flow);
        let mut tc = TranslationCache::new();
        let emu = CsEmulator::default();
        for i in 0..4 {
            let prod = ThreadId(1);
            let mut cpu = Cpu::new(prod);
            cpu.regs[1] = i;
            let mut out = Vec::new();
            emu.run(
                &q.push,
                &mut cpu,
                &mut mem,
                ExecMode::Emulated { tcache: &mut tc },
                &mut |e| {
                    det.on_event(prod, CtxId(5), e, &mut out);
                },
            );
            let cons = ThreadId(2);
            let mut cpu = Cpu::new(cons);
            let mut out = Vec::new();
            emu.run(
                &q.pop,
                &mut cpu,
                &mut mem,
                ExecMode::Emulated { tcache: &mut tc },
                &mut |e| {
                    det.on_event(cons, CtxId::ROOT, e, &mut out);
                },
            );
        }
        println!(
            "    {label:<16}: fd-queue flow enabled = {}",
            det.flow_enabled(LockId(3))
        );
    }
    println!("    (off: consumers' register staging loads count as produces, the");
    println!("     producer/consumer lists intersect, and real flow is lost)");

    println!("\n[4] Emulation bail-out (§7.2) on Apache throughput:");
    let mut results = Vec::new();
    for (kind, label) in [
        (RtKind::None, "no profiling"),
        (RtKind::Whodunit, "Whodunit (bail-out on)"),
        (RtKind::WhodunitAlwaysEmulate, "Whodunit (bail-out off)"),
    ] {
        let r = run_httpd(HttpdConfig {
            clients: 24,
            workers: 8,
            duration: 10 * CPU_HZ,
            rt: kind,
            ..HttpdConfig::default()
        });
        println!(
            "    {label:<26}: {:7.1} Mb/s (guest cycles {:>11})",
            r.throughput_mbps, r.guest_cycles
        );
        results.push(r.throughput_mbps);
    }
    assert!(results[1] >= results[2], "bail-out never hurts");

    println!("\n[5] Synopsis piggyback vs full-context piggyback (Squid run):");
    let r = run_proxy(ProxyConfig {
        clients: 12,
        duration: 6 * CPU_HZ,
        rt: RtKind::Whodunit,
        ..ProxyConfig::default()
    });
    let w = r.runtime.whodunit.as_ref().unwrap().borrow();
    let syn_bytes = w.ipc().piggyback_bytes;
    let msgs = w.ipc().messages;
    // A full context rendered for the wire: estimate with its display
    // form (the paper's alternative to 4-byte synopses).
    let full_bytes: u64 = w
        .profiled_contexts()
        .iter()
        .map(|&c| w.ctx_string(c).len() as u64)
        .max()
        .unwrap_or(32)
        * msgs;
    println!(
        "    synopses: {syn_bytes} B over {msgs} messages; full contexts would be ≈{full_bytes} B ({:.0}x)",
        full_bytes as f64 / syn_bytes.max(1) as f64
    );

    println!("\n[6] Analytic vs stochastic sampling (Squid context shares):");
    let shares = |kind| {
        let r = run_proxy(ProxyConfig {
            clients: 12,
            duration: 8 * CPU_HZ,
            rt: kind,
            ..ProxyConfig::default()
        });
        let w = r.runtime.whodunit.as_ref().unwrap().borrow();
        whodunit_report::render::context_shares(&w.dump().unwrap())
    };
    let analytic = shares(RtKind::Whodunit);
    let stochastic = shares(RtKind::WhodunitStochastic);
    let mut max_dev: f64 = 0.0;
    for a in &analytic {
        let s = stochastic
            .iter()
            .find(|s| s.ctx == a.ctx)
            .map(|s| s.pct)
            .unwrap_or(0.0);
        println!("    {:6.2}% vs {:6.2}%  {}", a.pct, s, a.ctx);
        max_dev = max_dev.max((a.pct - s).abs());
    }
    println!("    max deviation {max_dev:.2} percentage points — the analytic");
    println!("    placement is an unbiased stand-in for timer-driven sampling");
    assert!(max_dev < 2.0, "sampling modes agree");
}
