//! Table 2: peak TPC-W throughput (interactions/minute) under four
//! profiling configurations: none, csprof, Whodunit, gprof.
//!
//! Paper: 1184 / 1151 / 1150 / 898 — csprof's sampling costs ≈3%,
//! Whodunit adds <0.1% on top, gprof's per-call instrumentation costs
//! ≈24%. All profilers sample at gprof's default 666 Hz.
//!
//! The paper additionally reports the communication overhead of
//! synopsis piggybacking: 0.95 MB of transaction context against
//! 92.52 MB of data (≈1%); the Whodunit row prints the measured
//! equivalent.

use whodunit_apps::dbserver::Engine;
use whodunit_apps::rtconf::RtKind;
use whodunit_apps::tpcw::{run_tpcw, TpcwConfig};
use whodunit_bench::{compare, header};
use whodunit_core::cost::CPU_HZ;
use whodunit_report::table;

fn peak(rt: RtKind) -> (f64, Option<(u64, u64, u64)>) {
    // Run at saturation (past the knee) where throughput equals the
    // database's capacity under the given profiler.
    let r = run_tpcw(TpcwConfig {
        clients: 220,
        engine: Engine::MyIsam,
        caching: false,
        rt,
        duration: 320 * CPU_HZ,
        warmup: 80 * CPU_HZ,
        ..TpcwConfig::default()
    });
    let msgs = r.dumps.iter().map(|d| d.messages).sum::<u64>();
    (
        r.throughput_per_min,
        if r.piggyback_bytes > 0 {
            Some((r.piggyback_bytes, msgs, r.wire_bytes))
        } else {
            None
        },
    )
}

fn main() {
    header(
        "Table 2",
        "peak TPC-W throughput under no profiling / csprof / Whodunit / gprof",
    );
    let paper = [
        (RtKind::None, 1184.0),
        (RtKind::Csprof, 1151.0),
        (RtKind::Whodunit, 1150.0),
        (RtKind::Gprof, 898.0),
    ];
    let mut measured = Vec::new();
    for &(rt, _) in &paper {
        measured.push(peak(rt));
    }
    let rows: Vec<Vec<String>> = paper
        .iter()
        .zip(&measured)
        .map(|(&(rt, p), &(m, _))| vec![rt.label().to_owned(), table::f(p, 0), table::f(m, 0)])
        .collect();
    println!(
        "{}",
        table::render(&["Profiler", "Paper tx/min", "Measured tx/min"], &rows)
    );

    let base = measured[0].0;
    compare(
        "csprof overhead",
        2.8,
        100.0 * (1.0 - measured[1].0 / base),
        "%",
    );
    compare(
        "Whodunit overhead",
        2.9,
        100.0 * (1.0 - measured[2].0 / base),
        "%",
    );
    compare(
        "gprof overhead",
        24.2,
        100.0 * (1.0 - measured[3].0 / base),
        "%",
    );
    if let Some((bytes, msgs, wire)) = measured[2].1 {
        println!(
            "\nWhodunit piggyback: {:.2} MB of transaction context over {} messages,\n             against {:.2} MB of data — {:.2}% communication overhead \n             (paper: 0.95 MB vs 92.52 MB, ≈1%)",
            bytes as f64 / 1e6,
            msgs,
            wire as f64 / 1e6,
            bytes as f64 * 100.0 / wire as f64
        );
    }
    assert!(
        measured[3].0 < measured[1].0,
        "gprof costs more than csprof"
    );
    assert!(
        measured[2].0 > 0.9 * measured[1].0,
        "Whodunit stays close to csprof"
    );
}
