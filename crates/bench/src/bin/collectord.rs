//! collectord: retention-window sweep of the streaming collector over
//! a staggered fleet-sized delta stream.
//!
//! Records one 3-tier TPC-W run's epoch delta stream, then replicates
//! it into a fleet of disjoint-process-id replicas whose streams start
//! `--stagger` epochs apart — the shape a real deployment sees, where
//! machines come and go and the collector's retention window is what
//! keeps its resident set far below the total origin population. The
//! staggered stream is ingested at each retention window and the
//! finalized report is byte-compared against batch `analyze` over
//! `replicate_fleet` of the same dumps — any divergence is a hard
//! failure, as are leaked pending walks/edges or a resident peak that
//! fails to stay strictly below the total origin count.
//!
//! A separate lag scenario ingests the stream through a bounded queue
//! with a polling budget, recording throttles and peak depth while
//! still requiring byte-identity. A wire scenario ships the same
//! stream as binary frames through `enqueue_wire` (DESIGN.md §16) and
//! holds it to the same byte-identity bar.
//!
//! Results go to `BENCH_collector.json`. Modes:
//!
//! - `collectord [--replicas R] [--clients C] [--duration-s S]
//!   [--stagger E] [--windows W1,W2,...] [--out FILE]` — full sweep.
//! - `collectord --smoke` — small fixed configuration; CI gate.

use std::process::ExitCode;
use std::time::Instant;
use whodunit_apps::tpcw::run_tpcw_streaming;
use whodunit_bench::{clamp_replicas, fleet_config, fleet_stream, header, write_json_file};
use whodunit_collector::{Collector, CollectorConfig, CollectorOutput};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::delta::RecordingSink;
use whodunit_core::pipeline::{analyze, replicate_fleet, PipelineConfig, PipelineReport};
use whodunit_core::wire;

struct Args {
    replicas: usize,
    clients: u32,
    duration_s: u64,
    stagger: u64,
    windows: Vec<u64>,
    out: String,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        replicas: 48,
        clients: 24,
        duration_s: 40,
        stagger: 2,
        windows: vec![1, 2, 4, 8],
        out: "BENCH_collector.json".to_owned(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--replicas" => {
                a.replicas = val("--replicas")?.parse().map_err(|e| format!("--replicas: {e}"))?
            }
            "--clients" => {
                a.clients = val("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--duration-s" => {
                a.duration_s =
                    val("--duration-s")?.parse().map_err(|e| format!("--duration-s: {e}"))?
            }
            "--stagger" => {
                a.stagger = val("--stagger")?.parse().map_err(|e| format!("--stagger: {e}"))?
            }
            "--windows" => {
                a.windows = val("--windows")?
                    .split(',')
                    .map(|w| w.trim().parse().map_err(|e| format!("--windows: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--out" => a.out = val("--out")?,
            "--smoke" => a.smoke = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if a.smoke {
        a.replicas = 12;
        a.clients = 12;
        a.duration_s = 12;
        a.stagger = 2;
        a.windows = vec![1, 4];
    }
    a.replicas = clamp_replicas(a.replicas);
    a.stagger = a.stagger.max(1);
    a.windows.retain(|&w| w >= 1);
    if a.windows.is_empty() {
        return Err("--windows needs at least one value >= 1".into());
    }
    a.windows.sort_unstable();
    a.windows.dedup();
    Ok(a)
}

struct StreamInfo {
    stages: usize,
    epochs: usize,
    events: u64,
    total_origins: usize,
}

struct SweepRow {
    window: u64,
    ingest_ms: f64,
    finalize_ms: f64,
    events_per_s: f64,
    out: CollectorOutput,
    identical: bool,
}

fn identical(reference: &PipelineReport, got: &PipelineReport) -> bool {
    got.fingerprint() == reference.fingerprint()
        && got.stitched_text() == reference.stitched_text()
        && got.crosstalk_text() == reference.crosstalk_text()
        && got.dumps_json == reference.dumps_json
        && got.dict == reference.dict
}

fn write_json(
    path: &str,
    args: &Args,
    info: &StreamInfo,
    reference: &PipelineReport,
    rows: &[SweepRow],
    lag: &(usize, usize, CollectorOutput, bool),
    wire: &(u64, f64, bool),
) {
    let mut j = String::from("{\n");
    j.push_str("  \"bench\": \"collectord\",\n");
    j.push_str(&format!(
        "  \"config\": {{\"replicas\": {}, \"clients\": {}, \"duration_s\": {}, \"stagger_epochs\": {}, \"smoke\": {}}},\n",
        args.replicas, args.clients, args.duration_s, args.stagger, args.smoke
    ));
    j.push_str(&format!(
        "  \"stream\": {{\"stages\": {}, \"epochs\": {}, \"events\": {}}},\n",
        info.stages, info.epochs, info.events
    ));
    j.push_str(&format!("  \"total_origins\": {},\n", info.total_origins));
    j.push_str(&format!(
        "  \"batch_fingerprint\": \"{:016x}\",\n",
        reference.fingerprint()
    ));
    j.push_str("  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let s = &r.out.stats;
        j.push_str(&format!(
            "    {{\"window_epochs\": {}, \"ingest_ms\": {:.3}, \"finalize_ms\": {:.3}, \"ingest_events_per_s\": {:.0}, \"peak_resident\": {}, \"evictions\": {}, \"revivals\": {}, \"pending_walks_at_flush\": {}, \"pending_edges_at_flush\": {}, \"identical_output\": {}, \"fingerprint\": \"{:016x}\"}}{}\n",
            r.window,
            r.ingest_ms,
            r.finalize_ms,
            r.events_per_s,
            s.peak_resident,
            s.evictions,
            s.revivals,
            s.pending_walks_at_flush,
            s.pending_edges_at_flush,
            r.identical,
            r.out.report.fingerprint(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    let (max_queue, poll_every, out, lag_identical) = lag;
    j.push_str(&format!(
        "  \"lag\": {{\"max_queue\": {}, \"poll_every\": {}, \"throttled\": {}, \"peak_queued\": {}, \"identical_output\": {}}},\n",
        max_queue, poll_every, out.stats.throttled, out.stats.peak_queued, lag_identical
    ));
    let (wire_bytes, wire_events_per_s, wire_identical) = wire;
    j.push_str(&format!(
        "  \"wire\": {{\"frames\": {}, \"bytes\": {}, \"ingest_events_per_s\": {:.0}, \"identical_output\": {}}}\n",
        info.epochs, wire_bytes, wire_events_per_s, wire_identical
    ));
    j.push_str("}\n");
    write_json_file(path, &j);
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("collectord: {e}");
            return ExitCode::FAILURE;
        }
    };
    header(
        "collectord",
        "streaming collector: retention-window sweep over a staggered fleet stream",
    );

    let cfg = fleet_config(args.clients, args.duration_s);
    println!(
        "recording 3-tier TPC-W delta stream: clients={} duration={}s epoch=1s",
        cfg.clients, args.duration_s
    );
    let mut sink = RecordingSink::default();
    let report = run_tpcw_streaming(cfg, CPU_HZ, &mut sink);
    assert_eq!(report.dumps.len(), 3, "all three tiers must dump");

    let reference = analyze(
        replicate_fleet(&report.dumps, args.replicas),
        PipelineConfig {
            workers: 1,
            shards: CollectorConfig::default().shards,
        },
    );
    let total_origins = reference.profiles.len();

    let (fleet_hdr, stream) = fleet_stream(&sink.header, &sink.batches, args.replicas, args.stagger);
    let stream_events: u64 = stream.iter().map(|b| b.events()).sum();
    println!(
        "fleet stream: {} replicas (stagger {}) -> {} stages, {} epochs, {} events, {} origins",
        args.replicas,
        args.stagger,
        fleet_hdr.stages.len(),
        stream.len(),
        stream_events,
        total_origins
    );

    let mut rows = Vec::new();
    let mut ok = true;
    for &window in &args.windows {
        let mut c = Collector::with_header(
            &fleet_hdr,
            CollectorConfig {
                window_epochs: window,
                ..CollectorConfig::default()
            },
        );
        let t = Instant::now();
        for b in &stream {
            assert!(c.enqueue(b.clone()), "unbounded queue refused a batch");
            c.drain();
        }
        let ingest_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let out = c.finalize();
        let finalize_ms = t.elapsed().as_secs_f64() * 1e3;
        let row = SweepRow {
            window,
            ingest_ms,
            finalize_ms,
            events_per_s: stream_events as f64 / (ingest_ms / 1e3).max(1e-9),
            identical: identical(&reference, &out.report),
            out,
        };
        let s = &row.out.stats;
        println!(
            "window={:2}  ingest {:8.1} ms ({:9.0} ev/s)  peak resident {:4}/{}  evictions {:4}  pending {}/{}  identical={}",
            row.window,
            row.ingest_ms,
            row.events_per_s,
            s.peak_resident,
            total_origins,
            s.evictions,
            s.pending_walks_at_flush,
            s.pending_edges_at_flush,
            row.identical
        );
        ok &= row.identical
            && !s.used_fallback
            && s.pending_walks_at_flush == 0
            && s.pending_edges_at_flush == 0
            && s.peak_resident < total_origins as u64
            && s.evictions > 0;
        rows.push(row);
    }

    // Lag scenario: a slow consumer behind a bounded queue. Offer every
    // batch; poll only every third offer, so the queue fills and
    // refuses. Refused batches are re-offered after a poll — lossy
    // ingest would break byte-identity, which stays asserted.
    let (max_queue, poll_every) = (4usize, 3usize);
    let mut c = Collector::with_header(
        &fleet_hdr,
        CollectorConfig {
            max_queue,
            ..CollectorConfig::default()
        },
    );
    for (i, b) in stream.iter().enumerate() {
        while !c.enqueue(b.clone()) {
            c.poll();
        }
        if i % poll_every == 0 {
            c.poll();
        }
    }
    let lag_out = c.finalize();
    let lag_identical = identical(&reference, &lag_out.report);
    println!(
        "lag: max_queue={} poll_every={}  throttled {}  peak queue {}  identical={}",
        max_queue, poll_every, lag_out.stats.throttled, lag_out.stats.peak_queued, lag_identical
    );
    ok &= lag_identical && lag_out.stats.throttled > 0;

    // Wire scenario: the same stream shipped as binary frames through
    // `enqueue_wire` — the deployment shape, where the emitter edge
    // encodes and the collector never sees a struct. Byte-identity and
    // a clean wire error counter are both asserted.
    let t = Instant::now();
    let mut c = Collector::new(CollectorConfig::default());
    c.start_wire(&wire::encode_header(&fleet_hdr))
        .expect("header frame decodes");
    let mut wire_bytes = 0u64;
    for b in &stream {
        let frame = wire::encode_batch(b);
        wire_bytes += frame.len() as u64;
        assert!(
            c.enqueue_wire(&frame).expect("clean frame decodes"),
            "unbounded queue refused a frame"
        );
        c.drain();
    }
    let wire_ingest_ms = t.elapsed().as_secs_f64() * 1e3;
    let wire_out = c.finalize();
    let wire_identical = identical(&reference, &wire_out.report)
        && !wire_out.stats.used_fallback
        && wire_out.stats.wire_errors == 0
        && wire_out.stats.wire_frames == stream.len() as u64;
    let wire_events_per_s = stream_events as f64 / (wire_ingest_ms / 1e3).max(1e-9);
    println!(
        "wire: {} frames, {} bytes  ingest {:8.1} ms ({:9.0} ev/s)  identical={}",
        wire_out.stats.wire_frames, wire_bytes, wire_ingest_ms, wire_events_per_s, wire_identical
    );
    ok &= wire_identical;

    write_json(
        &args.out,
        &args,
        &StreamInfo {
            stages: fleet_hdr.stages.len(),
            epochs: stream.len(),
            events: stream_events,
            total_origins,
        },
        &reference,
        &rows,
        &(max_queue, poll_every, lag_out, lag_identical),
        &(wire_bytes, wire_events_per_s, wire_identical),
    );
    println!("wrote {}", args.out);

    if !ok {
        eprintln!("FAIL: divergence (batch, lag, or wire path), leaked pending state, or eviction never engaged");
        return ExitCode::FAILURE;
    }
    println!("all windows byte-identical to batch; eviction engaged; no pending state leaked");
    ExitCode::SUCCESS
}
