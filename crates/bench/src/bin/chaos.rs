//! chaos: deterministic schedule/fault fuzzing over the 3-tier TPC-W
//! stack with invariant oracles, record-replay, and shrinking.
//!
//! Modes:
//!
//! - `chaos --seeds N [--base B] [--clients C] [--duration-s S] [--out DIR]`
//!   runs N sampled scenarios (each a distinct schedule policy + fault
//!   plan over the same workload), checks every oracle after each run,
//!   and on a violation shrinks the scenario and writes a repro file.
//!   Exits nonzero if any seed violated an oracle.
//! - `chaos --replay FILE` re-executes a repro file twice, verifies the
//!   two executions are bit-identical (equal fingerprints), and checks
//!   that the recorded violation — if any — re-triggers. Sentinel
//!   bundles (violation `slo:*`) are re-judged by reconstructing the
//!   tripped budget from the bundle's `slo_*` knobs and streaming the
//!   scenario through the sentinel.
//! - `chaos --selftest [--out DIR]` plants a known bounded-progress
//!   defect (the `livelock_pair` knob), verifies the explorer catches
//!   it, shrinks it, writes the repro, and replays it from disk —
//!   exercising the whole find → shrink → record → replay pipeline.

use std::process::ExitCode;
use whodunit_apps::chaos::{
    default_workload, run_scenario, still_fails_with, tpcw_space, SHRINKABLE_KNOBS,
};
use whodunit_apps::sentinel::run_with_sentinel;
use whodunit_collector::sentinel::SloBudget;
use whodunit_bench::header;
use whodunit_core::cost::CPU_HZ;
use whodunit_core::repro::{repro_from_json, repro_to_json, ChaosRepro, FaultEntry};
use whodunit_sim::explore::{sample_scenario, shrink};

struct Args {
    seeds: u64,
    base: u64,
    clients: Option<u64>,
    duration_s: Option<u64>,
    out: String,
    replay: Option<String>,
    selftest: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        seeds: 0,
        base: 0,
        clients: None,
        duration_s: None,
        out: "results/chaos".to_owned(),
        replay: None,
        selftest: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--seeds" => a.seeds = val("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?,
            "--base" => a.base = val("--base")?.parse().map_err(|e| format!("--base: {e}"))?,
            "--clients" => {
                a.clients = Some(val("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?)
            }
            "--duration-s" => {
                a.duration_s =
                    Some(val("--duration-s")?.parse().map_err(|e| format!("--duration-s: {e}"))?)
            }
            "--out" => a.out = val("--out")?,
            "--replay" => a.replay = Some(val("--replay")?),
            "--selftest" => a.selftest = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(a)
}

fn workload_for(args: &Args) -> Vec<(String, u64)> {
    let mut w = default_workload();
    let mut set = |name: &str, v: u64| {
        if let Some(k) = w.iter_mut().find(|(n, _)| n == name) {
            k.1 = v;
        }
    };
    if let Some(c) = args.clients {
        set("clients", c);
    }
    if let Some(s) = args.duration_s {
        set("duration", s * CPU_HZ);
        set("warmup", s * CPU_HZ / 4);
    }
    w
}

fn write_repro(out_dir: &str, name: &str, repro: &ChaosRepro) -> std::io::Result<String> {
    std::fs::create_dir_all(out_dir)?;
    let path = format!("{out_dir}/{name}.json");
    std::fs::write(&path, repro_to_json(repro))?;
    Ok(path)
}

/// Shrinks a failing scenario against its first violation kind and
/// writes the minimized repro. Returns the file path.
fn shrink_and_record(
    out_dir: &str,
    name: &str,
    repro: &ChaosRepro,
    kind: &str,
) -> std::io::Result<String> {
    let before = (repro.faults.len(), repro.knob("clients").unwrap_or(0));
    let mut small = shrink(repro, SHRINKABLE_KNOBS, |c| still_fails_with(c, kind));
    small.violation = Some(kind.to_owned());
    println!(
        "  shrunk: {} faults -> {}, clients {} -> {}",
        before.0,
        small.faults.len(),
        before.1,
        small.knob("clients").unwrap_or(0)
    );
    write_repro(out_dir, name, &small)
}

fn fuzz(args: &Args) -> ExitCode {
    header("chaos", "schedule/fault fuzzing with invariant oracles");
    let space = tpcw_space();
    let workload = workload_for(args);
    let mut violations = 0u64;
    for seed in args.base..args.base + args.seeds {
        let repro = sample_scenario(seed, &space, &workload);
        let res = run_scenario(&repro);
        let (d, u, l) = res.faults_seen;
        println!(
            "seed {seed:>4}  policy {:<24} faults {:>2}  dropped {d:>4} dup {u:>3} delayed {l:>4}  {}",
            repro.policy,
            repro.faults.len(),
            if res.violations.is_empty() {
                "ok".to_owned()
            } else {
                format!("VIOLATION: {}", res.violations[0])
            }
        );
        if let Some(v) = res.violations.first() {
            violations += 1;
            match shrink_and_record(&args.out, &format!("repro-seed{seed}"), &repro, v.kind()) {
                Ok(path) => println!("  repro written: {path}"),
                Err(e) => println!("  FAILED to write repro: {e}"),
            }
        }
    }
    if violations > 0 {
        println!("\nchaos: {violations} of {} seeds violated an oracle", args.seeds);
        ExitCode::FAILURE
    } else {
        println!("\nchaos: all {} seeds upheld every oracle", args.seeds);
        ExitCode::SUCCESS
    }
}

fn replay(path: &str) -> ExitCode {
    header("chaos --replay", path);
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let repro = match repro_from_json(&text) {
        Ok(r) => r,
        Err(e) => {
            println!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "seed {}  policy {}  faults {}  expected violation: {}",
        repro.seed,
        repro.policy,
        repro.faults.len(),
        repro.violation.as_deref().unwrap_or("none")
    );
    let a = run_scenario(&repro);
    let b = run_scenario(&repro);
    if a.fingerprint != b.fingerprint {
        println!(
            "NOT REPRODUCIBLE: fingerprints differ ({:#018x} vs {:#018x})",
            a.fingerprint, b.fingerprint
        );
        return ExitCode::FAILURE;
    }
    println!("bit-identical     two executions, fingerprint {:#018x}", a.fingerprint);
    println!("outcome           {}", a.outcome);
    for v in &a.violations {
        println!("violation         {v}");
    }
    match &repro.violation {
        // Sentinel bundles record an SLO trip, not an oracle violation:
        // the plain run above proves bit-identity, and the budget is
        // re-judged by streaming the same scenario through the sentinel.
        Some(kind) if kind.starts_with("slo:") => verify_slo(&repro, kind),
        Some(kind) if !a.has_violation(kind) => {
            println!("MISMATCH: recorded violation '{kind}' did not re-trigger");
            ExitCode::FAILURE
        }
        Some(kind) => {
            println!("replay            recorded violation '{kind}' re-triggered");
            ExitCode::SUCCESS
        }
        None if !a.violations.is_empty() => {
            println!("MISMATCH: clean repro now violates an oracle");
            ExitCode::FAILURE
        }
        None => {
            println!("replay            clean run, as recorded");
            ExitCode::SUCCESS
        }
    }
}

/// Re-judge a sentinel-captured SLO trip. The bundle is self-contained:
/// the `slo_*` knobs carry the tripped dimension's ceiling and the
/// watchdog's window parameters, and `window` carries the epoch length
/// and the trip epoch. Reconstructs a minimal single-dimension budget
/// and checks the same dimension trips at the same epoch.
fn verify_slo(repro: &ChaosRepro, kind: &str) -> ExitCode {
    let dim = &kind["slo:".len()..];
    let Some(win) = &repro.window else {
        println!("MISMATCH: slo repro has no capture window");
        return ExitCode::FAILURE;
    };
    let knob = |name: &str| {
        repro
            .knob(name)
            .ok_or_else(|| format!("MISMATCH: slo repro missing knob '{name}'"))
    };
    let reconstructed = || -> Result<SloBudget, String> {
        let ceiling = knob("slo_budget")?;
        let mut budget = SloBudget {
            quantile_ppm: knob("slo_quantile_ppm")?,
            window_epochs: knob("slo_window_epochs")?,
            warmup_epochs: knob("slo_warmup_epochs")?,
            ..SloBudget::default()
        };
        if let Some(stage) = dim.strip_prefix("tail:") {
            budget.stage_cycles = vec![(stage.to_owned(), ceiling)];
        } else if let Some(stage) = dim.strip_prefix("starve:") {
            budget.stage_floor = vec![(stage.to_owned(), ceiling)];
        } else if dim == "xt-wait" {
            budget.xt_wait = Some(ceiling);
        } else if dim == "lag" {
            budget.max_lag = Some(ceiling);
        } else if dim == "quarantine" {
            budget.max_quarantined = Some(ceiling);
        } else {
            return Err(format!("MISMATCH: unknown slo dimension '{dim}'"));
        }
        Ok(budget)
    };
    let budget = match reconstructed() {
        Ok(b) => b,
        Err(msg) => {
            println!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let run = run_with_sentinel(repro, &budget, win.epoch_len);
    match run.violation {
        Some(v) if v.dimension == dim && v.epoch == win.end => {
            println!(
                "replay            slo trip '{dim}' re-triggered at epoch {} (observed {} > budget {})",
                v.epoch, v.observed, v.budget
            );
            ExitCode::SUCCESS
        }
        Some(v) => {
            println!(
                "MISMATCH: slo replay tripped '{}' at epoch {} (recorded '{}' at epoch {})",
                v.dimension, v.epoch, dim, win.end
            );
            ExitCode::FAILURE
        }
        None => {
            println!("MISMATCH: recorded violation '{kind}' did not re-trigger");
            ExitCode::FAILURE
        }
    }
}

fn selftest(args: &Args) -> ExitCode {
    header("chaos --selftest", "planted livelock through the full pipeline");

    // A scenario with the planted zero-latency ping-pong defect, plus
    // decoy fault entries the shrinker must discover are irrelevant.
    let mut repro = ChaosRepro {
        seed: 0xDEFEC7,
        policy: "random:1".to_owned(),
        workload: default_workload(),
        faults: vec![
            FaultEntry::Drop {
                chan: "db".into(),
                ppm: 20_000,
            },
            FaultEntry::Delay {
                chan: "front".into(),
                ppm: 50_000,
                cycles: CPU_HZ / 1000,
            },
        ],
        violation: None,
        window: None,
    };
    repro.set_knob("livelock_pair", 1);
    repro.set_knob("step_budget", 50_000);

    let res = run_scenario(&repro);
    assert!(
        res.has_violation("progress"),
        "planted livelock not caught; violations: {:?}",
        res.violations
    );
    println!("find              progress oracle fired: {}", res.outcome);

    let path = match shrink_and_record(&args.out, "repro-selftest", &repro, "progress") {
        Ok(p) => p,
        Err(e) => {
            println!("FAILED to write repro: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("record            {path}");

    // Re-read from disk and verify the shrunk repro still fails, the
    // decoys are gone, and the run is bit-reproducible.
    let back = repro_from_json(&std::fs::read_to_string(&path).expect("repro readable"))
        .expect("repro parses");
    assert!(back.faults.is_empty(), "decoy faults survived shrinking");
    assert_eq!(back.knob("clients"), Some(1), "clients not shrunk");
    assert_eq!(back.violation.as_deref(), Some("progress"));
    let a = run_scenario(&back);
    let b = run_scenario(&back);
    assert_eq!(a.fingerprint, b.fingerprint, "replay not bit-identical");
    assert!(a.has_violation("progress"), "shrunk repro lost the failure");
    println!("replay            shrunk repro re-triggers 'progress', bit-identically");

    println!("\nchaos --selftest: find -> shrink -> record -> replay all held");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            println!("chaos: {e}");
            println!(
                "usage: chaos --seeds N [--base B] [--clients C] [--duration-s S] [--out DIR]"
            );
            println!("       chaos --replay FILE");
            println!("       chaos --selftest [--out DIR]");
            return ExitCode::FAILURE;
        }
    };
    if args.selftest {
        selftest(&args)
    } else if let Some(path) = args.replay.clone() {
        replay(&path)
    } else if args.seeds > 0 {
        fuzz(&args)
    } else {
        println!("chaos: nothing to do (pass --seeds N, --replay FILE, or --selftest)");
        ExitCode::FAILURE
    }
}
