//! Figure 8: transactional profile of Apache under the web workload.
//!
//! The listener thread's `apr_socket_accept`/`ap_queue_push` path and
//! the worker threads' `ap_queue_pop` → `ap_process_connection` →
//! `sendfile` path are connected by a transaction-context edge that
//! Whodunit establishes by detecting flow through the shared fd queue
//! (the paper reports listener ≈2.4% and `ap_process_connection`
//! ≈22.7% of Apache's profile; the worker side dominates).

use whodunit_apps::httpd::{run_httpd, HttpdConfig};
use whodunit_apps::rtconf::RtKind;
use whodunit_bench::{compare, header};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::shm::FlowEvent;
use whodunit_core::Runtime;
use whodunit_report::render;

fn main() {
    header(
        "Figure 8",
        "transactional profile of Apache (listener -> worker flow via shared memory)",
    );
    let r = run_httpd(HttpdConfig {
        clients: 24,
        workers: 8,
        duration: 30 * CPU_HZ,
        rt: RtKind::Whodunit,
        ..HttpdConfig::default()
    });
    let w = r
        .runtime
        .whodunit
        .as_ref()
        .expect("whodunit installed")
        .borrow();
    let dump = w.dump().expect("profile dumped");

    println!("{}", render::render_stage(&dump));

    // The dashed transaction edge of Figure 8: flow detected through
    // the fd queue from the listener context into the workers.
    let consumed = w
        .flow_log()
        .iter()
        .filter(|e| matches!(e, FlowEvent::Consumed { lock, .. } if *lock == r.fdq_lock))
        .count();
    println!("fd-queue consume events (transaction-context hand-offs): {consumed}");
    assert!(consumed > 50, "flow detected repeatedly");
    assert!(
        !w.detector().flow_enabled(r.alloc_lock),
        "the memory allocator is excluded from flow"
    );

    // Profile share comparison: listener accept path vs worker
    // processing path.
    let mut accept_pct = 0.0;
    let mut process_pct = 0.0;
    let mut total = 0u64;
    let mut per: Vec<(String, u64)> = Vec::new();
    for c in &dump.ccts {
        let cct = dump.rebuild_cct(c).expect("profiler-produced dump is well-formed");
        for id in cct.node_ids() {
            if let Some(f) = cct.frame(id) {
                let name = dump.frames[f.0 as usize].clone();
                let m = cct.metrics(id);
                total += m.samples;
                per.push((name, m.samples));
            }
        }
    }
    for (name, samples) in per {
        let pct = samples as f64 * 100.0 / total.max(1) as f64;
        if name == "apr_socket_accept" || name == "ap_queue_push" {
            accept_pct += pct;
        }
        if name == "ap_process_connection" || name == "sendfile" {
            process_pct += pct;
        }
    }
    compare("listener accept+push share", 2.4, accept_pct, "%");
    compare(
        "worker process+sendfile share",
        22.7 + 70.0,
        process_pct,
        "%",
    );
    println!("\n(The paper's figure shows only a portion of the profile; the");
    println!("worker serving path dominating the listener path is the shape.)");
    assert!(
        process_pct > 10.0 * accept_pct,
        "workers dominate the profile"
    );
    println!(
        "Throughput while profiled: {:.1} Mb/s over {} connections",
        r.throughput_mbps, r.conns
    );
}
