//! §9.3: Whodunit's overhead on Squid and Haboob.
//!
//! Paper: Squid 262.27 → 247.85 Mb/s (5.5%); Haboob 31.16 → 29.84 Mb/s
//! (4.2%).

use whodunit_apps::proxy::{run_proxy, ProxyConfig};
use whodunit_apps::rtconf::RtKind;
use whodunit_apps::sedasrv::{run_haboob, HaboobConfig};
use whodunit_bench::{compare, header};
use whodunit_core::cost::CPU_HZ;

fn main() {
    header(
        "Section 9.3",
        "Squid and Haboob peak throughput, profiling disabled vs Whodunit",
    );
    let squid = |rt| {
        run_proxy(ProxyConfig {
            clients: 28,
            duration: 25 * CPU_HZ,
            rt,
            ..ProxyConfig::default()
        })
        .throughput_mbps
    };
    let sq_base = squid(RtKind::None);
    let sq_prof = squid(RtKind::Whodunit);
    compare("Squid profiling disabled", 262.27, sq_base, "Mb/s");
    compare("Squid under Whodunit", 247.85, sq_prof, "Mb/s");
    let sq_oh = 100.0 * (1.0 - sq_prof / sq_base);
    compare("Squid overhead", 5.5, sq_oh, "%");

    let haboob = |rt| {
        run_haboob(HaboobConfig {
            clients: 28,
            duration: 25 * CPU_HZ,
            rt,
            ..HaboobConfig::default()
        })
        .throughput_mbps
    };
    let hb_base = haboob(RtKind::None);
    let hb_prof = haboob(RtKind::Whodunit);
    println!();
    compare("Haboob profiling disabled", 31.16, hb_base, "Mb/s");
    compare("Haboob under Whodunit", 29.84, hb_prof, "Mb/s");
    let hb_oh = 100.0 * (1.0 - hb_prof / hb_base);
    compare("Haboob overhead", 4.2, hb_oh, "%");

    assert!(sq_prof < sq_base && hb_prof < hb_base);
    assert!(sq_oh < 12.0 && hb_oh < 12.0);
}
