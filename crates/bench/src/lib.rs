//! Shared helpers for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation, printing the paper's reported values next to the
//! measured ones so shape agreement (who wins, by what factor, where
//! knees fall) is visible at a glance. `EXPERIMENTS.md` records the
//! outcomes.
//!
//! The fleet-scale analysis benches (`pipeline`, `collectord`) share
//! their scenario setup and JSON emission through this crate instead of
//! carrying per-bin copies: [`fleet_config`], [`clamp_replicas`],
//! [`run_fleet`], [`json_escape`], and [`write_json_file`].

use whodunit_apps::federation::{fleet_epochs, leaf_stream, replica_header};
use whodunit_apps::tpcw::{run_tpcw, TpcwConfig, TpcwReport};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::delta::{EpochBatch, StreamHeader};
use whodunit_core::pipeline::replicate_fleet;
use whodunit_core::stitch::StageDump;

/// Prints a standard experiment header.
pub fn header(id: &str, title: &str) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!("==========================================================");
}

/// Formats a paper-vs-measured comparison line.
pub fn compare(label: &str, paper: f64, measured: f64, unit: &str) {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    println!("{label:<44} paper {paper:>10.2} {unit:<8} measured {measured:>10.2} {unit:<8} (x{ratio:.2})");
}

/// The standard fleet-bench TPC-W configuration: `duration_s` seconds
/// of simulated traffic with a quarter of it as warmup.
pub fn fleet_config(clients: u32, duration_s: u64) -> TpcwConfig {
    TpcwConfig {
        clients,
        duration: duration_s * CPU_HZ,
        warmup: (duration_s / 4) * CPU_HZ,
        ..Default::default()
    }
}

/// Default replica cap: 3 tiers per replica inside the 8-bit
/// process-id space, which keeps synopses at their 4-byte wire size.
pub const DEFAULT_REPLICA_CAP: usize = 85;

/// The effective replica cap: `WHODUNIT_MAX_REPLICAS` when set to a
/// positive integer, [`DEFAULT_REPLICA_CAP`] otherwise. Raising the
/// cap is safe since synopses widened to 64-bit process ids; the
/// federation bench uses it to scale the fleet into the thousands.
pub fn replica_cap() -> usize {
    std::env::var("WHODUNIT_MAX_REPLICAS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&cap| cap >= 1)
        .unwrap_or(DEFAULT_REPLICA_CAP)
}

/// Clamps a replica count to `[1, cap]`.
pub fn clamp_replicas_to(replicas: usize, cap: usize) -> usize {
    replicas.clamp(1, cap.max(1))
}

/// Clamps a replica count to the effective cap ([`replica_cap`]).
pub fn clamp_replicas(replicas: usize) -> usize {
    clamp_replicas_to(replicas, replica_cap())
}

/// Runs the 3-tier TPC-W stack once and replicates its dumps into a
/// `replicas`-wide fleet of disjoint-process-id copies — the shared
/// scenario setup of the fleet-scale analysis benches.
pub fn run_fleet(cfg: TpcwConfig, replicas: usize) -> (TpcwReport, Vec<StageDump>) {
    let report = run_tpcw(cfg);
    assert_eq!(report.dumps.len(), 3, "all three tiers must dump");
    let fleet = replicate_fleet(&report.dumps, replicas);
    (report, fleet)
}

/// Replicates a recorded single-stack delta stream into a staggered
/// fleet stream: replica `r`'s batches are process-remapped into the
/// `r*g..r*g+g` stage range (mirroring `replicate_fleet`) and start
/// `r * stagger` epochs late. Shared by the streaming-ingest benches
/// (`collectord`, `hotpath`).
pub fn fleet_stream(
    hdr: &StreamHeader,
    batches: &[EpochBatch],
    replicas: usize,
    stagger: u64,
) -> (StreamHeader, Vec<EpochBatch>) {
    let total = fleet_epochs(batches.len(), replicas, stagger);
    let slice = leaf_stream(hdr, batches, 0, replicas, stagger, total, CPU_HZ);
    // The federation splitter omits content-free epochs; the flat
    // ingest benches expect a dense batch sequence, so reinsert them.
    let mut out = Vec::with_capacity(total as usize);
    let mut it = slice.into_iter().peekable();
    for ge in 0..total {
        if it.peek().is_some_and(|b| b.epoch == ge) {
            out.push(it.next().expect("peeked"));
        } else {
            out.push(EpochBatch {
                epoch: ge,
                seq: ge,
                end: (ge + 1) * CPU_HZ,
                deltas: Vec::new(),
            });
        }
    }
    (replica_header(hdr, replicas), out)
}

/// The shared scenario corpus of the differential and stress suites.
///
/// Every suite that sweeps the "36-scenario matrix" (6 seeds × 3
/// schedule policies × clean/faulty) builds it from here —
/// `core/tests/parallel_diff.rs`, `core/tests/thread_stress.rs`,
/// `collector/tests/streaming_diff.rs`, `collector/tests/thread_stress.rs`,
/// `collector/tests/federation_diff.rs`, `tests/golden_federation.rs`,
/// and the `parallel` bench bin — instead of carrying per-file copies
/// that can drift apart. A corpus change here intentionally moves
/// every one of those suites at once.
pub mod matrix {
    use whodunit_apps::tpcw::{run_tpcw, TpcwConfig, TpcwFaults};
    use whodunit_core::cost::CPU_HZ;
    use whodunit_core::stitch::StageDump;
    use whodunit_sim::fault::ChannelFaults;
    use whodunit_sim::sched::SchedulePolicy;

    /// The matrix seeds: 6 × [`schedules`] × clean/faulty = 36.
    pub const SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];

    /// Worker counts every parallel execution surface is swept across
    /// (1 is the serial reference; 3 and 8 are deliberately not
    /// divisors/multiples of the 2-or-3-stage item counts).
    pub const WORKER_SWEEP: [usize; 5] = [1, 2, 3, 4, 8];

    /// The three schedule policies per seed.
    pub fn schedules(seed: u64) -> [SchedulePolicy; 3] {
        [
            SchedulePolicy::Fifo,
            SchedulePolicy::Random { seed: seed ^ 0xa5 },
            SchedulePolicy::Perturb {
                seed: seed ^ 0x5a,
                swap_ppm: 200_000,
            },
        ]
    }

    /// The matrix fault plan: lossy/dup/laggy DB channel, lossy
    /// frontend channel.
    pub fn faults(seed: u64) -> TpcwFaults {
        TpcwFaults {
            seed: seed ^ 0xfa07,
            db_chan: ChannelFaults {
                drop_p: 0.02,
                dup_p: 0.01,
                delay_p: 0.05,
                delay_cycles: CPU_HZ / 100,
            },
            front_chan: ChannelFaults {
                drop_p: 0.01,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// One matrix scenario's TPC-W configuration.
    pub fn scenario_cfg(seed: u64, sched: SchedulePolicy, faulty: bool) -> TpcwConfig {
        TpcwConfig {
            clients: 12,
            duration: 25 * CPU_HZ,
            warmup: 5 * CPU_HZ,
            seed,
            sched,
            faults: faulty.then(|| faults(seed)),
            step_budget: Some(2_000_000),
            ..Default::default()
        }
    }

    /// Runs one matrix scenario and returns its three stage dumps.
    pub fn scenario_dumps(seed: u64, sched: SchedulePolicy, faulty: bool) -> Vec<StageDump> {
        let report = run_tpcw(scenario_cfg(seed, sched, faulty));
        assert_eq!(report.dumps.len(), 3, "squid, tomcat, mysql all dump");
        report.dumps
    }

    /// The 12-scenario inference slice of the matrix: the 6 seeds ×
    /// clean/faulty under Fifo, each with the passive comm-event log
    /// enabled so black-box inference (`whodunit-infer`) has a trace
    /// to stitch and score. Fifo only: the inference suites measure
    /// attribution quality against message-level ground truth, and the
    /// fault axis (drops, dups, delays) already supplies the pairing
    /// ambiguity that the schedule axis would add; the full 36-way
    /// product stays with the byte-identity suites.
    pub fn inference_slice() -> Vec<(String, TpcwConfig)> {
        let mut out = Vec::new();
        for faulty in [false, true] {
            for seed in SEEDS {
                let mut cfg = scenario_cfg(seed, SchedulePolicy::Fifo, faulty);
                cfg.comm_log = true;
                let kind = if faulty { "faulty" } else { "clean" };
                out.push((format!("tpcw/{kind}/s{seed}"), cfg));
            }
        }
        out
    }

    /// The federation suites' smaller clean scenario (fan-in shapes
    /// multiply the replica count, so each stack run is shorter).
    pub fn federation_cfg(seed: u64) -> TpcwConfig {
        TpcwConfig {
            clients: 10,
            duration: 20 * CPU_HZ,
            warmup: 5 * CPU_HZ,
            seed,
            step_budget: Some(2_000_000),
            ..Default::default()
        }
    }
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes a JSON document, creating parent directories as needed.
pub fn write_json_file(path: &str, content: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(path, content).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_with_explicit_cap() {
        assert_eq!(clamp_replicas_to(0, 85), 1);
        assert_eq!(clamp_replicas_to(40, 85), 40);
        assert_eq!(clamp_replicas_to(1000, 85), 85);
        assert_eq!(clamp_replicas_to(4096, 2048), 2048);
        assert_eq!(clamp_replicas_to(7, 0), 1, "degenerate cap still clamps");
    }

    #[test]
    fn clamp_with_env_cap() {
        // Exercises the env-resolution path end to end. The var is
        // process-global, so this is the only test that touches it.
        std::env::set_var("WHODUNIT_MAX_REPLICAS", "2048");
        assert_eq!(replica_cap(), 2048);
        assert_eq!(clamp_replicas(4096), 2048);
        std::env::set_var("WHODUNIT_MAX_REPLICAS", "not-a-number");
        assert_eq!(replica_cap(), DEFAULT_REPLICA_CAP, "garbage falls back");
        std::env::set_var("WHODUNIT_MAX_REPLICAS", "0");
        assert_eq!(replica_cap(), DEFAULT_REPLICA_CAP, "zero falls back");
        std::env::remove_var("WHODUNIT_MAX_REPLICAS");
        assert_eq!(replica_cap(), DEFAULT_REPLICA_CAP);
        assert_eq!(clamp_replicas(1000), 85);
        assert_eq!(clamp_replicas(0), 1);
    }
}
