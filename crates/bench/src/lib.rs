//! Shared helpers for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation, printing the paper's reported values next to the
//! measured ones so shape agreement (who wins, by what factor, where
//! knees fall) is visible at a glance. `EXPERIMENTS.md` records the
//! outcomes.
//!
//! The fleet-scale analysis benches (`pipeline`, `collectord`) share
//! their scenario setup and JSON emission through this crate instead of
//! carrying per-bin copies: [`fleet_config`], [`clamp_replicas`],
//! [`run_fleet`], [`json_escape`], and [`write_json_file`].

use whodunit_apps::tpcw::{run_tpcw, TpcwConfig, TpcwReport};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::pipeline::replicate_fleet;
use whodunit_core::stitch::StageDump;

/// Prints a standard experiment header.
pub fn header(id: &str, title: &str) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!("==========================================================");
}

/// Formats a paper-vs-measured comparison line.
pub fn compare(label: &str, paper: f64, measured: f64, unit: &str) {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    println!("{label:<44} paper {paper:>10.2} {unit:<8} measured {measured:>10.2} {unit:<8} (x{ratio:.2})");
}

/// The standard fleet-bench TPC-W configuration: `duration_s` seconds
/// of simulated traffic with a quarter of it as warmup.
pub fn fleet_config(clients: u32, duration_s: u64) -> TpcwConfig {
    TpcwConfig {
        clients,
        duration: duration_s * CPU_HZ,
        warmup: (duration_s / 4) * CPU_HZ,
        ..Default::default()
    }
}

/// Clamps a replica count so 3 tiers per replica stay inside the 8-bit
/// process-id space.
pub fn clamp_replicas(replicas: usize) -> usize {
    replicas.clamp(1, 85)
}

/// Runs the 3-tier TPC-W stack once and replicates its dumps into a
/// `replicas`-wide fleet of disjoint-process-id copies — the shared
/// scenario setup of the fleet-scale analysis benches.
pub fn run_fleet(cfg: TpcwConfig, replicas: usize) -> (TpcwReport, Vec<StageDump>) {
    let report = run_tpcw(cfg);
    assert_eq!(report.dumps.len(), 3, "all three tiers must dump");
    let fleet = replicate_fleet(&report.dumps, replicas);
    (report, fleet)
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes a JSON document, creating parent directories as needed.
pub fn write_json_file(path: &str, content: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(path, content).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}
