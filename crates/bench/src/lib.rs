//! Shared helpers for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation, printing the paper's reported values next to the
//! measured ones so shape agreement (who wins, by what factor, where
//! knees fall) is visible at a glance. `EXPERIMENTS.md` records the
//! outcomes.

/// Prints a standard experiment header.
pub fn header(id: &str, title: &str) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!("==========================================================");
}

/// Formats a paper-vs-measured comparison line.
pub fn compare(label: &str, paper: f64, measured: f64, unit: &str) {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    println!("{label:<44} paper {paper:>10.2} {unit:<8} measured {measured:>10.2} {unit:<8} (x{ratio:.2})");
}
