//! Shared helpers for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation, printing the paper's reported values next to the
//! measured ones so shape agreement (who wins, by what factor, where
//! knees fall) is visible at a glance. `EXPERIMENTS.md` records the
//! outcomes.
//!
//! The fleet-scale analysis benches (`pipeline`, `collectord`) share
//! their scenario setup and JSON emission through this crate instead of
//! carrying per-bin copies: [`fleet_config`], [`clamp_replicas`],
//! [`run_fleet`], [`json_escape`], and [`write_json_file`].

use std::collections::HashMap;
use whodunit_apps::tpcw::{run_tpcw, TpcwConfig, TpcwReport};
use whodunit_core::cost::CPU_HZ;
use whodunit_core::delta::{EpochBatch, StreamHeader, StreamStage};
use whodunit_core::pipeline::replicate_fleet;
use whodunit_core::stitch::StageDump;

/// Prints a standard experiment header.
pub fn header(id: &str, title: &str) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!("==========================================================");
}

/// Formats a paper-vs-measured comparison line.
pub fn compare(label: &str, paper: f64, measured: f64, unit: &str) {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    println!("{label:<44} paper {paper:>10.2} {unit:<8} measured {measured:>10.2} {unit:<8} (x{ratio:.2})");
}

/// The standard fleet-bench TPC-W configuration: `duration_s` seconds
/// of simulated traffic with a quarter of it as warmup.
pub fn fleet_config(clients: u32, duration_s: u64) -> TpcwConfig {
    TpcwConfig {
        clients,
        duration: duration_s * CPU_HZ,
        warmup: (duration_s / 4) * CPU_HZ,
        ..Default::default()
    }
}

/// Clamps a replica count so 3 tiers per replica stay inside the 8-bit
/// process-id space.
pub fn clamp_replicas(replicas: usize) -> usize {
    replicas.clamp(1, 85)
}

/// Runs the 3-tier TPC-W stack once and replicates its dumps into a
/// `replicas`-wide fleet of disjoint-process-id copies — the shared
/// scenario setup of the fleet-scale analysis benches.
pub fn run_fleet(cfg: TpcwConfig, replicas: usize) -> (TpcwReport, Vec<StageDump>) {
    let report = run_tpcw(cfg);
    assert_eq!(report.dumps.len(), 3, "all three tiers must dump");
    let fleet = replicate_fleet(&report.dumps, replicas);
    (report, fleet)
}

/// Replicates a recorded single-stack delta stream into a staggered
/// fleet stream: replica `r`'s batches are process-remapped into the
/// `r*g..r*g+g` stage range (mirroring `replicate_fleet`) and start
/// `r * stagger` epochs late. Shared by the streaming-ingest benches
/// (`collectord`, `hotpath`).
pub fn fleet_stream(
    hdr: &StreamHeader,
    batches: &[EpochBatch],
    replicas: usize,
    stagger: u64,
) -> (StreamHeader, Vec<EpochBatch>) {
    let g = hdr.stages.len();
    let proc_index: HashMap<u32, usize> = hdr
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| (s.proc, i))
        .collect();
    let mut stages = Vec::with_capacity(g * replicas);
    for r in 0..replicas {
        for s in &hdr.stages {
            stages.push(StreamStage {
                proc: (r * g + proc_index[&s.proc]) as u32,
                stage_name: s.stage_name.clone(),
            });
        }
    }
    let local_epochs = batches.len() as u64;
    let total = local_epochs + (replicas as u64 - 1) * stagger;
    let mut out = Vec::with_capacity(total as usize);
    for ge in 0..total {
        let mut deltas = Vec::new();
        for r in 0..replicas {
            let start = r as u64 * stagger;
            if ge < start || ge - start >= local_epochs {
                continue;
            }
            let b = &batches[(ge - start) as usize];
            let map = |p: u32| proc_index.get(&p).map(|&i| (r * g + i) as u32);
            for d in &b.deltas {
                deltas.push(d.with_remapped_proc(r * g + d.stage, &map));
            }
        }
        out.push(EpochBatch {
            epoch: ge,
            seq: ge,
            end: (ge + 1) * CPU_HZ,
            deltas,
        });
    }
    (StreamHeader { stages }, out)
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes a JSON document, creating parent directories as needed.
pub fn write_json_file(path: &str, content: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(path, content).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}
