//! Criterion microbenchmarks of Whodunit's hot primitives (real wall
//! time, complementing the virtual-time experiments):
//!
//! - CCT sample recording (the per-sample cost csprof/Whodunit pay);
//! - transaction-context append with collapse/pruning (§4.1);
//! - synopsis minting and chain classification (§7.4);
//! - the §3 flow detector on a produce/consume round;
//! - guest-code emulation of the fd-queue critical sections (Table 3's
//!   real-time analogue);
//! - a full simulated Apache second (substrate end-to-end).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use whodunit_apps::httpd::{run_httpd, HttpdConfig};
use whodunit_apps::rtconf::RtKind;
use whodunit_core::cct::{Cct, Metrics};
use whodunit_core::context::{ContextTable, CtxId};
use whodunit_core::frame::FrameId;
use whodunit_core::ids::{LockId, ThreadId};
use whodunit_core::ipc::IpcTracker;
use whodunit_core::shm::{FlowDetector, Loc, MemEvent};
use whodunit_core::synopsis::SynopsisTable;
use whodunit_vm::programs::FdQueue;
use whodunit_vm::{Cpu, CsEmulator, ExecMode, GuestMem, TranslationCache};

fn bench_cct(c: &mut Criterion) {
    let paths: Vec<Vec<FrameId>> = (0..64)
        .map(|i| (0..6).map(|d| FrameId((i * 7 + d * 3) % 40)).collect())
        .collect();
    c.bench_function("cct_record_sample", |b| {
        let mut cct = Cct::new();
        let mut i = 0;
        b.iter(|| {
            cct.record(
                black_box(&paths[i % paths.len()]),
                Metrics {
                    samples: 1,
                    cycles: 100,
                    calls: 0,
                },
            );
            i += 1;
        });
    });
}

fn bench_context(c: &mut Criterion) {
    c.bench_function("context_append_frame_pruned", |b| {
        let mut t = ContextTable::default();
        let mut ctx = CtxId::ROOT;
        let mut i = 0u32;
        b.iter(|| {
            ctx = t.append_frame(ctx, FrameId(i % 5));
            i += 1;
            black_box(ctx)
        });
    });
}

fn bench_synopsis(c: &mut Criterion) {
    c.bench_function("synopsis_mint_and_send", |b| {
        let mut ctxs = ContextTable::default();
        let mut syns = SynopsisTable::new(1u32);
        let mut ipc = IpcTracker::new();
        let mut i = 0u32;
        b.iter(|| {
            let path = [FrameId(i % 17), FrameId(1)];
            let send_ctx = ctxs.append_path(CtxId::ROOT, &path);
            let chain = ipc.send(&ctxs, &mut syns, CtxId::ROOT, send_ctx);
            i += 1;
            black_box(chain)
        });
    });
}

fn bench_flow_detector(c: &mut Criterion) {
    c.bench_function("flow_detector_produce_consume_round", |b| {
        let mut d = FlowDetector::default();
        let lock = LockId(1);
        let prod = ThreadId(1);
        let cons = ThreadId(2);
        let mut out = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            let slot = 100 + (i % 32);
            d.on_event(prod, CtxId(7), &MemEvent::CsEnter { lock }, &mut out);
            d.on_event(
                prod,
                CtxId(7),
                &MemEvent::Mov {
                    src: Loc::Mem(1),
                    dst: Loc::Reg(prod, 1),
                },
                &mut out,
            );
            d.on_event(
                prod,
                CtxId(7),
                &MemEvent::Mov {
                    src: Loc::Reg(prod, 1),
                    dst: Loc::Mem(slot),
                },
                &mut out,
            );
            d.on_event(prod, CtxId(7), &MemEvent::CsExit, &mut out);
            d.on_event(cons, CtxId(8), &MemEvent::CsEnter { lock }, &mut out);
            d.on_event(
                cons,
                CtxId(8),
                &MemEvent::Mov {
                    src: Loc::Mem(slot),
                    dst: Loc::Reg(cons, 1),
                },
                &mut out,
            );
            d.on_event(cons, CtxId(8), &MemEvent::CsExit, &mut out);
            d.on_event(
                cons,
                CtxId(8),
                &MemEvent::Use {
                    loc: Loc::Reg(cons, 1),
                },
                &mut out,
            );
            out.clear();
            i += 1;
        });
    });
}

fn bench_emulation(c: &mut Criterion) {
    let q = FdQueue::new(3);
    let mut group = c.benchmark_group("fd_queue_guest");
    group.bench_function("push_direct", |b| {
        let mut mem = GuestMem::new(FdQueue::mem_words(512));
        FdQueue::init(&mut mem, 500);
        let emu = CsEmulator::default();
        b.iter(|| {
            mem.write(0, 0); // reset nelts
            let mut cpu = Cpu::new(ThreadId(1));
            cpu.regs[1] = 42;
            emu.run(&q.push, &mut cpu, &mut mem, ExecMode::Direct, &mut |_| {})
        });
    });
    group.bench_function("push_emulated_cached", |b| {
        let mut mem = GuestMem::new(FdQueue::mem_words(512));
        FdQueue::init(&mut mem, 500);
        let mut tc = TranslationCache::new();
        let emu = CsEmulator::default();
        b.iter(|| {
            mem.write(0, 0);
            let mut cpu = Cpu::new(ThreadId(1));
            cpu.regs[1] = 42;
            emu.run(
                &q.push,
                &mut cpu,
                &mut mem,
                ExecMode::Emulated { tcache: &mut tc },
                &mut |e| {
                    black_box(e);
                },
            )
        });
    });
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.bench_function("httpd_one_virtual_second", |b| {
        b.iter(|| {
            run_httpd(HttpdConfig {
                clients: 8,
                workers: 4,
                duration: 2_400_000_000,
                rt: RtKind::Whodunit,
                ..HttpdConfig::default()
            })
            .reqs
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cct,
    bench_context,
    bench_synopsis,
    bench_flow_detector,
    bench_emulation,
    bench_substrate
);
criterion_main!(benches);
