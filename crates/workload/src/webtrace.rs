//! Synthetic web-server trace (stand-in for the Rice CS trace).
//!
//! The paper replays a trace collected at Rice's CS department web
//! server against Apache, Squid, and Haboob. The properties the
//! experiments depend on are:
//!
//! - a skewed file popularity (so proxy/server caches get realistic hit
//!   rates),
//! - a heavy-tailed file-size distribution (so throughput is
//!   bytes-dominated by large files),
//! - clients that "open new connections, send a few HTTP requests over
//!   them, close the connections, and then again send more requests
//!   over new connections" (§9.2) — each new connection crosses
//!   Apache's fd queue and forces critical-section emulation.
//!
//! This module synthesizes a request stream with those properties from
//! a seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic trace.
#[derive(Clone, Debug)]
pub struct WebTraceConfig {
    /// Number of distinct files.
    pub files: usize,
    /// Zipf skew of file popularity (1.0 ≈ classic web traces).
    pub zipf_alpha: f64,
    /// Mean requests per connection (geometric); the paper's workload
    /// sends "a few" requests per connection.
    pub mean_reqs_per_conn: f64,
    /// Median file size in bytes.
    pub median_file_bytes: u64,
    /// Log-normal sigma of the size distribution.
    pub size_sigma: f64,
    /// RNG seed for the *file population* (sizes, popularity). Trace
    /// instances with the same `seed` agree on every file's size, so
    /// caches at different tiers stay consistent.
    pub seed: u64,
    /// Request-stream selector: instances with the same `seed` but
    /// different `stream`s draw different request sequences over the
    /// same file population (one stream per emulated client).
    pub stream: u64,
}

impl Default for WebTraceConfig {
    fn default() -> Self {
        WebTraceConfig {
            files: 2000,
            zipf_alpha: 1.0,
            mean_reqs_per_conn: 4.0,
            median_file_bytes: 8 * 1024,
            size_sigma: 1.2,
            seed: 42,
            stream: 0,
        }
    }
}

/// One HTTP request drawn from the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WebRequest {
    /// File identifier.
    pub file: u32,
    /// Response size in bytes.
    pub bytes: u64,
    /// Whether this request is the last on its connection (the next
    /// request opens a fresh connection).
    pub last_on_connection: bool,
}

/// A seeded synthetic web trace.
#[derive(Clone, Debug)]
pub struct WebTrace {
    cfg: WebTraceConfig,
    rng: SmallRng,
    /// Zipf inverse-CDF table: cumulative popularity per rank.
    cdf: Vec<f64>,
    /// Per-file sizes (fixed per file, heavy-tailed across files).
    sizes: Vec<u64>,
    left_on_conn: u64,
}

impl WebTrace {
    /// Builds the trace generator.
    pub fn new(cfg: WebTraceConfig) -> Self {
        assert!(cfg.files > 0, "trace needs at least one file");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // Zipf CDF over ranks 1..=files.
        let mut cdf = Vec::with_capacity(cfg.files);
        let mut acc = 0.0;
        for rank in 1..=cfg.files {
            acc += 1.0 / (rank as f64).powf(cfg.zipf_alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Log-normal sizes: median * exp(sigma * N(0,1)).
        let sizes = (0..cfg.files)
            .map(|_| {
                let n = normal(&mut rng);
                let s = cfg.median_file_bytes as f64 * (cfg.size_sigma * n).exp();
                (s.max(128.0)) as u64
            })
            .collect();
        // Requests come from a per-stream RNG so clients sharing a
        // file population draw independent sequences.
        let stream_rng = SmallRng::seed_from_u64(
            cfg.seed ^ cfg.stream.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bd1,
        );
        let _ = rng;
        let mut t = WebTrace {
            cfg,
            rng: stream_rng,
            cdf,
            sizes,
            left_on_conn: 0,
        };
        t.left_on_conn = t.draw_conn_len();
        t
    }

    fn draw_conn_len(&mut self) -> u64 {
        // Geometric with the configured mean, at least 1.
        let p = 1.0 / self.cfg.mean_reqs_per_conn.max(1.0);
        let mut n = 1;
        while self.rng.gen::<f64>() > p && n < 64 {
            n += 1;
        }
        n
    }

    /// Draws the next request.
    pub fn next_request(&mut self) -> WebRequest {
        let u = self.rng.gen::<f64>();
        let file = self.cdf.partition_point(|&c| c < u).min(self.cfg.files - 1) as u32;
        self.left_on_conn -= 1;
        let last = self.left_on_conn == 0;
        if last {
            self.left_on_conn = self.draw_conn_len();
        }
        WebRequest {
            file,
            bytes: self.sizes[file as usize],
            last_on_connection: last,
        }
    }

    /// The fixed size of `file`.
    pub fn file_size(&self, file: u32) -> u64 {
        self.sizes[file as usize]
    }

    /// Number of distinct files.
    pub fn files(&self) -> usize {
        self.cfg.files
    }
}

/// Standard-normal sample via Box–Muller.
fn normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = WebTrace::new(WebTraceConfig::default());
        let mut b = WebTrace::new(WebTraceConfig::default());
        for _ in 0..100 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let mut t = WebTrace::new(WebTraceConfig::default());
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(t.next_request().file).or_insert(0) += 1;
        }
        let top = counts.get(&0).copied().unwrap_or(0);
        let total: u32 = counts.values().sum();
        // Rank-1 under Zipf(1.0) over 2000 files holds ≈12% of mass.
        let share = top as f64 / total as f64;
        assert!(share > 0.05, "rank-1 share {share}");
        // And a long tail exists.
        assert!(counts.len() > 500, "distinct files {}", counts.len());
    }

    #[test]
    fn connections_have_geometric_lengths() {
        let mut t = WebTrace::new(WebTraceConfig {
            mean_reqs_per_conn: 4.0,
            ..WebTraceConfig::default()
        });
        let n = 20_000;
        let conns = (0..n)
            .filter(|_| t.next_request().last_on_connection)
            .count();
        let mean = n as f64 / conns as f64;
        assert!((2.5..6.0).contains(&mean), "mean reqs/conn {mean}");
    }

    #[test]
    fn streams_share_sizes_but_differ_in_requests() {
        let a = WebTraceConfig {
            stream: 1,
            ..WebTraceConfig::default()
        };
        let b = WebTraceConfig {
            stream: 2,
            ..WebTraceConfig::default()
        };
        let mut ta = WebTrace::new(a);
        let mut tb = WebTrace::new(b);
        for f in 0..100 {
            assert_eq!(ta.file_size(f), tb.file_size(f));
        }
        let ra: Vec<_> = (0..50).map(|_| ta.next_request().file).collect();
        let rb: Vec<_> = (0..50).map(|_| tb.next_request().file).collect();
        assert_ne!(ra, rb);
    }

    #[test]
    fn sizes_are_heavy_tailed_but_bounded_below() {
        let t = WebTrace::new(WebTraceConfig::default());
        let sizes: Vec<u64> = (0..t.files()).map(|f| t.file_size(f as u32)).collect();
        assert!(sizes.iter().all(|&s| s >= 128));
        let max = *sizes.iter().max().unwrap();
        let mut sorted = sizes.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        assert!(max > 10 * median, "max {max} median {median}");
    }
}
