//! The TPC-W online-bookstore workload (§8.4).
//!
//! TPC-W defines fourteen web interactions against an online bookstore.
//! The paper drives its Squid → Tomcat → MySQL assembly with the
//! *browsing mix* (WIPSb): ≈95% browsing, ≈5% ordering, with think
//! times between interactions. [`TpcwMix`] samples interactions from
//! the browsing-mix distribution and exponential think times.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The fourteen TPC-W interactions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Interaction {
    /// Store home page.
    Home,
    /// Newly added products in a subject.
    NewProducts,
    /// The 50 best-selling titles of a subject (expensive sort).
    BestSellers,
    /// One product's detail page.
    ProductDetail,
    /// The search form.
    SearchRequest,
    /// Search execution (expensive sort over matches).
    SearchResult,
    /// The shopping cart.
    ShoppingCart,
    /// Customer registration form.
    CustomerRegistration,
    /// Order form.
    BuyRequest,
    /// Order placement (writes order rows).
    BuyConfirm,
    /// Order status form.
    OrderInquiry,
    /// Order status display.
    OrderDisplay,
    /// Administrative product-update form.
    AdminRequest,
    /// Administrative product update (writes an `item` row; the §8.4
    /// crosstalk headline).
    AdminConfirm,
}

impl Interaction {
    /// All interactions in a stable order (Table 1 row order is
    /// alphabetical; this is the logical order).
    pub const ALL: [Interaction; 14] = [
        Interaction::Home,
        Interaction::NewProducts,
        Interaction::BestSellers,
        Interaction::ProductDetail,
        Interaction::SearchRequest,
        Interaction::SearchResult,
        Interaction::ShoppingCart,
        Interaction::CustomerRegistration,
        Interaction::BuyRequest,
        Interaction::BuyConfirm,
        Interaction::OrderInquiry,
        Interaction::OrderDisplay,
        Interaction::AdminRequest,
        Interaction::AdminConfirm,
    ];

    /// The servlet name implementing this interaction (the call-path
    /// frame at the application server).
    pub fn servlet(self) -> &'static str {
        match self {
            Interaction::Home => "TPCW_home_interaction",
            Interaction::NewProducts => "TPCW_new_products_servlet",
            Interaction::BestSellers => "TPCW_best_sellers_servlet",
            Interaction::ProductDetail => "TPCW_product_detail_servlet",
            Interaction::SearchRequest => "TPCW_search_request_servlet",
            Interaction::SearchResult => "TPCW_execute_search",
            Interaction::ShoppingCart => "TPCW_shopping_cart_interaction",
            Interaction::CustomerRegistration => "TPCW_customer_registration_servlet",
            Interaction::BuyRequest => "TPCW_buy_request_servlet",
            Interaction::BuyConfirm => "TPCW_buy_confirm_servlet",
            Interaction::OrderInquiry => "TPCW_order_inquiry_servlet",
            Interaction::OrderDisplay => "TPCW_order_display_servlet",
            Interaction::AdminRequest => "TPCW_admin_request_servlet",
            Interaction::AdminConfirm => "TPCW_admin_response_servlet",
        }
    }

    /// Short display name matching Table 1's rows.
    pub fn name(self) -> &'static str {
        match self {
            Interaction::Home => "Home",
            Interaction::NewProducts => "NewProducts",
            Interaction::BestSellers => "BestSellers",
            Interaction::ProductDetail => "ProductDetail",
            Interaction::SearchRequest => "SearchRequest",
            Interaction::SearchResult => "SearchResult",
            Interaction::ShoppingCart => "ShoppingCart",
            Interaction::CustomerRegistration => "CustomerRegistration",
            Interaction::BuyRequest => "BuyRequest",
            Interaction::BuyConfirm => "BuyConfirm",
            Interaction::OrderInquiry => "OrderInquiry",
            Interaction::OrderDisplay => "OrderDisplay",
            Interaction::AdminRequest => "AdminRequest",
            Interaction::AdminConfirm => "AdminConfirm",
        }
    }

    /// Browsing-mix (WIPSb) steady-state probability, in percent.
    ///
    /// These are the TPC-W clause 5.3 web-interaction mix targets for
    /// the browsing mix.
    pub fn browsing_pct(self) -> f64 {
        self.mix_pct(Mix::Browsing)
    }

    /// Steady-state probability (in percent) under the given mix.
    ///
    /// TPC-W clause 5.3 defines three mixes: browsing (WIPSb, ≈95%
    /// browse), shopping (WIPS, ≈80% browse — the paper's evaluation
    /// uses browsing only; the others are provided for extension
    /// studies), and ordering (WIPSo, ≈50% browse).
    pub fn mix_pct(self, mix: Mix) -> f64 {
        use Interaction::*;
        match (mix, self) {
            (Mix::Browsing, Home) => 29.00,
            (Mix::Browsing, NewProducts) => 11.00,
            (Mix::Browsing, BestSellers) => 11.00,
            (Mix::Browsing, ProductDetail) => 21.00,
            (Mix::Browsing, SearchRequest) => 12.00,
            (Mix::Browsing, SearchResult) => 11.00,
            (Mix::Browsing, ShoppingCart) => 2.00,
            (Mix::Browsing, CustomerRegistration) => 0.82,
            (Mix::Browsing, BuyRequest) => 0.75,
            (Mix::Browsing, BuyConfirm) => 0.69,
            (Mix::Browsing, OrderInquiry) => 0.30,
            (Mix::Browsing, OrderDisplay) => 0.25,
            (Mix::Browsing, AdminRequest) => 0.10,
            (Mix::Browsing, AdminConfirm) => 0.09,
            (Mix::Shopping, Home) => 16.00,
            (Mix::Shopping, NewProducts) => 5.00,
            (Mix::Shopping, BestSellers) => 5.00,
            (Mix::Shopping, ProductDetail) => 17.00,
            (Mix::Shopping, SearchRequest) => 20.00,
            (Mix::Shopping, SearchResult) => 17.00,
            (Mix::Shopping, ShoppingCart) => 11.60,
            (Mix::Shopping, CustomerRegistration) => 3.00,
            (Mix::Shopping, BuyRequest) => 2.60,
            (Mix::Shopping, BuyConfirm) => 1.20,
            (Mix::Shopping, OrderInquiry) => 0.75,
            (Mix::Shopping, OrderDisplay) => 0.66,
            (Mix::Shopping, AdminRequest) => 0.10,
            (Mix::Shopping, AdminConfirm) => 0.09,
            (Mix::Ordering, Home) => 9.12,
            (Mix::Ordering, NewProducts) => 0.46,
            (Mix::Ordering, BestSellers) => 0.46,
            (Mix::Ordering, ProductDetail) => 12.35,
            (Mix::Ordering, SearchRequest) => 14.53,
            (Mix::Ordering, SearchResult) => 13.08,
            (Mix::Ordering, ShoppingCart) => 13.53,
            (Mix::Ordering, CustomerRegistration) => 12.86,
            (Mix::Ordering, BuyRequest) => 12.73,
            (Mix::Ordering, BuyConfirm) => 10.18,
            (Mix::Ordering, OrderInquiry) => 0.25,
            (Mix::Ordering, OrderDisplay) => 0.22,
            (Mix::Ordering, AdminRequest) => 0.12,
            (Mix::Ordering, AdminConfirm) => 0.11,
        }
    }
}

/// The three TPC-W interaction mixes (clause 5.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mix {
    /// WIPSb: ≈95% browsing (the paper's workload).
    Browsing,
    /// WIPS: ≈80% browsing.
    Shopping,
    /// WIPSo: ≈50% browsing.
    Ordering,
}

/// Browsing-mix sampler with think times.
#[derive(Clone, Debug)]
pub struct TpcwMix {
    rng: SmallRng,
    cdf: [f64; 14],
    /// Mean think time in cycles (TPC-W uses ≈7 s).
    pub mean_think_cycles: u64,
}

impl TpcwMix {
    /// Creates a browsing-mix sampler; think time defaults to 7 s of
    /// the 2.4 GHz clock.
    pub fn new(seed: u64) -> Self {
        Self::with_mix(seed, Mix::Browsing)
    }

    /// Creates a sampler for any of the three mixes.
    pub fn with_mix(seed: u64, mix: Mix) -> Self {
        let mut cdf = [0.0; 14];
        let mut acc = 0.0;
        for (i, it) in Interaction::ALL.iter().enumerate() {
            acc += it.mix_pct(mix);
            cdf[i] = acc;
        }
        for v in &mut cdf {
            *v /= acc;
        }
        TpcwMix {
            rng: SmallRng::seed_from_u64(seed),
            cdf,
            mean_think_cycles: 7 * 2_400_000_000,
        }
    }

    /// Draws the next interaction.
    pub fn next_interaction(&mut self) -> Interaction {
        let u = self.rng.gen::<f64>();
        let idx = self.cdf.partition_point(|&c| c < u).min(13);
        Interaction::ALL[idx]
    }

    /// Draws an exponential think time in cycles.
    pub fn think_time(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        (-u.ln() * self.mean_think_cycles as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn mix_percentages_sum_to_100() {
        for mix in [Mix::Browsing, Mix::Shopping, Mix::Ordering] {
            let total: f64 = Interaction::ALL.iter().map(|i| i.mix_pct(mix)).sum();
            assert!((total - 100.0).abs() < 0.02, "{mix:?} total {total}");
        }
    }

    #[test]
    fn ordering_mix_shifts_toward_buying() {
        let buy = |m: Mix| {
            Interaction::BuyConfirm.mix_pct(m)
                + Interaction::BuyRequest.mix_pct(m)
                + Interaction::CustomerRegistration.mix_pct(m)
        };
        assert!(buy(Mix::Ordering) > 10.0 * buy(Mix::Browsing));
        let mut s = TpcwMix::with_mix(3, Mix::Ordering);
        let n = 50_000;
        let buys = (0..n)
            .filter(|_| {
                matches!(
                    s.next_interaction(),
                    Interaction::BuyConfirm | Interaction::BuyRequest
                )
            })
            .count();
        assert!(buys as f64 / n as f64 > 0.15, "buys {buys}");
    }

    #[test]
    fn sampler_matches_mix() {
        let mut mix = TpcwMix::new(7);
        let mut counts: HashMap<Interaction, u64> = HashMap::new();
        let n = 200_000;
        for _ in 0..n {
            *counts.entry(mix.next_interaction()).or_insert(0) += 1;
        }
        for it in Interaction::ALL {
            let got = *counts.get(&it).unwrap_or(&0) as f64 / n as f64 * 100.0;
            let want = it.browsing_pct();
            assert!(
                (got - want).abs() < want.max(0.2) * 0.35,
                "{}: got {got:.2}%, want {want:.2}%",
                it.name()
            );
        }
    }

    #[test]
    fn think_times_average_near_mean() {
        let mut mix = TpcwMix::new(3);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| mix.think_time()).sum();
        let mean = sum as f64 / n as f64;
        let want = mix.mean_think_cycles as f64;
        assert!((mean - want).abs() / want < 0.05, "mean {mean} want {want}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TpcwMix::new(9);
        let mut b = TpcwMix::new(9);
        for _ in 0..1000 {
            assert_eq!(a.next_interaction(), b.next_interaction());
            assert_eq!(a.think_time(), b.think_time());
        }
    }

    #[test]
    fn all_names_are_distinct() {
        let mut names: Vec<_> = Interaction::ALL.iter().map(|i| i.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 14);
        let mut servlets: Vec<_> = Interaction::ALL.iter().map(|i| i.servlet()).collect();
        servlets.sort();
        servlets.dedup();
        assert_eq!(servlets.len(), 14);
    }
}
