//! Workload generators for the Whodunit experiments.
//!
//! - [`webtrace`]: a synthetic stand-in for the Rice CS-department web
//!   trace used in §8.1–8.3 and §9.2–9.3: Zipf file popularity,
//!   heavy-tailed file sizes, and a mix of persistent connections and
//!   fresh connections (fresh connections are what force Whodunit to
//!   emulate Apache's fd-queue critical sections).
//! - [`tpcw`]: the TPC-W online-bookstore workload of §8.4: the 14
//!   interaction types, the browsing-mix interaction distribution, and
//!   think times.
//! - [`shapes`]: time-varying load envelopes (flash crowd, diurnal)
//!   applied to the topology-zoo clients.
//!
//! All sampling is seeded (`rand::SmallRng`), keeping every experiment
//! deterministic.

#![warn(missing_docs)]

pub mod shapes;
pub mod tpcw;
pub mod webtrace;

pub use shapes::LoadShape;
pub use tpcw::{Interaction, Mix, TpcwMix};
pub use webtrace::{WebRequest, WebTrace, WebTraceConfig};
