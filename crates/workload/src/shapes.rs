//! Time-varying load shapes for the topology zoo.
//!
//! A [`LoadShape`] turns a virtual timestamp into a ppm multiplier on
//! client think times — smaller multiplier, hotter load. All the
//! arithmetic is integer (cycles and ppm), so a shape evaluates
//! identically on every platform and the simulations stay
//! bit-deterministic.

/// How offered load varies over a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadShape {
    /// Constant think times for the whole run.
    Steady,
    /// A flash crowd: inside `[at, at + len)` think times are scaled
    /// by `surge_ppm` (e.g. `200_000` ⇒ 5× the request rate); steady
    /// elsewhere.
    FlashCrowd {
        /// Surge start (virtual cycles).
        at: u64,
        /// Surge length (virtual cycles).
        len: u64,
        /// Think-time multiplier during the surge, ppm (< 1e6 means
        /// *more* load).
        surge_ppm: u64,
    },
    /// A diurnal cycle: the think multiplier traces a triangle wave
    /// between `hi_ppm` (trough traffic, long thinks) at phase 0 and
    /// `lo_ppm` (peak traffic, short thinks) at half-period.
    Diurnal {
        /// Full period of the cycle (virtual cycles).
        period: u64,
        /// Think multiplier at peak load, ppm.
        lo_ppm: u64,
        /// Think multiplier at trough load, ppm.
        hi_ppm: u64,
    },
}

impl LoadShape {
    /// The think-time multiplier at virtual time `now`, in ppm.
    pub fn think_scale_ppm(&self, now: u64) -> u64 {
        match *self {
            LoadShape::Steady => 1_000_000,
            LoadShape::FlashCrowd { at, len, surge_ppm } => {
                if now >= at && now < at.saturating_add(len) {
                    surge_ppm
                } else {
                    1_000_000
                }
            }
            LoadShape::Diurnal {
                period,
                lo_ppm,
                hi_ppm,
            } => {
                if period == 0 {
                    return 1_000_000;
                }
                let half = (period / 2).max(1);
                let phase = now % period;
                let (span, from) = (hi_ppm.abs_diff(lo_ppm), hi_ppm.min(lo_ppm));
                // Triangle: hi at phase 0, lo at half, back to hi.
                let toward_lo = half.abs_diff(phase);
                if hi_ppm >= lo_ppm {
                    from + span * toward_lo / half
                } else {
                    from + span * (half - toward_lo.min(half)) / half
                }
            }
        }
    }

    /// Applies the shape to a base think time.
    pub fn scale_think(&self, base: u64, now: u64) -> u64 {
        // Never let a think collapse to zero — a zero sleep would stall
        // the closed loop at one virtual instant.
        (base.saturating_mul(self.think_scale_ppm(now)) / 1_000_000).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_is_identity() {
        assert_eq!(LoadShape::Steady.scale_think(1000, 0), 1000);
        assert_eq!(LoadShape::Steady.scale_think(1000, u64::MAX), 1000);
    }

    #[test]
    fn flash_crowd_surges_inside_window_only() {
        let s = LoadShape::FlashCrowd {
            at: 100,
            len: 50,
            surge_ppm: 200_000,
        };
        assert_eq!(s.scale_think(1000, 99), 1000);
        assert_eq!(s.scale_think(1000, 100), 200);
        assert_eq!(s.scale_think(1000, 149), 200);
        assert_eq!(s.scale_think(1000, 150), 1000);
    }

    #[test]
    fn diurnal_peaks_at_half_period_and_wraps() {
        let s = LoadShape::Diurnal {
            period: 1000,
            lo_ppm: 250_000,
            hi_ppm: 1_000_000,
        };
        assert_eq!(s.think_scale_ppm(0), 1_000_000);
        assert_eq!(s.think_scale_ppm(500), 250_000);
        assert_eq!(s.think_scale_ppm(1000), 1_000_000);
        // Monotone down toward the peak, monotone up after it.
        assert!(s.think_scale_ppm(250) > s.think_scale_ppm(400));
        assert!(s.think_scale_ppm(600) < s.think_scale_ppm(900));
    }

    #[test]
    fn thinks_never_collapse_to_zero() {
        let s = LoadShape::FlashCrowd {
            at: 0,
            len: 100,
            surge_ppm: 0,
        };
        assert_eq!(s.scale_think(1000, 50), 1);
    }
}
