//! Rendering of per-context CCT profiles (Figures 8–10 style).
//!
//! All renderers append into one preallocated buffer: integers go
//! through [`whodunit_core::txt`]'s fixed-buffer formatter and floats
//! through `write!` directly into the output `String`, so no line
//! allocates an intermediate `format!` string.

use std::fmt::Write as _;
use whodunit_core::cct::CctNodeId;
use whodunit_core::stitch::{StageDump, Stitched};
use whodunit_core::txt::{push_u32, push_usize};

/// One rendered context entry: the context string and its share of the
/// stage's total profile.
#[derive(Clone, Debug, PartialEq)]
pub struct CtxShare {
    /// Human-readable context.
    pub ctx: String,
    /// Percent of the stage's samples collected under this context.
    pub pct: f64,
    /// Raw samples.
    pub samples: u64,
    /// Raw cycles.
    pub cycles: u64,
}

/// Computes each context's share of a stage's profile, sorted by
/// descending share (the numbers in Figures 9 and 10's triangles).
pub fn context_shares(dump: &StageDump) -> Vec<CtxShare> {
    let mut shares = Vec::new();
    let mut total_samples = 0u64;
    let mut per_ctx: Vec<(u32, u64, u64)> = Vec::new();
    for c in &dump.ccts {
        // Malformed CCTs (corrupt dump) are skipped; the valid remainder
        // still renders.
        let Ok(cct) = dump.rebuild_cct(c) else {
            continue;
        };
        let m = cct.total();
        total_samples += m.samples;
        per_ctx.push((c.ctx, m.samples, m.cycles));
    }
    for (ctx, samples, cycles) in per_ctx {
        let pct = if total_samples == 0 {
            0.0
        } else {
            samples as f64 * 100.0 / total_samples as f64
        };
        shares.push(CtxShare {
            ctx: dump.ctx_string(ctx),
            pct,
            samples,
            cycles,
        });
    }
    shares.sort_by(|a, b| {
        b.pct
            .partial_cmp(&a.pct)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    shares
}

/// Renders one stage's transactional profile as an indented text tree:
/// one block per context, with per-node inclusive percentages of the
/// stage total (the triangles of Figure 8).
pub fn render_stage(dump: &StageDump) -> String {
    let mut out = String::new();
    render_stage_into(dump, &mut out);
    out
}

/// [`render_stage`] appending into a caller-supplied buffer.
pub fn render_stage_into(dump: &StageDump, out: &mut String) {
    out.push_str("=== stage ");
    push_u32(out, dump.proc);
    out.push_str(" (");
    out.push_str(&dump.stage_name);
    out.push_str(") ===\n");
    let mut total_samples = 0u64;
    for c in &dump.ccts {
        if let Ok(cct) = dump.rebuild_cct(c) {
            total_samples += cct.total().samples;
        }
    }
    for c in &dump.ccts {
        let Ok(cct) = dump.rebuild_cct(c) else {
            out.push_str("ctx: ");
            out.push_str(&dump.ctx_string(c.ctx));
            out.push_str(" <corrupt cct skipped>\n");
            continue;
        };
        out.push_str("ctx: ");
        out.push_str(&dump.ctx_string(c.ctx));
        out.push('\n');
        render_node(out, dump, &cct, CctNodeId::ROOT, 1, total_samples);
    }
}

fn render_node(
    out: &mut String,
    dump: &StageDump,
    cct: &whodunit_core::cct::Cct,
    node: CctNodeId,
    depth: usize,
    total_samples: u64,
) {
    if let Some(f) = cct.frame(node) {
        let inc = cct.inclusive(node);
        let pct = if total_samples == 0 {
            0.0
        } else {
            inc.samples as f64 * 100.0 / total_samples as f64
        };
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(
            dump.frames
                .get(f.0 as usize)
                .map(String::as_str)
                .unwrap_or("<?>"),
        );
        // Float percentages keep `write!` so rounding matches `Display`
        // byte-for-byte; the write lands directly in `out`.
        let _ = write!(out, " [{pct:.2}%]");
        out.push('\n');
    }
    for child in cct.children_sorted(node) {
        render_node(out, dump, cct, child, depth + 1, total_samples);
    }
}

/// Renders a stage profile as a Graphviz DOT digraph: solid edges for
/// calls, one cluster per transaction context (the dashed transaction
/// edges of Figure 8 connect clusters in the stitched view).
pub fn render_dot(dump: &StageDump) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dump.stage_name);
    for (ci, c) in dump.ccts.iter().enumerate() {
        let Ok(cct) = dump.rebuild_cct(c) else {
            continue;
        };
        let _ = write!(
            out,
            "  subgraph cluster_{ci} {{\n    label=\"{}\";\n",
            dump.ctx_string(c.ctx).replace('"', "'")
        );
        for node in cct.node_ids() {
            if let Some(f) = cct.frame(node) {
                let name = dump
                    .frames
                    .get(f.0 as usize)
                    .map(String::as_str)
                    .unwrap_or("<?>");
                let _ = writeln!(out, "    n{ci}_{} [label=\"{name}\"];", node.0);
                if let Some(p) = cct.parent(node) {
                    if cct.frame(p).is_some() {
                        let _ = writeln!(out, "    n{ci}_{} -> n{ci}_{};", p.0, node.0);
                    }
                }
            }
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

/// Renders a whole stitched profile set as one Graphviz DOT digraph:
/// one cluster per (stage, context) CCT, solid call edges inside
/// clusters, and dashed transaction edges from each caller send point
/// to the callee context it established — the Figure 7 presentation.
pub fn render_stitched_dot(stitched: &Stitched) -> String {
    let mut out = String::new();
    out.push_str("digraph whodunit {\n  compound=true;\n");
    // Remember one representative node per (stage, ctx) so transaction
    // edges have endpoints.
    let mut anchor: std::collections::HashMap<(usize, u32), String> =
        std::collections::HashMap::new();
    for (si, d) in stitched.stages.iter().enumerate() {
        for c in &d.ccts {
            let Ok(cct) = d.rebuild_cct(c) else {
                continue;
            };
            let cl = format!("cluster_s{si}_c{}", c.ctx);
            let _ = write!(
                out,
                "  subgraph {cl} {{\n    label=\"{}: {}\";\n",
                d.stage_name,
                d.ctx_string(c.ctx).replace('"', "'")
            );
            let mut first = None;
            for node in cct.node_ids() {
                if let Some(f) = cct.frame(node) {
                    let name = d
                        .frames
                        .get(f.0 as usize)
                        .map(String::as_str)
                        .unwrap_or("<?>");
                    let id = format!("s{si}_c{}_n{}", c.ctx, node.0);
                    let _ = writeln!(out, "    {id} [label=\"{name}\"];");
                    if first.is_none() {
                        first = Some(id.clone());
                    }
                    if let Some(p) = cct.parent(node) {
                        if cct.frame(p).is_some() {
                            let _ = writeln!(out, "    s{si}_c{}_n{} -> {id};", c.ctx, p.0);
                        }
                    }
                }
            }
            out.push_str("  }\n");
            if let Some(a) = first {
                anchor.insert((si, c.ctx), a);
            }
        }
    }
    // Dashed transaction edges (request direction).
    for e in stitched.request_edges() {
        let (Some(from), Some(to)) = (
            anchor.get(&(e.from_stage, e.from_ctx)),
            anchor.get(&(e.to_stage, e.to_ctx)),
        ) else {
            continue;
        };
        let _ = writeln!(
            out,
            "  {from} -> {to} [style=dashed, label=\"request\", ltail=cluster_s{}_c{}, lhead=cluster_s{}_c{}];",
            e.from_stage, e.from_ctx, e.to_stage, e.to_ctx
        );
    }
    out.push_str("}\n");
    out
}

/// Renders every stage of a stitched set as text trees, followed by the
/// transaction edges (the "final presentation phase" of §7.1).
pub fn render_stitched_text(stitched: &Stitched) -> String {
    let mut out = String::new();
    for d in &stitched.stages {
        render_stage_into(d, &mut out);
        out.push('\n');
    }
    out.push_str("transaction edges (request direction):\n");
    for e in stitched.request_edges() {
        let _ = writeln!(
            out,
            "  {}:{}  ==>  {}:{}",
            stitched.stages[e.from_stage].stage_name,
            stitched.stages[e.from_stage].ctx_string(e.from_ctx),
            stitched.stages[e.to_stage].stage_name,
            stitched.stages[e.to_stage].ctx_string(e.to_ctx),
        );
    }
    // A partial run is visibly partial: edges whose sender dump is
    // missing or corrupt, and dumps skipped at stitch time.
    let unresolved = stitched.unresolved_edges();
    if !unresolved.is_empty() {
        out.push_str("unresolved edges (sender dump missing or pruned):\n");
        for e in unresolved {
            let _ = writeln!(
                out,
                "  ???[{}]  ==>  {}:{}",
                whodunit_core::synopsis::Synopsis(e.missing),
                stitched.stages[e.to_stage].stage_name,
                stitched.stages[e.to_stage].ctx_string(e.to_ctx),
            );
        }
    }
    for (si, err) in stitched.warnings() {
        let _ = writeln!(
            out,
            "warning: stage {si} ({}) skipped: {err}",
            stitched.stages[*si].stage_name
        );
    }
    out
}

/// Renders the parallel pipeline's full analysis as one canonical text
/// document: per-transaction profiles, request/unresolved edges, the
/// cross-stage crosstalk matrix, and a dictionary summary.
///
/// This is the byte-comparison surface of the golden-file suite
/// (`tests/golden_report.rs`), so its format is part of the repo's
/// compatibility contract: change it only together with the goldens
/// (regenerate with `UPDATE_GOLDEN=1`).
pub fn render_pipeline(rep: &whodunit_core::pipeline::PipelineReport) -> String {
    let mut out = String::new();
    out.push_str("pipeline analysis: ");
    push_usize(&mut out, rep.stages.len());
    out.push_str(" stages, ");
    push_usize(&mut out, rep.profiles.len());
    out.push_str(" profiles, ");
    push_usize(&mut out, rep.frames.len());
    out.push_str(" frames, dict ");
    push_usize(&mut out, rep.dict.len());
    out.push_str(" values / ");
    push_usize(&mut out, rep.shards);
    out.push_str(" shards\n\n");
    out.push_str("== stitched transactions ==\n");
    out.push_str(&rep.stitched_text());
    out.push_str("\n== crosstalk ==\n");
    out.push_str(&rep.crosstalk_text());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use whodunit_core::stitch::{DumpCct, DumpNode};

    fn sample_dump() -> StageDump {
        StageDump {
            proc: 0,
            stage_name: "svc".into(),
            frames: vec!["main".into(), "work".into()],
            contexts: vec![Default::default()],
            ccts: vec![DumpCct {
                ctx: 0,
                nodes: vec![
                    DumpNode {
                        frame: None,
                        parent: None,
                        samples: 0,
                        cycles: 0,
                        calls: 0,
                    },
                    DumpNode {
                        frame: Some(0),
                        parent: Some(0),
                        samples: 10,
                        cycles: 100,
                        calls: 0,
                    },
                    DumpNode {
                        frame: Some(1),
                        parent: Some(1),
                        samples: 30,
                        cycles: 300,
                        calls: 0,
                    },
                ],
            }],
            ..StageDump::default()
        }
    }

    #[test]
    fn shares_sum_to_100() {
        let shares = context_shares(&sample_dump());
        assert_eq!(shares.len(), 1);
        assert!((shares[0].pct - 100.0).abs() < 1e-9);
        assert_eq!(shares[0].samples, 40);
    }

    #[test]
    fn tree_shows_inclusive_percentages() {
        let s = render_stage(&sample_dump());
        assert!(s.contains("main [100.00%]"), "{s}");
        assert!(s.contains("work [75.00%]"), "{s}");
    }

    #[test]
    fn dot_output_has_nodes_and_edges() {
        let d = render_dot(&sample_dump());
        assert!(d.contains("digraph"));
        assert!(d.contains("label=\"main\""));
        assert!(d.contains("->"));
        assert!(d.ends_with("}\n"));
    }

    #[test]
    fn empty_dump_renders() {
        let d = StageDump::default();
        assert!(render_stage(&d).contains("=== stage"));
        assert!(context_shares(&d).is_empty());
    }

    #[test]
    fn stitched_dot_draws_transaction_edges() {
        use whodunit_core::stitch::{DumpAtom, DumpContext};
        let caller = StageDump {
            proc: 0,
            stage_name: "caller".into(),
            frames: vec!["main".into(), "rpc".into()],
            contexts: vec![
                DumpContext::default(),
                DumpContext {
                    atoms: vec![DumpAtom::Path(vec![0, 1])],
                },
            ],
            ccts: vec![DumpCct {
                ctx: 1,
                nodes: vec![
                    DumpNode {
                        frame: None,
                        parent: None,
                        samples: 0,
                        cycles: 0,
                        calls: 0,
                    },
                    DumpNode {
                        frame: Some(0),
                        parent: Some(0),
                        samples: 5,
                        cycles: 50,
                        calls: 0,
                    },
                ],
            }],
            synopses: vec![(7, 1)],
            ..StageDump::default()
        };
        let callee = StageDump {
            proc: 1,
            stage_name: "callee".into(),
            frames: vec!["svc".into()],
            contexts: vec![
                DumpContext::default(),
                DumpContext {
                    atoms: vec![DumpAtom::Remote(vec![7])],
                },
            ],
            ccts: vec![DumpCct {
                ctx: 1,
                nodes: vec![
                    DumpNode {
                        frame: None,
                        parent: None,
                        samples: 0,
                        cycles: 0,
                        calls: 0,
                    },
                    DumpNode {
                        frame: Some(0),
                        parent: Some(0),
                        samples: 9,
                        cycles: 90,
                        calls: 0,
                    },
                ],
            }],
            ..StageDump::default()
        };
        let st = Stitched::new(vec![caller, callee]);
        let dot = render_stitched_dot(&st);
        assert!(dot.contains("style=dashed"), "{dot}");
        assert!(dot.contains("cluster_s0_c1"));
        assert!(dot.contains("cluster_s1_c1"));
        let text = render_stitched_text(&st);
        assert!(text.contains("==>"), "{text}");
        assert!(text.contains("caller"));
        assert!(text.contains("callee"));
    }
}
