//! Rendering of black-box inference sweeps.
//!
//! `whodunit-infer` scores every (scenario, visibility) cell as a set
//! of [`InferenceScore`]s; this module lays those out as the aligned
//! summary table the `infer` bench prints and the golden suite pins.
//! Plain data in, text out: the view depends only on the core score
//! types, not on the inference crate.

use whodunit_core::oracle::InferenceScore;

use crate::table;

/// One scored (scenario, visibility) row of an inference sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InferRow {
    /// Scenario label (`topology/fault-arm/shape` or `tpcw/arm/seed`).
    pub scenario: String,
    /// Visibility configuration the log was stitched under.
    pub vis: String,
    /// Observed recv events in the scenario's comm log.
    pub recvs: u64,
    /// Message-pairing score (recv → send).
    pub pairs: InferenceScore,
    /// Origin score (recv → transaction root).
    pub origins: InferenceScore,
    /// The full-confidence pairing subset (ambiguity exactly 1).
    pub confident: InferenceScore,
}

/// Formats a ppm rate as a fixed three-decimal fraction. Integer
/// arithmetic end to end, so the rendering is bit-stable everywhere.
fn frac(ppm: u64) -> String {
    format!("{}.{:03}", ppm / 1_000_000, (ppm % 1_000_000) / 1_000)
}

/// Renders an inference sweep as the canonical summary table: one row
/// per (scenario, visibility) cell, F1 for both metric families, and
/// the precision/recall of the certain subset.
pub fn render_infer(rows: &[InferRow]) -> String {
    let mut out = String::from("== black-box inference vs ground truth ==\n");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.vis.clone(),
                r.recvs.to_string(),
                frac(r.pairs.reported_f1_ppm),
                frac(r.origins.reported_f1_ppm),
                frac(r.confident.reported_precision_ppm),
                frac(r.confident.reported_recall_ppm),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "scenario",
            "visibility",
            "recvs",
            "pairs F1",
            "origins F1",
            "certain P",
            "certain R",
        ],
        &cells,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(asserted: u64, truth: u64, correct: u64) -> InferenceScore {
        use whodunit_core::oracle::{f1_ppm, ppm};
        let p = ppm(correct, asserted);
        let r = ppm(correct, truth);
        InferenceScore {
            asserted,
            truth,
            correct,
            reported_precision_ppm: p,
            reported_recall_ppm: r,
            reported_f1_ppm: f1_ppm(p, r),
        }
    }

    #[test]
    fn renders_fixed_point_rates() {
        let rows = vec![InferRow {
            scenario: "fanout/clean/steady".into(),
            vis: "blackbox".into(),
            recvs: 128,
            pairs: score(128, 128, 128),
            origins: score(128, 128, 96),
            confident: score(100, 128, 100),
        }];
        let doc = render_infer(&rows);
        assert!(doc.contains("fanout/clean/steady"));
        assert!(doc.contains("1.000"), "perfect pairs F1 renders as 1.000");
        assert!(doc.contains("0.750"), "origins precision 96/128");
        assert!(doc.contains("0.781"), "certain recall 100/128");
        assert!(doc.lines().count() >= 3, "header, rule, one row");
    }
}
