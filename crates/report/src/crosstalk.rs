//! Crosstalk presentation (§6): who-waits-for-whom tables from a stage
//! dump, with contexts rendered readably.

use crate::table;
use whodunit_core::cost::cycles_to_ms;
use whodunit_core::stitch::StageDump;

/// One rendered crosstalk pair.
#[derive(Clone, Debug, PartialEq)]
pub struct PairRow {
    /// The waiting context (rendered).
    pub waiter: String,
    /// The holding context (rendered).
    pub holder: String,
    /// Mean wait in milliseconds.
    pub mean_ms: f64,
    /// Number of waits.
    pub count: u64,
}

/// Extracts the ordered crosstalk pairs of one stage, sorted by total
/// impact (mean × count) descending.
pub fn pairs(dump: &StageDump) -> Vec<PairRow> {
    let mut rows: Vec<PairRow> = dump
        .crosstalk_pairs
        .iter()
        .map(|p| PairRow {
            waiter: dump.ctx_string(p.waiter),
            holder: dump.ctx_string(p.holder),
            mean_ms: cycles_to_ms(p.total_wait / p.count.max(1)),
            count: p.count,
        })
        .collect();
    rows.sort_by(|a, b| {
        (b.mean_ms * b.count as f64)
            .partial_cmp(&(a.mean_ms * a.count as f64))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

/// Renders the §6 presentation: "the length of the wait, and the
/// transaction instance that causes the wait", per ordered pair.
pub fn render_pairs(dump: &StageDump, top: usize) -> String {
    let rows: Vec<Vec<String>> = pairs(dump)
        .into_iter()
        .take(top)
        .map(|r| {
            vec![
                r.waiter,
                r.holder,
                table::f(r.mean_ms, 2),
                r.count.to_string(),
            ]
        })
        .collect();
    table::render(&["Waiter", "Holder", "Mean wait ms", "Waits"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whodunit_core::stitch::{DumpAtom, DumpContext, DumpCrosstalkPair};

    fn dump() -> StageDump {
        StageDump {
            proc: 0,
            stage_name: "db".into(),
            frames: vec!["A".into(), "B".into()],
            contexts: vec![
                DumpContext::default(),
                DumpContext {
                    atoms: vec![DumpAtom::Frame(0)],
                },
                DumpContext {
                    atoms: vec![DumpAtom::Frame(1)],
                },
            ],
            crosstalk_pairs: vec![
                DumpCrosstalkPair {
                    waiter: 1,
                    holder: 2,
                    count: 10,
                    total_wait: 24_000_000,
                },
                DumpCrosstalkPair {
                    waiter: 2,
                    holder: 1,
                    count: 1,
                    total_wait: 2_400_000,
                },
            ],
            ..StageDump::default()
        }
    }

    #[test]
    fn pairs_sort_by_impact() {
        let p = pairs(&dump());
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].waiter, "A");
        assert_eq!(p[0].holder, "B");
        assert!((p[0].mean_ms - 1.0).abs() < 1e-9);
        assert_eq!(p[0].count, 10);
    }

    #[test]
    fn render_includes_headers_and_rows() {
        let s = render_pairs(&dump(), 5);
        assert!(s.contains("Waiter"));
        assert!(s.contains("Mean wait ms"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn empty_dump_renders_header_only() {
        let d = StageDump::default();
        let s = render_pairs(&d, 5);
        assert!(s.contains("Waiter"));
        assert!(pairs(&d).is_empty());
    }
}
