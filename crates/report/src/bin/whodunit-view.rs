//! Standalone post-mortem profile viewer — the paper's "final
//! presentation phase" (§7.1) as a tool.
//!
//! Reads one or more stage-dump JSON files (as written by
//! `whodunit_report::json::to_json`), stitches them, and renders the
//! end-to-end transactional profile.
//!
//! ```console
//! $ whodunit-view profile.json             # text trees + edges
//! $ whodunit-view --dot profile.json       # Graphviz DOT (Figure 7)
//! $ whodunit-view --shares profile.json    # per-context CPU shares
//! ```

use std::process::ExitCode;
use whodunit_core::stitch::Stitched;
use whodunit_report::{json, render};

fn usage() -> ExitCode {
    eprintln!("usage: whodunit-view [--dot|--shares|--text] <dumps.json>...");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = "--text".to_owned();
    let mut files = Vec::new();
    for a in args {
        if a.starts_with("--") {
            mode = a;
        } else {
            files.push(a);
        }
    }
    if files.is_empty() {
        return usage();
    }
    let mut dumps = Vec::new();
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("whodunit-view: cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match json::from_json(&text) {
            Ok(mut ds) => dumps.append(&mut ds),
            Err(e) => {
                eprintln!("whodunit-view: {f} is not a profile dump: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let stitched = Stitched::new(dumps);
    match mode.as_str() {
        "--dot" => print!("{}", render::render_stitched_dot(&stitched)),
        "--shares" => {
            for d in &stitched.stages {
                println!("stage {} ({}):", d.proc, d.stage_name);
                for s in render::context_shares(d) {
                    println!("  {:6.2}%  {}", s.pct, s.ctx);
                }
            }
        }
        "--text" => print!("{}", render::render_stitched_text(&stitched)),
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
