//! Presentation of transactional profiles.
//!
//! The paper presents its results as annotated call-graph figures
//! (Figures 8–10), tables (Tables 1–3) and throughput/latency curves
//! (Figures 11–12). This crate renders:
//!
//! - [`render`]: per-context CCT trees and DOT graphs from
//!   [`whodunit_core::stitch::StageDump`]s;
//! - [`table`]: aligned text tables for the experiment binaries;
//! - [`tpcw`]: the cross-tier resolution (via
//!   [`whodunit_core::stitch::Stitched`]) that labels MySQL's remote
//!   contexts with the TPC-W interaction that produced them, and the
//!   Table 1 assembly;
//! - [`json`]: profile dump/load, the paper's "writes the profile data
//!   to disk … final presentation phase";
//! - [`live`]: point-in-time snapshots of the streaming collector
//!   (top-k paths, tier breakdowns, crosstalk hotspots, lag);
//! - [`infer`]: the black-box inference sweep summary (per-scenario
//!   precision/recall/F1 across visibility configurations).

#![warn(missing_docs)]

pub mod crosstalk;
pub mod diff;
pub mod infer;
pub mod json;
pub mod live;
pub mod render;
pub mod table;
pub mod tpcw;

pub use live::{
    diff_snapshots, render_fed_topology, render_incident, render_live_diff, render_live_snapshot,
    FedNodeView, FedTopologyView, Hotspot, IncidentCard, LagStats, LiveDiff, LiveSnapshot,
    ReplaySummary, ShrinkSummary, TierSlice, TopPath,
};
