//! Aligned text tables.

/// Renders rows as an aligned table with a header row and a separator.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            // Left-align the first column, right-align the rest
            // (numeric columns).
            if i == 0 {
                line.push_str(&format!("{:<w$}", c, w = widths[i]));
            } else {
                line.push_str(&format!("{:>w$}", c, w = widths[i]));
            }
        }
        line.trim_end().to_owned()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with the given number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_separator() {
        let s = render(
            &["Name", "Value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "22.5".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
        // Numeric column right-aligned.
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("22.5"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(0.0, 1), "0.0");
    }
}
