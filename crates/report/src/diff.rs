//! Profile diffing: before/after comparison of stage profiles.
//!
//! The §8.4 workflow is profile → find candidates → optimize →
//! re-measure; a diff view makes the "re-measure" step concrete by
//! comparing two dumps of the same stage (e.g. MyISAM vs InnoDB, or
//! caching off vs on) context by context.

use crate::render::context_shares;
use whodunit_core::stitch::StageDump;

/// One row of a profile diff.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// The context (rendered).
    pub ctx: String,
    /// Percent share in the "before" profile.
    pub before_pct: f64,
    /// Percent share in the "after" profile.
    pub after_pct: f64,
}

impl DiffRow {
    /// Share change in percentage points (after − before).
    pub fn delta(&self) -> f64 {
        self.after_pct - self.before_pct
    }
}

/// Diffs two dumps of the same stage by context share, sorted by the
/// magnitude of the change (largest first).
pub fn diff_contexts(before: &StageDump, after: &StageDump) -> Vec<DiffRow> {
    let b = context_shares(before);
    let a = context_shares(after);
    let mut ctxs: Vec<String> = b
        .iter()
        .map(|s| s.ctx.clone())
        .chain(a.iter().map(|s| s.ctx.clone()))
        .collect();
    ctxs.sort();
    ctxs.dedup();
    let find = |set: &[crate::render::CtxShare], ctx: &str| {
        set.iter()
            .find(|s| s.ctx == ctx)
            .map(|s| s.pct)
            .unwrap_or(0.0)
    };
    let mut rows: Vec<DiffRow> = ctxs
        .into_iter()
        .map(|ctx| DiffRow {
            before_pct: find(&b, &ctx),
            after_pct: find(&a, &ctx),
            ctx,
        })
        .collect();
    rows.sort_by(|x, y| {
        y.delta()
            .abs()
            .partial_cmp(&x.delta().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

/// Renders a diff as an aligned table.
pub fn render_diff(rows: &[DiffRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.ctx.clone(),
                crate::table::f(r.before_pct, 2),
                crate::table::f(r.after_pct, 2),
                format!("{:+.2}", r.delta()),
            ]
        })
        .collect();
    crate::table::render(&["Context", "Before %", "After %", "Δ pp"], &table_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whodunit_core::stitch::{DumpCct, DumpContext, DumpNode};

    fn dump(samples: &[(u32, u64)]) -> StageDump {
        // One single-frame CCT per context index.
        let max_ctx = samples.iter().map(|&(c, _)| c).max().unwrap_or(0);
        StageDump {
            proc: 0,
            stage_name: "s".into(),
            frames: vec!["f".into()],
            contexts: (0..=max_ctx)
                .map(|i| DumpContext {
                    atoms: if i == 0 {
                        vec![]
                    } else {
                        vec![whodunit_core::stitch::DumpAtom::Frame(0)]
                    },
                })
                .collect(),
            ccts: samples
                .iter()
                .map(|&(ctx, n)| DumpCct {
                    ctx,
                    nodes: vec![
                        DumpNode {
                            frame: None,
                            parent: None,
                            samples: 0,
                            cycles: 0,
                            calls: 0,
                        },
                        DumpNode {
                            frame: Some(0),
                            parent: Some(0),
                            samples: n,
                            cycles: n * 10,
                            calls: 0,
                        },
                    ],
                })
                .collect(),
            ..StageDump::default()
        }
    }

    #[test]
    fn diff_orders_by_change_magnitude() {
        // Before: ctx0 80%, ctx1 20%. After: ctx0 30%, ctx1 70%.
        let before = dump(&[(0, 80), (1, 20)]);
        let after = dump(&[(0, 30), (1, 70)]);
        let rows = diff_contexts(&before, &after);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].delta().abs() - 50.0).abs() < 1e-9);
        let table = render_diff(&rows);
        assert!(table.contains("Δ pp"));
        assert!(table.contains("+50.00") || table.contains("-50.00"));
    }

    #[test]
    fn contexts_missing_on_one_side_show_zero() {
        let before = dump(&[(0, 100)]);
        let after = dump(&[(1, 100)]);
        let rows = diff_contexts(&before, &after);
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .any(|r| r.before_pct == 0.0 && r.after_pct == 100.0));
        assert!(rows
            .iter()
            .any(|r| r.before_pct == 100.0 && r.after_pct == 0.0));
    }
}
