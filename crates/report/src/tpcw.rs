//! TPC-W cross-tier resolution and Table 1 assembly (§8.4).
//!
//! At MySQL every transaction context is a remote synopsis chain; only
//! the post-mortem stitching phase can say *which interaction* it
//! belongs to, by resolving the chain's most recent synopsis back to
//! the application server's send-point context, whose call path names
//! the servlet.

use whodunit_core::stitch::{DumpAtom, StageDump, Stitched};

/// Follows remote chains from `(stage, ctx)` to the chain of
/// `(stage, ctx)` hops, most recent sender first.
pub fn hops(stitched: &Stitched, stage: usize, ctx: u32) -> Vec<(usize, u32)> {
    let mut out = Vec::new();
    let mut cur = (stage, ctx);
    for _ in 0..16 {
        let d = &stitched.stages[cur.0];
        let Some(DumpAtom::Remote(chain)) = d.contexts[cur.1 as usize].atoms.first() else {
            break;
        };
        let Some(&last) = chain.last() else {
            break;
        };
        let Some(next) = stitched.resolve(last) else {
            break;
        };
        out.push(next);
        cur = next;
    }
    out
}

/// All frame names appearing in a context's `Frame`/`Path` atoms.
/// Out-of-range indices (corrupt dump) are skipped, not panicked on.
pub fn ctx_frames(dump: &StageDump, ctx: u32) -> Vec<String> {
    let mut out = Vec::new();
    let Some(context) = dump.contexts.get(ctx as usize) else {
        return out;
    };
    let name = |f: u32| dump.frames.get(f as usize).cloned();
    for atom in &context.atoms {
        match atom {
            DumpAtom::Frame(f) => out.extend(name(*f)),
            DumpAtom::Path(p) => {
                out.extend(p.iter().filter_map(|&f| name(f)));
            }
            DumpAtom::Remote(_) => {}
        }
    }
    out
}

/// Labels a (possibly remote) context by the first frame — searching
/// the sender hops nearest-first — whose name satisfies `pred`.
pub fn label_by_frame(
    stitched: &Stitched,
    stage: usize,
    ctx: u32,
    pred: &dyn Fn(&str) -> bool,
) -> Option<String> {
    for name in ctx_frames(&stitched.stages[stage], ctx) {
        if pred(&name) {
            return Some(name);
        }
    }
    for (s, c) in hops(stitched, stage, ctx) {
        for name in ctx_frames(&stitched.stages[s], c) {
            if pred(&name) {
                return Some(name);
            }
        }
    }
    None
}

/// One Table 1 row.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Row {
    /// Interaction label.
    pub interaction: String,
    /// Share of MySQL's CPU profile, in percent.
    pub cpu_pct: f64,
    /// Mean crosstalk wait per query, in milliseconds.
    pub crosstalk_ms: f64,
}

/// Assembles Table 1 from a stitched profile set.
///
/// `mysql_stage` indexes the MySQL dump within `stitched`; `label_of`
/// maps a frame name (e.g. a servlet) to the interaction label, or
/// `None` for frames that do not identify an interaction.
pub fn table1(
    stitched: &Stitched,
    mysql_stage: usize,
    label_of: &dyn Fn(&str) -> Option<String>,
) -> Vec<Table1Row> {
    let dump = &stitched.stages[mysql_stage];
    let pred = |n: &str| label_of(n).is_some();
    // CPU shares per context → per interaction.
    let mut cpu: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut total_samples = 0u64;
    let mut per_ctx: Vec<(u32, u64)> = Vec::new();
    for c in &dump.ccts {
        // Corrupt CCTs are skipped; the valid remainder still tabulates.
        let Ok(cct) = dump.rebuild_cct(c) else {
            continue;
        };
        let m = cct.total();
        total_samples += m.samples;
        per_ctx.push((c.ctx, m.samples));
    }
    for (ctx, samples) in per_ctx {
        let Some(label) =
            label_by_frame(stitched, mysql_stage, ctx, &pred).and_then(|n| label_of(&n))
        else {
            continue;
        };
        if total_samples > 0 {
            *cpu.entry(label).or_insert(0.0) += samples as f64 * 100.0 / total_samples as f64;
        }
    }
    // Crosstalk means per interaction, over *all* acquires of that
    // interaction's contexts (Table 1's "mean crosstalk wait time").
    let mut waits: std::collections::HashMap<String, (u64, u64)> = std::collections::HashMap::new();
    for w in &dump.crosstalk_waiters {
        let Some(label) =
            label_by_frame(stitched, mysql_stage, w.waiter, &pred).and_then(|n| label_of(&n))
        else {
            continue;
        };
        let e = waits.entry(label).or_insert((0, 0));
        e.0 += w.count;
        e.1 += w.total_wait;
    }
    let mut labels: Vec<String> = cpu.keys().chain(waits.keys()).cloned().collect();
    labels.sort();
    labels.dedup();
    labels
        .into_iter()
        .map(|label| {
            let cpu_pct = cpu.get(&label).copied().unwrap_or(0.0);
            let (count, total) = waits.get(&label).copied().unwrap_or((0, 0));
            let crosstalk_ms = total
                .checked_div(count)
                .map(whodunit_core::cost::cycles_to_ms)
                .unwrap_or(0.0);
            Table1Row {
                interaction: label,
                cpu_pct,
                crosstalk_ms,
            }
        })
        .collect()
}

/// Crosstalk pairs resolved to interaction labels: (waiter, holder,
/// mean wait ms, count).
pub fn crosstalk_pairs(
    stitched: &Stitched,
    mysql_stage: usize,
    label_of: &dyn Fn(&str) -> Option<String>,
) -> Vec<(String, String, f64, u64)> {
    let dump = &stitched.stages[mysql_stage];
    let pred = |n: &str| label_of(n).is_some();
    let mut agg: std::collections::HashMap<(String, String), (u64, u64)> =
        std::collections::HashMap::new();
    for p in &dump.crosstalk_pairs {
        let w = label_by_frame(stitched, mysql_stage, p.waiter, &pred).and_then(|n| label_of(&n));
        let h = label_by_frame(stitched, mysql_stage, p.holder, &pred).and_then(|n| label_of(&n));
        if let (Some(w), Some(h)) = (w, h) {
            let e = agg.entry((w, h)).or_insert((0, 0));
            e.0 += p.count;
            e.1 += p.total_wait;
        }
    }
    let mut out: Vec<_> = agg
        .into_iter()
        .map(|((w, h), (count, total))| {
            (
                w,
                h,
                whodunit_core::cost::cycles_to_ms(total / count.max(1)),
                count,
            )
        })
        .collect();
    out.sort_by(|a, b| (b.2 * b.3 as f64).partial_cmp(&(a.2 * a.3 as f64)).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use whodunit_core::stitch::{DumpCct, DumpContext, DumpCrosstalkWaiter, DumpNode};

    /// Builds a 2-stage stitched set: tomcat ctx 1 has a path through
    /// "TPCW_home" and minted synopsis 100; mysql ctx 1 is
    /// remote([100]) with samples and crosstalk.
    fn setup() -> Stitched {
        let tomcat = StageDump {
            proc: 1,
            stage_name: "tomcat".into(),
            frames: vec!["service".into(), "TPCW_home".into()],
            contexts: vec![
                DumpContext::default(),
                DumpContext {
                    atoms: vec![DumpAtom::Path(vec![0, 1])],
                },
            ],
            synopses: vec![(100, 1)],
            ..StageDump::default()
        };
        let mysql = StageDump {
            proc: 2,
            stage_name: "mysql".into(),
            frames: vec!["do_command".into()],
            contexts: vec![
                DumpContext::default(),
                DumpContext {
                    atoms: vec![DumpAtom::Remote(vec![100])],
                },
            ],
            ccts: vec![DumpCct {
                ctx: 1,
                nodes: vec![
                    DumpNode {
                        frame: None,
                        parent: None,
                        samples: 0,
                        cycles: 0,
                        calls: 0,
                    },
                    DumpNode {
                        frame: Some(0),
                        parent: Some(0),
                        samples: 50,
                        cycles: 500,
                        calls: 0,
                    },
                ],
            }],
            crosstalk_waiters: vec![DumpCrosstalkWaiter {
                waiter: 1,
                count: 10,
                total_wait: 24_000_000, // 10 ms at 2.4 GHz.
            }],
            ..StageDump::default()
        };
        Stitched::new(vec![tomcat, mysql])
    }

    fn label(n: &str) -> Option<String> {
        n.strip_prefix("TPCW_").map(str::to_owned)
    }

    #[test]
    fn hops_resolve_to_sender() {
        let st = setup();
        assert_eq!(hops(&st, 1, 1), vec![(0, 1)]);
        assert!(hops(&st, 0, 1).is_empty());
    }

    #[test]
    fn labels_resolve_through_hops() {
        let st = setup();
        let l = label_by_frame(&st, 1, 1, &|n| n.starts_with("TPCW_"));
        assert_eq!(l.as_deref(), Some("TPCW_home"));
    }

    #[test]
    fn table1_assembles_cpu_and_crosstalk() {
        let st = setup();
        let rows = table1(&st, 1, &label);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].interaction, "home");
        assert!((rows[0].cpu_pct - 100.0).abs() < 1e-9);
        assert!((rows[0].crosstalk_ms - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unlabelled_contexts_are_skipped() {
        let st = setup();
        let rows = table1(&st, 1, &|_| None);
        assert!(rows.is_empty());
    }
}
