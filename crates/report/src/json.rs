//! Profile dump/load (§7.1's on-disk profiles).

use whodunit_core::stitch::StageDump;

/// Serializes stage dumps to pretty JSON.
pub fn to_json(dumps: &[StageDump]) -> String {
    serde_json::to_string_pretty(dumps).expect("stage dumps serialize")
}

/// Loads stage dumps back from JSON.
pub fn from_json(s: &str) -> Result<Vec<StageDump>, serde_json::Error> {
    serde_json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = StageDump {
            proc: 1,
            stage_name: "x".into(),
            frames: vec!["main".into()],
            ..StageDump::default()
        };
        let j = to_json(std::slice::from_ref(&d));
        let back = from_json(&j).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], d);
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(from_json("{nonsense").is_err());
    }
}
