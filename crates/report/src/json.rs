//! Profile dump/load (§7.1's on-disk profiles).
//!
//! Thin re-export of [`whodunit_core::dumpjson`]; kept here so report
//! consumers keep a single import point for presentation-phase I/O.

use whodunit_core::stitch::{StageDump, StitchError};

/// Serializes stage dumps to JSON.
pub fn to_json(dumps: &[StageDump]) -> String {
    whodunit_core::dumpjson::to_json(dumps)
}

/// Loads stage dumps back from JSON. Dumps are untrusted input: a
/// truncated or corrupt file is an error, never a panic.
pub fn from_json(s: &str) -> Result<Vec<StageDump>, StitchError> {
    whodunit_core::dumpjson::from_json(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = StageDump {
            proc: 1,
            stage_name: "x".into(),
            frames: vec!["main".into()],
            ..StageDump::default()
        };
        let j = to_json(std::slice::from_ref(&d));
        let back = from_json(&j).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], d);
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(from_json("{nonsense").is_err());
    }
}
