//! Live collector snapshot rendering.
//!
//! The streaming collector (`whodunit-collector`) answers queries at
//! any epoch — top-k transaction paths by cost, per-origin tier
//! latency breakdown, crosstalk hotspots — and packages the answers as
//! a [`LiveSnapshot`]: plain presentation data, already labeled and
//! ordered, with no collector internals attached. This module renders
//! that snapshot as deterministic text (the golden-file surface for
//! the streaming tier).

use std::fmt::Write as _;

/// Ingest-side accounting: how much the collector has consumed and how
/// far behind the emitting tiers it has fallen.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LagStats {
    /// Epoch batches ingested so far.
    pub batches: u64,
    /// Individual change events ingested so far.
    pub events: u64,
    /// Sequence gaps detected (batches lost or reordered).
    pub seq_gaps: u64,
    /// Batches currently queued but not yet processed.
    pub queued: u64,
    /// High-water mark of the ingest queue depth.
    pub peak_queued: u64,
    /// Offers rejected because the ingest queue was full.
    pub throttled: u64,
}

/// One entry of the top-k transaction paths by cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopPath {
    /// Origin label (`stage:context`).
    pub origin: String,
    /// Total inclusive cycles across the origin's merged CCT.
    pub cycles: u64,
    /// Total samples across the origin's merged CCT.
    pub samples: u64,
    /// Hottest call path, root-first frame names.
    pub path: Vec<String>,
}

/// Per-origin tier latency breakdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierSlice {
    /// Origin label (`stage:context`).
    pub origin: String,
    /// `(stage name, cycles attributed)` in stage order.
    pub stages: Vec<(String, u64)>,
}

/// One crosstalk hotspot: an ordered waiter/holder origin pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hotspot {
    /// Waiting origin label.
    pub waiter: String,
    /// Blamed holding origin label.
    pub holder: String,
    /// Number of waits.
    pub count: u64,
    /// Total cycles waited.
    pub total_wait: u64,
}

/// A point-in-time view of the streaming collector.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LiveSnapshot {
    /// Epoch the snapshot was taken at.
    pub epoch: u64,
    /// Virtual time (cycles) at the end of that epoch.
    pub now: u64,
    /// Origins currently resident (in-memory, still accumulating).
    pub resident_origins: u64,
    /// Origins evicted into the compact finalized store.
    pub finalized_origins: u64,
    /// High-water mark of resident origins.
    pub peak_resident: u64,
    /// Total evictions performed (revived origins count again).
    pub evictions: u64,
    /// Origin walks still blocked on an unseen synopsis.
    pub pending_walks: u64,
    /// Request edges still blocked on an unseen synopsis.
    pub pending_edges: u64,
    /// Ingest/backpressure accounting.
    pub lag: LagStats,
    /// Top-k transaction paths by cost, highest first.
    pub top_paths: Vec<TopPath>,
    /// Tier breakdowns for the same origins, same order.
    pub tiers: Vec<TierSlice>,
    /// Crosstalk hotspots, highest total wait first.
    pub hotspots: Vec<Hotspot>,
}

/// Renders a [`LiveSnapshot`] as deterministic text.
pub fn render_live_snapshot(s: &LiveSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== live collector snapshot @ epoch {} (t={}) ==",
        s.epoch, s.now
    );
    let _ = writeln!(
        out,
        "origins: {} resident, {} finalized, peak {}, evictions {}",
        s.resident_origins, s.finalized_origins, s.peak_resident, s.evictions
    );
    let _ = writeln!(
        out,
        "pending: {} walks, {} edges",
        s.pending_walks, s.pending_edges
    );
    let _ = writeln!(
        out,
        "ingest: {} batches, {} events, {} seq gaps, queue {} (peak {}), throttled {}",
        s.lag.batches, s.lag.events, s.lag.seq_gaps, s.lag.queued, s.lag.peak_queued, s.lag.throttled
    );
    let _ = writeln!(out, "\ntop transaction paths by cost:");
    for (i, t) in s.top_paths.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {}. {}  cycles {} samples {}",
            i + 1,
            t.origin,
            t.cycles,
            t.samples
        );
        if !t.path.is_empty() {
            let _ = writeln!(out, "     {}", t.path.join(" -> "));
        }
    }
    let _ = writeln!(out, "\ntier breakdown:");
    for t in &s.tiers {
        let cells: Vec<String> = t
            .stages
            .iter()
            .map(|(name, cy)| format!("{name} {cy}"))
            .collect();
        let _ = writeln!(out, "  {}: {}", t.origin, cells.join(" | "));
    }
    let _ = writeln!(out, "\ncrosstalk hotspots:");
    for h in &s.hotspots {
        let _ = writeln!(
            out,
            "  {}  <-  {}  waits {} total {}",
            h.waiter, h.holder, h.count, h.total_wait
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_section() {
        let s = LiveSnapshot {
            epoch: 3,
            now: 9000,
            resident_origins: 2,
            finalized_origins: 5,
            peak_resident: 4,
            evictions: 6,
            pending_walks: 1,
            pending_edges: 0,
            lag: LagStats {
                batches: 4,
                events: 120,
                ..LagStats::default()
            },
            top_paths: vec![TopPath {
                origin: "squid:client_http_request".into(),
                cycles: 500,
                samples: 5,
                path: vec!["client_http_request".into(), "do_query".into()],
            }],
            tiers: vec![TierSlice {
                origin: "squid:client_http_request".into(),
                stages: vec![("squid".into(), 100), ("mysql".into(), 400)],
            }],
            hotspots: vec![Hotspot {
                waiter: "squid:a".into(),
                holder: "squid:b".into(),
                count: 2,
                total_wait: 90,
            }],
        };
        let text = render_live_snapshot(&s);
        assert!(text.contains("epoch 3"));
        assert!(text.contains("1. squid:client_http_request  cycles 500 samples 5"));
        assert!(text.contains("client_http_request -> do_query"));
        assert!(text.contains("squid 100 | mysql 400"));
        assert!(text.contains("squid:a  <-  squid:b  waits 2 total 90"));
    }
}
