//! Live collector snapshot rendering.
//!
//! The streaming collector (`whodunit-collector`) answers queries at
//! any epoch — top-k transaction paths by cost, per-origin tier
//! latency breakdown, crosstalk hotspots — and packages the answers as
//! a [`LiveSnapshot`]: plain presentation data, already labeled and
//! ordered, with no collector internals attached. This module renders
//! that snapshot as deterministic text (the golden-file surface for
//! the streaming tier).

use std::fmt::Write as _;

/// Ingest-side accounting: how much the collector has consumed and how
/// far behind the emitting tiers it has fallen.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LagStats {
    /// Epoch batches ingested so far.
    pub batches: u64,
    /// Individual change events ingested so far.
    pub events: u64,
    /// Sequence gaps detected (batches lost or reordered).
    pub seq_gaps: u64,
    /// Batches currently queued but not yet processed.
    pub queued: u64,
    /// High-water mark of the ingest queue depth, all-time.
    pub peak_queued: u64,
    /// High-water mark of the current fill/drain cycle: resets when a
    /// batch is enqueued onto an empty queue, so long-running reuse of
    /// one collector does not pin the live view at an ancient peak.
    pub cycle_peak_queued: u64,
    /// Offers rejected because the ingest queue was full.
    pub throttled: u64,
}

/// Parallel-execution accounting of the collector's deferred fold
/// phase (DESIGN.md §14). Everything here except `fold_steals` is a
/// pure function of the configuration and the stream, so the rendered
/// line is deterministic; steal counts are scheduling noise and are
/// deliberately kept out of [`render_live_snapshot`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadingStats {
    /// Configured fold workers (1 = the serial reference path).
    pub workers: u64,
    /// Batches whose folds ran on the parallel executor.
    pub parallel_fold_batches: u64,
    /// Per-origin fold groups executed across those batches.
    pub fold_groups: u64,
    /// Successful work steals across fold runs. Timing-dependent;
    /// diagnostic only, never rendered.
    pub fold_steals: u64,
    /// Fold worker panics recovered through the batch fallback.
    pub fold_panics: u64,
}

/// One entry of the top-k transaction paths by cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopPath {
    /// Origin label (`stage:context`).
    pub origin: String,
    /// Total inclusive cycles across the origin's merged CCT.
    pub cycles: u64,
    /// Total samples across the origin's merged CCT.
    pub samples: u64,
    /// Hottest call path, root-first frame names.
    pub path: Vec<String>,
}

/// Per-origin tier latency breakdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierSlice {
    /// Origin label (`stage:context`).
    pub origin: String,
    /// `(stage name, cycles attributed)` in stage order.
    pub stages: Vec<(String, u64)>,
}

/// One crosstalk hotspot: an ordered waiter/holder origin pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hotspot {
    /// Waiting origin label.
    pub waiter: String,
    /// Blamed holding origin label.
    pub holder: String,
    /// Number of waits.
    pub count: u64,
    /// Total cycles waited.
    pub total_wait: u64,
}

/// A point-in-time view of the streaming collector.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LiveSnapshot {
    /// Epoch the snapshot was taken at.
    pub epoch: u64,
    /// Virtual time (cycles) at the end of that epoch.
    pub now: u64,
    /// Origins currently resident (in-memory, still accumulating).
    pub resident_origins: u64,
    /// Origins evicted into the compact finalized store.
    pub finalized_origins: u64,
    /// High-water mark of resident origins.
    pub peak_resident: u64,
    /// Total evictions performed (revived origins count again).
    pub evictions: u64,
    /// Origin walks still blocked on an unseen synopsis.
    pub pending_walks: u64,
    /// Request edges still blocked on an unseen synopsis.
    pub pending_edges: u64,
    /// Ingest/backpressure accounting.
    pub lag: LagStats,
    /// Parallel fold-phase accounting.
    pub threads: ThreadingStats,
    /// Explicit degradation markers: one line per stage whose stream
    /// needed quarantine, resync, or stall handling. Empty on a clean
    /// stream.
    pub degraded: Vec<String>,
    /// Top-k transaction paths by cost, highest first.
    pub top_paths: Vec<TopPath>,
    /// Tier breakdowns for the same origins, same order.
    pub tiers: Vec<TierSlice>,
    /// Crosstalk hotspots, highest total wait first.
    pub hotspots: Vec<Hotspot>,
}

/// Renders a [`LiveSnapshot`] as deterministic text.
pub fn render_live_snapshot(s: &LiveSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== live collector snapshot @ epoch {} (t={}) ==",
        s.epoch, s.now
    );
    let _ = writeln!(
        out,
        "origins: {} resident, {} finalized, peak {}, evictions {}",
        s.resident_origins, s.finalized_origins, s.peak_resident, s.evictions
    );
    let _ = writeln!(
        out,
        "pending: {} walks, {} edges",
        s.pending_walks, s.pending_edges
    );
    let _ = writeln!(
        out,
        "ingest: {} batches, {} events, {} seq gaps, queue {} (peak {} / cycle {}), throttled {}",
        s.lag.batches,
        s.lag.events,
        s.lag.seq_gaps,
        s.lag.queued,
        s.lag.peak_queued,
        s.lag.cycle_peak_queued,
        s.lag.throttled
    );
    let _ = writeln!(
        out,
        "threads: {} fold workers, {} parallel batches, {} fold groups{}",
        s.threads.workers,
        s.threads.parallel_fold_batches,
        s.threads.fold_groups,
        if s.threads.fold_panics > 0 {
            format!(", {} fold panics", s.threads.fold_panics)
        } else {
            String::new()
        }
    );
    for d in &s.degraded {
        let _ = writeln!(out, "degraded: {d}");
    }
    let _ = writeln!(out, "\ntop transaction paths by cost:");
    for (i, t) in s.top_paths.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {}. {}  cycles {} samples {}",
            i + 1,
            t.origin,
            t.cycles,
            t.samples
        );
        if !t.path.is_empty() {
            let _ = writeln!(out, "     {}", t.path.join(" -> "));
        }
    }
    let _ = writeln!(out, "\ntier breakdown:");
    for t in &s.tiers {
        let cells: Vec<String> = t
            .stages
            .iter()
            .map(|(name, cy)| format!("{name} {cy}"))
            .collect();
        let _ = writeln!(out, "  {}: {}", t.origin, cells.join(" | "));
    }
    let _ = writeln!(out, "\ncrosstalk hotspots:");
    for h in &s.hotspots {
        let _ = writeln!(
            out,
            "  {}  <-  {}  waits {} total {}",
            h.waiter, h.holder, h.count, h.total_wait
        );
    }
    out
}

/// The difference between two [`LiveSnapshot`]s of the same collector,
/// used by the sentinel's time-travel view to show what changed across
/// an anomaly window (before/after the violation).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LiveDiff {
    /// Epoch of the earlier snapshot.
    pub from_epoch: u64,
    /// Epoch of the later snapshot.
    pub to_epoch: u64,
    /// Batches ingested between the snapshots.
    pub d_batches: u64,
    /// Change events ingested between the snapshots.
    pub d_events: u64,
    /// Origins that entered/left/changed in the top-path ranking:
    /// `(origin label, cycles before, cycles after)`; absence renders
    /// as 0. Ordered by descending growth.
    pub origins: Vec<(String, u64, u64)>,
    /// Hotspots whose total wait grew: `(waiter, holder, wait before,
    /// wait after)`, ordered by descending growth.
    pub hotspots: Vec<(String, String, u64, u64)>,
    /// Degradation markers present after but not before.
    pub degraded_added: Vec<String>,
}

/// Computes the differential view between two snapshots (`before` must
/// be the earlier one).
pub fn diff_snapshots(before: &LiveSnapshot, after: &LiveSnapshot) -> LiveDiff {
    let prior_cycles = |s: &LiveSnapshot, origin: &str| {
        s.top_paths
            .iter()
            .find(|t| t.origin == origin)
            .map_or(0, |t| t.cycles)
    };
    let mut origins: Vec<(String, u64, u64)> = after
        .top_paths
        .iter()
        .map(|t| (t.origin.clone(), prior_cycles(before, &t.origin), t.cycles))
        .collect();
    for t in &before.top_paths {
        if !origins.iter().any(|(o, ..)| o == &t.origin) {
            origins.push((t.origin.clone(), t.cycles, prior_cycles(after, &t.origin)));
        }
    }
    origins.sort_by(|a, b| {
        let ga = a.2.saturating_sub(a.1);
        let gb = b.2.saturating_sub(b.1);
        (gb, &a.0).cmp(&(ga, &b.0))
    });

    let prior_wait = |s: &LiveSnapshot, w: &str, h: &str| {
        s.hotspots
            .iter()
            .find(|x| x.waiter == w && x.holder == h)
            .map_or(0, |x| x.total_wait)
    };
    let mut hotspots: Vec<(String, String, u64, u64)> = after
        .hotspots
        .iter()
        .map(|x| {
            (
                x.waiter.clone(),
                x.holder.clone(),
                prior_wait(before, &x.waiter, &x.holder),
                x.total_wait,
            )
        })
        .filter(|(_, _, b, a)| a > b)
        .collect();
    hotspots.sort_by(|a, b| {
        let ga = a.3.saturating_sub(a.2);
        let gb = b.3.saturating_sub(b.2);
        (gb, &a.0).cmp(&(ga, &b.0))
    });

    LiveDiff {
        from_epoch: before.epoch,
        to_epoch: after.epoch,
        d_batches: after.lag.batches.saturating_sub(before.lag.batches),
        d_events: after.lag.events.saturating_sub(before.lag.events),
        origins,
        hotspots,
        degraded_added: after
            .degraded
            .iter()
            .filter(|d| !before.degraded.contains(d))
            .cloned()
            .collect(),
    }
}

/// Renders a [`LiveDiff`] as deterministic text.
pub fn render_live_diff(d: &LiveDiff) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== live diff: epoch {} -> {} ({} batches, {} events) ==",
        d.from_epoch, d.to_epoch, d.d_batches, d.d_events
    );
    let _ = writeln!(out, "origin cycle growth:");
    for (o, b, a) in &d.origins {
        let _ = writeln!(out, "  {o}: {b} -> {a} (+{})", a.saturating_sub(*b));
    }
    if !d.hotspots.is_empty() {
        let _ = writeln!(out, "hotspot wait growth:");
        for (w, h, b, a) in &d.hotspots {
            let _ = writeln!(out, "  {w}  <-  {h}: {b} -> {a} (+{})", a.saturating_sub(*b));
        }
    }
    for m in &d.degraded_added {
        let _ = writeln!(out, "newly degraded: {m}");
    }
    out
}

/// How a captured incident was shrunk: scenario size before and after
/// the greedy reduction, plus the runs the reduction cost.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShrinkSummary {
    /// Fault-plan entries before shrinking.
    pub faults_before: u64,
    /// Fault-plan entries after shrinking.
    pub faults_after: u64,
    /// Workload clients before shrinking.
    pub clients_before: u64,
    /// Workload clients after shrinking.
    pub clients_after: u64,
}

/// Replay verification of a captured repro.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Fingerprint of the captured scenario's run.
    pub fingerprint: u64,
    /// Whether a second run produced the identical fingerprint.
    pub bit_identical: bool,
    /// Whether the replay re-tripped the recorded dimension.
    pub retripped: bool,
}

/// Everything the incident renderer needs, as plain data: the sentinel
/// trip, the capture window, the differential snapshots, and (after
/// capture finishes) the shrink and replay summaries. A card with
/// `shrink`/`replay` still `None` renders as a mid-violation report.
#[derive(Clone, Debug, Default)]
pub struct IncidentCard {
    /// Violated dimension (`tail:<stage>`, `xt-wait`, `lag`,
    /// `quarantine`).
    pub dimension: String,
    /// Epoch the sentinel tripped at.
    pub detected_epoch: u64,
    /// Observed value at the trip.
    pub observed: u64,
    /// The budget it exceeded.
    pub budget: u64,
    /// Quantile (ppm) the budget was evaluated at.
    pub quantile_ppm: u64,
    /// Capture window: first and last retained epoch (inclusive).
    pub window: (u64, u64),
    /// Known fault onset epoch, when the harness planted the fault.
    pub onset_epoch: Option<u64>,
    /// Degradation markers active at detection.
    pub degraded: Vec<String>,
    /// Shrink outcome; `None` while capture is still in progress.
    pub shrink: Option<ShrinkSummary>,
    /// Replay verification; `None` while capture is still in progress.
    pub replay: Option<ReplaySummary>,
    /// Newest retained snapshot from before the violation.
    pub before: Option<LiveSnapshot>,
    /// Snapshot taken at detection.
    pub after: Option<LiveSnapshot>,
}

/// Renders an incident report: the trip, detection latency, the
/// before/after differential, shrink and replay results, and the full
/// state at detection. Deterministic text, suitable for golden files.
pub fn render_incident(c: &IncidentCard) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== incident: {} @ epoch {} ==",
        c.dimension, c.detected_epoch
    );
    let _ = writeln!(
        out,
        "budget: p{:.2} per-epoch value {} exceeded: observed {}",
        c.quantile_ppm as f64 / 10_000.0,
        c.budget,
        c.observed
    );
    let _ = writeln!(out, "window: epochs {}..={}", c.window.0, c.window.1);
    if let Some(onset) = c.onset_epoch {
        let _ = writeln!(
            out,
            "onset: epoch {onset} (detection latency {} epochs)",
            c.detected_epoch.saturating_sub(onset)
        );
    }
    for m in &c.degraded {
        let _ = writeln!(out, "degraded: {m}");
    }
    match &c.shrink {
        Some(s) => {
            let _ = writeln!(
                out,
                "shrink: faults {} -> {}, clients {} -> {}",
                s.faults_before, s.faults_after, s.clients_before, s.clients_after
            );
        }
        None => {
            let _ = writeln!(out, "capture: in progress");
        }
    }
    if let Some(r) = &c.replay {
        let _ = writeln!(
            out,
            "replay: fingerprint {:016x} {}, {}",
            r.fingerprint,
            if r.bit_identical {
                "bit-identical"
            } else {
                "DIVERGED"
            },
            if r.retripped {
                "re-tripped"
            } else {
                "DID NOT RE-TRIP"
            }
        );
    }
    if let (Some(b), Some(a)) = (&c.before, &c.after) {
        out.push('\n');
        out.push_str(&render_live_diff(&diff_snapshots(b, a)));
    }
    if let Some(a) = &c.after {
        out.push('\n');
        let _ = writeln!(out, "-- state at detection --");
        out.push_str(&render_live_snapshot(a));
    }
    out
}

/// One node of the federation tree, as the root's operator sees it:
/// liveness, lag, delivery progress, and children. Presentation data
/// only — the collector crate fills it from its ledgers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FedNodeView {
    /// Display label (`root`, `region3`, `leaf17`).
    pub label: String,
    /// Whether the node is currently up.
    pub alive: bool,
    /// Whether the node's subtree finalized (or is running) with
    /// missing mass.
    pub degraded: bool,
    /// Frames spooled/parked but not yet settled at this node.
    pub lag_frames: u64,
    /// Latest input epoch this node's data covers.
    pub last_epoch: u64,
    /// Profile mass delivered to the root from this subtree (for the
    /// root node itself: total mass applied).
    pub mass: u64,
    /// Crash recoveries this node has performed.
    pub recoveries: u64,
    /// Child subtrees, in topology order.
    pub children: Vec<FedNodeView>,
}

/// A point-in-time view of the whole federation tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FedTopologyView {
    /// The global root and, beneath it, regionals and leaves.
    pub root: FedNodeView,
    /// Delivered/truth coverage in parts-per-million.
    pub coverage_ppm: u64,
    /// Latest input epoch the root has applied.
    pub epoch: u64,
}

fn render_fed_node(out: &mut String, n: &FedNodeView, prefix: &str, last: bool, is_root: bool) {
    let mut line = String::new();
    if is_root {
        let _ = write!(line, "{}", n.label);
    } else {
        let _ = write!(
            line,
            "{prefix}{} {}",
            if last { "`-" } else { "|-" },
            n.label
        );
    }
    let _ = write!(
        line,
        "  mass {}  epoch {}  lag {}",
        n.mass, n.last_epoch, n.lag_frames
    );
    if n.recoveries > 0 {
        let _ = write!(line, "  recoveries {}", n.recoveries);
    }
    if !n.children.is_empty() {
        let _ = write!(line, "  fan-in {}", n.children.len());
    }
    if !n.alive {
        line.push_str("  DOWN");
    }
    if n.degraded {
        line.push_str("  DEGRADED");
    }
    out.push_str(&line);
    out.push('\n');
    let child_prefix = if is_root {
        String::new()
    } else {
        format!("{prefix}{}", if last { "   " } else { "|  " })
    };
    for (i, c) in n.children.iter().enumerate() {
        render_fed_node(out, c, &child_prefix, i + 1 == n.children.len(), false);
    }
}

/// Renders the federation topology as a deterministic ASCII tree (the
/// golden-file surface for the federation tier).
pub fn render_fed_topology(v: &FedTopologyView) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== federation @ epoch {} · coverage {}.{:04}% ==",
        v.epoch,
        v.coverage_ppm / 10_000,
        v.coverage_ppm % 10_000
    );
    render_fed_node(&mut out, &v.root, "", true, true);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fed_topology_renders_tree_and_degradation() {
        let v = FedTopologyView {
            root: FedNodeView {
                label: "root".into(),
                alive: true,
                mass: 1000,
                last_epoch: 42,
                children: vec![
                    FedNodeView {
                        label: "region0".into(),
                        alive: true,
                        mass: 600,
                        last_epoch: 42,
                        children: vec![FedNodeView {
                            label: "leaf0".into(),
                            alive: true,
                            mass: 600,
                            last_epoch: 42,
                            recoveries: 1,
                            ..FedNodeView::default()
                        }],
                        ..FedNodeView::default()
                    },
                    FedNodeView {
                        label: "region1".into(),
                        alive: true,
                        mass: 400,
                        last_epoch: 40,
                        children: vec![FedNodeView {
                            label: "leaf1".into(),
                            alive: false,
                            degraded: true,
                            mass: 400,
                            last_epoch: 40,
                            ..FedNodeView::default()
                        }],
                        ..FedNodeView::default()
                    },
                ],
                ..FedNodeView::default()
            },
            coverage_ppm: 909_091,
            epoch: 42,
        };
        let txt = render_fed_topology(&v);
        assert!(txt.starts_with("== federation @ epoch 42 · coverage 90.9091% =="));
        assert!(txt.contains("root  mass 1000  epoch 42  lag 0  fan-in 2"));
        assert!(txt.contains("|- region0"));
        assert!(txt.contains("`- region1"));
        assert!(txt.contains("|  `- leaf0  mass 600  epoch 42  lag 0  recoveries 1"));
        assert!(txt.contains("   `- leaf1  mass 400  epoch 40  lag 0  DOWN  DEGRADED"));
    }

    #[test]
    fn renders_every_section() {
        let s = LiveSnapshot {
            epoch: 3,
            now: 9000,
            resident_origins: 2,
            finalized_origins: 5,
            peak_resident: 4,
            evictions: 6,
            pending_walks: 1,
            pending_edges: 0,
            lag: LagStats {
                batches: 4,
                events: 120,
                ..LagStats::default()
            },
            threads: ThreadingStats {
                workers: 4,
                parallel_fold_batches: 3,
                fold_groups: 17,
                fold_steals: 999, // scheduling noise: must not render
                fold_panics: 0,
            },
            top_paths: vec![TopPath {
                origin: "squid:client_http_request".into(),
                cycles: 500,
                samples: 5,
                path: vec!["client_http_request".into(), "do_query".into()],
            }],
            tiers: vec![TierSlice {
                origin: "squid:client_http_request".into(),
                stages: vec![("squid".into(), 100), ("mysql".into(), 400)],
            }],
            hotspots: vec![Hotspot {
                waiter: "squid:a".into(),
                holder: "squid:b".into(),
                count: 2,
                total_wait: 90,
            }],
            degraded: vec![],
        };
        let text = render_live_snapshot(&s);
        assert!(text.contains("epoch 3"));
        assert!(text.contains("threads: 4 fold workers, 3 parallel batches, 17 fold groups"));
        assert!(!text.contains("999"), "steal counts are scheduling noise");
        assert!(!text.contains("fold panics"), "clean snapshot has no panic note");
        assert!(text.contains("1. squid:client_http_request  cycles 500 samples 5"));
        assert!(text.contains("client_http_request -> do_query"));
        assert!(text.contains("squid 100 | mysql 400"));
        assert!(text.contains("squid:a  <-  squid:b  waits 2 total 90"));
        assert!(!text.contains("degraded"), "clean snapshot has no marker");
    }

    #[test]
    fn degraded_markers_render_one_per_line() {
        let s = LiveSnapshot {
            degraded: vec!["stage 1 (db): 2 corrupt quarantined".into()],
            ..LiveSnapshot::default()
        };
        assert!(render_live_snapshot(&s).contains("degraded: stage 1 (db): 2 corrupt quarantined"));
    }

    #[test]
    fn diff_tracks_growth_and_new_degradation() {
        let top = |origin: &str, cycles: u64| TopPath {
            origin: origin.into(),
            cycles,
            samples: 1,
            path: vec![],
        };
        let before = LiveSnapshot {
            epoch: 4,
            lag: LagStats {
                batches: 4,
                events: 40,
                ..LagStats::default()
            },
            top_paths: vec![top("a:x", 100), top("a:y", 50)],
            ..LiveSnapshot::default()
        };
        let after = LiveSnapshot {
            epoch: 9,
            lag: LagStats {
                batches: 9,
                events: 140,
                ..LagStats::default()
            },
            top_paths: vec![top("a:x", 700), top("a:z", 90)],
            hotspots: vec![Hotspot {
                waiter: "a:x".into(),
                holder: "a:z".into(),
                count: 3,
                total_wait: 77,
            }],
            degraded: vec!["stage 0 stalled".into()],
            ..LiveSnapshot::default()
        };
        let d = diff_snapshots(&before, &after);
        assert_eq!((d.from_epoch, d.to_epoch), (4, 9));
        assert_eq!((d.d_batches, d.d_events), (5, 100));
        // Ordered by descending growth; the dropped-out origin "a:y"
        // still appears (with after = 0).
        assert_eq!(d.origins[0], ("a:x".into(), 100, 700));
        assert_eq!(d.origins[1], ("a:z".into(), 0, 90));
        assert!(d.origins.iter().any(|(o, b, a)| o == "a:y" && *b == 50 && *a == 0));
        assert_eq!(d.hotspots, vec![("a:x".into(), "a:z".into(), 0, 77)]);
        assert_eq!(d.degraded_added, vec!["stage 0 stalled".to_owned()]);
        let text = render_live_diff(&d);
        assert!(text.contains("epoch 4 -> 9"));
        assert!(text.contains("a:x: 100 -> 700 (+600)"));
        assert!(text.contains("newly degraded: stage 0 stalled"));
    }

    #[test]
    fn incident_renders_mid_violation_and_post_capture() {
        let mut card = IncidentCard {
            dimension: "tail:db".into(),
            detected_epoch: 37,
            observed: 5678,
            budget: 1234,
            quantile_ppm: 990_000,
            window: (30, 37),
            onset_epoch: Some(30),
            degraded: vec!["stage 2 (db): 1 resync".into()],
            ..IncidentCard::default()
        };
        let mid = render_incident(&card);
        assert!(mid.starts_with("== incident: tail:db @ epoch 37 =="));
        assert!(mid.contains("budget: p99.00 per-epoch value 1234 exceeded: observed 5678"));
        assert!(mid.contains("window: epochs 30..=37"));
        assert!(mid.contains("onset: epoch 30 (detection latency 7 epochs)"));
        assert!(mid.contains("degraded: stage 2 (db): 1 resync"));
        assert!(mid.contains("capture: in progress"));
        assert!(!mid.contains("replay:"));

        card.shrink = Some(ShrinkSummary {
            faults_before: 3,
            faults_after: 1,
            clients_before: 48,
            clients_after: 6,
        });
        card.replay = Some(ReplaySummary {
            fingerprint: 0xdead_beef,
            bit_identical: true,
            retripped: true,
        });
        let done = render_incident(&card);
        assert!(done.contains("shrink: faults 3 -> 1, clients 48 -> 6"));
        assert!(done.contains("replay: fingerprint 00000000deadbeef bit-identical, re-tripped"));
        assert!(!done.contains("capture: in progress"));
    }
}
