//! Property tests for the columnar binary wire codec (DESIGN.md §16):
//!
//! - **Exact round-trips**: `decode(encode(x)) == x` as a value, for
//!   arbitrary [`StageDelta`]s (including hostile extremes — `u64::MAX`
//!   swings that stress the zigzag delta-of-delta columns, empty and
//!   maximal sections, multi-byte UTF-8 in the intern tables, and wrong
//!   stored checksums, which must survive the wire verbatim so the
//!   struct ingest path can quarantine them).
//! - **Stream framing**: concatenated frames decode one by one off a
//!   single buffer via the `consumed` count, with no drift.
//! - **Golden frame**: one small, fully-populated frame is locked as a
//!   hex dump under `tests/golden/wire_frame.hex`. Any byte change to
//!   the format is a visible diff; regenerate deliberately with
//!   `UPDATE_GOLDEN=1 cargo test -p whodunit-core --test wire_props`.
//!
//! The generators build structures directly from a seeded xorshift
//! stream rather than composing strategy combinators: the wire codec
//! must round-trip *any* field values, not only streams an emitter
//! would produce, so the domain is deliberately wider than
//! `diff_dump`'s output.

use proptest::prelude::*;
use whodunit_core::delta::{EpochBatch, StageDelta, StreamHeader, StreamStage};
use whodunit_core::repro::{ChaosRepro, FaultEntry, ReproWindow};
use whodunit_core::stitch::{
    DumpAtom, DumpContext, DumpCrosstalkPair, DumpCrosstalkWaiter, DumpNode,
};
use whodunit_core::summary::{LeafGauges, SummaryFrame, TierSketch};
use whodunit_core::wire::{
    decode_batch, decode_header, decode_summary, encode_batch, encode_header, encode_summary,
};
use whodunit_core::{delta::CctDelta, repro_from_wire, repro_to_wire};

/// Deterministic xorshift64* stream for structure building.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// A u64 biased toward the values that break naive column codecs:
    /// zero, small, `u64::MAX`, off-by-one boundaries, and full-range
    /// noise — adjacent draws produce difference-of-difference values
    /// near the i128 extremes.
    fn extreme(&mut self) -> u64 {
        match self.below(6) {
            0 => 0,
            1 => self.below(16),
            2 => u64::MAX,
            3 => u64::MAX - self.below(16),
            4 => 1u64 << self.below(64),
            _ => self.next(),
        }
    }

    fn name(&mut self, tag: &str) -> String {
        // Multi-byte UTF-8 on some draws: length-prefixed strings must
        // count bytes, not chars.
        match self.below(4) {
            0 => format!("{tag}-{}", self.below(1000)),
            1 => String::new(),
            2 => format!("{tag}-λ·{}", self.below(1000)),
            _ => format!("{tag}#{}", self.next()),
        }
    }
}

fn arb_node(r: &mut Rng) -> DumpNode {
    let opt = |r: &mut Rng| match r.below(3) {
        0 => None,
        _ => Some((r.extreme() as u32).min(u32::MAX - 1)),
    };
    DumpNode {
        frame: opt(r),
        parent: opt(r),
        samples: r.extreme(),
        cycles: r.extreme(),
        calls: r.extreme(),
    }
}

fn arb_atom(r: &mut Rng) -> DumpAtom {
    match r.below(3) {
        0 => DumpAtom::Frame(r.extreme() as u32),
        1 => DumpAtom::Path((0..r.below(4)).map(|_| r.extreme() as u32).collect()),
        _ => DumpAtom::Remote((0..r.below(4)).map(|_| r.extreme()).collect()),
    }
}

fn arb_delta(r: &mut Rng) -> StageDelta {
    StageDelta {
        stage: r.below(64) as usize,
        seq: r.extreme(),
        new_frames: (0..r.below(5)).map(|_| r.name("frame")).collect(),
        new_contexts: (0..r.below(4))
            .map(|_| DumpContext {
                atoms: (0..r.below(4)).map(|_| arb_atom(r)).collect(),
            })
            .collect(),
        new_synopses: (0..r.below(5))
            .map(|_| (r.extreme(), r.extreme() as u32))
            .collect(),
        ccts: {
            // One CCT per context, sorted by ctx — the documented
            // `StageDelta::ccts` invariant, which both decode paths
            // enforce (a repeated id could shrink ranges mid-apply).
            let mut ctx: Vec<u32> = (0..r.below(4)).map(|_| r.extreme() as u32).collect();
            ctx.sort_unstable();
            ctx.dedup();
            ctx.into_iter()
                .map(|ctx| CctDelta {
                    ctx,
                    nodes_before: r.below(1000) as u32,
                    new_nodes: (0..r.below(5)).map(|_| arb_node(r)).collect(),
                    grown: (0..r.below(5))
                        .map(|_| (r.below(1000) as u32, r.extreme(), r.extreme(), r.extreme()))
                        .collect(),
                })
                .collect()
        },
        pairs: (0..r.below(4))
            .map(|_| DumpCrosstalkPair {
                waiter: r.extreme() as u32,
                holder: r.extreme() as u32,
                count: r.extreme(),
                total_wait: r.extreme(),
            })
            .collect(),
        waiters: (0..r.below(4))
            .map(|_| DumpCrosstalkWaiter {
                waiter: r.extreme() as u32,
                count: r.extreme(),
                total_wait: r.extreme(),
            })
            .collect(),
        piggyback_bytes: r.extreme(),
        messages: r.extreme(),
        // Arbitrary — often *wrong* for the content. The wire must
        // carry it verbatim so the struct path's own verification
        // stays the arbiter of corruption.
        checksum: r.extreme(),
    }
}

fn arb_batch(r: &mut Rng) -> EpochBatch {
    EpochBatch {
        epoch: r.extreme(),
        seq: r.extreme(),
        end: r.extreme(),
        deltas: (0..r.below(4)).map(|_| arb_delta(r)).collect(),
    }
}

fn arb_summary(r: &mut Rng) -> SummaryFrame {
    SummaryFrame {
        src: r.extreme() as u32,
        seq: r.extreme(),
        first_epoch: r.extreme(),
        last_epoch: r.extreme(),
        end: r.extreme(),
        deltas: (0..r.below(3)).map(|_| arb_delta(r)).collect(),
        sketches: (0..r.below(3))
            .map(|_| TierSketch {
                tier: r.name("tier"),
                max: r.extreme(),
                buckets: {
                    let mut idx: Vec<u32> =
                        (0..r.below(5)).map(|_| r.below(4096) as u32).collect();
                    idx.sort_unstable();
                    idx.dedup();
                    idx.into_iter().map(|i| (i, r.extreme().max(1))).collect()
                },
            })
            .collect(),
        leaf_mass: (0..r.below(4))
            .map(|_| (r.extreme() as u32, r.extreme()))
            .collect(),
        gauges: (0..r.below(4))
            .map(|_| {
                (
                    r.extreme() as u32,
                    LeafGauges {
                        last_epoch: r.extreme(),
                        events: r.extreme(),
                        mass: r.extreme(),
                        lag_frames: r.extreme(),
                        checkpoints: r.extreme(),
                        recoveries: r.extreme(),
                    },
                )
            })
            .collect(),
        checksum: r.extreme(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `decode(encode(batch)) == batch` for arbitrary epoch batches —
    /// every column, every section, every extreme.
    #[test]
    fn batches_round_trip_exactly(seed in any::<u64>()) {
        let mut r = Rng::new(seed);
        let batch = arb_batch(&mut r);
        let bytes = encode_batch(&batch);
        let (back, consumed) = decode_batch(&bytes).expect("own encoding decodes");
        prop_assert_eq!(consumed, bytes.len(), "consumed drifted");
        prop_assert_eq!(back, batch, "round trip changed the value");
    }

    /// Single arbitrary stage deltas round-trip through a batch frame —
    /// the `decode(encode(delta)) == delta` law stated by itself.
    #[test]
    fn deltas_round_trip_exactly(seed in any::<u64>()) {
        let mut r = Rng::new(seed);
        let delta = arb_delta(&mut r);
        let batch = EpochBatch { epoch: 0, seq: 0, end: 0, deltas: vec![delta.clone()] };
        let (back, _) = decode_batch(&encode_batch(&batch)).expect("decodes");
        prop_assert_eq!(back.deltas.len(), 1);
        prop_assert_eq!(back.deltas.into_iter().next().unwrap(), delta);
    }

    /// Summary frames (federation links) round-trip exactly, including
    /// sketches, ledgers, gauges, and stored checksums.
    #[test]
    fn summaries_round_trip_exactly(seed in any::<u64>()) {
        let mut r = Rng::new(seed);
        let frame = arb_summary(&mut r);
        let bytes = encode_summary(&frame);
        let (back, consumed) = decode_summary(&bytes).expect("own encoding decodes");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back, frame);
    }

    /// A concatenated stream of frames decodes frame by frame with no
    /// drift — the collector's ingest loop contract.
    #[test]
    fn concatenated_streams_decode_without_drift(
        input in (any::<u64>(), 1usize..6)
    ) {
        let (seed, n) = input;
        let mut r = Rng::new(seed);
        let batches: Vec<EpochBatch> = (0..n).map(|_| arb_batch(&mut r)).collect();
        let mut stream = Vec::new();
        for b in &batches {
            stream.extend_from_slice(&encode_batch(b));
        }
        let mut at = 0;
        for b in &batches {
            let (back, consumed) = decode_batch(&stream[at..]).expect("frame decodes");
            prop_assert_eq!(&back, b);
            at += consumed;
        }
        prop_assert_eq!(at, stream.len(), "stream left trailing bytes");
    }

    /// Stream headers and chaos repro files round-trip through their
    /// wire frames for arbitrary contents.
    #[test]
    fn headers_and_repros_round_trip(seed in any::<u64>()) {
        let mut r = Rng::new(seed);
        let header = StreamHeader {
            stages: (0..r.below(6))
                .map(|_| StreamStage { proc: r.extreme() as u32, stage_name: r.name("stage") })
                .collect(),
        };
        let bytes = encode_header(&header);
        let (back, consumed) = decode_header(&bytes).expect("header decodes");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back, header);

        let repro = ChaosRepro {
            seed: r.extreme(),
            policy: r.name("policy"),
            workload: (0..r.below(4)).map(|_| (r.name("op"), r.extreme())).collect(),
            faults: (0..r.below(6))
                .map(|_| match r.below(5) {
                    0 => FaultEntry::Drop { chan: r.name("chan"), ppm: r.below(1_000_001) },
                    1 => FaultEntry::Dup { chan: r.name("chan"), ppm: r.below(1_000_001) },
                    2 => FaultEntry::Delay {
                        chan: r.name("chan"),
                        ppm: r.below(1_000_001),
                        cycles: r.extreme(),
                    },
                    3 => FaultEntry::Crash { proc: r.name("proc"), at: r.extreme() },
                    _ => FaultEntry::Slowdown {
                        machine: r.name("machine"),
                        from: r.extreme(),
                        until: r.extreme(),
                        factor: r.below(64) + 1,
                    },
                })
                .collect(),
            violation: if r.below(2) == 0 { None } else { Some(r.name("violation")) },
            window: if r.below(2) == 0 {
                None
            } else {
                Some(ReproWindow {
                    epoch_len: r.extreme(),
                    start: r.extreme(),
                    end: r.extreme(),
                    dimension: r.name("dim"),
                })
            },
        };
        let back = repro_from_wire(&repro_to_wire(&repro)).expect("repro decodes");
        prop_assert_eq!(back, repro);
    }
}

/// The golden frame: small enough to eyeball in a hex dump, populated
/// enough that every section of the §16 layout contributes bytes.
fn golden_batch() -> EpochBatch {
    EpochBatch {
        epoch: 3,
        seq: 7,
        end: 250_000,
        deltas: vec![StageDelta {
            stage: 1,
            seq: 7,
            new_frames: vec!["main".into(), "handle_req".into()],
            new_contexts: vec![
                DumpContext { atoms: vec![DumpAtom::Frame(0)] },
                DumpContext {
                    atoms: vec![DumpAtom::Path(vec![0, 1]), DumpAtom::Remote(vec![0xABCD])],
                },
            ],
            new_synopses: vec![(0x00C0FFEE, 0), (0x00C0FFFA, 1)],
            ccts: vec![CctDelta {
                ctx: 0,
                nodes_before: 1,
                new_nodes: vec![DumpNode {
                    frame: Some(1),
                    parent: Some(0),
                    samples: 4,
                    cycles: 4096,
                    calls: 2,
                }],
                grown: vec![(0, 1, 512, 1)],
            }],
            pairs: vec![DumpCrosstalkPair { waiter: 1, holder: 0, count: 2, total_wait: 300 }],
            waiters: vec![DumpCrosstalkWaiter { waiter: 1, count: 2, total_wait: 300 }],
            piggyback_bytes: 24,
            messages: 6,
            checksum: 0x0123_4567_89AB_CDEF,
        }],
    }
}

fn hex_dump(bytes: &[u8]) -> String {
    let mut out = String::new();
    for chunk in bytes.chunks(16) {
        for b in chunk {
            out.push_str(&format!("{b:02x} "));
        }
        out.pop();
        out.push('\n');
    }
    out
}

/// Locks the golden frame's exact bytes. A failure here means the wire
/// format changed: if intentional, bump [`whodunit_core::WIRE_VERSION`]
/// and regenerate with `UPDATE_GOLDEN=1`.
#[test]
fn golden_frame_bytes_are_locked() {
    let bytes = encode_batch(&golden_batch());
    let dump = hex_dump(&bytes);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/wire_frame.hex");
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &dump).unwrap();
        eprintln!("golden frame regenerated at {path}");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        dump, want,
        "wire bytes changed; if intentional, bump WIRE_VERSION and re-run with UPDATE_GOLDEN=1"
    );
    // And the locked bytes still decode to the original value.
    let (back, consumed) = decode_batch(&bytes).expect("golden decodes");
    assert_eq!(consumed, bytes.len());
    assert_eq!(back, golden_batch());
}
