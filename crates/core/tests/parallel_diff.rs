//! Differential suite: the parallel sharded analysis pipeline must be
//! **byte-identical** to the serial path on real TPC-W dumps, across
//! seeds × schedule policies × fault plans.
//!
//! Each scenario runs the 3-tier TPC-W stack once, then analyzes the
//! resulting dumps with `workers = 1` (the serial reference path) and
//! with several parallel worker counts, comparing:
//!
//! - the stitched per-transaction profile text (origins, merged CCTs,
//!   request/unresolved edges, warnings),
//! - the rendered crosstalk matrix,
//! - the re-serialized dump JSON,
//! - the sharded context dictionary,
//!
//! all as exact equality. The serial path is additionally
//! cross-validated against the legacy `Stitched` resolver and the
//! serial `dumpjson::to_json` serializer, so the pipeline cannot drift
//! from the pre-existing analysis and then "agree with itself".
//!
//! Coverage: 6 seeds × 3 schedule policies (fifo, random, perturb) × 2
//! fault plans (clean, faulty) = 36 scenarios (≥ 32 required by the
//! acceptance gate), each analyzed at every worker count in
//! [`matrix::WORKER_SWEEP`]. The scenario corpus itself is shared with
//! the other differential suites via `whodunit_bench::matrix`.

use whodunit_apps::tpcw::run_tpcw;
use whodunit_bench::matrix::{self, scenario_dumps, schedules, SEEDS, WORKER_SWEEP};
use whodunit_core::dumpjson;
use whodunit_core::pipeline::{analyze, PipelineConfig};
use whodunit_core::stitch::{StageDump, Stitched};

/// Byte-compares every deterministic output surface of two reports.
fn assert_byte_identical(
    serial: &whodunit_core::pipeline::PipelineReport,
    par: &whodunit_core::pipeline::PipelineReport,
    what: &str,
) {
    assert_eq!(
        serial.stitched_text(),
        par.stitched_text(),
        "stitched text diverged: {what}"
    );
    assert_eq!(
        serial.crosstalk_text(),
        par.crosstalk_text(),
        "crosstalk matrix diverged: {what}"
    );
    assert_eq!(serial.dumps_json, par.dumps_json, "dump JSON diverged: {what}");
    assert_eq!(serial.dict, par.dict, "context dictionary diverged: {what}");
    assert_eq!(
        serial.fingerprint(),
        par.fingerprint(),
        "fingerprint diverged: {what}"
    );
}

/// Cross-validates the pipeline's serial path against the legacy
/// analysis: `Stitched` edges and the serial JSON serializer.
fn assert_matches_legacy(dumps: &[StageDump], rep: &whodunit_core::pipeline::PipelineReport, what: &str) {
    let st = Stitched::new(dumps.to_vec());
    assert_eq!(rep.edges, st.request_edges(), "request edges vs legacy: {what}");
    assert_eq!(
        rep.unresolved,
        st.unresolved_edges(),
        "unresolved edges vs legacy: {what}"
    );
    assert_eq!(
        rep.warnings.len(),
        st.warnings().len(),
        "warnings vs legacy: {what}"
    );
    assert_eq!(
        rep.dumps_json,
        dumpjson::to_json(dumps),
        "dump JSON vs legacy serializer: {what}"
    );
    // Every CCT's origin agrees with the legacy walk: the profile the
    // pipeline filed it under exists and records this stage.
    for (si, d) in rep.stages.iter().enumerate() {
        if st.warnings().iter().any(|(wi, _)| *wi == si) {
            continue;
        }
        for c in &d.ccts {
            let legacy = st.origin(si, c.ctx);
            let p = rep
                .profiles
                .iter()
                .find(|p| p.origin == legacy)
                .unwrap_or_else(|| panic!("no profile for legacy origin {legacy:?}: {what}"));
            assert!(
                p.stages.contains(&si),
                "profile {legacy:?} missing stage {si}: {what}"
            );
        }
    }
}

fn run_matrix(faulty: bool) {
    let mut scenarios = 0;
    for &seed in &SEEDS {
        for sched in schedules(seed) {
            scenarios += 1;
            let what = format!("seed={seed} sched={sched:?} faulty={faulty}");
            let dumps = scenario_dumps(seed, sched, faulty);
            let serial = analyze(dumps.clone(), PipelineConfig { workers: 1, shards: 32 });
            assert_matches_legacy(&dumps, &serial, &what);
            assert!(
                !serial.profiles.is_empty(),
                "scenario produced no profiles (vacuous): {what}"
            );
            for workers in WORKER_SWEEP {
                if workers == 1 {
                    continue; // `serial` above is the workers=1 run.
                }
                let par = analyze(dumps.clone(), PipelineConfig { workers, shards: 32 });
                assert_byte_identical(&serial, &par, &format!("{what} workers={workers}"));
            }
            // A different shard count is a *different* canonical output
            // (dictionary ids move) but must still be worker-invariant.
            let s5 = analyze(dumps.clone(), PipelineConfig { workers: 1, shards: 5 });
            let p5 = analyze(dumps, PipelineConfig { workers: 3, shards: 5 });
            assert_byte_identical(&s5, &p5, &format!("{what} shards=5"));
        }
    }
    assert_eq!(scenarios, 18);
}

#[test]
fn clean_runs_are_byte_identical_across_worker_counts() {
    run_matrix(false);
}

#[test]
fn faulty_runs_are_byte_identical_across_worker_counts() {
    run_matrix(true);
}

#[test]
fn faulty_runs_exercise_unresolved_and_warning_paths() {
    // At least one faulty scenario should drop messages; stitching must
    // still succeed and stay byte-identical (checked above). Here we
    // assert the faulty matrix is not vacuously identical to clean.
    let mut any_faults_seen = false;
    for &seed in &SEEDS {
        let report = run_tpcw(matrix::scenario_cfg(
            seed,
            whodunit_sim::sched::SchedulePolicy::Fifo,
            true,
        ));
        if report.dropped_msgs + report.delayed_msgs + report.duplicated_msgs > 0 {
            any_faults_seen = true;
            break;
        }
    }
    assert!(any_faults_seen, "fault plans never fired; faulty diff is vacuous");
}

// ---------------------------------------------------------------------
// Serializer byte-identity: the buffer-writer serializer must emit the
// exact bytes of the original `format!`-based writer, over the full
// 36-scenario dump corpus.
// ---------------------------------------------------------------------

/// The pre-optimization `format!`/`to_string`-based writer, kept
/// verbatim as the reference implementation.
mod legacy_writer {
    use whodunit_core::stitch::{DumpAtom, DumpNode, StageDump};

    fn esc(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_u32_list<T: std::fmt::Display>(xs: &[T], out: &mut String) {
        out.push('[');
        for (i, x) in xs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&x.to_string());
        }
        out.push(']');
    }

    fn write_atom(a: &DumpAtom, out: &mut String) {
        match a {
            DumpAtom::Frame(f) => {
                out.push_str("{\"Frame\":");
                out.push_str(&f.to_string());
                out.push('}');
            }
            DumpAtom::Path(p) => {
                out.push_str("{\"Path\":");
                write_u32_list(p, out);
                out.push('}');
            }
            DumpAtom::Remote(r) => {
                out.push_str("{\"Remote\":");
                write_u32_list(r, out);
                out.push('}');
            }
        }
    }

    fn write_opt_u32(v: Option<u32>, out: &mut String) {
        match v {
            Some(x) => out.push_str(&x.to_string()),
            None => out.push_str("null"),
        }
    }

    fn write_node(n: &DumpNode, out: &mut String) {
        out.push_str("{\"frame\":");
        write_opt_u32(n.frame, out);
        out.push_str(",\"parent\":");
        write_opt_u32(n.parent, out);
        out.push_str(&format!(
            ",\"samples\":{},\"cycles\":{},\"calls\":{}}}",
            n.samples, n.cycles, n.calls
        ));
    }

    fn write_dump(d: &StageDump, out: &mut String) {
        out.push_str("{\n  \"proc\": ");
        out.push_str(&d.proc.to_string());
        out.push_str(",\n  \"stage_name\": ");
        esc(&d.stage_name, out);
        out.push_str(",\n  \"frames\": [");
        for (i, f) in d.frames.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            esc(f, out);
        }
        out.push_str("],\n  \"contexts\": [");
        for (i, c) in d.contexts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"atoms\":[");
            for (j, a) in c.atoms.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_atom(a, out);
            }
            out.push_str("]}");
        }
        out.push_str("],\n  \"ccts\": [");
        for (i, c) in d.ccts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"ctx\":");
            out.push_str(&c.ctx.to_string());
            out.push_str(",\"nodes\":[");
            for (j, n) in c.nodes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_node(n, out);
            }
            out.push_str("]}");
        }
        out.push_str("],\n  \"synopses\": [");
        for (i, (raw, ctx)) in d.synopses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{raw},{ctx}]"));
        }
        out.push_str("],\n  \"crosstalk_pairs\": [");
        for (i, p) in d.crosstalk_pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"waiter\":{},\"holder\":{},\"count\":{},\"total_wait\":{}}}",
                p.waiter, p.holder, p.count, p.total_wait
            ));
        }
        out.push_str("],\n  \"crosstalk_waiters\": [");
        for (i, w) in d.crosstalk_waiters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"waiter\":{},\"count\":{},\"total_wait\":{}}}",
                w.waiter, w.count, w.total_wait
            ));
        }
        out.push_str(&format!(
            "],\n  \"piggyback_bytes\": {},\n  \"messages\": {}\n}}",
            d.piggyback_bytes, d.messages
        ));
    }

    pub fn dump_to_json(d: &StageDump) -> String {
        let mut out = String::new();
        write_dump(d, &mut out);
        out
    }

    pub fn to_json(dumps: &[StageDump]) -> String {
        let mut out = String::new();
        out.push_str("[\n");
        for (i, d) in dumps.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            write_dump(d, &mut out);
        }
        out.push_str("\n]\n");
        out
    }
}

#[test]
fn serializer_is_byte_identical_to_legacy_writer_over_corpus() {
    let mut scenarios = 0;
    for &seed in &SEEDS {
        for sched in schedules(seed) {
            for faulty in [false, true] {
                scenarios += 1;
                let what = format!("seed={seed} sched={sched:?} faulty={faulty}");
                let dumps = scenario_dumps(seed, sched, faulty);
                assert_eq!(
                    dumpjson::to_json(&dumps),
                    legacy_writer::to_json(&dumps),
                    "to_json diverged: {what}"
                );
                for (i, d) in dumps.iter().enumerate() {
                    assert_eq!(
                        dumpjson::dump_to_json(d),
                        legacy_writer::dump_to_json(d),
                        "dump_to_json diverged: {what} stage={i}"
                    );
                }
            }
        }
    }
    assert_eq!(scenarios, 36);
}
