//! Property-based tests of the core data structures and algorithms.

use proptest::prelude::*;
use whodunit_core::cct::{Cct, Metrics};
use whodunit_core::context::{ContextAtom, ContextPolicy, ContextTable, CtxId};
use whodunit_core::crosstalk::CrosstalkRecorder;
use whodunit_core::frame::FrameId;
use whodunit_core::ids::{LockId, LockMode, ThreadId};
use whodunit_core::ipc::{IpcTracker, RecvKind};
use whodunit_core::shm::{FlowDetector, FlowEvent, Loc, MemEvent};
use whodunit_core::synopsis::SynopsisTable;

proptest! {
    /// After any sequence of frame appends under the pruning policy,
    /// the trailing frame run contains no duplicates, and appending is
    /// deterministic (same input → same interned id).
    #[test]
    fn context_pruning_keeps_frame_runs_duplicate_free(
        frames in proptest::collection::vec(0u32..6, 1..40)
    ) {
        let mut t = ContextTable::new(ContextPolicy::default());
        let mut ctx = CtxId::ROOT;
        for &f in &frames {
            ctx = t.append_frame(ctx, FrameId(f));
            let atoms = t.value(ctx).atoms();
            let run: Vec<u32> = atoms
                .iter()
                .rev()
                .take_while(|a| matches!(a, ContextAtom::Frame(_)))
                .map(|a| match a {
                    ContextAtom::Frame(f) => f.0,
                    _ => unreachable!(),
                })
                .collect();
            let mut dedup = run.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), run.len(), "duplicate in run {:?}", run);
        }
        // Replay gives the same context id.
        let mut t2 = ContextTable::new(ContextPolicy::default());
        let mut ctx2 = CtxId::ROOT;
        for &f in &frames {
            ctx2 = t2.append_frame(ctx2, FrameId(f));
        }
        prop_assert_eq!(t.value(ctx), t2.value(ctx2));
    }

    /// Appending the same frame twice in a row never changes the
    /// context (collapse rule is idempotent).
    #[test]
    fn context_collapse_is_idempotent(frames in proptest::collection::vec(0u32..6, 1..20)) {
        let mut t = ContextTable::new(ContextPolicy::default());
        let mut ctx = CtxId::ROOT;
        for &f in &frames {
            ctx = t.append_frame(ctx, FrameId(f));
            let again = t.append_frame(ctx, FrameId(f));
            prop_assert_eq!(ctx, again);
        }
    }

    /// CCT invariants: the root's inclusive metrics equal the sum of
    /// all recordings, and every recorded path resolves back to itself.
    #[test]
    fn cct_totals_and_paths(
        records in proptest::collection::vec(
            (proptest::collection::vec(0u32..8, 1..6), 0u64..1000, 0u64..100),
            1..40
        )
    ) {
        let mut cct = Cct::new();
        let mut want_cycles = 0u64;
        let mut want_samples = 0u64;
        for (path, cycles, samples) in &records {
            let p: Vec<FrameId> = path.iter().map(|&f| FrameId(f)).collect();
            cct.record(&p, Metrics { samples: *samples, cycles: *cycles, calls: 0 });
            want_cycles += cycles;
            want_samples += samples;
            let n = cct.path_node(&p);
            prop_assert_eq!(cct.path_of(n), p);
        }
        let total = cct.total();
        prop_assert_eq!(total.cycles, want_cycles);
        prop_assert_eq!(total.samples, want_samples);
        // Merging into an empty tree preserves totals.
        let mut other = Cct::new();
        other.merge(&cct);
        prop_assert_eq!(other.total(), total);
    }

    /// Synopsis tables: every minted synopsis resolves back to its
    /// context; distinct contexts get distinct synopses.
    #[test]
    fn synopsis_roundtrip(ctxs in proptest::collection::vec(0u32..500, 1..100)) {
        let mut t = SynopsisTable::new(3u32);
        let mut seen = std::collections::HashMap::new();
        for &c in &ctxs {
            let s = t.synopsis_of(CtxId(c));
            prop_assert_eq!(t.ctx_of(s), Some(CtxId(c)));
            if let Some(prev) = seen.insert(c, s) {
                prop_assert_eq!(prev, s, "same context, same synopsis");
            }
        }
        let distinct: std::collections::HashSet<_> = seen.values().collect();
        prop_assert_eq!(distinct.len(), seen.len());
    }

    /// The producer–consumer discipline always transfers the producer's
    /// context, regardless of slot choice and interleaving.
    #[test]
    fn shm_producer_consumer_always_flows(
        ops in proptest::collection::vec((0u64..8, 5u32..100), 1..30)
    ) {
        let mut d = FlowDetector::default();
        let lock = LockId(1);
        let prod = ThreadId(1);
        let cons = ThreadId(2);
        let mut out = Vec::new();
        for (i, &(slot, ctx)) in ops.iter().enumerate() {
            let slot_addr = 100 + slot;
            let local = 500 + i as u64;
            // Produce: arg → reg → shared slot.
            d.on_event(prod, CtxId(ctx), &MemEvent::CsEnter { lock }, &mut out);
            d.on_event(prod, CtxId(ctx), &MemEvent::Mov { src: Loc::Mem(1), dst: Loc::Reg(prod, 1) }, &mut out);
            d.on_event(prod, CtxId(ctx), &MemEvent::Mov { src: Loc::Reg(prod, 1), dst: Loc::Mem(slot_addr) }, &mut out);
            d.on_event(prod, CtxId(ctx), &MemEvent::CsExit, &mut out);
            // Consume: shared slot → reg → local, then use.
            out.clear();
            d.on_event(cons, CtxId::ROOT, &MemEvent::CsEnter { lock }, &mut out);
            d.on_event(cons, CtxId::ROOT, &MemEvent::Mov { src: Loc::Mem(slot_addr), dst: Loc::Reg(cons, 2) }, &mut out);
            d.on_event(cons, CtxId::ROOT, &MemEvent::Mov { src: Loc::Reg(cons, 2), dst: Loc::Mem(local) }, &mut out);
            d.on_event(cons, CtxId::ROOT, &MemEvent::CsExit, &mut out);
            d.on_event(cons, CtxId::ROOT, &MemEvent::Use { loc: Loc::Mem(local) }, &mut out);
            prop_assert!(
                out.iter().any(|e| matches!(e, FlowEvent::Consumed { ctx: c, .. } if *c == CtxId(ctx))),
                "consume of ctx {} missing: {:?}", ctx, out
            );
        }
        prop_assert!(d.flow_enabled(lock));
    }

    /// Counter-style read-modify-write never produces flow, whatever
    /// the interleaving of threads.
    #[test]
    fn shm_counters_never_flow(ops in proptest::collection::vec((0u32..4, 0u64..3), 1..60)) {
        let mut d = FlowDetector::default();
        let lock = LockId(2);
        let mut out = Vec::new();
        for &(thread, counter) in &ops {
            let t = ThreadId(thread);
            let addr = 50 + counter;
            d.on_event(t, CtxId(thread + 10), &MemEvent::CsEnter { lock }, &mut out);
            d.on_event(t, CtxId(thread + 10), &MemEvent::Mov { src: Loc::Mem(addr), dst: Loc::Reg(t, 0) }, &mut out);
            d.on_event(t, CtxId(thread + 10), &MemEvent::Modify { dst: Loc::Reg(t, 0) }, &mut out);
            d.on_event(t, CtxId(thread + 10), &MemEvent::Mov { src: Loc::Reg(t, 0), dst: Loc::Mem(addr) }, &mut out);
            d.on_event(t, CtxId(thread + 10), &MemEvent::CsExit, &mut out);
            d.on_event(t, CtxId(thread + 10), &MemEvent::Use { loc: Loc::Mem(addr) }, &mut out);
        }
        prop_assert!(
            !out.iter().any(|e| matches!(e, FlowEvent::Consumed { .. })),
            "counter flowed: {:?}", out
        );
    }

    /// Crosstalk means: mean * count == total for any wait sequence.
    #[test]
    fn crosstalk_mean_arithmetic(waits in proptest::collection::vec(0u64..100_000, 1..50)) {
        let mut r = CrosstalkRecorder::new();
        let holder = CtxId(1);
        let waiter = CtxId(2);
        let mut total = 0u64;
        for (i, &w) in waits.iter().enumerate() {
            let t = ThreadId(i as u32 % 7);
            r.acquired(t, waiter, LockId(1), LockMode::Exclusive, w, Some(holder));
            r.released(t, LockId(1));
            total += w;
        }
        let st = r.waiter_stats(waiter);
        prop_assert_eq!(st.count, waits.len() as u64);
        prop_assert_eq!(st.total_wait, total);
        prop_assert!((st.mean() * st.count as f64 - total as f64).abs() < 1e-6);
    }

    /// IPC request/response classification is never confused by chains
    /// of arbitrary depth: the deepest own synopsis wins.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn ipc_response_detection_any_depth(depth in 1usize..6) {
        // Build a chain of processes 0..depth, each forwarding.
        let mut tables: Vec<(ContextTable, SynopsisTable, IpcTracker)> = (0..depth + 1)
            .map(|p| (
                ContextTable::default(),
                SynopsisTable::new(p as u32),
                IpcTracker::new(),
            ))
            .collect();
        // Forward a request down the chain.
        let mut chain = {
            let (ctxs, syns, ipc) = &mut tables[0];
            let send_ctx = ctxs.append_path(CtxId::ROOT, &[FrameId(1)]);
            ipc.send(ctxs, syns, CtxId::ROOT, send_ctx)
        };
        let mut bases = vec![CtxId::ROOT];
        for p in 1..=depth {
            let (ctxs, syns, ipc) = &mut tables[p];
            let kind = ipc.recv(ctxs, syns, Some(&chain));
            let base = match kind {
                RecvKind::Request { ctx } => ctx,
                k => panic!("stage {p} expected request, got {k:?}"),
            };
            bases.push(base);
            if p < depth {
                let send_ctx = ctxs.append_path(base, &[FrameId(p as u32 + 1)]);
                chain = ipc.send(ctxs, syns, base, send_ctx);
            }
        }
        // The response travels back up; every hop restores its base.
        for p in (0..depth).rev() {
            let resp = {
                let (ctxs, syns, ipc) = &mut tables[p + 1];
                let base = bases[p + 1];
                let send_ctx = ctxs.append_path(base, &[FrameId(99)]);
                ipc.send(ctxs, syns, base, send_ctx)
            };
            let (ctxs, syns, ipc) = &mut tables[p];
            match ipc.recv(ctxs, syns, Some(&resp)) {
                RecvKind::Response { restore, .. } => prop_assert_eq!(restore, bases[p]),
                k => prop_assert!(false, "stage {} expected response, got {:?}", p, k),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sharded dictionary + batch minting (the parallel pipeline's
// determinism primitives; see DESIGN.md §9).
// ---------------------------------------------------------------------

use whodunit_core::context::{ContextShard, ShardedContextTable, TransactionContext};
use whodunit_core::synopsis::{SynChain, Synopsis};

fn atom_strategy() -> impl Strategy<Value = ContextAtom> {
    prop_oneof![
        (0u32..8).prop_map(|f| ContextAtom::Frame(FrameId(f))),
        proptest::collection::vec(0u32..8, 1..4).prop_map(|p| {
            ContextAtom::Path(p.into_iter().map(FrameId).collect::<Vec<_>>().into())
        }),
        proptest::collection::vec((0u32..4, 0u32..64), 1..3).prop_map(|ss| {
            ContextAtom::Remote(SynChain(
                ss.into_iter().map(|(p, c)| Synopsis::new(p, c)).collect(),
            ))
        }),
    ]
}

fn value_strategy() -> impl Strategy<Value = TransactionContext> {
    proptest::collection::vec(atom_strategy(), 0..5).prop_map(TransactionContext)
}

proptest! {
    /// The sharded dictionary never mints two ids for one value and
    /// never reuses an id across distinct values, no matter how values
    /// interleave across shards; and every id's shard is the value's
    /// location hash, so no value can be minted in two shards.
    #[test]
    fn sharded_dictionary_mints_no_duplicates(
        args in (proptest::collection::vec(value_strategy(), 1..60), 1usize..9)
    ) {
        let (values, shards) = args;
        let mut t = ShardedContextTable::new(shards);
        let mut by_value = std::collections::HashMap::new();
        for v in &values {
            let id = t.intern(v.clone());
            prop_assert_eq!(id.shard() as usize, t.shard_of(v), "id lives off-shard");
            let prev = by_value.insert(v.clone(), id);
            if let Some(prev) = prev {
                prop_assert_eq!(prev, id, "same value minted twice");
            }
            prop_assert_eq!(t.value(id), Some(v), "id resolves to its value");
        }
        // Distinct values ⇒ distinct ids (across *all* shards).
        let ids: std::collections::HashSet<_> = by_value.values().copied().collect();
        prop_assert_eq!(ids.len(), by_value.len(), "id reused across values");
    }

    /// Assembling the dictionary from per-shard parts is insensitive to
    /// the order the parts arrive in (the parallel pipeline's workers
    /// finish in any order) and equals serial interning.
    #[test]
    fn sharded_merge_is_order_insensitive(
        args in (proptest::collection::vec(value_strategy(), 1..60), 1usize..9, 0usize..9)
    ) {
        let (values, shards, rot) = args;
        let mut serial = ShardedContextTable::new(shards);
        for v in &values {
            serial.intern(v.clone());
        }
        // Partition the values per shard, preserving first-seen order —
        // exactly what each pipeline worker does for its shard.
        let probe = ShardedContextTable::new(shards);
        let mut parts: Vec<(usize, ContextShard)> =
            (0..shards).map(|j| (j, ContextShard::default())).collect();
        for v in &values {
            let j = probe.shard_of(v);
            parts[j].1.intern_local(v.clone());
        }
        // Deliver the parts in a rotated (i.e. arbitrary) order.
        parts.rotate_left(rot % shards);
        let merged = ShardedContextTable::from_parts(shards, parts);
        prop_assert_eq!(&merged, &serial);
    }

    /// The hash-indexed intern arena mints exactly the ids a plain
    /// `HashMap`-keyed dictionary would: dense first-seen order, one id
    /// per distinct value, with `len` and `value` agreeing throughout.
    #[test]
    fn intern_index_matches_hashmap_reference(
        values in proptest::collection::vec(value_strategy(), 1..80)
    ) {
        let mut t = ContextTable::default();
        let mut model: std::collections::HashMap<TransactionContext, CtxId> =
            std::collections::HashMap::new();
        // The table pre-interns the root (empty) value at id 0.
        model.insert(t.value(CtxId::ROOT).clone(), CtxId::ROOT);
        let mut next = t.len() as u32;
        for v in &values {
            let id = t.intern(v.clone());
            match model.get(v) {
                Some(&prev) => prop_assert_eq!(prev, id, "re-intern changed the id"),
                None => {
                    prop_assert_eq!(id, CtxId(next), "ids must stay dense first-seen");
                    model.insert(v.clone(), id);
                    next += 1;
                }
            }
            prop_assert_eq!(t.value(id), v);
            prop_assert_eq!(t.len(), model.len(), "len = distinct values incl. root");
        }
    }

    /// A single shard's local interning behaves like a map too:
    /// `get_local` hits exactly the interned values.
    #[test]
    fn shard_intern_matches_hashmap_reference(
        args in (proptest::collection::vec(value_strategy(), 1..60),
                 proptest::collection::vec(value_strategy(), 0..10))
    ) {
        let (values, probes) = args;
        let mut shard = ContextShard::default();
        let mut model: std::collections::HashMap<TransactionContext, u32> =
            std::collections::HashMap::new();
        for v in &values {
            let id = shard.intern_local(v.clone());
            match model.get(v) {
                Some(&prev) => prop_assert_eq!(prev, id),
                None => {
                    prop_assert_eq!(id as usize, model.len());
                    model.insert(v.clone(), id);
                }
            }
            prop_assert_eq!(shard.value_local(id), Some(v));
        }
        prop_assert_eq!(shard.len(), model.len());
        for p in &probes {
            prop_assert_eq!(shard.get_local(p), model.get(p).copied());
        }
    }

    /// Batch synopsis minting commutes with one-at-a-time minting: same
    /// synopses element-wise, same dictionary afterwards.
    #[test]
    fn mint_batch_commutes_with_singles(
        args in (proptest::collection::vec(0u32..30, 1..80), 0usize..81)
    ) {
        let (ctxs, split) = args;
        let ctxs: Vec<CtxId> = ctxs.into_iter().map(CtxId).collect();
        let split = split.min(ctxs.len());
        let mut batched = SynopsisTable::new(7u32);
        let mut singles = SynopsisTable::new(7u32);
        // Interleave: one batch, then singles, then another batch, so
        // the property covers mixed call patterns too.
        let first = batched.mint_batch(&ctxs[..split]);
        let mut want_first = Vec::new();
        for &c in &ctxs[..split] {
            want_first.push(singles.synopsis_of(c));
        }
        prop_assert_eq!(first, want_first);
        let second = batched.mint_batch(&ctxs[split..]);
        let mut want_second = Vec::new();
        for &c in &ctxs[split..] {
            want_second.push(singles.synopsis_of(c));
        }
        prop_assert_eq!(second, want_second);
        prop_assert_eq!(batched.minted_sorted(), singles.minted_sorted());
        prop_assert_eq!(batched.len(), singles.len());
    }
}

// ---------------------------------------------------------------------
// Flow-detector equivalence: the open-addressed FNV dictionary must
// behave exactly like the straightforward HashMap/HashSet formulation
// of §3.2 it replaced.
// ---------------------------------------------------------------------

mod flow_reference {
    use std::collections::{BTreeSet, HashMap};
    use whodunit_core::context::CtxId;
    use whodunit_core::ids::{LockId, ThreadId};
    use whodunit_core::shm::{FlowConfig, FlowEvent, Loc, MemEvent};

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Taint {
        Valid(CtxId),
        Invalid,
    }

    #[derive(Clone, Copy)]
    struct Entry {
        taint: Taint,
        lock: LockId,
    }

    #[derive(Default)]
    struct LockState {
        producers: BTreeSet<ThreadId>,
        consumers: BTreeSet<ThreadId>,
        disabled: bool,
        produced: u64,
        consumed: u64,
    }

    struct CsState {
        outer: LockId,
        depth: u32,
    }

    /// Map-based reference model of [`whodunit_core::shm::FlowDetector`]
    /// (the pre-optimization implementation, verbatim semantics).
    pub struct RefDetector {
        cfg: FlowConfig,
        dict: HashMap<Loc, Entry>,
        locks: HashMap<LockId, LockState>,
        in_cs: HashMap<ThreadId, CsState>,
    }

    impl RefDetector {
        pub fn new(cfg: FlowConfig) -> Self {
            RefDetector {
                cfg,
                dict: HashMap::new(),
                locks: HashMap::new(),
                in_cs: HashMap::new(),
            }
        }

        pub fn dict_len(&self) -> usize {
            self.dict.len()
        }

        pub fn known_locks(&self) -> Vec<LockId> {
            let mut v: Vec<_> = self.locks.keys().copied().collect();
            v.sort();
            v
        }

        pub fn stats(&self, lock: LockId) -> (u64, u64, usize, usize, bool) {
            match self.locks.get(&lock) {
                None => (0, 0, 0, 0, false),
                Some(s) => (
                    s.produced,
                    s.consumed,
                    s.producers.len(),
                    s.consumers.len(),
                    s.disabled,
                ),
            }
        }

        pub fn on_event(
            &mut self,
            t: ThreadId,
            cur_ctx: CtxId,
            ev: &MemEvent,
            out: &mut Vec<FlowEvent>,
        ) {
            match *ev {
                MemEvent::CsEnter { lock } => {
                    let st = self.in_cs.entry(t).or_insert(CsState {
                        outer: lock,
                        depth: 0,
                    });
                    if st.depth == 0 {
                        st.outer = lock;
                        if self.cfg.clear_regs_on_cs_enter {
                            self.dict
                                .retain(|loc, _| !matches!(loc, Loc::Reg(rt, _) if *rt == t));
                        }
                    }
                    st.depth += 1;
                    self.locks.entry(lock).or_default();
                }
                MemEvent::CsExit => {
                    if let Some(st) = self.in_cs.get_mut(&t) {
                        st.depth = st.depth.saturating_sub(1);
                        if st.depth == 0 {
                            self.in_cs.remove(&t);
                        }
                    }
                }
                MemEvent::Mov { src, dst } => {
                    let Some(lock) = self.outer_lock(t) else {
                        return;
                    };
                    self.flush_if_foreign(src, lock);
                    self.flush_if_foreign(dst, lock);
                    match self.dict.get(&src).copied() {
                        Some(e) => {
                            self.dict.insert(dst, Entry { taint: e.taint, lock });
                        }
                        None => {
                            if dst.is_mem() || !self.cfg.produce_requires_mem_dst {
                                self.dict.insert(
                                    dst,
                                    Entry {
                                        taint: Taint::Valid(cur_ctx),
                                        lock,
                                    },
                                );
                                let st = self.locks.entry(lock).or_default();
                                st.produced += 1;
                                st.producers.insert(t);
                                out.push(FlowEvent::Produced {
                                    thread: t,
                                    loc: dst,
                                    ctx: cur_ctx,
                                    lock,
                                });
                                self.check_intersection(lock, out);
                            }
                        }
                    }
                }
                MemEvent::Modify { dst } => {
                    let Some(lock) = self.outer_lock(t) else {
                        return;
                    };
                    self.dict.insert(
                        dst,
                        Entry {
                            taint: Taint::Invalid,
                            lock,
                        },
                    );
                }
                MemEvent::Use { loc } => {
                    if self.outer_lock(t).is_some() {
                        return;
                    }
                    let Some(e) = self.dict.get(&loc).copied() else {
                        return;
                    };
                    let Taint::Valid(ctx) = e.taint else {
                        return;
                    };
                    let st = self.locks.entry(e.lock).or_default();
                    st.consumed += 1;
                    st.consumers.insert(t);
                    let disabled = st.disabled;
                    self.check_intersection(e.lock, out);
                    let now_disabled =
                        self.locks.get(&e.lock).map(|s| s.disabled).unwrap_or(false);
                    if !disabled && !now_disabled {
                        out.push(FlowEvent::Consumed {
                            thread: t,
                            loc,
                            ctx,
                            lock: e.lock,
                        });
                    }
                }
            }
        }

        fn outer_lock(&self, t: ThreadId) -> Option<LockId> {
            self.in_cs.get(&t).map(|s| s.outer)
        }

        fn flush_if_foreign(&mut self, loc: Loc, lock: LockId) {
            if let Some(e) = self.dict.get(&loc) {
                if e.lock != lock {
                    self.dict.remove(&loc);
                }
            }
        }

        fn check_intersection(&mut self, lock: LockId, out: &mut Vec<FlowEvent>) {
            let Some(st) = self.locks.get_mut(&lock) else {
                return;
            };
            if st.disabled {
                return;
            }
            if st.producers.intersection(&st.consumers).next().is_some() {
                st.disabled = true;
                out.push(FlowEvent::FlowDisabled { lock });
            }
        }
    }
}

fn flow_loc_strategy() -> impl Strategy<Value = Loc> {
    prop_oneof![
        (0u64..12).prop_map(Loc::Mem),
        ((0u32..4), (0u8..3)).prop_map(|(t, r)| Loc::Reg(ThreadId(t), r)),
    ]
}

fn flow_event_strategy() -> impl Strategy<Value = MemEvent> {
    prop_oneof![
        (1u32..4).prop_map(|l| MemEvent::CsEnter { lock: LockId(l) }),
        Just(MemEvent::CsExit),
        (flow_loc_strategy(), flow_loc_strategy())
            .prop_map(|(src, dst)| MemEvent::Mov { src, dst }),
        flow_loc_strategy().prop_map(|dst| MemEvent::Modify { dst }),
        flow_loc_strategy().prop_map(|loc| MemEvent::Use { loc }),
    ]
}

/// Drives both detectors over one stream and compares every
/// observable: inference stream, dictionary size, lock sets, per-lock
/// statistics.
fn check_flow_equivalence(ops: &[(u32, u32, MemEvent)], clear_regs: bool, mem_dst: bool) {
    let cfg = whodunit_core::shm::FlowConfig {
        clear_regs_on_cs_enter: clear_regs,
        produce_requires_mem_dst: mem_dst,
    };
    let mut fast = FlowDetector::new(cfg);
    let mut slow = flow_reference::RefDetector::new(cfg);
    let mut out_fast = Vec::new();
    let mut out_slow = Vec::new();
    for (t, ctx, ev) in ops {
        out_fast.clear();
        out_slow.clear();
        fast.on_event(ThreadId(*t), CtxId(*ctx), ev, &mut out_fast);
        slow.on_event(ThreadId(*t), CtxId(*ctx), ev, &mut out_slow);
        prop_assert_eq!(&out_fast, &out_slow, "event {:?} diverged", ev);
    }
    prop_assert_eq!(fast.dict_len(), slow.dict_len());
    prop_assert_eq!(fast.known_locks(), slow.known_locks());
    for l in 0u32..6 {
        let s = fast.lock_stats(LockId(l));
        let (produced, consumed, producers, consumers, disabled) = slow.stats(LockId(l));
        prop_assert_eq!(s.produced, produced);
        prop_assert_eq!(s.consumed, consumed);
        prop_assert_eq!(s.producers, producers);
        prop_assert_eq!(s.consumers, consumers);
        prop_assert_eq!(s.disabled, disabled);
        prop_assert_eq!(fast.flow_enabled(LockId(l)), !disabled);
    }
}

proptest! {
    /// Every event stream drives the FNV-table detector and the
    /// HashMap reference model to identical observable behavior —
    /// under both configuration ablations.
    #[test]
    fn flow_detector_matches_hashmap_reference(
        args in (proptest::collection::vec(
            (0u32..4, 0u32..5, flow_event_strategy()), 1..250),
            any::<bool>(), any::<bool>())
    ) {
        let (ops, clear_regs, mem_dst) = args;
        check_flow_equivalence(&ops, clear_regs, mem_dst);
    }
}

// ---------------------------------------------------------------------
// Quantile sketch (sentinel SLO evaluation)
// ---------------------------------------------------------------------

use whodunit_core::sketch::{QuantileSketch, EPS_SHIFT};

/// Splitmix-style value stream for a seed: the "fixed seed" the
/// determinism property quantifies over.
fn sketch_stream(seed: u64, n: usize) -> Vec<u64> {
    let mut st = seed ^ 0x9E37_79B9_7F4A_7C15;
    (0..n)
        .map(|_| {
            st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = st;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % 1_000_000
        })
        .collect()
}

proptest! {
    /// Merging per-epoch sketches is commutative and associative: any
    /// epoch order (and any epoch grouping) yields the same quantiles
    /// as one sketch fed the whole stream — the property that lets the
    /// sentinel evaluate SLOs over retained epochs without caring how
    /// the stream was chunked.
    #[test]
    fn sketch_merge_commutes_across_epoch_order(
        args in (any::<u64>(), 2usize..7, 1usize..40, 0usize..720)
    ) {
        let (seed, epochs, per_epoch, rot) = args;
        let vals = sketch_stream(seed, epochs * per_epoch);
        let mut whole = QuantileSketch::new();
        for &v in &vals {
            whole.record(v);
        }
        let mut parts: Vec<QuantileSketch> = vals
            .chunks(per_epoch)
            .map(|c| {
                let mut s = QuantileSketch::new();
                for &v in c {
                    s.record(v);
                }
                s
            })
            .collect();
        let rot = rot % parts.len();
        parts.rotate_left(rot);
        let mut merged = QuantileSketch::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.max(), whole.max());
        for q in [0u64, 100_000, 500_000, 900_000, 990_000, 1_000_000] {
            prop_assert_eq!(merged.quantile_ppm(q), whole.quantile_ppm(q));
        }
    }

    /// For a fixed seed the sketch's output is a pure function of the
    /// stream: two independently built sketches agree exactly.
    #[test]
    fn sketch_is_deterministic_for_a_fixed_seed(seed in any::<u64>()) {
        let vals = sketch_stream(seed, 257);
        let build = || {
            let mut s = QuantileSketch::new();
            for &v in &vals {
                s.record(v);
            }
            s
        };
        let (a, b) = (build(), build());
        for q in (0..=10).map(|i| i * 100_000) {
            prop_assert_eq!(a.quantile_ppm(q), b.quantile_ppm(q));
        }
    }

    /// Rank-error bound against an exact sorted reference: the
    /// estimate for quantile q is an upper bound of the exact rank-r
    /// sample and exceeds it by at most one bucket width
    /// (`max(1, v >> EPS_SHIFT)` — ~6.25% relative).
    #[test]
    fn sketch_quantile_brackets_exact_reference(
        args in (any::<u64>(), 1usize..400, 0u64..1_000_001)
    ) {
        let (seed, n, q) = args;
        let mut vals = sketch_stream(seed, n);
        let mut s = QuantileSketch::new();
        for &v in &vals {
            s.record(v);
        }
        vals.sort_unstable();
        let r = ((n as u64 * q).div_ceil(1_000_000)).max(1) as usize;
        let exact = vals[r - 1];
        let est = s.quantile_ppm(q).unwrap();
        prop_assert!(est >= exact, "q={} est {} < exact {}", q, est, exact);
        prop_assert!(
            est <= exact + (exact >> EPS_SHIFT).max(1),
            "q={} est {} too far above exact {}",
            q,
            est,
            exact
        );
    }
}
