//! Schedule-stress harness for the pipeline's OS-thread execution.
//!
//! The differential suite (`parallel_diff.rs`) locks worker-count
//! invariance under the canonical schedule; this suite attacks the
//! *scheduling* axis. Every matrix scenario from
//! `whodunit_bench::matrix` is analyzed at every worker count in
//! [`matrix::WORKER_SWEEP`] under seeded steal-order perturbation —
//! scrambled initial deque distributions and per-thief victim
//! rotations — and the report fingerprint must match the serial
//! reference byte-for-byte every time (DESIGN.md §14).
//!
//! The second half locks the panic policy: a deterministically
//! injected worker panic (`StealPlan::panic_at`) must surface from
//! `analyze_with` as a clean [`ShardPanic`] naming the phase and item,
//! never a deadlock, never a partial report. Property tests then pin
//! the two pure foundations the contract rests on: steal-order
//! invariance of the executor itself, and shard-assignment stability
//! under item permutation.

use proptest::prelude::*;
use whodunit_bench::matrix::{scenario_dumps, schedules, SEEDS, WORKER_SWEEP};
use whodunit_core::exec::{self, StealPlan};
use whodunit_core::pipeline::{
    analyze_with, shard_of_origin, shard_of_syn, PipelineConfig, PipelineReport,
};
use whodunit_core::stitch::StageDump;
use whodunit_sim::sched::SchedulePolicy;

/// Byte-compares every deterministic output surface of two reports.
fn assert_byte_identical(serial: &PipelineReport, stressed: &PipelineReport, what: &str) {
    assert_eq!(
        serial.stitched_text(),
        stressed.stitched_text(),
        "stitched text diverged: {what}"
    );
    assert_eq!(
        serial.crosstalk_text(),
        stressed.crosstalk_text(),
        "crosstalk matrix diverged: {what}"
    );
    assert_eq!(
        serial.dumps_json, stressed.dumps_json,
        "dump JSON diverged: {what}"
    );
    assert_eq!(serial.dict, stressed.dict, "context dictionary diverged: {what}");
    assert_eq!(
        serial.fingerprint(),
        stressed.fingerprint(),
        "fingerprint diverged: {what}"
    );
}

fn analyze_ok(dumps: Vec<StageDump>, workers: usize, plan: StealPlan, what: &str) -> PipelineReport {
    analyze_with(dumps, PipelineConfig { workers, shards: 32 }, plan)
        .unwrap_or_else(|e| panic!("unexpected shard panic: {what}: {e}"))
}

/// Two adversarial steal seeds per (scenario, worker count): both far
/// from the canonical round-robin, different from each other, and
/// deterministic so a failure reproduces.
fn stress_seeds(seed: u64, workers: usize) -> [u64; 2] {
    let base = exec_mix(seed ^ (workers as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    [base | 1, exec_mix(base) | 1]
}

/// splitmix64, local copy — the executor's mixer is private and this
/// only needs *some* deterministic scrambling.
fn exec_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn stress_matrix(faulty: bool) {
    let mut scenarios = 0;
    for &seed in &SEEDS {
        for sched in schedules(seed) {
            scenarios += 1;
            let what = format!("seed={seed} sched={sched:?} faulty={faulty}");
            let dumps = scenario_dumps(seed, sched, faulty);
            let reference = analyze_ok(dumps.clone(), 1, StealPlan::CANONICAL, &what);
            assert!(
                !reference.profiles.is_empty(),
                "scenario produced no profiles (vacuous): {what}"
            );
            for workers in WORKER_SWEEP {
                if workers == 1 {
                    continue; // the reference above
                }
                for steal in stress_seeds(seed, workers) {
                    let what = format!("{what} workers={workers} steal={steal:#018x}");
                    let stressed =
                        analyze_ok(dumps.clone(), workers, StealPlan::seeded(steal), &what);
                    assert_byte_identical(&reference, &stressed, &what);
                }
            }
        }
    }
    assert_eq!(scenarios, 18);
}

#[test]
fn clean_matrix_survives_steal_order_stress() {
    stress_matrix(false);
}

#[test]
fn faulty_matrix_survives_steal_order_stress() {
    stress_matrix(true);
}

// ---------------------------------------------------------------------
// Panic propagation: an injected worker panic surfaces as a clean,
// phase-labelled error on every worker count — never a deadlock and
// never a partial report.
// ---------------------------------------------------------------------

/// Phases guaranteed non-empty for any 3-dump scenario: validate and
/// index run per dump, stitch and serialize per shard, profiles per
/// origin.
const PANIC_PHASES: [&str; 5] = ["validate", "index", "stitch", "profiles", "serialize"];

#[test]
fn injected_phase_panic_surfaces_clean_error_on_every_worker_count() {
    let dumps = scenario_dumps(1, SchedulePolicy::Fifo, false);
    for phase in PANIC_PHASES {
        for workers in [1, 2, 4, 8] {
            let plan = StealPlan {
                seed: 0xfa11,
                panic_at: Some((phase, 0)),
            };
            let err = analyze_with(
                dumps.clone(),
                PipelineConfig { workers, shards: 32 },
                plan,
            )
            .expect_err("injected panic must not produce a report");
            assert_eq!(err.label, phase, "wrong phase surfaced (workers={workers})");
            assert_eq!(err.item, 0, "wrong item surfaced (workers={workers})");
            assert!(
                err.message.contains("injected fault"),
                "payload lost: {} (workers={workers})",
                err.message
            );
        }
    }
}

#[test]
fn late_item_panic_reports_the_panicking_item() {
    // Item 2 of the validate phase (the third dump): earlier items
    // complete, the error still names the right one.
    let dumps = scenario_dumps(2, SchedulePolicy::Fifo, false);
    for workers in [1, 3, 8] {
        let plan = StealPlan {
            seed: 7,
            panic_at: Some(("validate", 2)),
        };
        let err = analyze_with(
            dumps.clone(),
            PipelineConfig { workers, shards: 32 },
            plan,
        )
        .expect_err("injected panic must not produce a report");
        assert_eq!((err.label, err.item), ("validate", 2), "workers={workers}");
    }
}

#[test]
fn panic_in_one_run_does_not_poison_the_next() {
    // The executor holds no global state: a panicked analysis followed
    // by a clean one on the same dumps yields the reference bytes.
    let dumps = scenario_dumps(3, SchedulePolicy::Fifo, false);
    let reference = analyze_ok(dumps.clone(), 1, StealPlan::CANONICAL, "reference");
    let plan = StealPlan {
        seed: 5,
        panic_at: Some(("stitch", 0)),
    };
    analyze_with(dumps.clone(), PipelineConfig { workers: 4, shards: 32 }, plan)
        .expect_err("injection fires");
    let after = analyze_ok(dumps, 4, StealPlan::seeded(5), "post-panic rerun");
    assert_byte_identical(&reference, &after, "post-panic rerun");
}

// ---------------------------------------------------------------------
// Property tests: the pure foundations of the determinism contract.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Steal-order invariance of the executor: any (workers, seed)
    /// schedule over any item set returns exactly the serial map.
    #[test]
    fn executor_output_is_schedule_invariant(
        case in (
            proptest::collection::vec(0u64..1 << 48, 0..80),
            1usize..9,
            0u64..1 << 32,
        )
    ) {
        let (items, workers, steal) = case;
        let f = |i: usize| exec_mix(items[i]) ^ (i as u64);
        let want: Vec<u64> = (0..items.len()).map(f).collect();
        let (got, stats) = exec::run("prop", workers, StealPlan::seeded(steal), items.len(), f)
            .expect("no faults injected");
        prop_assert_eq!(&got, &want, "workers={} steal={:#x}", workers, steal);
        prop_assert_eq!(stats.items, items.len());
    }

    /// Shard assignment is a pure per-key function: permuting the item
    /// stream never moves any key to a different shard, and every
    /// shard index is in range. This is what lets the index/profiles
    /// phases partition work before seeing the data.
    #[test]
    fn shard_assignment_is_stable_under_permutation(
        case in (
            proptest::collection::vec((0usize..7, 0u32..1 << 20), 1..120),
            1usize..64,
            0u64..1 << 32,
        )
    ) {
        let (keys, shards, perm_seed) = case;
        let assigned: Vec<usize> = keys.iter().map(|&k| shard_of_origin(k, shards)).collect();
        let syn_assigned: Vec<usize> =
            keys.iter().map(|&(a, b)| shard_of_syn((a as u64) << 32 | b as u64, shards)).collect();
        for (&s, &t) in assigned.iter().zip(&syn_assigned) {
            prop_assert!(s < shards && t < shards);
        }
        // A seeded Fisher-Yates permutation of the same keys.
        let mut order: Vec<usize> = (0..keys.len()).collect();
        let mut r = perm_seed;
        for i in (1..order.len()).rev() {
            r = exec_mix(r);
            order.swap(i, (r % (i as u64 + 1)) as usize);
        }
        for &i in &order {
            prop_assert_eq!(shard_of_origin(keys[i], shards), assigned[i]);
            let (a, b) = keys[i];
            prop_assert_eq!(shard_of_syn((a as u64) << 32 | b as u64, shards), syn_assigned[i]);
        }
    }
}
