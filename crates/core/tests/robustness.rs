//! Failure-injection and adversarial-input tests: the profiler must
//! stay sound when peers are unprofiled, chains are foreign or
//! malformed, and dumps are inconsistent.

use whodunit_core::context::{ContextTable, CtxId};
use whodunit_core::frame::{shared_frame_table, FrameId};
use whodunit_core::ids::{LockId, LockMode, ProcId, ThreadId};
use whodunit_core::ipc::{IpcTracker, RecvKind};
use whodunit_core::profiler::{Whodunit, WhodunitConfig};
use whodunit_core::rt::Runtime;
use whodunit_core::stitch::{DumpAtom, DumpContext, StageDump, Stitched};
use whodunit_core::synopsis::{SynChain, Synopsis, SynopsisTable};

const T: ThreadId = ThreadId(1);

fn make(proc: u32) -> Whodunit {
    Whodunit::new(
        WhodunitConfig::new(ProcId(proc), format!("p{proc}")),
        shared_frame_table(),
    )
}

#[test]
fn recv_of_entirely_foreign_chain_is_a_request() {
    // A chain whose synopses were minted by processes we never talked
    // to must classify as a request, not crash or restore bogus state.
    let mut w = make(1);
    let chain = SynChain(vec![Synopsis::new(9, 1), Synopsis::new(8, 2)]);
    w.on_recv(T, Some(&chain));
    assert_ne!(w.current_ctx(T), CtxId::ROOT, "adopted as remote context");
}

#[test]
fn recv_of_spoofed_own_proc_id_without_minting_is_a_request() {
    // A synopsis that *claims* our process id but was never minted by
    // our table must not be treated as a response.
    let mut ctxs = ContextTable::default();
    let syns = SynopsisTable::new(1u32);
    let mut ipc = IpcTracker::new();
    let spoofed = SynChain(vec![Synopsis::new(1, 12345)]);
    match ipc.recv(&mut ctxs, &syns, Some(&spoofed)) {
        RecvKind::Request { .. } => {}
        k => panic!("spoofed chain must be a request, got {k:?}"),
    }
}

#[test]
fn recv_of_empty_chain_is_harmless() {
    let mut w = make(1);
    let chain = SynChain::default();
    w.on_recv(T, Some(&chain));
    // An empty chain adopts an empty remote context; computing under it
    // still works.
    w.on_compute(T, &[FrameId(0)], 1000);
}

#[test]
fn interleaved_profiled_and_unprofiled_peers() {
    // Responses from unprofiled peers (chain = None) arrive between
    // profiled requests; the thread's context must remain consistent.
    let mut a = make(1);
    let mut b = make(2);
    let frames = [FrameId(0)];
    let req = a.on_send(T, &frames).chain.unwrap();
    b.on_recv(T, Some(&req));
    let adopted = b.current_ctx(T);
    // An unprofiled message lands on the same thread.
    b.on_recv(T, None);
    assert_eq!(
        b.current_ctx(T),
        adopted,
        "None chain does not disturb context"
    );
}

#[test]
fn lock_release_without_acquire_is_tolerated() {
    let mut w = make(1);
    w.on_lock_released(T, LockId(9));
    w.on_lock_acquired(T, LockId(9), LockMode::Shared, 0, None);
    w.on_lock_released(T, LockId(9));
}

#[test]
fn double_release_does_not_corrupt_holders() {
    let mut w = make(1);
    let l = LockId(3);
    w.on_lock_acquired(T, l, LockMode::Exclusive, 0, None);
    w.on_lock_released(T, l);
    w.on_lock_released(T, l);
    assert_eq!(w.holder_hint(l), None);
}

#[test]
fn stitch_tolerates_circular_synopsis_chains() {
    // Malicious/corrupt dumps: two stages whose remote chains point at
    // each other. `origin` must terminate.
    let a = StageDump {
        proc: 0,
        stage_name: "a".into(),
        frames: vec![],
        contexts: vec![
            DumpContext::default(),
            DumpContext {
                atoms: vec![DumpAtom::Remote(vec![200])],
            },
        ],
        synopses: vec![(100, 1)],
        ..StageDump::default()
    };
    let b = StageDump {
        proc: 1,
        stage_name: "b".into(),
        frames: vec![],
        contexts: vec![
            DumpContext::default(),
            DumpContext {
                atoms: vec![DumpAtom::Remote(vec![100])],
            },
        ],
        synopses: vec![(200, 1)],
        ..StageDump::default()
    };
    let st = Stitched::new(vec![a, b]);
    // Terminates (bounded walk) and lands somewhere in the cycle.
    let (s, _) = st.origin(0, 1);
    assert!(s < 2);
}

#[test]
fn stitch_tolerates_dangling_synopses() {
    let a = StageDump {
        proc: 0,
        stage_name: "a".into(),
        frames: vec![],
        contexts: vec![
            DumpContext::default(),
            DumpContext {
                atoms: vec![DumpAtom::Remote(vec![0xdead])],
            },
        ],
        ..StageDump::default()
    };
    let st = Stitched::new(vec![a]);
    assert_eq!(st.origin(0, 1), (0, 1), "unresolvable chain stays put");
    assert!(st.request_edges().is_empty());
}

#[test]
fn thread_exit_clears_profiler_state() {
    let mut w = make(1);
    let f = [FrameId(0)];
    w.on_send(T, &f);
    w.on_compute(T, &f, 123);
    w.on_exit(T);
    assert_eq!(w.current_ctx(T), CtxId::ROOT);
    // A reused thread id starts fresh.
    w.on_compute(T, &f, 7);
    assert!(w.cct(CtxId::ROOT).is_some());
}

#[test]
fn duplicate_delivery_does_not_double_adopt() {
    // The wire duplicated a request: the receiver sees the same chain
    // twice. Both receipts must adopt the *same* remote context — a
    // duplicate must not mint a second context or fork the profile.
    let mut a = make(1);
    let mut b = make(2);
    let f = [FrameId(0)];
    let req = a.on_send(T, &f).chain.unwrap();

    b.on_recv(T, Some(&req));
    let first = b.current_ctx(T);
    b.on_compute(T, &f, 500);

    // The duplicate lands (possibly on another worker thread).
    let t2 = ThreadId(2);
    b.on_recv(t2, Some(&req));
    let second = b.current_ctx(t2);
    b.on_compute(t2, &f, 500);

    assert_eq!(first, second, "duplicate adopts the same context");
    let profiled = b.profiled_contexts();
    assert_eq!(
        profiled.iter().filter(|&&c| c != CtxId::ROOT).count(),
        1,
        "one remote context, not one per duplicate: {profiled:?}"
    );
}

#[test]
fn duplicate_response_restores_same_base_twice() {
    // A response duplicated on the wire: the second copy restores the
    // same base instead of adopting a chain containing our synopsis.
    let mut a = make(1);
    let mut b = make(2);
    let f = [FrameId(0)];
    let req = a.on_send(T, &f).chain.unwrap();
    b.on_recv(T, Some(&req));
    let resp = b.on_send(T, &f).chain.unwrap();

    a.on_recv(T, Some(&resp));
    let restored = a.current_ctx(T);
    a.on_recv(T, Some(&resp));
    assert_eq!(a.current_ctx(T), restored);
    assert_eq!(restored, CtxId::ROOT, "base at send time was ROOT");
}

#[test]
fn crashed_peer_unanswered_synopses_age_out() {
    // A sends requests to a peer that crashes and never answers. With
    // a small TTL the sent-synopsis dictionary must shrink back to
    // empty instead of holding every unanswered entry forever.
    let mut a = Whodunit::new(
        WhodunitConfig::new(ProcId(1), "a").with_ipc_ttl(8),
        shared_frame_table(),
    );
    for i in 0..100u32 {
        // Distinct send points → distinct synopses, none answered.
        a.on_send(T, &[FrameId(i)]);
    }
    let pending = a.ipc().pending();
    assert!(
        pending <= 9,
        "TTL 8 must bound the dictionary, still holding {pending}"
    );
    assert!(a.ipc().pruned >= 91, "pruned {} entries", a.ipc().pruned);

    // A reply to a long-pruned request must not corrupt the context:
    // it is stale, and the thread keeps its current base.
    let ghost = SynChain(vec![Synopsis::new(1, 1), Synopsis::new(2, 1)]);
    a.on_recv(T, Some(&ghost));
    assert_eq!(a.current_ctx(T), CtxId::ROOT, "stale reply changes nothing");
}

#[test]
fn deep_response_chain_with_repeated_visits() {
    // A proxy that appears twice on the path (A -> B -> A -> C): the
    // deepest own synopsis must win when the response returns.
    let frames = shared_frame_table();
    let mut a = Whodunit::new(WhodunitConfig::new(ProcId(1), "a"), frames.clone());
    let mut c = Whodunit::new(WhodunitConfig::new(ProcId(2), "c"), frames.clone());
    let f = [FrameId(0)];
    let t2 = ThreadId(2);

    // A sends to itself-as-second-hop (same process id re-receives).
    let req1 = a.on_send(T, &f).chain.unwrap();
    a.on_recv(t2, Some(&req1));
    let mid_ctx = a.current_ctx(t2);
    // Hmm: A recognizes its own synopsis and treats it as a response;
    // the paper's design assumes a stage does not call itself, so the
    // "response" classification restores the base — which for a
    // self-call is the sending context. Document-by-test:
    assert_eq!(mid_ctx, CtxId::ROOT);
    // The second hop forwards to C and back; C sees a request.
    let req2 = a.on_send(t2, &f).chain.unwrap();
    c.on_recv(T, Some(&req2));
    assert_ne!(c.current_ctx(T), CtxId::ROOT);
}
