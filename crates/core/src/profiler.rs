//! The Whodunit runtime (§7).
//!
//! [`Whodunit`] is the per-process profiler: a sampling call-path
//! profiler core (csprof-like, §7.1) that maintains one CCT per
//! transaction context, plus the transaction-tracking machinery — the
//! shared-memory flow detector (§3/§7.2), event and stage context
//! propagation (§4/§7.3), synopsis piggybacking over IPC (§5/§7.4), and
//! crosstalk recording (§6/§7.5). It implements [`Runtime`] so any
//! substrate can drive it through hooks.

use crate::cct::{Cct, Metrics};
use crate::context::{ContextPolicy, ContextTable, CtxId};
use crate::cost::{CostModel, SampleClock, Sampling};
use crate::crosstalk::CrosstalkRecorder;
use crate::events::EventCtx;
use crate::frame::{FrameId, SharedFrameTable};
use crate::ids::{LockId, LockMode, ProcId, ThreadId};
use crate::ipc::{IpcTracker, RecvKind, SendInfo};
use crate::rt::Runtime;
use crate::seda::StageElemCtx;
use crate::shm::{FlowConfig, FlowDetector, FlowEvent, MemEvent};
use crate::stitch::{
    dump_context, DumpCct, DumpCrosstalkPair, DumpCrosstalkWaiter, DumpNode, StageDump,
};
use crate::synopsis::{SynChain, SynopsisTable};
use std::collections::HashMap;

/// Configuration of one Whodunit instance.
#[derive(Clone, Debug)]
pub struct WhodunitConfig {
    /// The process this instance profiles.
    pub proc: ProcId,
    /// Human-readable stage name for reports.
    pub stage_name: String,
    /// Overhead cost model (defaults to [`CostModel::whodunit`]).
    pub cost: CostModel,
    /// Context normalization policy (§4.1).
    pub policy: ContextPolicy,
    /// Shared-memory flow detector configuration (§3).
    pub flow: FlowConfig,
    /// Keep emulating critical sections even after their lock is known
    /// not to carry flow (disables the §7.2 bail-out; ablation knob).
    pub always_emulate: bool,
    /// Sample placement: deterministic analytic (default) or seeded
    /// stochastic exponential gaps.
    pub sampling: Sampling,
    /// How many subsequent sends an unanswered sent-synopsis
    /// association survives before it is pruned (§7.4 dictionary
    /// hygiene). Late replies arriving after the prune classify as
    /// [`crate::ipc::RecvKind::Stale`] instead of restoring a context.
    pub ipc_ttl: u64,
}

impl WhodunitConfig {
    /// The standard configuration for a named stage.
    pub fn new(proc: ProcId, stage_name: impl Into<String>) -> Self {
        WhodunitConfig {
            proc,
            stage_name: stage_name.into(),
            cost: CostModel::whodunit(),
            policy: ContextPolicy::default(),
            flow: FlowConfig::default(),
            always_emulate: false,
            sampling: Sampling::Analytic,
            // Generous enough that a healthy run never prunes; bounded
            // so a sick peer cannot leak the dictionary forever.
            ipc_ttl: 1_000_000,
        }
    }

    /// Overrides the sent-synopsis association TTL (in sends).
    pub fn with_ipc_ttl(mut self, ttl: u64) -> Self {
        self.ipc_ttl = ttl;
        self
    }

    /// Overrides the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Overrides the context policy.
    pub fn with_policy(mut self, policy: ContextPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the flow-detector configuration.
    pub fn with_flow(mut self, flow: FlowConfig) -> Self {
        self.flow = flow;
        self
    }

    /// Disables the §7.2 emulation bail-out (ablation).
    pub fn with_always_emulate(mut self, on: bool) -> Self {
        self.always_emulate = on;
        self
    }

    /// Selects the sampling mode (ablation).
    pub fn with_sampling(mut self, sampling: Sampling) -> Self {
        self.sampling = sampling;
        self
    }
}

/// The per-process Whodunit profiler.
#[derive(Debug)]
pub struct Whodunit {
    cfg: WhodunitConfig,
    frames: SharedFrameTable,
    ctxs: ContextTable,
    syns: SynopsisTable,
    ipc: IpcTracker,
    ccts: HashMap<CtxId, Cct>,
    /// Base transaction context per thread: what the thread inherited
    /// from the produce/consume point it is executing on behalf of.
    base: HashMap<ThreadId, CtxId>,
    /// Full context at critical-section entry, per thread (the
    /// produce-point context used to taint locations, §3.5).
    cs_ctx: HashMap<ThreadId, CtxId>,
    /// Sampling clock per thread.
    acc: HashMap<ThreadId, SampleClock>,
    crosstalk: CrosstalkRecorder,
    detector: FlowDetector,
    overhead: u64,
    flow_log: Vec<FlowEvent>,
}

impl Whodunit {
    /// Creates an instance sharing `frames` with its substrate.
    pub fn new(cfg: WhodunitConfig, frames: SharedFrameTable) -> Self {
        let policy = cfg.policy;
        let flow = cfg.flow;
        Whodunit {
            syns: SynopsisTable::new(cfg.proc),
            cfg,
            frames,
            ctxs: ContextTable::new(policy),
            ipc: IpcTracker::new(),
            ccts: HashMap::new(),
            base: HashMap::new(),
            cs_ctx: HashMap::new(),
            acc: HashMap::new(),
            crosstalk: CrosstalkRecorder::new(),
            detector: FlowDetector::new(flow),
            overhead: 0,
            flow_log: Vec::new(),
        }
    }

    fn base_of(&self, t: ThreadId) -> CtxId {
        self.base.get(&t).copied().unwrap_or(CtxId::ROOT)
    }

    /// The context table (read access for reports and tests).
    pub fn contexts(&self) -> &ContextTable {
        &self.ctxs
    }

    /// The CCT annotated with `ctx`, if it accumulated data.
    pub fn cct(&self, ctx: CtxId) -> Option<&Cct> {
        self.ccts.get(&ctx)
    }

    /// All contexts with CCTs, sorted by id.
    pub fn profiled_contexts(&self) -> Vec<CtxId> {
        let mut v: Vec<_> = self.ccts.keys().copied().collect();
        v.sort();
        v
    }

    /// The crosstalk recorder (read access).
    pub fn crosstalk(&self) -> &CrosstalkRecorder {
        &self.crosstalk
    }

    /// The shared-memory flow detector (read access).
    pub fn detector(&self) -> &FlowDetector {
        &self.detector
    }

    /// Flow events observed so far (produce/consume/disable log).
    pub fn flow_log(&self) -> &[FlowEvent] {
        &self.flow_log
    }

    /// The IPC tracker (read access; piggyback accounting).
    pub fn ipc(&self) -> &IpcTracker {
        &self.ipc
    }

    /// Renders a context as a human-readable string using the shared
    /// frame table.
    pub fn ctx_string(&self, ctx: CtxId) -> String {
        use crate::context::ContextAtom;
        let frames = self.frames.borrow();
        let v = self.ctxs.value(ctx);
        if v.is_empty() {
            return "<root>".to_owned();
        }
        let mut parts = Vec::new();
        for a in v.atoms() {
            match a {
                ContextAtom::Frame(f) => parts.push(frames.name(*f).to_owned()),
                ContextAtom::Path(p) => parts.push(format!(
                    "[{}]",
                    p.iter()
                        .map(|f| frames.name(*f))
                        .collect::<Vec<_>>()
                        .join(">")
                )),
                ContextAtom::Remote(c) => parts.push(format!("remote({c})")),
            }
        }
        parts.join(" -> ")
    }

    /// Forcibly sets a thread's base context (used by harnesses that
    /// model an out-of-band classification, and by tests).
    pub fn set_base(&mut self, t: ThreadId, ctx: CtxId) {
        self.base.insert(t, ctx);
    }

    /// Interns `base + frame` in this instance's context table.
    pub fn intern_frame_ctx(&mut self, base: CtxId, frame: FrameId) -> CtxId {
        self.ctxs.append_frame(base, frame)
    }

    fn charge(&mut self, cycles: u64) -> u64 {
        self.overhead += cycles;
        cycles
    }
}

impl Runtime for Whodunit {
    fn name(&self) -> &'static str {
        "whodunit"
    }

    fn on_exit(&mut self, t: ThreadId) {
        self.base.remove(&t);
        self.acc.remove(&t);
        self.cs_ctx.remove(&t);
    }

    fn on_compute(&mut self, t: ThreadId, stack: &[FrameId], cycles: u64) -> u64 {
        let ctx = self.base_of(t);
        let clock = self.acc.entry(t).or_insert_with(|| {
            SampleClock::new(self.cfg.sampling, self.cfg.cost.sample_period, t.0 as u64)
        });
        let samples = clock.samples_in(cycles);
        let cct = self.ccts.entry(ctx).or_default();
        cct.record(
            stack,
            Metrics {
                samples,
                cycles,
                calls: 0,
            },
        );
        self.charge(samples * self.cfg.cost.per_sample_cycles)
    }

    fn on_send(&mut self, t: ThreadId, stack: &[FrameId]) -> SendInfo {
        let base = self.base_of(t);
        let ctx_at_send = self.ctxs.append_path(base, stack);
        let chain = self.ipc.send(&self.ctxs, &mut self.syns, base, ctx_at_send);
        self.ipc.advance_epoch(self.cfg.ipc_ttl);
        let extra_bytes = chain.wire_bytes();
        let cycles = self.charge(self.cfg.cost.per_send_cycles);
        SendInfo {
            chain: Some(chain),
            extra_bytes,
            cycles,
        }
    }

    fn on_recv(&mut self, t: ThreadId, chain: Option<&SynChain>) -> u64 {
        match self.ipc.recv(&mut self.ctxs, &self.syns, chain) {
            RecvKind::Unprofiled => {}
            RecvKind::Request { ctx } => {
                self.base.insert(t, ctx);
            }
            RecvKind::Response { restore, .. } => {
                self.base.insert(t, restore);
            }
            // A late reply to a pruned request: keep the thread's
            // current base rather than adopt a chain containing our
            // own synopsis.
            RecvKind::Stale { .. } => {}
        }
        self.charge(self.cfg.cost.per_recv_cycles)
    }

    fn holder_hint(&self, lock: LockId) -> Option<CtxId> {
        self.crosstalk.holder_of(lock)
    }

    fn on_lock_acquired(
        &mut self,
        t: ThreadId,
        lock: LockId,
        mode: LockMode,
        waited: u64,
        holder: Option<CtxId>,
    ) -> u64 {
        let ctx = self.base_of(t);
        self.crosstalk.acquired(t, ctx, lock, mode, waited, holder);
        self.charge(self.cfg.cost.per_lock_cycles)
    }

    fn on_lock_released(&mut self, t: ThreadId, lock: LockId) -> u64 {
        self.crosstalk.released(t, lock);
        0
    }

    fn on_event_create(&mut self, t: ThreadId) -> EventCtx {
        EventCtx(self.base_of(t))
    }

    fn on_event_dispatch(&mut self, t: ThreadId, ev: EventCtx, handler: FrameId) -> u64 {
        let ctx = self.ctxs.append_frame(ev.0, handler);
        self.base.insert(t, ctx);
        0
    }

    fn on_handler_done(&mut self, t: ThreadId) {
        self.base.remove(&t);
    }

    fn on_stage_make_elem(&mut self, t: ThreadId) -> StageElemCtx {
        StageElemCtx(self.base_of(t))
    }

    fn on_stage_dequeue(&mut self, t: ThreadId, elem: StageElemCtx, stage: FrameId) -> u64 {
        let ctx = self.ctxs.append_frame(elem.0, stage);
        self.base.insert(t, ctx);
        0
    }

    fn on_stage_elem_done(&mut self, t: ThreadId) {
        self.base.remove(&t);
    }

    fn on_mem_event(&mut self, t: ThreadId, stack: &[FrameId], ev: &MemEvent) {
        // The context used to taint produced locations is the thread's
        // full context at critical-section entry (§3.5).
        if let MemEvent::CsEnter { .. } = ev {
            let full = self.ctxs.append_path(self.base_of(t), stack);
            self.cs_ctx.insert(t, full);
        }
        let cur = self
            .cs_ctx
            .get(&t)
            .copied()
            .unwrap_or_else(|| self.base_of(t));
        let mut out = Vec::new();
        self.detector.on_event(t, cur, ev, &mut out);
        for fe in &out {
            if let FlowEvent::Consumed { thread, ctx, .. } = fe {
                // §3.5: the consumer inherits the producer's context.
                self.base.insert(*thread, *ctx);
            }
        }
        self.flow_log.extend(out);
        if let MemEvent::CsExit = ev {
            self.cs_ctx.remove(&t);
        }
    }

    fn wants_emulation(&self, lock: LockId) -> bool {
        // §7.2's optimization: stop emulating once a lock is known not
        // to carry transaction flow (unless the ablation disables it).
        self.cfg.always_emulate || self.detector.flow_enabled(lock)
    }

    fn current_ctx(&self, t: ThreadId) -> CtxId {
        self.base_of(t)
    }

    fn overhead_cycles(&self) -> u64 {
        self.overhead
    }

    fn dump(&self) -> Option<StageDump> {
        let frames = self.frames.borrow();
        let mut d = StageDump {
            proc: self.cfg.proc.0,
            stage_name: self.cfg.stage_name.clone(),
            frames: frames.iter().map(|(_, n)| n.to_owned()).collect(),
            contexts: self.ctxs.iter().map(|(_, v)| dump_context(v)).collect(),
            piggyback_bytes: self.ipc.piggyback_bytes,
            messages: self.ipc.messages,
            ..Default::default()
        };
        let mut ctx_ids: Vec<_> = self.ccts.keys().copied().collect();
        ctx_ids.sort();
        for ctx in ctx_ids {
            let cct = &self.ccts[&ctx];
            let nodes = cct
                .node_ids()
                .map(|id| DumpNode {
                    frame: cct.frame(id).map(|f| f.0),
                    parent: cct.parent(id).map(|p| p.0),
                    samples: cct.metrics(id).samples,
                    cycles: cct.metrics(id).cycles,
                    calls: cct.metrics(id).calls,
                })
                .collect();
            d.ccts.push(DumpCct { ctx: ctx.0, nodes });
        }
        // Canonical dump order (sorted by context id) comes from the
        // synopsis table itself so the serial dump path and the sharded
        // analysis pipeline share one ordering rule.
        d.synopses = self
            .syns
            .minted_sorted()
            .into_iter()
            .map(|(raw, ctx)| (raw, ctx.0))
            .collect();
        let rep = self.crosstalk.report();
        d.crosstalk_pairs = rep
            .pairs
            .iter()
            .map(|&(w, h, s)| DumpCrosstalkPair {
                waiter: w.0,
                holder: h.0,
                count: s.count,
                total_wait: s.total_wait,
            })
            .collect();
        d.crosstalk_waiters = rep
            .waiters
            .iter()
            .map(|&(w, s)| DumpCrosstalkWaiter {
                waiter: w.0,
                count: s.count,
                total_wait: s.total_wait,
            })
            .collect();
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::shared_frame_table;

    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    fn make() -> (Whodunit, SharedFrameTable) {
        let frames = shared_frame_table();
        let w = Whodunit::new(WhodunitConfig::new(ProcId(1), "test"), frames.clone());
        (w, frames)
    }

    #[test]
    fn compute_accumulates_in_root_cct() {
        let (mut w, frames) = make();
        let main = frames.borrow_mut().intern("main");
        let f = frames.borrow_mut().intern("f");
        w.on_compute(T1, &[main, f], 1000);
        let cct = w.cct(CtxId::ROOT).expect("root CCT exists");
        assert_eq!(cct.total().cycles, 1000);
    }

    #[test]
    fn sampling_overhead_is_charged() {
        let (mut w, frames) = make();
        let main = frames.borrow_mut().intern("main");
        let period = w.cfg.cost.sample_period;
        let oh = w.on_compute(T1, &[main], period * 3);
        assert_eq!(oh, 3 * w.cfg.cost.per_sample_cycles);
        assert_eq!(w.overhead_cycles(), oh);
    }

    #[test]
    fn event_dispatch_switches_context() {
        let (mut w, frames) = make();
        let h1 = frames.borrow_mut().intern("accept");
        let main = frames.borrow_mut().intern("main");
        let ev = w.on_event_create(T1);
        w.on_event_dispatch(T1, ev, h1);
        let ctx = w.current_ctx(T1);
        assert_ne!(ctx, CtxId::ROOT);
        w.on_compute(T1, &[main], 500);
        assert!(w.cct(ctx).is_some());
        assert!(w.cct(CtxId::ROOT).is_none());
        w.on_handler_done(T1);
        assert_eq!(w.current_ctx(T1), CtxId::ROOT);
    }

    #[test]
    fn stage_dequeue_switches_context_per_worker() {
        let (mut w, frames) = make();
        let s1 = frames.borrow_mut().intern("ListenStage");
        let s2 = frames.borrow_mut().intern("ReadStage");
        let e = w.on_stage_make_elem(T1);
        w.on_stage_dequeue(T1, e, s1);
        let elem = w.on_stage_make_elem(T1);
        w.on_stage_elem_done(T1);
        w.on_stage_dequeue(T2, elem, s2);
        let c2 = w.current_ctx(T2);
        assert_eq!(w.ctx_string(c2), "ListenStage -> ReadStage");
    }

    #[test]
    fn send_recv_roundtrip_between_instances() {
        let frames = shared_frame_table();
        let mut a = Whodunit::new(WhodunitConfig::new(ProcId(1), "a"), frames.clone());
        let mut b = Whodunit::new(WhodunitConfig::new(ProcId(2), "b"), frames.clone());
        let foo = frames.borrow_mut().intern("foo");
        let svc = frames.borrow_mut().intern("svc");

        let info = a.on_send(T1, &[foo]);
        let chain = info.chain.clone().unwrap();
        b.on_recv(T2, Some(&chain));
        let bctx = b.current_ctx(T2);
        assert_ne!(bctx, CtxId::ROOT);
        // Callee computes under the adopted context.
        b.on_compute(T2, &[svc], 100);
        assert!(b.cct(bctx).is_some());
        // Callee responds; caller restores.
        let resp = b.on_send(T2, &[svc]).chain.unwrap();
        a.on_recv(T1, Some(&resp));
        assert_eq!(a.current_ctx(T1), CtxId::ROOT);
    }

    #[test]
    fn crosstalk_flows_through_hooks() {
        let (mut w, frames) = make();
        let h = frames.borrow_mut().intern("handler");
        let ev = w.on_event_create(T1);
        w.on_event_dispatch(T1, ev, h);
        let ctx_a = w.current_ctx(T1);
        let l = LockId(9);
        w.on_lock_acquired(T1, l, LockMode::Exclusive, 0, None);
        let hint = w.holder_hint(l);
        assert_eq!(hint, Some(ctx_a));
        w.on_lock_released(T1, l);
        w.on_lock_acquired(T2, l, LockMode::Exclusive, 700, hint);
        let stats = w.crosstalk().pair_stats(CtxId::ROOT, ctx_a);
        assert_eq!(stats.total_wait, 700);
    }

    #[test]
    fn mem_events_propagate_consumed_context() {
        use crate::shm::Loc;
        let (mut w, frames) = make();
        let push = frames.borrow_mut().intern("ap_queue_push");
        let pop = frames.borrow_mut().intern("ap_queue_pop");
        let l = LockId(3);
        assert!(w.wants_emulation(l));
        // Producer T1 under stack [push].
        w.on_mem_event(T1, &[push], &MemEvent::CsEnter { lock: l });
        w.on_mem_event(
            T1,
            &[push],
            &MemEvent::Mov {
                src: Loc::Mem(1),
                dst: Loc::Reg(T1, 0),
            },
        );
        w.on_mem_event(
            T1,
            &[push],
            &MemEvent::Mov {
                src: Loc::Reg(T1, 0),
                dst: Loc::Mem(50),
            },
        );
        w.on_mem_event(T1, &[push], &MemEvent::CsExit);
        // Consumer T2 under stack [pop].
        w.on_mem_event(T2, &[pop], &MemEvent::CsEnter { lock: l });
        w.on_mem_event(
            T2,
            &[pop],
            &MemEvent::Mov {
                src: Loc::Mem(50),
                dst: Loc::Reg(T2, 0),
            },
        );
        w.on_mem_event(
            T2,
            &[pop],
            &MemEvent::Mov {
                src: Loc::Reg(T2, 0),
                dst: Loc::Mem(90),
            },
        );
        w.on_mem_event(T2, &[pop], &MemEvent::CsExit);
        w.on_mem_event(T2, &[pop], &MemEvent::Use { loc: Loc::Mem(90) });
        let ctx = w.current_ctx(T2);
        assert_ne!(ctx, CtxId::ROOT);
        assert!(w.ctx_string(ctx).contains("ap_queue_push"));
        assert!(w
            .flow_log()
            .iter()
            .any(|e| matches!(e, FlowEvent::Consumed { .. })));
    }

    #[test]
    fn dump_contains_ccts_and_synopses() {
        let (mut w, frames) = make();
        let foo = frames.borrow_mut().intern("foo");
        w.on_compute(T1, &[foo], 1234);
        w.on_send(T1, &[foo]);
        let d = w.dump().unwrap();
        assert_eq!(d.stage_name, "test");
        assert_eq!(d.ccts.len(), 1);
        assert_eq!(d.messages, 1);
        assert!(!d.synopses.is_empty());
        let rebuilt = d.rebuild_cct(&d.ccts[0]).unwrap();
        assert_eq!(rebuilt.total().cycles, 1234);
    }
}
