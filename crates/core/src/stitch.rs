//! Post-mortem profile stitching (§5 Figure 7, §7.1).
//!
//! Each stage's Whodunit instance writes its profile to disk when the
//! program exits; a final presentation phase stitches the per-stage
//! profiles together using the transaction-context annotations. The
//! [`StageDump`] types here are the on-disk format (serde-serializable),
//! and [`Stitched`] is the cross-stage index: it resolves synopses back
//! to the contexts and stages that minted them, follows remote chains to
//! the originating transaction, and enumerates the request edges that
//! connect caller send points to callee CCTs.

use crate::cct::{Cct, CctNodeId};
use crate::context::{ContextAtom, TransactionContext};
use crate::synopsis::Synopsis;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One atom of a dumped transaction context.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DumpAtom {
    /// A handler/stage frame (index into [`StageDump::frames`]).
    Frame(u32),
    /// A call path (frame indices).
    Path(Vec<u32>),
    /// A received synopsis chain (raw synopsis values).
    Remote(Vec<u32>),
}

/// A dumped transaction context.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize, Default)]
pub struct DumpContext {
    /// The atoms in order.
    pub atoms: Vec<DumpAtom>,
}

/// One dumped CCT node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DumpNode {
    /// Frame index (`None` for the root).
    pub frame: Option<u32>,
    /// Parent node index (`None` for the root).
    pub parent: Option<u32>,
    /// Exclusive samples.
    pub samples: u64,
    /// Exclusive cycles.
    pub cycles: u64,
    /// Exclusive call count.
    pub calls: u64,
}

/// A dumped CCT, labeled by the context it is annotated with (§7.1).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DumpCct {
    /// Index into [`StageDump::contexts`].
    pub ctx: u32,
    /// Nodes; index 0 is the root, parents precede children.
    pub nodes: Vec<DumpNode>,
}

/// Crosstalk aggregate rows of one stage.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DumpCrosstalkPair {
    /// Waiter context index.
    pub waiter: u32,
    /// Holder context index.
    pub holder: u32,
    /// Number of waits.
    pub count: u64,
    /// Total cycles waited.
    pub total_wait: u64,
}

/// Per-waiter crosstalk aggregate (all acquires).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DumpCrosstalkWaiter {
    /// Waiter context index.
    pub waiter: u32,
    /// Number of acquires.
    pub count: u64,
    /// Total cycles waited.
    pub total_wait: u64,
}

/// The complete serialized profile of one stage (process).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize, Default)]
pub struct StageDump {
    /// Process id.
    pub proc: u32,
    /// Human-readable stage name.
    pub stage_name: String,
    /// Interned frame names; indices are local to this dump.
    pub frames: Vec<String>,
    /// Interned contexts; indices are local to this dump.
    pub contexts: Vec<DumpContext>,
    /// One CCT per context that accumulated profile data.
    pub ccts: Vec<DumpCct>,
    /// `(raw synopsis, context index)` pairs this stage minted.
    pub synopses: Vec<(u32, u32)>,
    /// Crosstalk pair aggregates.
    pub crosstalk_pairs: Vec<DumpCrosstalkPair>,
    /// Crosstalk waiter aggregates.
    pub crosstalk_waiters: Vec<DumpCrosstalkWaiter>,
    /// Total piggyback bytes this stage sent.
    pub piggyback_bytes: u64,
    /// Messages sent with a piggyback.
    pub messages: u64,
}

impl StageDump {
    /// Reconstructs a [`Cct`] from a dumped tree.
    ///
    /// # Panics
    ///
    /// Panics if the dump's parent indices are malformed (a parent must
    /// precede its children).
    pub fn rebuild_cct(&self, d: &DumpCct) -> Cct {
        let mut cct = Cct::new();
        let mut map: Vec<CctNodeId> = Vec::with_capacity(d.nodes.len());
        for (i, n) in d.nodes.iter().enumerate() {
            let id = if i == 0 {
                CctNodeId::ROOT
            } else {
                let parent = map[n.parent.expect("non-root node must have a parent") as usize];
                cct.child(
                    parent,
                    crate::frame::FrameId(n.frame.expect("non-root frame")),
                )
            };
            cct.record_at(
                id,
                crate::cct::Metrics {
                    samples: n.samples,
                    cycles: n.cycles,
                    calls: n.calls,
                },
            );
            map.push(id);
        }
        cct
    }

    /// Renders a dumped context as a human-readable string.
    pub fn ctx_string(&self, ctx: u32) -> String {
        let c = &self.contexts[ctx as usize];
        if c.atoms.is_empty() {
            return "<root>".to_owned();
        }
        let mut parts = Vec::new();
        for a in &c.atoms {
            match a {
                DumpAtom::Frame(f) => parts.push(self.frames[*f as usize].clone()),
                DumpAtom::Path(p) => parts.push(format!(
                    "[{}]",
                    p.iter()
                        .map(|f| self.frames[*f as usize].as_str())
                        .collect::<Vec<_>>()
                        .join(">")
                )),
                DumpAtom::Remote(chain) => parts.push(format!(
                    "remote({})",
                    chain
                        .iter()
                        .map(|s| Synopsis(*s).to_string())
                        .collect::<Vec<_>>()
                        .join("#")
                )),
            }
        }
        parts.join(" -> ")
    }
}

/// Converts a live [`TransactionContext`] into dump form.
pub fn dump_context(value: &TransactionContext) -> DumpContext {
    DumpContext {
        atoms: value
            .atoms()
            .iter()
            .map(|a| match a {
                ContextAtom::Frame(f) => DumpAtom::Frame(f.0),
                ContextAtom::Path(p) => DumpAtom::Path(p.iter().map(|f| f.0).collect()),
                ContextAtom::Remote(c) => DumpAtom::Remote(c.0.iter().map(|s| s.0).collect()),
            })
            .collect(),
    }
}

/// A request edge in the stitched transactional profile: the send point
/// in one stage that a remote context in another stage came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RequestEdge {
    /// Index of the sending stage in the stitched set.
    pub from_stage: usize,
    /// Context index (in the sending stage) at the send point.
    pub from_ctx: u32,
    /// Index of the receiving stage.
    pub to_stage: usize,
    /// The receiving stage's remote context index.
    pub to_ctx: u32,
}

/// Cross-stage index over a set of [`StageDump`]s.
#[derive(Debug)]
pub struct Stitched {
    /// The stage dumps, in the order given.
    pub stages: Vec<StageDump>,
    /// Raw synopsis → (stage index, context index) that minted it.
    minted: HashMap<u32, (usize, u32)>,
}

impl Stitched {
    /// Builds the index.
    pub fn new(stages: Vec<StageDump>) -> Self {
        let mut minted = HashMap::new();
        for (si, d) in stages.iter().enumerate() {
            for &(raw, ctx) in &d.synopses {
                minted.insert(raw, (si, ctx));
            }
        }
        Stitched { stages, minted }
    }

    /// Resolves a raw synopsis to the (stage, context) that minted it.
    pub fn resolve(&self, raw: u32) -> Option<(usize, u32)> {
        self.minted.get(&raw).copied()
    }

    /// Follows remote chains from `(stage, ctx)` back to the
    /// originating stage's context (the transaction's entry point).
    ///
    /// A context whose first atom is `Remote(chain)` originated at the
    /// stage that minted the *first* synopsis of the chain.
    pub fn origin(&self, stage: usize, ctx: u32) -> (usize, u32) {
        let mut cur = (stage, ctx);
        // Chains are acyclic in well-formed profiles; the guard bounds
        // damage from a malformed dump.
        for _ in 0..64 {
            let d = &self.stages[cur.0];
            let Some(DumpAtom::Remote(chain)) = d.contexts[cur.1 as usize].atoms.first() else {
                return cur;
            };
            let Some(&head) = chain.first() else {
                return cur;
            };
            let Some(next) = self.resolve(head) else {
                return cur;
            };
            if next == cur {
                return cur;
            }
            cur = next;
        }
        cur
    }

    /// All request edges: for every remote context, the send point that
    /// produced the *last* synopsis in its chain (the immediate sender).
    pub fn request_edges(&self) -> Vec<RequestEdge> {
        let mut edges = Vec::new();
        for (si, d) in self.stages.iter().enumerate() {
            for (ci, c) in d.contexts.iter().enumerate() {
                if let Some(DumpAtom::Remote(chain)) = c.atoms.first() {
                    if let Some(&last) = chain.last() {
                        if let Some((fs, fc)) = self.resolve(last) {
                            edges.push(RequestEdge {
                                from_stage: fs,
                                from_ctx: fc,
                                to_stage: si,
                                to_ctx: ci as u32,
                            });
                        }
                    }
                }
            }
        }
        edges.sort_by_key(|e| (e.to_stage, e.to_ctx, e.from_stage, e.from_ctx));
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cct::Metrics;
    use crate::frame::FrameId;

    fn dump_with_ctx(proc: u32, atoms: Vec<DumpAtom>, synopses: Vec<(u32, u32)>) -> StageDump {
        StageDump {
            proc,
            stage_name: format!("stage{proc}"),
            frames: vec!["main".into(), "foo".into(), "send".into()],
            contexts: vec![DumpContext::default(), DumpContext { atoms }],
            ccts: Vec::new(),
            synopses,
            ..Default::default()
        }
    }

    #[test]
    fn cct_rebuild_roundtrip() {
        let mut cct = Cct::new();
        cct.record(
            &[FrameId(0), FrameId(1)],
            Metrics {
                samples: 3,
                cycles: 30,
                calls: 1,
            },
        );
        cct.record(
            &[FrameId(2)],
            Metrics {
                samples: 1,
                cycles: 5,
                calls: 2,
            },
        );
        // Dump by hand in creation order (root first).
        let mut nodes = Vec::new();
        for id in cct.node_ids() {
            nodes.push(DumpNode {
                frame: cct.frame(id).map(|f| f.0),
                parent: cct.parent(id).map(|p| p.0),
                samples: cct.metrics(id).samples,
                cycles: cct.metrics(id).cycles,
                calls: cct.metrics(id).calls,
            });
        }
        let d = StageDump {
            frames: vec!["a".into(), "b".into(), "c".into()],
            ..Default::default()
        };
        let mut rebuilt = d.rebuild_cct(&DumpCct { ctx: 0, nodes });
        assert_eq!(rebuilt.total().cycles, 35);
        assert_eq!(rebuilt.total().samples, 4);
        let n = rebuilt.path_node(&[FrameId(0), FrameId(1)]);
        assert_eq!(rebuilt.metrics(n).cycles, 30);
    }

    #[test]
    fn origin_follows_remote_chains() {
        // Stage 0 mints synopsis 100 for its local ctx 1; stage 1's ctx
        // 1 is remote([100]) and mints 200; stage 2's ctx 1 is
        // remote([100, 200]).
        let s0 = dump_with_ctx(0, vec![DumpAtom::Path(vec![0, 1])], vec![(100, 1)]);
        let s1 = dump_with_ctx(1, vec![DumpAtom::Remote(vec![100])], vec![(200, 1)]);
        let s2 = dump_with_ctx(2, vec![DumpAtom::Remote(vec![100, 200])], vec![]);
        let st = Stitched::new(vec![s0, s1, s2]);
        assert_eq!(st.origin(2, 1), (0, 1));
        assert_eq!(st.origin(1, 1), (0, 1));
        assert_eq!(st.origin(0, 1), (0, 1));
    }

    #[test]
    fn request_edges_point_at_immediate_sender() {
        let s0 = dump_with_ctx(0, vec![DumpAtom::Path(vec![0, 1])], vec![(100, 1)]);
        let s1 = dump_with_ctx(1, vec![DumpAtom::Remote(vec![100])], vec![(200, 1)]);
        let s2 = dump_with_ctx(2, vec![DumpAtom::Remote(vec![100, 200])], vec![]);
        let st = Stitched::new(vec![s0, s1, s2]);
        let edges = st.request_edges();
        assert_eq!(edges.len(), 2);
        // Stage 1's remote ctx came from stage 0; stage 2's from stage 1.
        assert!(edges.contains(&RequestEdge {
            from_stage: 0,
            from_ctx: 1,
            to_stage: 1,
            to_ctx: 1
        }));
        assert!(edges.contains(&RequestEdge {
            from_stage: 1,
            from_ctx: 1,
            to_stage: 2,
            to_ctx: 1
        }));
    }

    #[test]
    fn ctx_string_is_readable() {
        let d = dump_with_ctx(
            0,
            vec![
                DumpAtom::Frame(1),
                DumpAtom::Path(vec![0, 2]),
                DumpAtom::Remote(vec![0x0100_0005]),
            ],
            vec![],
        );
        let s = d.ctx_string(1);
        assert_eq!(s, "foo -> [main>send] -> remote(s1:5)");
        assert_eq!(d.ctx_string(0), "<root>");
    }

    #[test]
    fn serde_roundtrip() {
        let d = dump_with_ctx(3, vec![DumpAtom::Frame(0)], vec![(7, 1)]);
        let json = serde_json::to_string(&d).unwrap();
        let back: StageDump = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
