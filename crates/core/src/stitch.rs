//! Post-mortem profile stitching (§5 Figure 7, §7.1).
//!
//! Each stage's Whodunit instance writes its profile to disk when the
//! program exits; a final presentation phase stitches the per-stage
//! profiles together using the transaction-context annotations. The
//! [`StageDump`] types here are the on-disk format (serialized by
//! [`crate::dumpjson`]), and [`Stitched`] is the cross-stage index: it
//! resolves synopses back to the contexts and stages that minted them,
//! follows remote chains to the originating transaction, and enumerates
//! the request edges that connect caller send points to callee CCTs.
//!
//! Stage dumps are *untrusted input*: a stage may have crashed mid-run,
//! its dump may be truncated or corrupt, or an entire tier's dump may be
//! missing. Nothing in this module panics on such input — malformed
//! dumps are reported as [`StitchError`]s, [`Stitched::new`] skips them
//! with a warning, and chains that cannot be resolved (because their
//! minting stage's dump is absent) surface as explicit
//! [`UnresolvedEdge`]s instead of silently vanishing.

use crate::blackbox::TierVisibility;
use crate::cct::{Cct, CctNodeId};
use crate::context::{ContextAtom, TransactionContext};
use crate::synopsis::Synopsis;
use std::collections::HashMap;
use std::fmt;

/// One atom of a dumped transaction context.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DumpAtom {
    /// A handler/stage frame (index into [`StageDump::frames`]).
    Frame(u32),
    /// A call path (frame indices).
    Path(Vec<u32>),
    /// A received synopsis chain (raw synopsis values).
    Remote(Vec<u64>),
}

/// A dumped transaction context.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DumpContext {
    /// The atoms in order.
    pub atoms: Vec<DumpAtom>,
}

/// One dumped CCT node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DumpNode {
    /// Frame index (`None` for the root).
    pub frame: Option<u32>,
    /// Parent node index (`None` for the root).
    pub parent: Option<u32>,
    /// Exclusive samples.
    pub samples: u64,
    /// Exclusive cycles.
    pub cycles: u64,
    /// Exclusive call count.
    pub calls: u64,
}

/// A dumped CCT, labeled by the context it is annotated with (§7.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DumpCct {
    /// Index into [`StageDump::contexts`].
    pub ctx: u32,
    /// Nodes; index 0 is the root, parents precede children.
    pub nodes: Vec<DumpNode>,
}

/// Crosstalk aggregate rows of one stage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DumpCrosstalkPair {
    /// Waiter context index.
    pub waiter: u32,
    /// Holder context index.
    pub holder: u32,
    /// Number of waits.
    pub count: u64,
    /// Total cycles waited.
    pub total_wait: u64,
}

/// Per-waiter crosstalk aggregate (all acquires).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DumpCrosstalkWaiter {
    /// Waiter context index.
    pub waiter: u32,
    /// Number of acquires.
    pub count: u64,
    /// Total cycles waited.
    pub total_wait: u64,
}

/// The complete serialized profile of one stage (process).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct StageDump {
    /// Process id.
    pub proc: u32,
    /// Human-readable stage name.
    pub stage_name: String,
    /// Interned frame names; indices are local to this dump.
    pub frames: Vec<String>,
    /// Interned contexts; indices are local to this dump.
    pub contexts: Vec<DumpContext>,
    /// One CCT per context that accumulated profile data.
    pub ccts: Vec<DumpCct>,
    /// `(raw synopsis, context index)` pairs this stage minted.
    pub synopses: Vec<(u64, u32)>,
    /// Crosstalk pair aggregates.
    pub crosstalk_pairs: Vec<DumpCrosstalkPair>,
    /// Crosstalk waiter aggregates.
    pub crosstalk_waiters: Vec<DumpCrosstalkWaiter>,
    /// Total piggyback bytes this stage sent.
    pub piggyback_bytes: u64,
    /// Messages sent with a piggyback.
    pub messages: u64,
}

/// Why a stage dump (or part of one) could not be used.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StitchError {
    /// A non-root CCT node has no parent index.
    NodeWithoutParent {
        /// Index of the offending node within its CCT.
        node: usize,
    },
    /// A non-root CCT node has no frame.
    NodeWithoutFrame {
        /// Index of the offending node within its CCT.
        node: usize,
    },
    /// A node's parent index does not precede the node.
    ParentOutOfOrder {
        /// Index of the offending node within its CCT.
        node: usize,
        /// The out-of-order parent index it names.
        parent: u32,
    },
    /// A CCT is labeled with a context index the dump does not contain.
    ContextOutOfRange {
        /// The out-of-range context index.
        ctx: u32,
    },
    /// A context atom names a frame index the dump does not contain.
    FrameOutOfRange {
        /// The out-of-range frame index.
        frame: u32,
    },
    /// The dump text is not well-formed JSON.
    Json {
        /// Byte offset the parser stopped at.
        offset: usize,
        /// What went wrong.
        msg: String,
    },
    /// The JSON is well-formed but does not describe a stage dump.
    Schema(String),
    /// The stage is deliberately opaque ([`TierVisibility::Opaque`]):
    /// its dump is withheld by policy, not lost or corrupt. Distinct
    /// from the malformed-dump variants so black-box inference fallback
    /// triggers precisely on the tiers configured for it, never on
    /// corrupt-dump heuristics.
    Opaque,
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::NodeWithoutParent { node } => {
                write!(f, "cct node {node} is non-root but has no parent")
            }
            StitchError::NodeWithoutFrame { node } => {
                write!(f, "cct node {node} is non-root but has no frame")
            }
            StitchError::ParentOutOfOrder { node, parent } => {
                write!(f, "cct node {node} names parent {parent}, which does not precede it")
            }
            StitchError::ContextOutOfRange { ctx } => {
                write!(f, "cct labeled with unknown context index {ctx}")
            }
            StitchError::FrameOutOfRange { frame } => {
                write!(f, "context atom names unknown frame index {frame}")
            }
            StitchError::Json { offset, msg } => {
                write!(f, "malformed JSON at byte {offset}: {msg}")
            }
            StitchError::Schema(msg) => write!(f, "dump schema violation: {msg}"),
            StitchError::Opaque => {
                write!(f, "tier is opaque by policy (no dump exported)")
            }
        }
    }
}

impl std::error::Error for StitchError {}

impl StageDump {
    /// Reconstructs a [`Cct`] from a dumped tree.
    ///
    /// Fails (instead of panicking — dumps are untrusted input) when a
    /// non-root node lacks a parent or frame, or when a parent does not
    /// precede its children.
    pub fn rebuild_cct(&self, d: &DumpCct) -> Result<Cct, StitchError> {
        let mut cct = Cct::new();
        let mut map: Vec<CctNodeId> = Vec::with_capacity(d.nodes.len());
        for (i, n) in d.nodes.iter().enumerate() {
            let id = if i == 0 {
                CctNodeId::ROOT
            } else {
                let p = n.parent.ok_or(StitchError::NodeWithoutParent { node: i })?;
                if p as usize >= i {
                    return Err(StitchError::ParentOutOfOrder { node: i, parent: p });
                }
                let frame = n.frame.ok_or(StitchError::NodeWithoutFrame { node: i })?;
                cct.child(map[p as usize], crate::frame::FrameId(frame))
            };
            cct.record_at(
                id,
                crate::cct::Metrics {
                    samples: n.samples,
                    cycles: n.cycles,
                    calls: n.calls,
                },
            );
            map.push(id);
        }
        Ok(cct)
    }

    /// Checks the dump's internal indices: every CCT rebuilds, every
    /// CCT label and every context atom resolves.
    pub fn validate(&self) -> Result<(), StitchError> {
        for c in &self.ccts {
            if c.ctx as usize >= self.contexts.len() {
                return Err(StitchError::ContextOutOfRange { ctx: c.ctx });
            }
            self.rebuild_cct(c)?;
        }
        let frame_ok = |f: &u32| (*f as usize) < self.frames.len();
        for ctx in &self.contexts {
            for a in &ctx.atoms {
                match a {
                    DumpAtom::Frame(fr) => {
                        if !frame_ok(fr) {
                            return Err(StitchError::FrameOutOfRange { frame: *fr });
                        }
                    }
                    DumpAtom::Path(p) => {
                        if let Some(&fr) = p.iter().find(|&fr| !frame_ok(fr)) {
                            return Err(StitchError::FrameOutOfRange { frame: fr });
                        }
                    }
                    DumpAtom::Remote(_) => {}
                }
            }
        }
        Ok(())
    }

    /// Returns a copy of this dump re-homed onto other process ids.
    ///
    /// `map` translates an old process id to a new one; it is applied
    /// to the dump's own `proc`, to the high byte of every synopsis
    /// this stage minted, and to every synopsis inside `Remote` context
    /// atoms, keeping the dump internally consistent. Ids the map
    /// returns `None` for are left unchanged (a chain may reference a
    /// process outside the remapped group).
    ///
    /// This is how the `pipeline` bench replicates one profiled tier
    /// group into a fleet: each replica gets a disjoint process-id
    /// range, so the replicas' synopses never collide.
    pub fn with_remapped_proc(&self, map: &dyn Fn(u32) -> Option<u32>) -> StageDump {
        let remap_syn = |raw: u64| -> u64 {
            let s = Synopsis(raw);
            match map(s.proc_id()) {
                Some(p) => Synopsis::new(p, s.counter()).0,
                None => raw,
            }
        };
        let mut d = self.clone();
        if let Some(p) = map(d.proc) {
            d.proc = p;
        }
        for (raw, _) in &mut d.synopses {
            *raw = remap_syn(*raw);
        }
        for c in &mut d.contexts {
            for a in &mut c.atoms {
                if let DumpAtom::Remote(chain) = a {
                    for raw in chain.iter_mut() {
                        *raw = remap_syn(*raw);
                    }
                }
            }
        }
        d
    }

    /// Renders a dumped context as a human-readable string. Unknown
    /// indices render as placeholders rather than panicking.
    pub fn ctx_string(&self, ctx: u32) -> String {
        ctx_string_of(&self.frames, &self.contexts, ctx)
    }
}

/// [`StageDump::ctx_string`] over borrowed tables, so callers holding
/// frame/context slices (e.g. the streaming collector's accumulators)
/// can render labels without assembling a throwaway dump.
pub fn ctx_string_of(frames: &[String], contexts: &[DumpContext], ctx: u32) -> String {
    let Some(c) = contexts.get(ctx as usize) else {
        return format!("<ctx {ctx}?>");
    };
    if c.atoms.is_empty() {
        return "<root>".to_owned();
    }
    let frame_name = |f: &u32| -> String {
        frames
            .get(*f as usize)
            .cloned()
            .unwrap_or_else(|| format!("<frame {f}?>"))
    };
    let mut parts = Vec::new();
    for a in &c.atoms {
        match a {
            DumpAtom::Frame(f) => parts.push(frame_name(f)),
            DumpAtom::Path(p) => parts.push(format!(
                "[{}]",
                p.iter().map(frame_name).collect::<Vec<_>>().join(">")
            )),
            DumpAtom::Remote(chain) => parts.push(format!(
                "remote({})",
                chain
                    .iter()
                    .map(|s| Synopsis(*s).to_string())
                    .collect::<Vec<_>>()
                    .join("#")
            )),
        }
    }
    parts.join(" -> ")
}

/// Converts a live [`TransactionContext`] into dump form.
pub fn dump_context(value: &TransactionContext) -> DumpContext {
    DumpContext {
        atoms: value
            .atoms()
            .iter()
            .map(|a| match a {
                ContextAtom::Frame(f) => DumpAtom::Frame(f.0),
                ContextAtom::Path(p) => DumpAtom::Path(p.iter().map(|f| f.0).collect()),
                ContextAtom::Remote(c) => DumpAtom::Remote(c.0.iter().map(|s| s.0).collect()),
            })
            .collect(),
    }
}

/// A request edge in the stitched transactional profile: the send point
/// in one stage that a remote context in another stage came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RequestEdge {
    /// Index of the sending stage in the stitched set.
    pub from_stage: usize,
    /// Context index (in the sending stage) at the send point.
    pub from_ctx: u32,
    /// Index of the receiving stage.
    pub to_stage: usize,
    /// The receiving stage's remote context index.
    pub to_ctx: u32,
}

/// A remote context whose immediate sender could not be identified —
/// the stage that minted the chain's last synopsis contributed no
/// (valid) dump. The transaction is still profiled at the receiving
/// stage; only the cross-stage attribution is missing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnresolvedEdge {
    /// Index of the receiving stage.
    pub to_stage: usize,
    /// The receiving stage's remote context index.
    pub to_ctx: u32,
    /// The raw synopsis that failed to resolve.
    pub missing: u64,
}

/// Cross-stage index over a set of [`StageDump`]s.
#[derive(Debug)]
pub struct Stitched {
    /// The stage dumps, in the order given. Invalid dumps are retained
    /// (so stage indices stay stable) but excluded from the index; see
    /// [`Stitched::warnings`].
    pub stages: Vec<StageDump>,
    /// Raw synopsis → (stage index, context index) that minted it.
    minted: HashMap<u64, (usize, u32)>,
    /// Per-stage validity (parallel to `stages`).
    valid: Vec<bool>,
    /// Validation failures, by stage index.
    warnings: Vec<(usize, StitchError)>,
}

impl Stitched {
    /// Builds the index. Malformed dumps are skipped with a warning
    /// (retrievable via [`Stitched::warnings`]) instead of panicking:
    /// a partial, faulty run must still stitch.
    pub fn new(stages: Vec<StageDump>) -> Self {
        let vis = vec![TierVisibility::Cooperating; stages.len()];
        Self::new_with_visibility(stages, &vis)
    }

    /// [`Stitched::new`] with a per-stage visibility policy (hybrid
    /// deployments). An [`TierVisibility::Opaque`] stage's dump is
    /// withheld from the index — no synopsis it minted resolves, and
    /// none of its contexts contribute request edges — and the stage is
    /// reported as a [`StitchError::Opaque`] warning so downstream
    /// black-box inference knows exactly which tiers to fill in.
    /// Stages past the end of `vis` default to cooperating.
    pub fn new_with_visibility(stages: Vec<StageDump>, vis: &[TierVisibility]) -> Self {
        let mut minted = HashMap::new();
        let mut valid = Vec::with_capacity(stages.len());
        let mut warnings = Vec::new();
        for (si, d) in stages.iter().enumerate() {
            if vis.get(si) == Some(&TierVisibility::Opaque) {
                valid.push(false);
                warnings.push((si, StitchError::Opaque));
                continue;
            }
            match d.validate() {
                Ok(()) => {
                    valid.push(true);
                    for &(raw, ctx) in &d.synopses {
                        minted.insert(raw, (si, ctx));
                    }
                }
                Err(e) => {
                    valid.push(false);
                    warnings.push((si, e));
                }
            }
        }
        Stitched {
            stages,
            minted,
            valid,
            warnings,
        }
    }

    /// Validation failures of skipped stages: `(stage index, error)`.
    pub fn warnings(&self) -> &[(usize, StitchError)] {
        &self.warnings
    }

    /// Stage indices withheld by visibility policy — exactly the stages
    /// whose warning is [`StitchError::Opaque`], never corrupt or
    /// missing dumps. This is the precise trigger for inference
    /// fallback.
    pub fn opaque_stages(&self) -> Vec<usize> {
        self.warnings
            .iter()
            .filter(|(_, e)| *e == StitchError::Opaque)
            .map(|&(si, _)| si)
            .collect()
    }

    /// Whether stage `si` passed validation and is part of the index.
    pub fn stage_valid(&self, si: usize) -> bool {
        self.valid.get(si).copied().unwrap_or(false)
    }

    /// Resolves a raw synopsis to the (stage, context) that minted it.
    pub fn resolve(&self, raw: u64) -> Option<(usize, u32)> {
        self.minted.get(&raw).copied()
    }

    /// Follows remote chains from `(stage, ctx)` back to the
    /// originating stage's context (the transaction's entry point).
    ///
    /// A context whose first atom is `Remote(chain)` originated at the
    /// stage that minted the *first* synopsis of the chain.
    pub fn origin(&self, stage: usize, ctx: u32) -> (usize, u32) {
        let mut cur = (stage, ctx);
        // Chains are acyclic in well-formed profiles; the guard bounds
        // damage from a malformed dump.
        for _ in 0..64 {
            let Some(d) = self.stages.get(cur.0) else {
                return cur;
            };
            let Some(c) = d.contexts.get(cur.1 as usize) else {
                return cur;
            };
            let Some(DumpAtom::Remote(chain)) = c.atoms.first() else {
                return cur;
            };
            let Some(&head) = chain.first() else {
                return cur;
            };
            let Some(next) = self.resolve(head) else {
                return cur;
            };
            if next == cur {
                return cur;
            }
            cur = next;
        }
        cur
    }

    /// All request edges: for every remote context, the send point that
    /// produced the *last* synopsis in its chain (the immediate sender).
    pub fn request_edges(&self) -> Vec<RequestEdge> {
        let mut edges = Vec::new();
        for (si, d) in self.stages.iter().enumerate() {
            if !self.stage_valid(si) {
                continue;
            }
            for (ci, c) in d.contexts.iter().enumerate() {
                if let Some(DumpAtom::Remote(chain)) = c.atoms.first() {
                    if let Some(&last) = chain.last() {
                        if let Some((fs, fc)) = self.resolve(last) {
                            edges.push(RequestEdge {
                                from_stage: fs,
                                from_ctx: fc,
                                to_stage: si,
                                to_ctx: ci as u32,
                            });
                        }
                    }
                }
            }
        }
        edges.sort_by_key(|e| (e.to_stage, e.to_ctx, e.from_stage, e.from_ctx));
        edges
    }

    /// The complement of [`Stitched::request_edges`]: remote contexts
    /// whose immediate sender is *not* in the index — its stage's dump
    /// was never collected (crash), was corrupt (skipped with a
    /// warning), or its dictionary entry was pruned. These are rendered
    /// explicitly so a partial profile is visibly partial rather than
    /// silently smaller.
    pub fn unresolved_edges(&self) -> Vec<UnresolvedEdge> {
        let mut edges = Vec::new();
        for (si, d) in self.stages.iter().enumerate() {
            if !self.stage_valid(si) {
                continue;
            }
            for (ci, c) in d.contexts.iter().enumerate() {
                if let Some(DumpAtom::Remote(chain)) = c.atoms.first() {
                    if let Some(&last) = chain.last() {
                        if self.resolve(last).is_none() {
                            edges.push(UnresolvedEdge {
                                to_stage: si,
                                to_ctx: ci as u32,
                                missing: last,
                            });
                        }
                    }
                }
            }
        }
        edges.sort_by_key(|e| (e.to_stage, e.to_ctx, e.missing));
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cct::Metrics;
    use crate::frame::FrameId;

    fn dump_with_ctx(proc: u32, atoms: Vec<DumpAtom>, synopses: Vec<(u64, u32)>) -> StageDump {
        StageDump {
            proc,
            stage_name: format!("stage{proc}"),
            frames: vec!["main".into(), "foo".into(), "send".into()],
            contexts: vec![DumpContext::default(), DumpContext { atoms }],
            ccts: Vec::new(),
            synopses,
            ..Default::default()
        }
    }

    #[test]
    fn cct_rebuild_roundtrip() {
        let mut cct = Cct::new();
        cct.record(
            &[FrameId(0), FrameId(1)],
            Metrics {
                samples: 3,
                cycles: 30,
                calls: 1,
            },
        );
        cct.record(
            &[FrameId(2)],
            Metrics {
                samples: 1,
                cycles: 5,
                calls: 2,
            },
        );
        // Dump by hand in creation order (root first).
        let mut nodes = Vec::new();
        for id in cct.node_ids() {
            nodes.push(DumpNode {
                frame: cct.frame(id).map(|f| f.0),
                parent: cct.parent(id).map(|p| p.0),
                samples: cct.metrics(id).samples,
                cycles: cct.metrics(id).cycles,
                calls: cct.metrics(id).calls,
            });
        }
        let d = StageDump {
            frames: vec!["a".into(), "b".into(), "c".into()],
            ..Default::default()
        };
        let mut rebuilt = d.rebuild_cct(&DumpCct { ctx: 0, nodes }).unwrap();
        assert_eq!(rebuilt.total().cycles, 35);
        assert_eq!(rebuilt.total().samples, 4);
        let n = rebuilt.path_node(&[FrameId(0), FrameId(1)]);
        assert_eq!(rebuilt.metrics(n).cycles, 30);
    }

    #[test]
    fn malformed_nodes_are_errors_not_panics() {
        let d = StageDump::default();
        let orphan = DumpCct {
            ctx: 0,
            nodes: vec![
                DumpNode {
                    frame: None,
                    parent: None,
                    samples: 0,
                    cycles: 0,
                    calls: 0,
                },
                DumpNode {
                    frame: Some(1),
                    parent: None,
                    samples: 1,
                    cycles: 1,
                    calls: 0,
                },
            ],
        };
        assert_eq!(
            d.rebuild_cct(&orphan).err(),
            Some(StitchError::NodeWithoutParent { node: 1 })
        );
        let forward = DumpCct {
            ctx: 0,
            nodes: vec![
                DumpNode {
                    frame: None,
                    parent: None,
                    samples: 0,
                    cycles: 0,
                    calls: 0,
                },
                DumpNode {
                    frame: Some(1),
                    parent: Some(5),
                    samples: 1,
                    cycles: 1,
                    calls: 0,
                },
            ],
        };
        assert_eq!(
            d.rebuild_cct(&forward).err(),
            Some(StitchError::ParentOutOfOrder { node: 1, parent: 5 })
        );
    }

    #[test]
    fn stitched_skips_invalid_dumps_with_warning() {
        let good = dump_with_ctx(0, vec![DumpAtom::Path(vec![0, 1])], vec![(100, 1)]);
        let bad = StageDump {
            proc: 1,
            stage_name: "corrupt".into(),
            ccts: vec![DumpCct { ctx: 9, nodes: vec![] }],
            synopses: vec![(200, 0)],
            ..Default::default()
        };
        let st = Stitched::new(vec![good, bad]);
        assert!(st.stage_valid(0));
        assert!(!st.stage_valid(1));
        assert_eq!(st.warnings().len(), 1);
        assert_eq!(st.warnings()[0].0, 1);
        // The corrupt stage's synopses are not indexed.
        assert_eq!(st.resolve(200), None);
        assert_eq!(st.resolve(100), Some((0, 1)));
    }

    #[test]
    fn origin_follows_remote_chains() {
        // Stage 0 mints synopsis 100 for its local ctx 1; stage 1's ctx
        // 1 is remote([100]) and mints 200; stage 2's ctx 1 is
        // remote([100, 200]).
        let s0 = dump_with_ctx(0, vec![DumpAtom::Path(vec![0, 1])], vec![(100, 1)]);
        let s1 = dump_with_ctx(1, vec![DumpAtom::Remote(vec![100])], vec![(200, 1)]);
        let s2 = dump_with_ctx(2, vec![DumpAtom::Remote(vec![100, 200])], vec![]);
        let st = Stitched::new(vec![s0, s1, s2]);
        assert_eq!(st.origin(2, 1), (0, 1));
        assert_eq!(st.origin(1, 1), (0, 1));
        assert_eq!(st.origin(0, 1), (0, 1));
    }

    #[test]
    fn request_edges_point_at_immediate_sender() {
        let s0 = dump_with_ctx(0, vec![DumpAtom::Path(vec![0, 1])], vec![(100, 1)]);
        let s1 = dump_with_ctx(1, vec![DumpAtom::Remote(vec![100])], vec![(200, 1)]);
        let s2 = dump_with_ctx(2, vec![DumpAtom::Remote(vec![100, 200])], vec![]);
        let st = Stitched::new(vec![s0, s1, s2]);
        let edges = st.request_edges();
        assert_eq!(edges.len(), 2);
        // Stage 1's remote ctx came from stage 0; stage 2's from stage 1.
        assert!(edges.contains(&RequestEdge {
            from_stage: 0,
            from_ctx: 1,
            to_stage: 1,
            to_ctx: 1
        }));
        assert!(edges.contains(&RequestEdge {
            from_stage: 1,
            from_ctx: 1,
            to_stage: 2,
            to_ctx: 1
        }));
        assert!(st.unresolved_edges().is_empty());
    }

    #[test]
    fn missing_stage_dump_yields_unresolved_edges() {
        // As above, but stage 1's dump was lost (crashed before dumping):
        // stage 2's remote chain ends in a synopsis nobody minted.
        let s0 = dump_with_ctx(0, vec![DumpAtom::Path(vec![0, 1])], vec![(100, 1)]);
        let s2 = dump_with_ctx(2, vec![DumpAtom::Remote(vec![100, 200])], vec![]);
        let st = Stitched::new(vec![s0, s2]);
        assert!(st.request_edges().is_empty());
        let un = st.unresolved_edges();
        assert_eq!(un.len(), 1);
        assert_eq!(
            un[0],
            UnresolvedEdge {
                to_stage: 1,
                to_ctx: 1,
                missing: 200
            }
        );
        // The origin walk still finds the true entry stage via the
        // chain head, which stage 0 did mint.
        assert_eq!(st.origin(1, 1), (0, 1));
    }

    #[test]
    fn opaque_tier_is_distinct_from_corrupt_dump() {
        // Stage 0 cooperates; stage 1 is opaque by policy; stage 2 is
        // genuinely corrupt. The warnings must tell them apart so
        // inference fallback triggers only on stage 1.
        let s0 = dump_with_ctx(0, vec![DumpAtom::Path(vec![0, 1])], vec![(100, 1)]);
        let s1 = dump_with_ctx(1, vec![DumpAtom::Remote(vec![100])], vec![(200, 1)]);
        let s2 = StageDump {
            proc: 2,
            stage_name: "corrupt".into(),
            ccts: vec![DumpCct { ctx: 9, nodes: vec![] }],
            ..Default::default()
        };
        let vis = [
            TierVisibility::Cooperating,
            TierVisibility::Opaque,
            TierVisibility::Cooperating,
        ];
        let st = Stitched::new_with_visibility(vec![s0, s1, s2], &vis);
        assert!(st.stage_valid(0));
        assert!(!st.stage_valid(1));
        assert!(!st.stage_valid(2));
        assert_eq!(st.opaque_stages(), vec![1]);
        assert_eq!(st.warnings()[0], (1, StitchError::Opaque));
        assert!(matches!(st.warnings()[1], (2, StitchError::ContextOutOfRange { .. })));
        // The opaque stage's synopses are withheld even though its dump
        // is well-formed.
        assert_eq!(st.resolve(200), None);
        assert_eq!(st.resolve(100), Some((0, 1)));
        // Full visibility (the default constructor) indexes everything.
        let s0 = dump_with_ctx(0, vec![DumpAtom::Path(vec![0, 1])], vec![(100, 1)]);
        let s1 = dump_with_ctx(1, vec![DumpAtom::Remote(vec![100])], vec![(200, 1)]);
        let st = Stitched::new(vec![s0, s1]);
        assert!(st.stage_valid(1));
        assert_eq!(st.resolve(200), Some((1, 1)));
        assert!(st.opaque_stages().is_empty());
    }

    #[test]
    fn ctx_string_is_readable() {
        let d = dump_with_ctx(
            0,
            vec![
                DumpAtom::Frame(1),
                DumpAtom::Path(vec![0, 2]),
                DumpAtom::Remote(vec![0x0100_0005]),
            ],
            vec![],
        );
        let s = d.ctx_string(1);
        assert_eq!(s, "foo -> [main>send] -> remote(s1:5)");
        assert_eq!(d.ctx_string(0), "<root>");
        // Out-of-range indices render placeholders, never panic.
        assert_eq!(d.ctx_string(99), "<ctx 99?>");
        let bad = dump_with_ctx(0, vec![DumpAtom::Frame(77)], vec![]);
        assert!(bad.ctx_string(1).contains("<frame 77?>"));
    }
}
