//! Self-contained chaos repro files.
//!
//! When the chaos explorer finds an oracle violation, the failing
//! scenario is written to disk as a [`ChaosRepro`]: everything needed
//! to re-execute the run bit-identically — the scenario seed, the
//! schedule policy, the sampled fault-plan entries, and the workload
//! knobs. The format rides on the same hand-rolled JSON layer as the
//! stage dumps ([`crate::dumpjson`]): integers and strings only,
//! strict parsing with tolerant unknown-key handling, errors as
//! [`StitchError`] rather than panics.
//!
//! The types here are pure data. Channel/process/machine targets are
//! *role names* (e.g. `"db"`, `"mysql"`), resolved by whatever harness
//! replays the file; probabilities are parts-per-million so the file
//! stays integer-only and bit-exact.

use crate::dumpjson::{esc, parse_value, Value};
use crate::stitch::StitchError;

/// One entry of a sampled fault plan, addressed by role name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEntry {
    /// Drop sends on the channel role with probability `ppm` / 1e6.
    Drop {
        /// Channel role name.
        chan: String,
        /// Drop probability in parts per million.
        ppm: u64,
    },
    /// Duplicate sends on the channel role with probability `ppm` / 1e6.
    Dup {
        /// Channel role name.
        chan: String,
        /// Duplication probability in parts per million.
        ppm: u64,
    },
    /// Delay sends on the channel role by `cycles` with probability
    /// `ppm` / 1e6.
    Delay {
        /// Channel role name.
        chan: String,
        /// Delay probability in parts per million.
        ppm: u64,
        /// Extra delivery delay in cycles.
        cycles: u64,
    },
    /// Crash the process role at virtual time `at`.
    Crash {
        /// Process role name.
        proc: String,
        /// Crash time (cycles).
        at: u64,
    },
    /// Slow the machine role by `factor` in `[from, until)`.
    Slowdown {
        /// Machine role name.
        machine: String,
        /// Window start (cycles, inclusive).
        from: u64,
        /// Window end (cycles, exclusive).
        until: u64,
        /// Compute multiplier (≥ 1).
        factor: u64,
    },
}

/// The epoch window an anomaly-capture repro was scoped to.
///
/// A sentinel capture does not replay a whole run: it truncates the
/// scenario to the epochs around the SLO violation (prefix determinism
/// makes the truncated run identical to the original up to the window
/// end). The window records where in the run the anomaly sat and which
/// budget dimension tripped, so an incident report can label the repro
/// and a replay can re-evaluate the same dimension over the same
/// epochs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReproWindow {
    /// Epoch length in cycles at capture time.
    pub epoch_len: u64,
    /// First epoch of the captured window (inclusive).
    pub start: u64,
    /// Last epoch of the captured window (inclusive).
    pub end: u64,
    /// The SLO dimension that tripped (a [`crate::oracle`]-style kind
    /// string, e.g. `"slo-latency"`).
    pub dimension: String,
}

/// A complete, self-contained chaos scenario.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ChaosRepro {
    /// The scenario seed: drives the fault plan's random stream and
    /// derives per-client workload seeds.
    pub seed: u64,
    /// The schedule policy, in its string form (e.g. `"fifo"`,
    /// `"random:42"`, `"perturb:7:250000"`).
    pub policy: String,
    /// Named workload knobs (e.g. `("clients", 40)`), interpreted by
    /// the replaying harness. Order is preserved.
    pub workload: Vec<(String, u64)>,
    /// The sampled fault-plan entries.
    pub faults: Vec<FaultEntry>,
    /// The oracle violation this repro triggers (informational; set
    /// when the file is written, checked on replay).
    pub violation: Option<String>,
    /// The epoch window this repro was captured from, if it came out
    /// of the sentinel's anomaly-capture pipeline rather than the
    /// offline chaos explorer. Absent in (and tolerated by) pre-window
    /// repro files.
    pub window: Option<ReproWindow>,
}

impl ChaosRepro {
    /// Looks up a workload knob.
    pub fn knob(&self, name: &str) -> Option<u64> {
        self.workload
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Sets (or replaces) a workload knob, preserving position.
    pub fn set_knob(&mut self, name: &str, value: u64) {
        match self.workload.iter_mut().find(|(k, _)| k == name) {
            Some(entry) => entry.1 = value,
            None => self.workload.push((name.to_owned(), value)),
        }
    }
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn write_fault(f: &FaultEntry, out: &mut String) {
    match f {
        FaultEntry::Drop { chan, ppm } => {
            out.push_str("{\"Drop\":{\"chan\":");
            esc(chan, out);
            out.push_str(&format!(",\"ppm\":{ppm}}}}}"));
        }
        FaultEntry::Dup { chan, ppm } => {
            out.push_str("{\"Dup\":{\"chan\":");
            esc(chan, out);
            out.push_str(&format!(",\"ppm\":{ppm}}}}}"));
        }
        FaultEntry::Delay { chan, ppm, cycles } => {
            out.push_str("{\"Delay\":{\"chan\":");
            esc(chan, out);
            out.push_str(&format!(",\"ppm\":{ppm},\"cycles\":{cycles}}}}}"));
        }
        FaultEntry::Crash { proc, at } => {
            out.push_str("{\"Crash\":{\"proc\":");
            esc(proc, out);
            out.push_str(&format!(",\"at\":{at}}}}}"));
        }
        FaultEntry::Slowdown {
            machine,
            from,
            until,
            factor,
        } => {
            out.push_str("{\"Slowdown\":{\"machine\":");
            esc(machine, out);
            out.push_str(&format!(
                ",\"from\":{from},\"until\":{until},\"factor\":{factor}}}}}"
            ));
        }
    }
}

/// Serializes a repro to its on-disk JSON form.
pub fn repro_to_json(r: &ChaosRepro) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"seed\": ");
    out.push_str(&r.seed.to_string());
    out.push_str(",\n  \"policy\": ");
    esc(&r.policy, &mut out);
    out.push_str(",\n  \"workload\": [");
    for (i, (k, v)) in r.workload.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        esc(k, &mut out);
        out.push_str(&format!(",{v}]"));
    }
    out.push_str("],\n  \"faults\": [");
    for (i, f) in r.faults.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_fault(f, &mut out);
    }
    out.push_str("],\n  \"violation\": ");
    match &r.violation {
        Some(v) => esc(v, &mut out),
        None => out.push_str("null"),
    }
    // Only captured repros carry a window; omitting the key otherwise
    // keeps pre-window repro files byte-identical.
    if let Some(w) = &r.window {
        out.push_str(&format!(
            ",\n  \"window\": {{\"epoch_len\":{},\"start\":{},\"end\":{},\"dimension\":",
            w.epoch_len, w.start, w.end
        ));
        esc(&w.dimension, &mut out);
        out.push('}');
    }
    out.push_str("\n}\n");
    out
}

/// The binary frame form of a repro bundle, on the shared wire codec
/// ([`crate::wire::encode_repro`]): same content as
/// [`repro_to_json`], envelope-checksummed, for embedding bundles in
/// binary streams. JSON stays the on-disk format.
pub fn repro_to_wire(r: &ChaosRepro) -> Vec<u8> {
    crate::wire::encode_repro(r)
}

/// Parses a [`repro_to_wire`] frame.
pub fn repro_from_wire(buf: &[u8]) -> Result<ChaosRepro, crate::wire::WireError> {
    crate::wire::decode_repro(buf).map(|(r, _)| r)
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn schema<T>(msg: impl Into<String>) -> Result<T, StitchError> {
    Err(StitchError::Schema(msg.into()))
}

fn fault_of(v: &Value) -> Result<FaultEntry, StitchError> {
    let Value::Obj(items) = v else {
        return schema("fault: expected {\"Variant\": {...}}");
    };
    if items.len() != 1 {
        return schema("fault: expected exactly one variant key");
    }
    let (k, p) = &items[0];
    let s = |key: &str| -> Result<String, StitchError> {
        p.field(key)?.as_str(key).map(str::to_owned)
    };
    let n = |key: &str| -> Result<u64, StitchError> { p.field(key)?.as_u64(key) };
    match k.as_str() {
        "Drop" => Ok(FaultEntry::Drop {
            chan: s("chan")?,
            ppm: n("ppm")?,
        }),
        "Dup" => Ok(FaultEntry::Dup {
            chan: s("chan")?,
            ppm: n("ppm")?,
        }),
        "Delay" => Ok(FaultEntry::Delay {
            chan: s("chan")?,
            ppm: n("ppm")?,
            cycles: n("cycles")?,
        }),
        "Crash" => Ok(FaultEntry::Crash {
            proc: s("proc")?,
            at: n("at")?,
        }),
        "Slowdown" => Ok(FaultEntry::Slowdown {
            machine: s("machine")?,
            from: n("from")?,
            until: n("until")?,
            factor: n("factor")?,
        }),
        other => schema(format!("fault: unknown variant '{other}'")),
    }
}

/// Parses a repro from its on-disk JSON form.
pub fn repro_from_json(s: &str) -> Result<ChaosRepro, StitchError> {
    let v = parse_value(s)?;
    let workload = v
        .field("workload")?
        .as_arr("workload")?
        .iter()
        .map(|pair| {
            let p = pair.as_arr("workload pair")?;
            if p.len() != 2 {
                return schema("workload pair: expected [name, value]");
            }
            Ok((p[0].as_str("knob name")?.to_owned(), p[1].as_u64("knob value")?))
        })
        .collect::<Result<_, StitchError>>()?;
    let faults = v
        .field("faults")?
        .as_arr("faults")?
        .iter()
        .map(fault_of)
        .collect::<Result<_, StitchError>>()?;
    let violation = match v.field("violation")? {
        Value::Null => None,
        other => Some(other.as_str("violation")?.to_owned()),
    };
    // Optional: absent in pre-window files. Malformed content is still
    // an error — only a missing key falls back to None.
    let window = match v.field("window") {
        Err(_) => None,
        Ok(Value::Null) => None,
        Ok(w) => Some(ReproWindow {
            epoch_len: w.field("epoch_len")?.as_u64("epoch_len")?,
            start: w.field("start")?.as_u64("start")?,
            end: w.field("end")?.as_u64("end")?,
            dimension: w.field("dimension")?.as_str("dimension")?.to_owned(),
        }),
    };
    Ok(ChaosRepro {
        seed: v.field("seed")?.as_u64("seed")?,
        policy: v.field("policy")?.as_str("policy")?.to_owned(),
        workload,
        faults,
        violation,
        window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChaosRepro {
        ChaosRepro {
            seed: 0xF00D,
            policy: "perturb:7:250000".into(),
            workload: vec![("clients".into(), 40), ("duration".into(), 288_000_000_000)],
            faults: vec![
                FaultEntry::Drop {
                    chan: "db".into(),
                    ppm: 50_000,
                },
                FaultEntry::Dup {
                    chan: "front".into(),
                    ppm: 10_000,
                },
                FaultEntry::Delay {
                    chan: "db".into(),
                    ppm: 100_000,
                    cycles: 24_000_000,
                },
                FaultEntry::Crash {
                    proc: "mysql".into(),
                    at: 240_000_000_000,
                },
                FaultEntry::Slowdown {
                    machine: "mysql".into(),
                    from: 96_000_000_000,
                    until: 144_000_000_000,
                    factor: 3,
                },
            ],
            violation: Some("mass-conservation".into()),
            window: None,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let r = sample();
        let back = repro_from_json(&repro_to_json(&r)).unwrap();
        assert_eq!(r, back);
        // And serialization itself is stable (bit-identical files).
        assert_eq!(repro_to_json(&r), repro_to_json(&back));
    }

    #[test]
    fn no_violation_roundtrips_as_null() {
        let r = ChaosRepro {
            violation: None,
            ..sample()
        };
        let back = repro_from_json(&repro_to_json(&r)).unwrap();
        assert_eq!(back.violation, None);
    }

    #[test]
    fn knob_access_and_update() {
        let mut r = sample();
        assert_eq!(r.knob("clients"), Some(40));
        assert_eq!(r.knob("missing"), None);
        r.set_knob("clients", 20);
        r.set_knob("fresh", 1);
        assert_eq!(r.knob("clients"), Some(20));
        assert_eq!(r.knob("fresh"), Some(1));
        assert_eq!(r.workload[0].0, "clients", "position preserved");
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{}",
            "{\"seed\": 1}",
            "{\"seed\":1,\"policy\":\"fifo\",\"workload\":[[1,2]],\"faults\":[],\"violation\":null}",
            "{\"seed\":1,\"policy\":\"fifo\",\"workload\":[],\"faults\":[{\"Nope\":{}}],\"violation\":null}",
            "{\"seed\":1,\"policy\":\"fifo\",\"workload\":[],\"faults\":[{\"Drop\":{\"chan\":\"db\"}}],\"violation\":null}",
        ] {
            assert!(repro_from_json(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn window_roundtrips_and_is_optional() {
        let mut r = sample();
        r.window = Some(ReproWindow {
            epoch_len: 2_400_000_000,
            start: 17,
            end: 23,
            dimension: "slo-latency".into(),
        });
        let j = repro_to_json(&r);
        assert!(j.contains("\"window\""));
        assert_eq!(repro_from_json(&j).unwrap(), r);
        // A pre-window file (no "window" key) parses to None.
        let old = repro_to_json(&sample());
        assert!(!old.contains("\"window\""));
        assert_eq!(repro_from_json(&old).unwrap().window, None);
        // A malformed window is an error, not a silent None.
        let bad = j.replace("\"start\":17", "\"start\":\"x\"");
        assert!(repro_from_json(&bad).is_err());
    }

    #[test]
    fn wire_form_round_trips_and_rejects_damage() {
        let mut r = sample();
        r.window = Some(ReproWindow {
            epoch_len: 2_400_000_000,
            start: 17,
            end: 23,
            dimension: "slo-latency".into(),
        });
        let bytes = repro_to_wire(&r);
        assert_eq!(repro_from_wire(&bytes).unwrap(), r);
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(repro_from_wire(&bad).is_err());
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        let j = repro_to_json(&sample()).replacen('{', "{\n  \"future\": 1,", 1);
        assert_eq!(repro_from_json(&j).unwrap(), sample());
    }
}
