//! The runtime hook interface between execution substrates and
//! profiling runtimes.
//!
//! The paper's Whodunit is a preloaded library whose wrappers intercept
//! lock operations, sends/receives, event loops, and stage queues
//! (§7). In this reproduction the substrate (the discrete-event
//! simulator, or the instruction emulator for critical sections) calls
//! these hooks at exactly the points the paper's wrappers intercept.
//! Every hook returns the *overhead cycles* its bookkeeping costs so the
//! substrate can charge them to the executing thread — this is how
//! profiling overhead (Table 2, §9) becomes measurable in virtual time.
//!
//! Implementations: [`crate::profiler::Whodunit`] (the paper's system),
//! plus the `csprof`-only and `gprof`-like baselines in
//! `whodunit-baselines`, and [`NullRuntime`] (profiling off).

use crate::context::CtxId;
use crate::events::EventCtx;
use crate::frame::FrameId;
use crate::ids::{LockId, LockMode, ThreadId};
use crate::ipc::SendInfo;
use crate::seda::StageElemCtx;
use crate::shm::MemEvent;
use crate::stitch::StageDump;
use crate::synopsis::SynChain;

/// Hooks a profiling runtime implements; all have no-op defaults.
pub trait Runtime {
    /// Short name for reports ("none", "csprof", "whodunit", "gprof").
    fn name(&self) -> &'static str;

    /// A thread was created in this process.
    fn on_spawn(&mut self, _t: ThreadId) {}

    /// A thread exited.
    fn on_exit(&mut self, _t: ThreadId) {}

    /// A procedure was entered; returns instrumentation cycles (gprof's
    /// per-call mcount cost).
    fn on_call(&mut self, _t: ThreadId, _f: FrameId) -> u64 {
        0
    }

    /// A procedure returned.
    fn on_return(&mut self, _t: ThreadId) -> u64 {
        0
    }

    /// `n` call/return pairs of `f` executed beneath the current stack
    /// (a batched form of [`Runtime::on_call`] used to model the call
    /// density of a compute burst without `n` separate hook calls).
    fn on_calls(&mut self, t: ThreadId, f: FrameId, n: u64) -> u64 {
        let mut total = 0;
        for _ in 0..n {
            total += self.on_call(t, f);
            total += self.on_return(t);
        }
        total
    }

    /// Thread `t` executed `cycles` of CPU under call stack `stack`;
    /// returns sampling overhead cycles.
    fn on_compute(&mut self, _t: ThreadId, _stack: &[FrameId], _cycles: u64) -> u64 {
        0
    }

    /// Thread `t` is sending a message from call stack `stack`; returns
    /// what to piggyback and what it costs.
    fn on_send(&mut self, _t: ThreadId, _stack: &[FrameId]) -> SendInfo {
        SendInfo::default()
    }

    /// Thread `t` received a message carrying `chain`; returns
    /// bookkeeping cycles.
    fn on_recv(&mut self, _t: ThreadId, _chain: Option<&SynChain>) -> u64 {
        0
    }

    /// The transaction context to blame if someone starts waiting on
    /// `lock` right now (crosstalk holder hint, §7.5).
    fn holder_hint(&self, _lock: LockId) -> Option<CtxId> {
        None
    }

    /// Thread `t` acquired `lock` after waiting `waited` cycles;
    /// `holder` is the hint captured when the wait began.
    fn on_lock_acquired(
        &mut self,
        _t: ThreadId,
        _lock: LockId,
        _mode: LockMode,
        _waited: u64,
        _holder: Option<CtxId>,
    ) -> u64 {
        0
    }

    /// Thread `t` released `lock`.
    fn on_lock_released(&mut self, _t: ThreadId, _lock: LockId) -> u64 {
        0
    }

    /// Figure 4 line 12: an event is created; returns the context to
    /// store in it.
    fn on_event_create(&mut self, _t: ThreadId) -> EventCtx {
        EventCtx::default()
    }

    /// Figure 4 lines 5–6: `handler` is about to run for an event
    /// carrying `ev`.
    fn on_event_dispatch(&mut self, _t: ThreadId, _ev: EventCtx, _handler: FrameId) -> u64 {
        0
    }

    /// The current event handler returned.
    fn on_handler_done(&mut self, _t: ThreadId) {}

    /// Figure 5 line 12: a stage-queue element is created by `t`.
    fn on_stage_make_elem(&mut self, _t: ThreadId) -> StageElemCtx {
        StageElemCtx::default()
    }

    /// Figure 5 lines 5–6: worker `t` dequeued `elem` and executes it
    /// in `stage`.
    fn on_stage_dequeue(&mut self, _t: ThreadId, _elem: StageElemCtx, _stage: FrameId) -> u64 {
        0
    }

    /// Worker `t` finished its stage element.
    fn on_stage_elem_done(&mut self, _t: ThreadId) {}

    /// A memory event from emulated critical-section code (§3, §7.2).
    /// `stack` is the thread's call stack (the produce-point call path).
    fn on_mem_event(&mut self, _t: ThreadId, _stack: &[FrameId], _ev: &MemEvent) {}

    /// Whether critical sections of `lock` still need emulation (§7.2's
    /// bail-out: `false` once the lock is known not to carry flow).
    fn wants_emulation(&self, _lock: LockId) -> bool {
        false
    }

    /// The base transaction context of `t` (for tests and displays).
    fn current_ctx(&self, _t: ThreadId) -> CtxId {
        CtxId::ROOT
    }

    /// Serializable end-of-run profile for post-mortem stitching.
    fn dump(&self) -> Option<StageDump> {
        None
    }

    /// Total overhead cycles this runtime has charged so far.
    fn overhead_cycles(&self) -> u64 {
        0
    }
}

/// Profiling disabled: every hook is free and inert.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRuntime;

impl Runtime for NullRuntime {
    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_runtime_is_free_and_inert() {
        let mut r = NullRuntime;
        assert_eq!(r.name(), "none");
        assert_eq!(r.on_compute(ThreadId(1), &[], 1_000_000), 0);
        assert!(r.on_send(ThreadId(1), &[]).chain.is_none());
        assert_eq!(r.on_recv(ThreadId(1), None), 0);
        assert!(!r.wants_emulation(LockId(1)));
        assert!(r.dump().is_none());
        assert_eq!(r.overhead_cycles(), 0);
    }
}
