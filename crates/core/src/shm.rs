//! Shared-memory transaction-flow detection (§3).
//!
//! Threads of a multithreaded stage pass transactions between themselves
//! through shared data structures (e.g. Apache's listener → worker fd
//! queue). There is no explicit produce/consume call to hook, so the
//! producer–consumer relationship must be *inferred* from the memory
//! operations performed inside critical sections.
//!
//! The algorithm (paper §3.2), restated over the event vocabulary of
//! this module:
//!
//! - Every location (memory word or thread-annotated register) may carry
//!   a *taint entry*: a transaction context (or the special invalid
//!   context `invlctxt`) plus the lock protecting the critical section
//!   that last updated it.
//! - A `MOV` inside a critical section copies the source's taint to the
//!   destination. If the source is untainted and the destination is a
//!   *memory* location, the destination is tainted with the executing
//!   thread's current transaction context and the thread is recorded as
//!   a **producer** for the lock.
//! - Any non-`MOV` modification (immediate store, arithmetic update)
//!   taints the destination with the invalid context, which is how
//!   shared counters (Figure 2) and `NULL` sanity checks (§3.3.2) are
//!   excluded.
//! - A read of a validly tainted location *after* the critical section
//!   exits (within the emulator's `MAX`-instruction window, §7.2) is a
//!   **consume**: the reading thread is recorded as a consumer for the
//!   tainting lock and inherits the producer's transaction context.
//! - A location accessed from a critical section protected by a
//!   different lock than the one that tainted it is flushed first.
//! - The first time the producer and consumer lists of a lock intersect
//!   (the memory-allocator pattern, Figure 3), transaction flow for that
//!   lock is disabled; the substrate may then stop emulating its
//!   critical sections (§7.2's performance optimization).

use crate::context::CtxId;
use crate::ids::{LockId, ThreadId};
use std::collections::{HashMap, HashSet};

/// A location in the combined name space of §3.2: the virtual address
/// space plus per-thread annotated registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Loc {
    /// A word in (guest) memory, identified by its word address.
    Mem(u64),
    /// Register `reg` of thread `t` (the paper's `reg_ti` annotation).
    Reg(ThreadId, u8),
}

impl Loc {
    /// Whether this is a memory location.
    pub fn is_mem(&self) -> bool {
        matches!(self, Loc::Mem(_))
    }
}

/// A memory operation reported by the emulating substrate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemEvent {
    /// The thread acquired `lock`; nesting is tracked and all analysis
    /// is attributed to the *outermost* lock (§3.3.2).
    CsEnter {
        /// The lock protecting the entered critical section.
        lock: LockId,
    },
    /// The thread released a lock; at depth zero the critical section
    /// ends and the post-exit consume window begins.
    CsExit,
    /// A `MOV` from `src` to `dst` inside a critical section.
    Mov {
        /// Source location.
        src: Loc,
        /// Destination location.
        dst: Loc,
    },
    /// A non-`MOV` modification of `dst` inside a critical section
    /// (immediate store, arithmetic read-modify-write, …).
    Modify {
        /// Destination location.
        dst: Loc,
    },
    /// A read of `loc` after critical-section exit, within the
    /// substrate's consume window.
    Use {
        /// The location read.
        loc: Loc,
    },
}

/// A flow inference produced by the detector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowEvent {
    /// `thread` produced a value at `loc` under `lock` while executing
    /// with context `ctx`.
    Produced {
        /// Producing thread.
        thread: ThreadId,
        /// Location the value was stored to.
        loc: Loc,
        /// The producer's transaction context.
        ctx: CtxId,
        /// Lock protecting the critical section.
        lock: LockId,
    },
    /// `thread` consumed a value from `loc` that carries `ctx`.
    ///
    /// The profiler reacts by assigning `ctx` to the consuming thread
    /// (§3.5).
    Consumed {
        /// Consuming thread.
        thread: ThreadId,
        /// Location the value was read from.
        loc: Loc,
        /// The producer context the consumer inherits.
        ctx: CtxId,
        /// Lock whose critical section tainted the location.
        lock: LockId,
    },
    /// The producer and consumer lists of `lock` intersected: shared
    /// memory under this lock does not constitute transaction flow
    /// (the allocator pattern, §3.4).
    FlowDisabled {
        /// The lock whose flow tracking is disabled.
        lock: LockId,
    },
}

/// Tunables of the detector (ablation knobs).
#[derive(Clone, Copy, Debug)]
pub struct FlowConfig {
    /// Clear the executing thread's register taints when it enters an
    /// outermost critical section.
    ///
    /// §3.1 assumes values a producer brings into a critical section are
    /// untainted ("a location gets associated with a transaction context
    /// only inside a critical section"); clearing registers on entry
    /// enforces that assumption against stale taint left by a previous
    /// critical section of the same thread.
    pub clear_regs_on_cs_enter: bool,
    /// Infer *produce* only when the destination of an untainted `MOV`
    /// is a memory location. Disabling this treats register targets as
    /// produce points too, which mis-classifies consumers as producers —
    /// kept as an ablation to demonstrate why the restriction matters.
    pub produce_requires_mem_dst: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            clear_regs_on_cs_enter: true,
            produce_requires_mem_dst: true,
        }
    }
}

/// Taint value: a valid transaction context or `invlctxt`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Taint {
    Valid(CtxId),
    Invalid,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    taint: Taint,
    lock: LockId,
}

#[derive(Debug, Default)]
struct LockState {
    producers: HashSet<ThreadId>,
    consumers: HashSet<ThreadId>,
    disabled: bool,
    produced: u64,
    consumed: u64,
}

#[derive(Debug)]
struct CsState {
    outer: LockId,
    depth: u32,
}

/// Per-lock flow statistics for reports and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockFlowStats {
    /// Number of produce inferences.
    pub produced: u64,
    /// Number of consume inferences.
    pub consumed: u64,
    /// Distinct producer threads seen.
    pub producers: usize,
    /// Distinct consumer threads seen.
    pub consumers: usize,
    /// Whether flow tracking was disabled for this lock.
    pub disabled: bool,
}

/// The §3 shared-memory transaction-flow detector.
///
/// # Examples
///
/// The Figure 1 producer–consumer round, reduced to raw memory events:
///
/// ```
/// use whodunit_core::context::CtxId;
/// use whodunit_core::ids::{LockId, ThreadId};
/// use whodunit_core::shm::{FlowDetector, FlowEvent, Loc, MemEvent};
///
/// let mut d = FlowDetector::default();
/// let (lock, prod, cons) = (LockId(1), ThreadId(1), ThreadId(2));
/// let mut out = Vec::new();
/// // Producer: argument register → shared slot.
/// d.on_event(prod, CtxId(7), &MemEvent::CsEnter { lock }, &mut out);
/// d.on_event(prod, CtxId(7), &MemEvent::Mov {
///     src: Loc::Reg(prod, 1), dst: Loc::Mem(50) }, &mut out);
/// d.on_event(prod, CtxId(7), &MemEvent::CsExit, &mut out);
/// // Consumer: shared slot → register, used after the exit.
/// d.on_event(cons, CtxId(0), &MemEvent::CsEnter { lock }, &mut out);
/// d.on_event(cons, CtxId(0), &MemEvent::Mov {
///     src: Loc::Mem(50), dst: Loc::Reg(cons, 1) }, &mut out);
/// d.on_event(cons, CtxId(0), &MemEvent::CsExit, &mut out);
/// out.clear();
/// d.on_event(cons, CtxId(0), &MemEvent::Use {
///     loc: Loc::Reg(cons, 1) }, &mut out);
/// assert!(matches!(out[0],
///     FlowEvent::Consumed { ctx: CtxId(7), .. }));
/// ```
#[derive(Debug)]
pub struct FlowDetector {
    cfg: FlowConfig,
    dict: HashMap<Loc, Entry>,
    locks: HashMap<LockId, LockState>,
    in_cs: HashMap<ThreadId, CsState>,
}

impl Default for FlowDetector {
    fn default() -> Self {
        Self::new(FlowConfig::default())
    }
}

impl FlowDetector {
    /// Creates a detector with the given configuration.
    pub fn new(cfg: FlowConfig) -> Self {
        FlowDetector {
            cfg,
            dict: HashMap::new(),
            locks: HashMap::new(),
            in_cs: HashMap::new(),
        }
    }

    /// Whether transaction flow is still tracked for `lock`.
    ///
    /// Substrates use this for the §7.2 optimization: once a lock's flow
    /// is disabled, its critical sections can run natively.
    pub fn flow_enabled(&self, lock: LockId) -> bool {
        self.locks.get(&lock).map(|s| !s.disabled).unwrap_or(true)
    }

    /// Per-lock statistics.
    pub fn lock_stats(&self, lock: LockId) -> LockFlowStats {
        match self.locks.get(&lock) {
            None => LockFlowStats::default(),
            Some(s) => LockFlowStats {
                produced: s.produced,
                consumed: s.consumed,
                producers: s.producers.len(),
                consumers: s.consumers.len(),
                disabled: s.disabled,
            },
        }
    }

    /// All locks the detector has seen, in id order.
    pub fn known_locks(&self) -> Vec<LockId> {
        let mut v: Vec<_> = self.locks.keys().copied().collect();
        v.sort();
        v
    }

    /// Size of the location dictionary (tainted locations).
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Feeds one memory event for thread `t`, whose current transaction
    /// context is `cur_ctx`; inferences are appended to `out`.
    pub fn on_event(
        &mut self,
        t: ThreadId,
        cur_ctx: CtxId,
        ev: &MemEvent,
        out: &mut Vec<FlowEvent>,
    ) {
        match *ev {
            MemEvent::CsEnter { lock } => self.cs_enter(t, lock),
            MemEvent::CsExit => self.cs_exit(t),
            MemEvent::Mov { src, dst } => self.mov(t, cur_ctx, src, dst, out),
            MemEvent::Modify { dst } => self.modify(t, dst),
            MemEvent::Use { loc } => self.use_loc(t, loc, out),
        }
    }

    fn cs_enter(&mut self, t: ThreadId, lock: LockId) {
        let st = self.in_cs.entry(t).or_insert(CsState {
            outer: lock,
            depth: 0,
        });
        if st.depth == 0 {
            st.outer = lock;
            if self.cfg.clear_regs_on_cs_enter {
                self.dict
                    .retain(|loc, _| !matches!(loc, Loc::Reg(rt, _) if *rt == t));
            }
        }
        st.depth += 1;
        self.locks.entry(lock).or_default();
    }

    fn cs_exit(&mut self, t: ThreadId) {
        if let Some(st) = self.in_cs.get_mut(&t) {
            st.depth = st.depth.saturating_sub(1);
            if st.depth == 0 {
                self.in_cs.remove(&t);
            }
        }
    }

    /// The outermost lock of `t`'s current critical section, if any.
    fn outer_lock(&self, t: ThreadId) -> Option<LockId> {
        self.in_cs.get(&t).map(|s| s.outer)
    }

    /// §3.2 flush rule: a location accessed from a critical section
    /// protected by a different lock than the one that tainted it loses
    /// its taint.
    fn flush_if_foreign(&mut self, loc: Loc, lock: LockId) {
        if let Some(e) = self.dict.get(&loc) {
            if e.lock != lock {
                self.dict.remove(&loc);
            }
        }
    }

    fn mov(&mut self, t: ThreadId, cur_ctx: CtxId, src: Loc, dst: Loc, out: &mut Vec<FlowEvent>) {
        let Some(lock) = self.outer_lock(t) else {
            // Defensive: a `MOV` outside any critical section is not
            // analyzed (the substrate reports post-exit reads as `Use`).
            return;
        };
        self.flush_if_foreign(src, lock);
        self.flush_if_foreign(dst, lock);
        match self.dict.get(&src).copied() {
            Some(e) => {
                // Copy the taint, whatever it is (valid or invalid):
                // this is how queue-internal element moves keep their
                // producer context (§3.2's priority-queue case) and how
                // the invalid context spreads through `NULL` checks.
                self.dict.insert(
                    dst,
                    Entry {
                        taint: e.taint,
                        lock,
                    },
                );
            }
            None => {
                if dst.is_mem() || !self.cfg.produce_requires_mem_dst {
                    // Untainted source: the thread is producing a value
                    // it computed before entering the critical section.
                    self.dict.insert(
                        dst,
                        Entry {
                            taint: Taint::Valid(cur_ctx),
                            lock,
                        },
                    );
                    let st = self.locks.entry(lock).or_default();
                    st.produced += 1;
                    st.producers.insert(t);
                    out.push(FlowEvent::Produced {
                        thread: t,
                        loc: dst,
                        ctx: cur_ctx,
                        lock,
                    });
                    self.check_intersection(lock, out);
                }
                // Untainted moves into registers stay untainted: they
                // are address computations and staging loads, not
                // produce points.
            }
        }
    }

    fn modify(&mut self, t: ThreadId, dst: Loc) {
        let Some(lock) = self.outer_lock(t) else {
            return;
        };
        self.dict.insert(
            dst,
            Entry {
                taint: Taint::Invalid,
                lock,
            },
        );
    }

    fn use_loc(&mut self, t: ThreadId, loc: Loc, out: &mut Vec<FlowEvent>) {
        if self.outer_lock(t).is_some() {
            // Uses are only meaningful after the critical section exits.
            return;
        }
        let Some(e) = self.dict.get(&loc).copied() else {
            return;
        };
        let Taint::Valid(ctx) = e.taint else {
            return;
        };
        let st = self.locks.entry(e.lock).or_default();
        st.consumed += 1;
        st.consumers.insert(t);
        let disabled = st.disabled;
        self.check_intersection(e.lock, out);
        let now_disabled = self.locks.get(&e.lock).map(|s| s.disabled).unwrap_or(false);
        if !disabled && !now_disabled {
            out.push(FlowEvent::Consumed {
                thread: t,
                loc,
                ctx,
                lock: e.lock,
            });
        }
    }

    fn check_intersection(&mut self, lock: LockId, out: &mut Vec<FlowEvent>) {
        let Some(st) = self.locks.get_mut(&lock) else {
            return;
        };
        if st.disabled {
            return;
        }
        if st.producers.intersection(&st.consumers).next().is_some() {
            st.disabled = true;
            out.push(FlowEvent::FlowDisabled { lock });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LockId = LockId(1);
    const L2: LockId = LockId(2);
    const PROD: ThreadId = ThreadId(1);
    const CONS: ThreadId = ThreadId(2);
    const CTX_P: CtxId = CtxId(7);
    const CTX_C: CtxId = CtxId(8);

    fn mem(a: u64) -> Loc {
        Loc::Mem(a)
    }

    fn reg(t: ThreadId, r: u8) -> Loc {
        Loc::Reg(t, r)
    }

    /// Drives the producer half of Figure 1: load an argument into a
    /// register, store it into the shared queue slot.
    fn produce(
        d: &mut FlowDetector,
        t: ThreadId,
        ctx: CtxId,
        arg: Loc,
        slot: Loc,
    ) -> Vec<FlowEvent> {
        let mut out = Vec::new();
        d.on_event(t, ctx, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(
            t,
            ctx,
            &MemEvent::Mov {
                src: arg,
                dst: reg(t, 0),
            },
            &mut out,
        );
        d.on_event(
            t,
            ctx,
            &MemEvent::Mov {
                src: reg(t, 0),
                dst: slot,
            },
            &mut out,
        );
        d.on_event(t, ctx, &MemEvent::Modify { dst: mem(100) }, &mut out); // nelts++.
        d.on_event(t, ctx, &MemEvent::CsExit, &mut out);
        out
    }

    /// Drives the consumer half of Figure 1: load the queue slot into a
    /// register, store it to a caller-provided location, use it after
    /// the critical section exits.
    fn consume(
        d: &mut FlowDetector,
        t: ThreadId,
        ctx: CtxId,
        slot: Loc,
        dst: Loc,
    ) -> Vec<FlowEvent> {
        let mut out = Vec::new();
        d.on_event(t, ctx, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(
            t,
            ctx,
            &MemEvent::Mov {
                src: slot,
                dst: reg(t, 1),
            },
            &mut out,
        );
        d.on_event(
            t,
            ctx,
            &MemEvent::Mov {
                src: reg(t, 1),
                dst,
            },
            &mut out,
        );
        d.on_event(t, ctx, &MemEvent::CsExit, &mut out);
        d.on_event(t, ctx, &MemEvent::Use { loc: dst }, &mut out);
        out
    }

    #[test]
    fn figure1_producer_consumer_flow_is_detected() {
        let mut d = FlowDetector::default();
        let ev = produce(&mut d, PROD, CTX_P, mem(10), mem(50));
        assert!(matches!(
            ev.as_slice(),
            [FlowEvent::Produced {
                thread: PROD,
                ctx: CTX_P,
                ..
            }]
        ));
        let ev = consume(&mut d, CONS, CTX_C, mem(50), mem(200));
        assert!(
            ev.iter().any(|e| matches!(
                e,
                FlowEvent::Consumed {
                    thread: CONS,
                    ctx: CTX_P,
                    ..
                }
            )),
            "consumer must inherit the producer context, got {ev:?}"
        );
        assert!(d.flow_enabled(L));
        let s = d.lock_stats(L);
        assert_eq!((s.producers, s.consumers), (1, 1));
        assert!(!s.disabled);
    }

    #[test]
    fn untainted_register_moves_are_not_produce_points() {
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        d.on_event(CONS, CTX_C, &MemEvent::CsEnter { lock: L }, &mut out);
        // Address computation: load an untainted pointer into a register.
        d.on_event(
            CONS,
            CTX_C,
            &MemEvent::Mov {
                src: mem(5),
                dst: reg(CONS, 0),
            },
            &mut out,
        );
        d.on_event(CONS, CTX_C, &MemEvent::CsExit, &mut out);
        assert!(out.is_empty(), "got {out:?}");
        assert_eq!(d.lock_stats(L).producers, 0);
    }

    #[test]
    fn shared_counter_yields_no_flow() {
        // Figure 2: both threads increment a shared counter; the
        // non-MOV modification taints it with the invalid context.
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        for (t, ctx) in [(PROD, CTX_P), (CONS, CTX_C)] {
            d.on_event(t, ctx, &MemEvent::CsEnter { lock: L }, &mut out);
            d.on_event(
                t,
                ctx,
                &MemEvent::Mov {
                    src: mem(100),
                    dst: reg(t, 0),
                },
                &mut out,
            );
            d.on_event(t, ctx, &MemEvent::Modify { dst: reg(t, 0) }, &mut out);
            d.on_event(
                t,
                ctx,
                &MemEvent::Mov {
                    src: reg(t, 0),
                    dst: mem(100),
                },
                &mut out,
            );
            d.on_event(t, ctx, &MemEvent::CsExit, &mut out);
            d.on_event(t, ctx, &MemEvent::Use { loc: mem(100) }, &mut out);
        }
        assert!(
            !out.iter().any(|e| matches!(e, FlowEvent::Consumed { .. })),
            "shared counter must not flow, got {out:?}"
        );
    }

    #[test]
    fn null_sanity_check_does_not_flow_backwards() {
        // §3.3.2: the consumer stores NULL (an immediate) into the queue
        // slot; the producer later reads it — no flow may be inferred.
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        // Consumer writes NULL into the slot inside its CS.
        d.on_event(CONS, CTX_C, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(CONS, CTX_C, &MemEvent::Modify { dst: mem(50) }, &mut out);
        d.on_event(CONS, CTX_C, &MemEvent::CsExit, &mut out);
        // Producer checks the slot value after its own CS.
        d.on_event(PROD, CTX_P, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(
            PROD,
            CTX_P,
            &MemEvent::Mov {
                src: mem(50),
                dst: reg(PROD, 0),
            },
            &mut out,
        );
        d.on_event(
            PROD,
            CTX_P,
            &MemEvent::Mov {
                src: reg(PROD, 0),
                dst: mem(300),
            },
            &mut out,
        );
        d.on_event(PROD, CTX_P, &MemEvent::CsExit, &mut out);
        d.on_event(PROD, CTX_P, &MemEvent::Use { loc: mem(300) }, &mut out);
        assert!(
            !out.iter().any(|e| matches!(e, FlowEvent::Consumed { .. })),
            "NULL transfer must not flow, got {out:?}"
        );
    }

    #[test]
    fn allocator_pattern_disables_flow() {
        // Figure 3: the same thread frees (produces) and allocates
        // (consumes) under one lock — the lists intersect.
        let mut d = FlowDetector::default();
        let t = PROD;
        // mem_free: store pointer into the free list.
        let ev = produce(&mut d, t, CTX_P, mem(10), mem(60));
        assert!(matches!(ev.as_slice(), [FlowEvent::Produced { .. }]));
        // mem_alloc: read it back and use it after the CS.
        let ev = consume(&mut d, t, CTX_P, mem(60), mem(400));
        assert!(
            ev.iter()
                .any(|e| matches!(e, FlowEvent::FlowDisabled { lock } if *lock == L)),
            "allocator must disable flow, got {ev:?}"
        );
        assert!(!d.flow_enabled(L));
        // No Consumed may be reported once disabled.
        assert!(!ev.iter().any(|e| matches!(e, FlowEvent::Consumed { .. })));
    }

    #[test]
    fn queue_internal_moves_keep_producer_context() {
        // §3.2: elements moved within the shared structure (priority
        // queue reshuffling) carry their context along.
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        produce(&mut d, PROD, CTX_P, mem(10), mem(50));
        // Another producer operation moves the element to a new slot.
        d.on_event(PROD, CTX_P, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(
            PROD,
            CTX_P,
            &MemEvent::Mov {
                src: mem(50),
                dst: reg(PROD, 2),
            },
            &mut out,
        );
        d.on_event(
            PROD,
            CTX_P,
            &MemEvent::Mov {
                src: reg(PROD, 2),
                dst: mem(51),
            },
            &mut out,
        );
        d.on_event(PROD, CTX_P, &MemEvent::CsExit, &mut out);
        // Consume from the *new* slot.
        let ev = consume(&mut d, CONS, CTX_C, mem(51), mem(200));
        assert!(
            ev.iter()
                .any(|e| matches!(e, FlowEvent::Consumed { ctx: CTX_P, .. })),
            "moved element must keep its context, got {ev:?}"
        );
    }

    #[test]
    fn foreign_lock_access_flushes_taint() {
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        produce(&mut d, PROD, CTX_P, mem(10), mem(50));
        // The same location is accessed under a different lock: flush.
        d.on_event(CONS, CTX_C, &MemEvent::CsEnter { lock: L2 }, &mut out);
        d.on_event(
            CONS,
            CTX_C,
            &MemEvent::Mov {
                src: mem(50),
                dst: reg(CONS, 0),
            },
            &mut out,
        );
        d.on_event(
            CONS,
            CTX_C,
            &MemEvent::Mov {
                src: reg(CONS, 0),
                dst: mem(200),
            },
            &mut out,
        );
        d.on_event(CONS, CTX_C, &MemEvent::CsExit, &mut out);
        out.clear();
        d.on_event(CONS, CTX_C, &MemEvent::Use { loc: mem(200) }, &mut out);
        assert!(
            !out.iter()
                .any(|e| matches!(e, FlowEvent::Consumed { ctx: CTX_P, .. })),
            "flushed taint must not flow, got {out:?}"
        );
    }

    #[test]
    fn nested_locks_attribute_to_outermost() {
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        d.on_event(PROD, CTX_P, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(PROD, CTX_P, &MemEvent::CsEnter { lock: L2 }, &mut out);
        d.on_event(
            PROD,
            CTX_P,
            &MemEvent::Mov {
                src: mem(10),
                dst: reg(PROD, 0),
            },
            &mut out,
        );
        d.on_event(
            PROD,
            CTX_P,
            &MemEvent::Mov {
                src: reg(PROD, 0),
                dst: mem(50),
            },
            &mut out,
        );
        d.on_event(PROD, CTX_P, &MemEvent::CsExit, &mut out);
        d.on_event(PROD, CTX_P, &MemEvent::CsExit, &mut out);
        assert!(matches!(
            out.as_slice(),
            [FlowEvent::Produced { lock: L, .. }]
        ));
        assert_eq!(d.lock_stats(L).producers, 1);
        assert_eq!(d.lock_stats(L2).producers, 0);
    }

    #[test]
    fn stale_register_taint_is_cleared_on_reentry() {
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        // Consumer picks up taint into a register and keeps it there.
        produce(&mut d, PROD, CTX_P, mem(10), mem(50));
        d.on_event(CONS, CTX_C, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(
            CONS,
            CTX_C,
            &MemEvent::Mov {
                src: mem(50),
                dst: reg(CONS, 1),
            },
            &mut out,
        );
        d.on_event(CONS, CTX_C, &MemEvent::CsExit, &mut out);
        out.clear();
        // On re-entry the stale register taint must be gone, so storing
        // that register is a fresh produce (with the consumer's own
        // context), not a copy of CTX_P.
        d.on_event(CONS, CTX_C, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(
            CONS,
            CTX_C,
            &MemEvent::Mov {
                src: reg(CONS, 1),
                dst: mem(52),
            },
            &mut out,
        );
        d.on_event(CONS, CTX_C, &MemEvent::CsExit, &mut out);
        assert!(
            matches!(out.as_slice(), [FlowEvent::Produced { ctx: CTX_C, .. }]),
            "stale taint must not survive re-entry, got {out:?}"
        );
    }

    #[test]
    fn use_of_unknown_or_invalid_location_is_silent() {
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        d.on_event(CONS, CTX_C, &MemEvent::Use { loc: mem(999) }, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn flow_enabled_defaults_true_for_unknown_locks() {
        let d = FlowDetector::default();
        assert!(d.flow_enabled(LockId(42)));
        assert_eq!(d.lock_stats(LockId(42)), LockFlowStats::default());
    }

    #[test]
    fn two_producers_two_consumers_keep_flow_enabled() {
        let mut d = FlowDetector::default();
        let p2 = ThreadId(3);
        let c2 = ThreadId(4);
        produce(&mut d, PROD, CTX_P, mem(10), mem(50));
        produce(&mut d, p2, CtxId(9), mem(11), mem(51));
        consume(&mut d, CONS, CTX_C, mem(50), mem(200));
        let ev = consume(&mut d, c2, CtxId(10), mem(51), mem(201));
        assert!(ev
            .iter()
            .any(|e| matches!(e, FlowEvent::Consumed { ctx: CtxId(9), .. })));
        assert!(d.flow_enabled(L));
        let s = d.lock_stats(L);
        assert_eq!((s.producers, s.consumers), (2, 2));
    }
}
