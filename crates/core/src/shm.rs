//! Shared-memory transaction-flow detection (§3).
//!
//! Threads of a multithreaded stage pass transactions between themselves
//! through shared data structures (e.g. Apache's listener → worker fd
//! queue). There is no explicit produce/consume call to hook, so the
//! producer–consumer relationship must be *inferred* from the memory
//! operations performed inside critical sections.
//!
//! The algorithm (paper §3.2), restated over the event vocabulary of
//! this module:
//!
//! - Every location (memory word or thread-annotated register) may carry
//!   a *taint entry*: a transaction context (or the special invalid
//!   context `invlctxt`) plus the lock protecting the critical section
//!   that last updated it.
//! - A `MOV` inside a critical section copies the source's taint to the
//!   destination. If the source is untainted and the destination is a
//!   *memory* location, the destination is tainted with the executing
//!   thread's current transaction context and the thread is recorded as
//!   a **producer** for the lock.
//! - Any non-`MOV` modification (immediate store, arithmetic update)
//!   taints the destination with the invalid context, which is how
//!   shared counters (Figure 2) and `NULL` sanity checks (§3.3.2) are
//!   excluded.
//! - A read of a validly tainted location *after* the critical section
//!   exits (within the emulator's `MAX`-instruction window, §7.2) is a
//!   **consume**: the reading thread is recorded as a consumer for the
//!   tainting lock and inherits the producer's transaction context.
//! - A location accessed from a critical section protected by a
//!   different lock than the one that tainted it is flushed first.
//! - The first time the producer and consumer lists of a lock intersect
//!   (the memory-allocator pattern, Figure 3), transaction flow for that
//!   lock is disabled; the substrate may then stop emulating its
//!   critical sections (§7.2's performance optimization).

use crate::context::CtxId;
use crate::hash::Fnv64;
use crate::ids::{LockId, ThreadId};

/// A location in the combined name space of §3.2: the virtual address
/// space plus per-thread annotated registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Loc {
    /// A word in (guest) memory, identified by its word address.
    Mem(u64),
    /// Register `reg` of thread `t` (the paper's `reg_ti` annotation).
    Reg(ThreadId, u8),
}

impl Loc {
    /// Whether this is a memory location.
    pub fn is_mem(&self) -> bool {
        matches!(self, Loc::Mem(_))
    }
}

/// A memory operation reported by the emulating substrate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemEvent {
    /// The thread acquired `lock`; nesting is tracked and all analysis
    /// is attributed to the *outermost* lock (§3.3.2).
    CsEnter {
        /// The lock protecting the entered critical section.
        lock: LockId,
    },
    /// The thread released a lock; at depth zero the critical section
    /// ends and the post-exit consume window begins.
    CsExit,
    /// A `MOV` from `src` to `dst` inside a critical section.
    Mov {
        /// Source location.
        src: Loc,
        /// Destination location.
        dst: Loc,
    },
    /// A non-`MOV` modification of `dst` inside a critical section
    /// (immediate store, arithmetic read-modify-write, …).
    Modify {
        /// Destination location.
        dst: Loc,
    },
    /// A read of `loc` after critical-section exit, within the
    /// substrate's consume window.
    Use {
        /// The location read.
        loc: Loc,
    },
}

/// A flow inference produced by the detector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowEvent {
    /// `thread` produced a value at `loc` under `lock` while executing
    /// with context `ctx`.
    Produced {
        /// Producing thread.
        thread: ThreadId,
        /// Location the value was stored to.
        loc: Loc,
        /// The producer's transaction context.
        ctx: CtxId,
        /// Lock protecting the critical section.
        lock: LockId,
    },
    /// `thread` consumed a value from `loc` that carries `ctx`.
    ///
    /// The profiler reacts by assigning `ctx` to the consuming thread
    /// (§3.5).
    Consumed {
        /// Consuming thread.
        thread: ThreadId,
        /// Location the value was read from.
        loc: Loc,
        /// The producer context the consumer inherits.
        ctx: CtxId,
        /// Lock whose critical section tainted the location.
        lock: LockId,
    },
    /// The producer and consumer lists of `lock` intersected: shared
    /// memory under this lock does not constitute transaction flow
    /// (the allocator pattern, §3.4).
    FlowDisabled {
        /// The lock whose flow tracking is disabled.
        lock: LockId,
    },
}

/// Tunables of the detector (ablation knobs).
#[derive(Clone, Copy, Debug)]
pub struct FlowConfig {
    /// Clear the executing thread's register taints when it enters an
    /// outermost critical section.
    ///
    /// §3.1 assumes values a producer brings into a critical section are
    /// untainted ("a location gets associated with a transaction context
    /// only inside a critical section"); clearing registers on entry
    /// enforces that assumption against stale taint left by a previous
    /// critical section of the same thread.
    pub clear_regs_on_cs_enter: bool,
    /// Infer *produce* only when the destination of an untainted `MOV`
    /// is a memory location. Disabling this treats register targets as
    /// produce points too, which mis-classifies consumers as producers —
    /// kept as an ablation to demonstrate why the restriction matters.
    pub produce_requires_mem_dst: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            clear_regs_on_cs_enter: true,
            produce_requires_mem_dst: true,
        }
    }
}

/// Taint value: a valid transaction context or `invlctxt`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Taint {
    Valid(CtxId),
    Invalid,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    taint: Taint,
    lock: LockId,
}

/// Tag bit distinguishing packed register codes from memory codes.
///
/// The substrates address guest memory by small word indices, nowhere
/// near 2^63, so the top bit of the packed code is free to carry the
/// kind: `Mem(a)` packs to `a`, `Reg(t, r)` packs to
/// `REG_TAG | t << 8 | r`.
const REG_TAG: u64 = 1 << 63;

fn loc_code(loc: Loc) -> u64 {
    match loc {
        Loc::Mem(a) => {
            debug_assert!(a & REG_TAG == 0, "memory address collides with the register tag");
            a
        }
        Loc::Reg(t, r) => REG_TAG | (u64::from(t.0) << 8) | u64::from(r),
    }
}

fn code_hash(code: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(code);
    h.finish()
}

const SLOT_EMPTY: u8 = 0;
const SLOT_FULL: u8 = 1;
const SLOT_DEAD: u8 = 2;

#[derive(Clone, Copy, Debug)]
struct DictSlot {
    code: u64,
    state: u8,
    entry: Entry,
}

const EMPTY_SLOT: DictSlot = DictSlot {
    code: 0,
    state: SLOT_EMPTY,
    entry: Entry {
        taint: Taint::Invalid,
        lock: LockId(0),
    },
};

/// Open-addressed FNV table from packed memory codes to taint entries:
/// one hash plus a short linear probe per `MOV`, no per-entry heap
/// allocation. Capacity is a power of two kept under 7/8 load;
/// deletions (the §3.2 foreign-lock flush) leave tombstones that are
/// dropped on the next growth rehash.
#[derive(Debug, Default)]
struct TaintDict {
    slots: Vec<DictSlot>,
    /// Live (`SLOT_FULL`) entries.
    live: usize,
    /// Full plus tombstoned slots; drives the load factor.
    filled: usize,
}

impl TaintDict {
    fn get(&self, code: u64) -> Option<Entry> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (code_hash(code) as usize) & mask;
        loop {
            let s = &self.slots[i];
            match s.state {
                SLOT_EMPTY => return None,
                SLOT_FULL if s.code == code => return Some(s.entry),
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, code: u64, entry: Entry) {
        if self.slots.len() * 7 <= (self.filled + 1) * 8 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (code_hash(code) as usize) & mask;
        let mut dead = None;
        loop {
            let s = &self.slots[i];
            match s.state {
                SLOT_EMPTY => {
                    // Reusing a tombstone keeps `filled` unchanged.
                    let at = match dead {
                        Some(d) => d,
                        None => {
                            self.filled += 1;
                            i
                        }
                    };
                    self.slots[at] = DictSlot {
                        code,
                        state: SLOT_FULL,
                        entry,
                    };
                    self.live += 1;
                    return;
                }
                SLOT_FULL if s.code == code => {
                    self.slots[i].entry = entry;
                    return;
                }
                SLOT_DEAD if dead.is_none() => dead = Some(i),
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    fn remove(&mut self, code: u64) {
        if self.slots.is_empty() {
            return;
        }
        let mask = self.slots.len() - 1;
        let mut i = (code_hash(code) as usize) & mask;
        loop {
            let s = &self.slots[i];
            match s.state {
                SLOT_EMPTY => return,
                SLOT_FULL if s.code == code => {
                    self.slots[i].state = SLOT_DEAD;
                    self.live -= 1;
                    return;
                }
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let cap = (self.live * 2).max(16).next_power_of_two();
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; cap]);
        self.filled = self.live;
        let mask = cap - 1;
        for s in old {
            if s.state != SLOT_FULL {
                continue;
            }
            let mut i = (code_hash(s.code) as usize) & mask;
            while self.slots[i].state != SLOT_EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }
}

/// Per-thread register taints, directly indexed by register number.
///
/// Registers live in a tiny dense space (`u8` indices), so keeping
/// them out of the hash table turns the §3.1 clear-on-entry rule into
/// an O(regs) wipe of one bank instead of a scan of the whole
/// dictionary.
#[derive(Clone, Debug, Default)]
struct RegBank {
    slots: Vec<Option<Entry>>,
    live: usize,
}

#[derive(Debug, Default)]
struct LockState {
    /// Sorted distinct producer threads.
    producers: Vec<ThreadId>,
    /// Sorted distinct consumer threads.
    consumers: Vec<ThreadId>,
    disabled: bool,
    produced: u64,
    consumed: u64,
}

fn insert_sorted(v: &mut Vec<ThreadId>, t: ThreadId) {
    if let Err(i) = v.binary_search(&t) {
        v.insert(i, t);
    }
}

fn sorted_intersect(a: &[ThreadId], b: &[ThreadId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[derive(Clone, Copy, Debug, Default)]
struct LockIdxSlot {
    hash: u64,
    idx_p1: u32,
}

/// Lock states in an id-ordered arena indexed by an open-addressed
/// FNV probe (locks are never removed, so no tombstones are needed).
#[derive(Debug, Default)]
struct LockTable {
    index: Vec<LockIdxSlot>,
    arena: Vec<(LockId, LockState)>,
}

impl LockTable {
    fn find(&self, lock: LockId) -> Option<usize> {
        if self.index.is_empty() {
            return None;
        }
        let mask = self.index.len() - 1;
        let h = code_hash(u64::from(lock.0));
        let mut i = (h as usize) & mask;
        loop {
            let s = self.index[i];
            if s.idx_p1 == 0 {
                return None;
            }
            let at = (s.idx_p1 - 1) as usize;
            if s.hash == h && self.arena[at].0 == lock {
                return Some(at);
            }
            i = (i + 1) & mask;
        }
    }

    fn get(&self, lock: LockId) -> Option<&LockState> {
        self.find(lock).map(|i| &self.arena[i].1)
    }

    fn get_mut(&mut self, lock: LockId) -> Option<&mut LockState> {
        self.find(lock).map(|i| &mut self.arena[i].1)
    }

    fn ensure(&mut self, lock: LockId) -> &mut LockState {
        if let Some(i) = self.find(lock) {
            return &mut self.arena[i].1;
        }
        if self.index.len() * 7 <= (self.arena.len() + 1) * 8 {
            self.grow();
        }
        let h = code_hash(u64::from(lock.0));
        let id = self.arena.len();
        self.arena.push((lock, LockState::default()));
        let mask = self.index.len() - 1;
        let mut i = (h as usize) & mask;
        while self.index[i].idx_p1 != 0 {
            i = (i + 1) & mask;
        }
        self.index[i] = LockIdxSlot {
            hash: h,
            idx_p1: id as u32 + 1,
        };
        &mut self.arena[id].1
    }

    fn grow(&mut self) {
        let cap = (self.arena.len() * 2).max(16).next_power_of_two();
        self.index = vec![LockIdxSlot::default(); cap];
        let mask = cap - 1;
        for (at, (lock, _)) in self.arena.iter().enumerate() {
            let h = code_hash(u64::from(lock.0));
            let mut i = (h as usize) & mask;
            while self.index[i].idx_p1 != 0 {
                i = (i + 1) & mask;
            }
            self.index[i] = LockIdxSlot {
                hash: h,
                idx_p1: at as u32 + 1,
            };
        }
    }
}

/// Critical-section nesting of one thread; `depth == 0` means the
/// thread is outside any critical section.
#[derive(Clone, Copy, Debug)]
struct CsSlot {
    outer: LockId,
    depth: u32,
}

/// Per-lock flow statistics for reports and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockFlowStats {
    /// Number of produce inferences.
    pub produced: u64,
    /// Number of consume inferences.
    pub consumed: u64,
    /// Distinct producer threads seen.
    pub producers: usize,
    /// Distinct consumer threads seen.
    pub consumers: usize,
    /// Whether flow tracking was disabled for this lock.
    pub disabled: bool,
}

/// The §3 shared-memory transaction-flow detector.
///
/// Internally the location dictionary is split by kind: memory taints
/// live in an open-addressed FNV table keyed by a packed location
/// code, register taints in dense per-thread banks (so the §3.1
/// clear-on-entry rule touches only one bank), and per-lock state in
/// an id-ordered arena behind an FNV index. A `MOV` therefore costs
/// one hash and a short linear probe instead of several SipHash map
/// operations.
///
/// # Examples
///
/// The Figure 1 producer–consumer round, reduced to raw memory events:
///
/// ```
/// use whodunit_core::context::CtxId;
/// use whodunit_core::ids::{LockId, ThreadId};
/// use whodunit_core::shm::{FlowDetector, FlowEvent, Loc, MemEvent};
///
/// let mut d = FlowDetector::default();
/// let (lock, prod, cons) = (LockId(1), ThreadId(1), ThreadId(2));
/// let mut out = Vec::new();
/// // Producer: argument register → shared slot.
/// d.on_event(prod, CtxId(7), &MemEvent::CsEnter { lock }, &mut out);
/// d.on_event(prod, CtxId(7), &MemEvent::Mov {
///     src: Loc::Reg(prod, 1), dst: Loc::Mem(50) }, &mut out);
/// d.on_event(prod, CtxId(7), &MemEvent::CsExit, &mut out);
/// // Consumer: shared slot → register, used after the exit.
/// d.on_event(cons, CtxId(0), &MemEvent::CsEnter { lock }, &mut out);
/// d.on_event(cons, CtxId(0), &MemEvent::Mov {
///     src: Loc::Mem(50), dst: Loc::Reg(cons, 1) }, &mut out);
/// d.on_event(cons, CtxId(0), &MemEvent::CsExit, &mut out);
/// out.clear();
/// d.on_event(cons, CtxId(0), &MemEvent::Use {
///     loc: Loc::Reg(cons, 1) }, &mut out);
/// assert!(matches!(out[0],
///     FlowEvent::Consumed { ctx: CtxId(7), .. }));
/// ```
#[derive(Debug)]
pub struct FlowDetector {
    cfg: FlowConfig,
    /// Memory taints, keyed by packed location code.
    mem: TaintDict,
    /// Register taints, indexed by thread then register number.
    regs: Vec<RegBank>,
    /// Total live register taints across all banks.
    reg_live: usize,
    locks: LockTable,
    /// Critical-section nesting, indexed by thread id.
    in_cs: Vec<CsSlot>,
}

impl Default for FlowDetector {
    fn default() -> Self {
        Self::new(FlowConfig::default())
    }
}

impl FlowDetector {
    /// Creates a detector with the given configuration.
    pub fn new(cfg: FlowConfig) -> Self {
        FlowDetector {
            cfg,
            mem: TaintDict::default(),
            regs: Vec::new(),
            reg_live: 0,
            locks: LockTable::default(),
            in_cs: Vec::new(),
        }
    }

    /// Whether transaction flow is still tracked for `lock`.
    ///
    /// Substrates use this for the §7.2 optimization: once a lock's flow
    /// is disabled, its critical sections can run natively.
    pub fn flow_enabled(&self, lock: LockId) -> bool {
        self.locks.get(lock).map(|s| !s.disabled).unwrap_or(true)
    }

    /// Per-lock statistics.
    pub fn lock_stats(&self, lock: LockId) -> LockFlowStats {
        match self.locks.get(lock) {
            None => LockFlowStats::default(),
            Some(s) => LockFlowStats {
                produced: s.produced,
                consumed: s.consumed,
                producers: s.producers.len(),
                consumers: s.consumers.len(),
                disabled: s.disabled,
            },
        }
    }

    /// All locks the detector has seen, in id order.
    pub fn known_locks(&self) -> Vec<LockId> {
        let mut v: Vec<_> = self.locks.arena.iter().map(|(l, _)| *l).collect();
        v.sort();
        v
    }

    /// Size of the location dictionary (tainted locations).
    pub fn dict_len(&self) -> usize {
        self.mem.live + self.reg_live
    }

    fn entry_of(&self, loc: Loc) -> Option<Entry> {
        match loc {
            Loc::Mem(_) => self.mem.get(loc_code(loc)),
            Loc::Reg(t, r) => self
                .regs
                .get(t.0 as usize)
                .and_then(|b| b.slots.get(r as usize).copied().flatten()),
        }
    }

    fn set_entry(&mut self, loc: Loc, e: Entry) {
        match loc {
            Loc::Mem(_) => self.mem.insert(loc_code(loc), e),
            Loc::Reg(t, r) => {
                let ti = t.0 as usize;
                if self.regs.len() <= ti {
                    self.regs.resize(ti + 1, RegBank::default());
                }
                let bank = &mut self.regs[ti];
                let ri = r as usize;
                if bank.slots.len() <= ri {
                    bank.slots.resize(ri + 1, None);
                }
                if bank.slots[ri].is_none() {
                    bank.live += 1;
                    self.reg_live += 1;
                }
                bank.slots[ri] = Some(e);
            }
        }
    }

    fn remove_entry(&mut self, loc: Loc) {
        match loc {
            Loc::Mem(_) => self.mem.remove(loc_code(loc)),
            Loc::Reg(t, r) => {
                if let Some(bank) = self.regs.get_mut(t.0 as usize) {
                    if let Some(slot) = bank.slots.get_mut(r as usize) {
                        if slot.take().is_some() {
                            bank.live -= 1;
                            self.reg_live -= 1;
                        }
                    }
                }
            }
        }
    }

    /// Feeds one memory event for thread `t`, whose current transaction
    /// context is `cur_ctx`; inferences are appended to `out`.
    pub fn on_event(
        &mut self,
        t: ThreadId,
        cur_ctx: CtxId,
        ev: &MemEvent,
        out: &mut Vec<FlowEvent>,
    ) {
        match *ev {
            MemEvent::CsEnter { lock } => self.cs_enter(t, lock),
            MemEvent::CsExit => self.cs_exit(t),
            MemEvent::Mov { src, dst } => self.mov(t, cur_ctx, src, dst, out),
            MemEvent::Modify { dst } => self.modify(t, dst),
            MemEvent::Use { loc } => self.use_loc(t, loc, out),
        }
    }

    fn cs_enter(&mut self, t: ThreadId, lock: LockId) {
        let ti = t.0 as usize;
        if self.in_cs.len() <= ti {
            self.in_cs.resize(ti + 1, CsSlot { outer: lock, depth: 0 });
        }
        if self.in_cs[ti].depth == 0 {
            self.in_cs[ti].outer = lock;
            if self.cfg.clear_regs_on_cs_enter {
                if let Some(bank) = self.regs.get_mut(ti) {
                    if bank.live > 0 {
                        self.reg_live -= bank.live;
                        bank.live = 0;
                        bank.slots.fill(None);
                    }
                }
            }
        }
        self.in_cs[ti].depth += 1;
        self.locks.ensure(lock);
    }

    fn cs_exit(&mut self, t: ThreadId) {
        if let Some(st) = self.in_cs.get_mut(t.0 as usize) {
            st.depth = st.depth.saturating_sub(1);
        }
    }

    /// The outermost lock of `t`'s current critical section, if any.
    fn outer_lock(&self, t: ThreadId) -> Option<LockId> {
        self.in_cs
            .get(t.0 as usize)
            .filter(|s| s.depth > 0)
            .map(|s| s.outer)
    }

    /// §3.2 flush rule: a location accessed from a critical section
    /// protected by a different lock than the one that tainted it loses
    /// its taint.
    fn flush_if_foreign(&mut self, loc: Loc, lock: LockId) {
        if let Some(e) = self.entry_of(loc) {
            if e.lock != lock {
                self.remove_entry(loc);
            }
        }
    }

    fn mov(&mut self, t: ThreadId, cur_ctx: CtxId, src: Loc, dst: Loc, out: &mut Vec<FlowEvent>) {
        let Some(lock) = self.outer_lock(t) else {
            // Defensive: a `MOV` outside any critical section is not
            // analyzed (the substrate reports post-exit reads as `Use`).
            return;
        };
        self.flush_if_foreign(src, lock);
        self.flush_if_foreign(dst, lock);
        match self.entry_of(src) {
            Some(e) => {
                // Copy the taint, whatever it is (valid or invalid):
                // this is how queue-internal element moves keep their
                // producer context (§3.2's priority-queue case) and how
                // the invalid context spreads through `NULL` checks.
                self.set_entry(
                    dst,
                    Entry {
                        taint: e.taint,
                        lock,
                    },
                );
            }
            None => {
                if dst.is_mem() || !self.cfg.produce_requires_mem_dst {
                    // Untainted source: the thread is producing a value
                    // it computed before entering the critical section.
                    self.set_entry(
                        dst,
                        Entry {
                            taint: Taint::Valid(cur_ctx),
                            lock,
                        },
                    );
                    let st = self.locks.ensure(lock);
                    st.produced += 1;
                    insert_sorted(&mut st.producers, t);
                    out.push(FlowEvent::Produced {
                        thread: t,
                        loc: dst,
                        ctx: cur_ctx,
                        lock,
                    });
                    self.check_intersection(lock, out);
                }
                // Untainted moves into registers stay untainted: they
                // are address computations and staging loads, not
                // produce points.
            }
        }
    }

    fn modify(&mut self, t: ThreadId, dst: Loc) {
        let Some(lock) = self.outer_lock(t) else {
            return;
        };
        self.set_entry(
            dst,
            Entry {
                taint: Taint::Invalid,
                lock,
            },
        );
    }

    fn use_loc(&mut self, t: ThreadId, loc: Loc, out: &mut Vec<FlowEvent>) {
        if self.outer_lock(t).is_some() {
            // Uses are only meaningful after the critical section exits.
            return;
        }
        let Some(e) = self.entry_of(loc) else {
            return;
        };
        let Taint::Valid(ctx) = e.taint else {
            return;
        };
        let st = self.locks.ensure(e.lock);
        st.consumed += 1;
        insert_sorted(&mut st.consumers, t);
        let disabled = st.disabled;
        self.check_intersection(e.lock, out);
        let now_disabled = self.locks.get(e.lock).map(|s| s.disabled).unwrap_or(false);
        if !disabled && !now_disabled {
            out.push(FlowEvent::Consumed {
                thread: t,
                loc,
                ctx,
                lock: e.lock,
            });
        }
    }

    fn check_intersection(&mut self, lock: LockId, out: &mut Vec<FlowEvent>) {
        let Some(st) = self.locks.get_mut(lock) else {
            return;
        };
        if st.disabled {
            return;
        }
        if sorted_intersect(&st.producers, &st.consumers) {
            st.disabled = true;
            out.push(FlowEvent::FlowDisabled { lock });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LockId = LockId(1);
    const L2: LockId = LockId(2);
    const PROD: ThreadId = ThreadId(1);
    const CONS: ThreadId = ThreadId(2);
    const CTX_P: CtxId = CtxId(7);
    const CTX_C: CtxId = CtxId(8);

    fn mem(a: u64) -> Loc {
        Loc::Mem(a)
    }

    fn reg(t: ThreadId, r: u8) -> Loc {
        Loc::Reg(t, r)
    }

    /// Drives the producer half of Figure 1: load an argument into a
    /// register, store it into the shared queue slot.
    fn produce(
        d: &mut FlowDetector,
        t: ThreadId,
        ctx: CtxId,
        arg: Loc,
        slot: Loc,
    ) -> Vec<FlowEvent> {
        let mut out = Vec::new();
        d.on_event(t, ctx, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(
            t,
            ctx,
            &MemEvent::Mov {
                src: arg,
                dst: reg(t, 0),
            },
            &mut out,
        );
        d.on_event(
            t,
            ctx,
            &MemEvent::Mov {
                src: reg(t, 0),
                dst: slot,
            },
            &mut out,
        );
        d.on_event(t, ctx, &MemEvent::Modify { dst: mem(100) }, &mut out); // nelts++.
        d.on_event(t, ctx, &MemEvent::CsExit, &mut out);
        out
    }

    /// Drives the consumer half of Figure 1: load the queue slot into a
    /// register, store it to a caller-provided location, use it after
    /// the critical section exits.
    fn consume(
        d: &mut FlowDetector,
        t: ThreadId,
        ctx: CtxId,
        slot: Loc,
        dst: Loc,
    ) -> Vec<FlowEvent> {
        let mut out = Vec::new();
        d.on_event(t, ctx, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(
            t,
            ctx,
            &MemEvent::Mov {
                src: slot,
                dst: reg(t, 1),
            },
            &mut out,
        );
        d.on_event(
            t,
            ctx,
            &MemEvent::Mov {
                src: reg(t, 1),
                dst,
            },
            &mut out,
        );
        d.on_event(t, ctx, &MemEvent::CsExit, &mut out);
        d.on_event(t, ctx, &MemEvent::Use { loc: dst }, &mut out);
        out
    }

    #[test]
    fn figure1_producer_consumer_flow_is_detected() {
        let mut d = FlowDetector::default();
        let ev = produce(&mut d, PROD, CTX_P, mem(10), mem(50));
        assert!(matches!(
            ev.as_slice(),
            [FlowEvent::Produced {
                thread: PROD,
                ctx: CTX_P,
                ..
            }]
        ));
        let ev = consume(&mut d, CONS, CTX_C, mem(50), mem(200));
        assert!(
            ev.iter().any(|e| matches!(
                e,
                FlowEvent::Consumed {
                    thread: CONS,
                    ctx: CTX_P,
                    ..
                }
            )),
            "consumer must inherit the producer context, got {ev:?}"
        );
        assert!(d.flow_enabled(L));
        let s = d.lock_stats(L);
        assert_eq!((s.producers, s.consumers), (1, 1));
        assert!(!s.disabled);
    }

    #[test]
    fn untainted_register_moves_are_not_produce_points() {
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        d.on_event(CONS, CTX_C, &MemEvent::CsEnter { lock: L }, &mut out);
        // Address computation: load an untainted pointer into a register.
        d.on_event(
            CONS,
            CTX_C,
            &MemEvent::Mov {
                src: mem(5),
                dst: reg(CONS, 0),
            },
            &mut out,
        );
        d.on_event(CONS, CTX_C, &MemEvent::CsExit, &mut out);
        assert!(out.is_empty(), "got {out:?}");
        assert_eq!(d.lock_stats(L).producers, 0);
    }

    #[test]
    fn shared_counter_yields_no_flow() {
        // Figure 2: both threads increment a shared counter; the
        // non-MOV modification taints it with the invalid context.
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        for (t, ctx) in [(PROD, CTX_P), (CONS, CTX_C)] {
            d.on_event(t, ctx, &MemEvent::CsEnter { lock: L }, &mut out);
            d.on_event(
                t,
                ctx,
                &MemEvent::Mov {
                    src: mem(100),
                    dst: reg(t, 0),
                },
                &mut out,
            );
            d.on_event(t, ctx, &MemEvent::Modify { dst: reg(t, 0) }, &mut out);
            d.on_event(
                t,
                ctx,
                &MemEvent::Mov {
                    src: reg(t, 0),
                    dst: mem(100),
                },
                &mut out,
            );
            d.on_event(t, ctx, &MemEvent::CsExit, &mut out);
            d.on_event(t, ctx, &MemEvent::Use { loc: mem(100) }, &mut out);
        }
        assert!(
            !out.iter().any(|e| matches!(e, FlowEvent::Consumed { .. })),
            "shared counter must not flow, got {out:?}"
        );
    }

    #[test]
    fn null_sanity_check_does_not_flow_backwards() {
        // §3.3.2: the consumer stores NULL (an immediate) into the queue
        // slot; the producer later reads it — no flow may be inferred.
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        // Consumer writes NULL into the slot inside its CS.
        d.on_event(CONS, CTX_C, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(CONS, CTX_C, &MemEvent::Modify { dst: mem(50) }, &mut out);
        d.on_event(CONS, CTX_C, &MemEvent::CsExit, &mut out);
        // Producer checks the slot value after its own CS.
        d.on_event(PROD, CTX_P, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(
            PROD,
            CTX_P,
            &MemEvent::Mov {
                src: mem(50),
                dst: reg(PROD, 0),
            },
            &mut out,
        );
        d.on_event(
            PROD,
            CTX_P,
            &MemEvent::Mov {
                src: reg(PROD, 0),
                dst: mem(300),
            },
            &mut out,
        );
        d.on_event(PROD, CTX_P, &MemEvent::CsExit, &mut out);
        d.on_event(PROD, CTX_P, &MemEvent::Use { loc: mem(300) }, &mut out);
        assert!(
            !out.iter().any(|e| matches!(e, FlowEvent::Consumed { .. })),
            "NULL transfer must not flow, got {out:?}"
        );
    }

    #[test]
    fn allocator_pattern_disables_flow() {
        // Figure 3: the same thread frees (produces) and allocates
        // (consumes) under one lock — the lists intersect.
        let mut d = FlowDetector::default();
        let t = PROD;
        // mem_free: store pointer into the free list.
        let ev = produce(&mut d, t, CTX_P, mem(10), mem(60));
        assert!(matches!(ev.as_slice(), [FlowEvent::Produced { .. }]));
        // mem_alloc: read it back and use it after the CS.
        let ev = consume(&mut d, t, CTX_P, mem(60), mem(400));
        assert!(
            ev.iter()
                .any(|e| matches!(e, FlowEvent::FlowDisabled { lock } if *lock == L)),
            "allocator must disable flow, got {ev:?}"
        );
        assert!(!d.flow_enabled(L));
        // No Consumed may be reported once disabled.
        assert!(!ev.iter().any(|e| matches!(e, FlowEvent::Consumed { .. })));
    }

    #[test]
    fn queue_internal_moves_keep_producer_context() {
        // §3.2: elements moved within the shared structure (priority
        // queue reshuffling) carry their context along.
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        produce(&mut d, PROD, CTX_P, mem(10), mem(50));
        // Another producer operation moves the element to a new slot.
        d.on_event(PROD, CTX_P, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(
            PROD,
            CTX_P,
            &MemEvent::Mov {
                src: mem(50),
                dst: reg(PROD, 2),
            },
            &mut out,
        );
        d.on_event(
            PROD,
            CTX_P,
            &MemEvent::Mov {
                src: reg(PROD, 2),
                dst: mem(51),
            },
            &mut out,
        );
        d.on_event(PROD, CTX_P, &MemEvent::CsExit, &mut out);
        // Consume from the *new* slot.
        let ev = consume(&mut d, CONS, CTX_C, mem(51), mem(200));
        assert!(
            ev.iter()
                .any(|e| matches!(e, FlowEvent::Consumed { ctx: CTX_P, .. })),
            "moved element must keep its context, got {ev:?}"
        );
    }

    #[test]
    fn foreign_lock_access_flushes_taint() {
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        produce(&mut d, PROD, CTX_P, mem(10), mem(50));
        // The same location is accessed under a different lock: flush.
        d.on_event(CONS, CTX_C, &MemEvent::CsEnter { lock: L2 }, &mut out);
        d.on_event(
            CONS,
            CTX_C,
            &MemEvent::Mov {
                src: mem(50),
                dst: reg(CONS, 0),
            },
            &mut out,
        );
        d.on_event(
            CONS,
            CTX_C,
            &MemEvent::Mov {
                src: reg(CONS, 0),
                dst: mem(200),
            },
            &mut out,
        );
        d.on_event(CONS, CTX_C, &MemEvent::CsExit, &mut out);
        out.clear();
        d.on_event(CONS, CTX_C, &MemEvent::Use { loc: mem(200) }, &mut out);
        assert!(
            !out.iter()
                .any(|e| matches!(e, FlowEvent::Consumed { ctx: CTX_P, .. })),
            "flushed taint must not flow, got {out:?}"
        );
    }

    #[test]
    fn nested_locks_attribute_to_outermost() {
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        d.on_event(PROD, CTX_P, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(PROD, CTX_P, &MemEvent::CsEnter { lock: L2 }, &mut out);
        d.on_event(
            PROD,
            CTX_P,
            &MemEvent::Mov {
                src: mem(10),
                dst: reg(PROD, 0),
            },
            &mut out,
        );
        d.on_event(
            PROD,
            CTX_P,
            &MemEvent::Mov {
                src: reg(PROD, 0),
                dst: mem(50),
            },
            &mut out,
        );
        d.on_event(PROD, CTX_P, &MemEvent::CsExit, &mut out);
        d.on_event(PROD, CTX_P, &MemEvent::CsExit, &mut out);
        assert!(matches!(
            out.as_slice(),
            [FlowEvent::Produced { lock: L, .. }]
        ));
        assert_eq!(d.lock_stats(L).producers, 1);
        assert_eq!(d.lock_stats(L2).producers, 0);
    }

    #[test]
    fn stale_register_taint_is_cleared_on_reentry() {
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        // Consumer picks up taint into a register and keeps it there.
        produce(&mut d, PROD, CTX_P, mem(10), mem(50));
        d.on_event(CONS, CTX_C, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(
            CONS,
            CTX_C,
            &MemEvent::Mov {
                src: mem(50),
                dst: reg(CONS, 1),
            },
            &mut out,
        );
        d.on_event(CONS, CTX_C, &MemEvent::CsExit, &mut out);
        out.clear();
        // On re-entry the stale register taint must be gone, so storing
        // that register is a fresh produce (with the consumer's own
        // context), not a copy of CTX_P.
        d.on_event(CONS, CTX_C, &MemEvent::CsEnter { lock: L }, &mut out);
        d.on_event(
            CONS,
            CTX_C,
            &MemEvent::Mov {
                src: reg(CONS, 1),
                dst: mem(52),
            },
            &mut out,
        );
        d.on_event(CONS, CTX_C, &MemEvent::CsExit, &mut out);
        assert!(
            matches!(out.as_slice(), [FlowEvent::Produced { ctx: CTX_C, .. }]),
            "stale taint must not survive re-entry, got {out:?}"
        );
    }

    #[test]
    fn use_of_unknown_or_invalid_location_is_silent() {
        let mut d = FlowDetector::default();
        let mut out = Vec::new();
        d.on_event(CONS, CTX_C, &MemEvent::Use { loc: mem(999) }, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn flow_enabled_defaults_true_for_unknown_locks() {
        let d = FlowDetector::default();
        assert!(d.flow_enabled(LockId(42)));
        assert_eq!(d.lock_stats(LockId(42)), LockFlowStats::default());
    }

    #[test]
    fn two_producers_two_consumers_keep_flow_enabled() {
        let mut d = FlowDetector::default();
        let p2 = ThreadId(3);
        let c2 = ThreadId(4);
        produce(&mut d, PROD, CTX_P, mem(10), mem(50));
        produce(&mut d, p2, CtxId(9), mem(11), mem(51));
        consume(&mut d, CONS, CTX_C, mem(50), mem(200));
        let ev = consume(&mut d, c2, CtxId(10), mem(51), mem(201));
        assert!(ev
            .iter()
            .any(|e| matches!(e, FlowEvent::Consumed { ctx: CtxId(9), .. })));
        assert!(d.flow_enabled(L));
        let s = d.lock_stats(L);
        assert_eq!((s.producers, s.consumers), (2, 2));
    }
}
